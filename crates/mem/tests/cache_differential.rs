//! Differential property testing of the cache model against a transparent
//! mirror implementation (explicit per-set LRU lists), plus invariant checks
//! on random access streams.

use proptest::prelude::*;
use temu_mem::{AccessKind, Cache, CacheConfig, CacheKind, CacheResponse, WritePolicy};

/// A deliberately naive reference cache: per-set vectors ordered by recency.
struct MirrorCache {
    cfg: CacheConfig,
    sets: Vec<Vec<(u32, bool)>>, // (tag, dirty), most recent last
}

impl MirrorCache {
    fn new(cfg: CacheConfig) -> MirrorCache {
        MirrorCache { sets: vec![Vec::new(); cfg.sets() as usize], cfg }
    }

    fn access(&mut self, addr: u32, kind: AccessKind) -> CacheResponse {
        let line = addr / self.cfg.line_bytes;
        let set_idx = (line % self.cfg.sets()) as usize;
        let tag = line / self.cfg.sets();
        let is_write = kind == AccessKind::Write;
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|&(t, _)| t == tag) {
            let (t, dirty) = set.remove(pos);
            if is_write && self.cfg.write_policy == WritePolicy::WriteThrough {
                set.push((t, dirty));
                return CacheResponse::WriteThrough { hit: true };
            }
            set.push((t, dirty || is_write));
            return CacheResponse::Hit;
        }
        if is_write && self.cfg.write_policy == WritePolicy::WriteThrough {
            return CacheResponse::WriteThrough { hit: false };
        }
        let writeback_addr = if set.len() as u32 == self.cfg.ways {
            let (vt, vd) = set.remove(0);
            vd.then(|| (vt * self.cfg.sets() + set_idx as u32) * self.cfg.line_bytes)
        } else {
            None
        };
        set.push((tag, is_write));
        CacheResponse::Miss { writeback_addr }
    }
}

fn config_strategy() -> impl Strategy<Value = CacheConfig> {
    (
        prop::sample::select(&[256u32, 512, 1024, 4096][..]),
        prop::sample::select(&[8u32, 16, 32][..]),
        prop::sample::select(&[1u32, 2, 4][..]),
        prop::bool::ANY,
    )
        .prop_filter_map("geometry must hold at least one set", |(size, line, ways, wt)| {
            let cfg = CacheConfig {
                size_bytes: size,
                line_bytes: line,
                ways,
                hit_latency: 1,
                write_policy: if wt { WritePolicy::WriteThrough } else { WritePolicy::WriteBack },
            };
            cfg.validate().ok().map(|()| cfg)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_mirror(cfg in config_strategy(),
                            accesses in prop::collection::vec((0u32..16 * 1024, prop::bool::ANY), 1..400)) {
        let mut cache = Cache::new(cfg, CacheKind::Data);
        let mut mirror = MirrorCache::new(cfg);
        for (i, &(addr, write)) in accesses.iter().enumerate() {
            let kind = if write { AccessKind::Write } else { AccessKind::Read };
            let got = cache.access(addr, kind);
            let want = mirror.access(addr, kind);
            prop_assert_eq!(got, want, "access #{} addr {:#x} write {}", i, addr, write);
        }
    }

    #[test]
    fn counter_invariants(cfg in config_strategy(),
                          accesses in prop::collection::vec((0u32..64 * 1024, prop::bool::ANY), 1..300)) {
        let mut cache = Cache::new(cfg, CacheKind::Data);
        for &(addr, write) in &accesses {
            cache.access(addr, if write { AccessKind::Write } else { AccessKind::Read });
        }
        let s = *cache.stats();
        prop_assert_eq!(s.hits + s.misses, accesses.len() as u64);
        prop_assert_eq!(s.reads + s.writes, accesses.len() as u64);
        prop_assert!(s.writebacks <= s.writes, "can't write back more lines than stores dirtied");
        if cfg.write_policy == WritePolicy::WriteThrough {
            prop_assert_eq!(s.writebacks, 0);
            prop_assert_eq!(s.write_throughs, s.writes);
        }
    }

    #[test]
    fn repeat_access_always_hits(cfg in config_strategy(), addr in 0u32..64 * 1024) {
        let mut cache = Cache::new(cfg, CacheKind::Data);
        cache.access(addr, AccessKind::Read);
        prop_assert_eq!(cache.access(addr, AccessKind::Read), CacheResponse::Hit);
        prop_assert_eq!(cache.access(addr ^ 3, AccessKind::Read), CacheResponse::Hit, "same line");
    }

    #[test]
    fn working_set_within_capacity_never_conflicts(cfg in config_strategy()) {
        // Touching exactly one line per set never evicts.
        let mut cache = Cache::new(cfg, CacheKind::Data);
        for set in 0..cfg.sets() {
            cache.access(set * cfg.line_bytes, AccessKind::Read);
        }
        for set in 0..cfg.sets() {
            prop_assert_eq!(cache.access(set * cfg.line_bytes, AccessKind::Read), CacheResponse::Hit);
        }
    }
}
