//! Kill-and-restart e2e: a real `temu-serve` process is SIGKILLed in the
//! middle of a multi-point sweep; a fresh process on the same store +
//! journal must recover the job, resume it as cache hits plus the
//! remaining points, and produce a report identical (per `content_key`)
//! to an uninterrupted run.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::sync::mpsc::channel;
use temu_framework::{
    AxisSpec, ImplicitSolve, JsonValue, ResultCache, ScenarioSpec, SweepSpec, WorkloadSpec,
};
use temu_serve::Client;

/// A 6-point sweep whose points are slow enough (~tens of ms each) that a
/// kill lands mid-run; one campaign thread so checkpoints fall between
/// every point.
fn slow_sweep() -> SweepSpec {
    let tiny = |iters: u32| WorkloadSpec::Matrix { n: 4, iters, cores: 1 };
    SweepSpec {
        name: String::from("recovery"),
        base: ScenarioSpec {
            cores: Some(1),
            workload: Some(tiny(1)),
            sampling_window_s: Some(0.0005),
            windows: Some(40),
            strict_convergence: Some(true),
            ..ScenarioSpec::default()
        },
        axes: vec![
            AxisSpec::Workloads(vec![tiny(1), tiny(2), tiny(3)]),
            AxisSpec::Solvers(vec![ImplicitSolve::GaussSeidel, ImplicitSolve::Multigrid]),
        ],
        threads: Some(1),
    }
}

/// Spawns the real server bin on an ephemeral port and parses the bound
/// address (and recovered-job count) from its startup banner.
fn spawn_serve(store: &Path) -> (Child, BufReader<ChildStdout>, String, u64) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_temu-serve"))
        .args(["--addr", "127.0.0.1:0", "--store"])
        .arg(store)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn temu-serve");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut addr = None;
    let mut recovered = 0u64;
    let mut line = String::new();
    loop {
        line.clear();
        if stdout.read_line(&mut line).expect("read banner") == 0 {
            panic!("temu-serve exited before printing its banner");
        }
        if let Some(rest) = line.trim().strip_prefix("temu-serve listening on ") {
            addr = Some(rest.to_string());
        }
        if let Some((count, _)) = line.trim().split_once(" job(s) recovered") {
            recovered = count.rsplit(' ').next().and_then(|n| n.parse().ok()).unwrap_or(0);
        }
        if line.contains("worker(s)") {
            break;
        }
    }
    (child, stdout, addr.expect("server printed its address"), recovered)
}

fn temp_store() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("temu_recovery_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("cache.jsonl")
}

#[test]
fn killed_server_recovers_the_job_and_resumes_from_the_cache() {
    let store = temp_store();
    let _ = std::fs::remove_file(&store);
    let _ = std::fs::remove_file(store.with_file_name("jobs.jsonl"));
    let spec = slow_sweep();

    // Ground truth for content keys: the same sweep, uninterrupted.
    let reference = spec.lower().unwrap().run_cached(&ResultCache::in_memory());
    assert!(reference.all_ok());
    let total = reference.points.len() as u64;

    // First incarnation: submit, watch from a side thread, SIGKILL the
    // process once two points have completed (and are in the store).
    let (mut first, _stdout, addr, recovered) = spawn_serve(&store);
    assert_eq!(recovered, 0, "a fresh journal recovers nothing");
    let (point_tx, point_rx) = channel();
    let watcher = {
        let spec = spec.clone();
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect to first server");
            // The submission dies with the server; the error is expected.
            let _ = client.submit(&spec, true, |event| {
                if event.get("event").and_then(JsonValue::as_str) == Some("point") {
                    let _ = point_tx.send(());
                }
            });
        })
    };
    for _ in 0..2 {
        point_rx
            .recv_timeout(std::time::Duration::from_secs(60))
            .expect("the sweep makes progress before the kill");
    }
    first.kill().expect("SIGKILL the server");
    let _ = first.wait();
    watcher.join().expect("watcher thread exits after the server dies");

    // Second incarnation: the journal re-enqueues job 1 automatically.
    let (mut second, _stdout2, addr2, recovered) = spawn_serve(&store);
    assert_eq!(recovered, 1, "the killed job is recovered from the journal");
    let mut client = Client::connect(&addr2).expect("connect to restarted server");
    let done = client.watch(1, |_| {}).expect("watch the recovered job to completion");
    assert!(done.ok, "the recovered job completes: {done:?}");
    assert_eq!(done.points, total);
    assert_eq!(done.failed, 0);
    assert!(
        done.cache_hits >= 2,
        "every point completed before the kill is a cache hit on resume: {done:?}"
    );
    assert_eq!(done.executed + done.cache_hits, total, "the whole grid was served");

    // Identical results per content key.
    let frame = client.result(1).expect("fetch the recovered job's report");
    let report = frame.get("report").expect("report attached");
    let points = report.get("points").and_then(JsonValue::as_arr).expect("points array");
    assert_eq!(points.len(), reference.points.len());
    for (fetched, expected) in points.iter().zip(&reference.points) {
        let key = format!("{:016x}", expected.key.unwrap());
        assert_eq!(fetched.get("key").and_then(JsonValue::as_str), Some(key.as_str()));
        assert_eq!(fetched.get("ok").and_then(JsonValue::as_bool), Some(true));
    }

    // Restart counters are visible to operators.
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("jobs_recovered").and_then(JsonValue::as_u64), Some(1));
    assert!(stats.get("journal").and_then(JsonValue::as_str).is_some());

    client.shutdown().expect("graceful shutdown");
    let _ = second.wait();
    let dir = store.parent().unwrap().to_path_buf();
    let _ = std::fs::remove_dir_all(&dir);
}
