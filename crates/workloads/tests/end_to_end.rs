//! End-to-end oracle tests: the emulated MPSoC must compute exactly what the
//! host-side reference implementations compute, on every platform flavour.

use temu_isa::Width;
use temu_platform::{Machine, PlatformConfig};
use temu_workloads::dithering::{self, DitherConfig};
use temu_workloads::image::GreyImage;
use temu_workloads::matrix::{self, MatrixConfig};

fn run_matrix(mut machine: Machine, cfg: &MatrixConfig) {
    let program = matrix::program(cfg).expect("matrix program assembles");
    machine.load_program_all(&program).expect("fits in private memory");
    let summary = machine.run_to_halt(2_000_000_000).expect("no faults");
    assert!(summary.all_halted, "workload completed");

    let layout = matrix::layout();
    let shared_off = |addr: u32| addr - temu_workloads::SHARED_BASE;
    for core in 0..cfg.cores {
        let got = machine
            .shared()
            .read(shared_off(layout.partials_addr) + core * 4, Width::Word)
            .unwrap();
        assert_eq!(got, matrix::reference_checksum(cfg, core), "core {core} checksum");
    }
    let total = machine.shared().read(shared_off(layout.total_addr), Width::Word).unwrap();
    assert_eq!(total, matrix::reference_total(cfg), "combined total");
}

#[test]
fn matrix_single_core_bus() {
    let cfg = MatrixConfig { n: 8, iters: 2, cores: 1 };
    run_matrix(Machine::new(PlatformConfig::paper_bus(1)).unwrap(), &cfg);
}

#[test]
fn matrix_four_cores_bus() {
    let cfg = MatrixConfig { n: 8, iters: 1, cores: 4 };
    run_matrix(Machine::new(PlatformConfig::paper_bus(4)).unwrap(), &cfg);
}

#[test]
fn matrix_eight_cores_bus() {
    let cfg = MatrixConfig { n: 6, iters: 1, cores: 8 };
    run_matrix(Machine::new(PlatformConfig::paper_bus(8)).unwrap(), &cfg);
}

#[test]
fn matrix_four_cores_noc() {
    let cfg = MatrixConfig { n: 8, iters: 1, cores: 4 };
    run_matrix(Machine::new(PlatformConfig::paper_noc(4)).unwrap(), &cfg);
}

#[test]
fn matrix_on_thermal_platform() {
    let cfg = MatrixConfig { n: 8, iters: 1, cores: 4 };
    run_matrix(Machine::new(PlatformConfig::paper_thermal(4)).unwrap(), &cfg);
}

#[test]
fn matrix_without_caches() {
    let mut pc = PlatformConfig::paper_bus(2);
    pc.icache = None;
    pc.dcache = None;
    let cfg = MatrixConfig { n: 4, iters: 1, cores: 2 };
    run_matrix(Machine::new(pc).unwrap(), &cfg);
}

fn run_dither(mut machine: Machine, cfg: &DitherConfig) {
    let program = dithering::program(cfg).expect("dithering program assembles");
    machine.load_program_all(&program).expect("fits in private memory");

    // Load the input images into shared memory and dither copies on the host.
    let mut references = Vec::new();
    for i in 0..cfg.images {
        let img = GreyImage::synthetic(cfg.width as usize, cfg.height as usize, 1000 + u64::from(i));
        let off = cfg.image_addr(i) - temu_workloads::SHARED_BASE;
        machine.shared_mut().load(off, &img.pixels).unwrap();
        let mut reference = img;
        dithering::reference_dither(&mut reference, cfg.cores);
        references.push(reference);
    }

    let summary = machine.run_to_halt(2_000_000_000).expect("no faults");
    assert!(summary.all_halted);

    for (i, reference) in references.iter().enumerate() {
        let off = cfg.image_addr(i as u32) - temu_workloads::SHARED_BASE;
        let got = machine.shared().slice(off, cfg.width * cfg.height);
        assert_eq!(got, &reference.pixels[..], "image {i} dithered bit-exactly");
    }
}

#[test]
fn dithering_small_two_cores_bus() {
    let cfg = DitherConfig::small(2);
    run_dither(Machine::new(PlatformConfig::paper_bus(2)).unwrap(), &cfg);
}

#[test]
fn dithering_small_four_cores_noc() {
    let cfg = DitherConfig::small(4);
    run_dither(Machine::new(PlatformConfig::paper_noc(4)).unwrap(), &cfg);
}

#[test]
fn dithering_paper_configuration() {
    // The full paper workload: two 128x128 images, four cores, bus.
    let cfg = DitherConfig::paper();
    run_dither(Machine::new(PlatformConfig::paper_bus(4)).unwrap(), &cfg);
}

#[test]
fn dithering_single_core_matches_parallel() {
    // The parallel decomposition must equal the single-core run of the same
    // band-local algorithm (band boundaries are fixed by `cores`).
    let cfg1 = DitherConfig { width: 32, height: 32, images: 1, cores: 4 };
    let mut m1 = Machine::new(PlatformConfig::paper_bus(4)).unwrap();
    let p1 = dithering::program(&cfg1).unwrap();
    m1.load_program_all(&p1).unwrap();
    let img = GreyImage::synthetic(32, 32, 77);
    let off = cfg1.image_addr(0) - temu_workloads::SHARED_BASE;
    m1.shared_mut().load(off, &img.pixels).unwrap();
    m1.run_to_halt(1_000_000_000).unwrap();
    let out_parallel = m1.shared().slice(off, 32 * 32).to_vec();

    let mut reference = img;
    dithering::reference_dither(&mut reference, 4);
    assert_eq!(out_parallel, reference.pixels);
}
