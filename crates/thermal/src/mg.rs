//! Geometric multigrid hierarchy for the semi-implicit solver.
//!
//! # Why
//!
//! The backward-Euler substep solves `(C/h + G) T' = b`. Gauss–Seidel's
//! contraction on that system is governed by the ratio of the coupling
//! conductances to the capacitive diagonal; mesh refinement grows `G` and
//! shrinks `C`, so beyond a few tens of thousands of cells the sweeps stop
//! converging inside any reasonable budget (the 46k-cell bench rung pinned
//! at the 60-sweep cap). Multigrid restores mesh-size-robust convergence:
//! the sweeps only have to kill high-frequency error, and the smooth
//! remainder is solved on a hierarchy of coarser RC networks.
//!
//! # Coarsening
//!
//! Each level is built from the finer one by **composed pairwise
//! aggregation** along the strongest conductances: a greedy matching pass
//! pairs every cell with its strongest still-unmatched neighbour, and
//! [`MATCHING_PASSES`] such passes compose into aggregates of ~8 cells
//! that follow the mesher's tiling and the strongest couplings (a
//! structured semi-coarsening, discovered rather than hand-coded).
//!
//! With piecewise-constant restriction/prolongation the Galerkin coarse
//! operator of an RC network **is** the rediscretized coarse RC network:
//! coarse capacity = Σ fine capacities, coarse conductance between two
//! aggregates = Σ fine conductances crossing them, coarse convection =
//! Σ fine convection conductances (fine conductances interior to an
//! aggregate cancel out of the off-diagonals and the row sums alike). The
//! hierarchy's *topology* is therefore built once, and refreshing the
//! non-linear coefficients is a linear scatter-add pass per level.
//!
//! # Cycle
//!
//! Piecewise-constant aggregation systematically undersizes its coarse
//! corrections, so a stationary V/W-cycle over these spaces contracts
//! poorly (~0.7/cycle measured here). The fix is Krylov wrapping — the
//! K-cycle of Notay's aggregation-based multigrid: every coarse level's
//! solve is one cycle application (symmetric Gauss–Seidel smoothing around
//! the recursive correction, an exact dense Cholesky solve at the coarsest
//! ≤ [`COARSEST_MAX`] cells) re-scaled by an energy-norm line search, and
//! the fine level runs flexible CG with the cycle as its preconditioner.
//! The **fine** level stays in `solver.rs` so its smoothing reuses the
//! colored-sweep worker pool; this module owns everything below it.

use crate::grid::{GridConfig, ThermalGrid};
use crate::props::{silicon_conductivity, COPPER_CONDUCTIVITY};
use std::sync::Arc;

/// Sentinel in `edge_map`: the finer edge lies inside one aggregate and
/// contributes to no coarse off-diagonal.
const INTERNAL: u32 = u32::MAX;

/// Coarse-level problems at or below this size are solved exactly by dense
/// Cholesky instead of growing the hierarchy further.
const COARSEST_MAX: usize = 80;

/// Hard ceiling on the coarsest level's size for the dense factorization.
/// Coarsening can stall above [`COARSEST_MAX`] on degenerate adjacency
/// (see [`MIN_COARSENING_RATIO`]); factoring a few hundred cells densely
/// is still fine, but a stall at many thousands must degrade to plain
/// Gauss–Seidel instead of an O(n³) factorization / O(n²) allocation.
const DENSE_MAX: usize = 512;

/// Coarsening must shrink a level to at most this fraction of its parent,
/// or the hierarchy stops there (a safety net for degenerate adjacency —
/// physical meshes coarsen by ~4× per level).
const MIN_COARSENING_RATIO: f64 = 0.75;

/// Pairwise-matching passes per level: three compose into aggregates of
/// ~8 cells. Calibrated on the 46k-cell bench rung: factor-8 coarsening
/// roughly halves the per-cycle coarse work of the classic factor-4
/// double-pairwise while the Krylov wrapping (see [`k_solve`]) absorbs the
/// slightly weaker per-cycle correction — the combination converges in the
/// same number of outer cycles at ~2/3 the cost.
const MATCHING_PASSES: usize = 3;

/// Gauss–Seidel sweeps before restricting a coarse level's residual.
const PRE_SWEEPS: usize = 1;

/// Gauss–Seidel sweeps after prolonging a coarse level's correction.
const POST_SWEEPS: usize = 1;

/// A weighted cell-adjacency graph, the input of one coarsening step.
struct Graph {
    n: usize,
    /// Undirected edges `(a, b)`.
    edges: Vec<(u32, u32)>,
    /// Conductance per edge (the matching strength).
    w: Vec<f64>,
}

/// The immutable topology of one coarse level: aggregation maps, CSR
/// adjacency, and the (static) aggregated capacities. Shared untouched
/// between every [`Multigrid`] instantiated from the same [`MgTopology`].
#[derive(Debug)]
pub(crate) struct LevelTopology {
    /// Cells at this level.
    n: usize,
    /// Finer-level cell → this level's aggregate.
    pub(crate) agg_of: Vec<u32>,
    /// Finer-level edge → this level's edge ([`INTERNAL`] when the fine
    /// edge lies inside one aggregate).
    edge_map: Vec<u32>,
    /// CSR adjacency: `offsets[i]..offsets[i+1]` spans `nbr`/`entry_edge`.
    offsets: Vec<u32>,
    nbr: Vec<u32>,
    entry_edge: Vec<u32>,
    /// Σ of the finer capacities per aggregate, J/K (static).
    pub(crate) capacity: Vec<f64>,
    /// Number of coarse edges at this level (sizes `LevelState::g_edge`).
    n_edges: usize,
}

impl LevelTopology {
    fn new(agg_of: Vec<u32>, edge_map: Vec<u32>, graph: &Graph, capacity: Vec<f64>) -> LevelTopology {
        let n = graph.n;
        let mut counts = vec![0u32; n + 1];
        for &(a, b) in &graph.edges {
            counts[a as usize + 1] += 1;
            counts[b as usize + 1] += 1;
        }
        let mut offsets = counts;
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut nbr = vec![0u32; offsets[n] as usize];
        let mut entry_edge = vec![0u32; offsets[n] as usize];
        for (ei, &(a, b)) in graph.edges.iter().enumerate() {
            let (a, b) = (a as usize, b as usize);
            nbr[cursor[a] as usize] = b as u32;
            entry_edge[cursor[a] as usize] = ei as u32;
            cursor[a] += 1;
            nbr[cursor[b] as usize] = a as u32;
            entry_edge[cursor[b] as usize] = ei as u32;
            cursor[b] += 1;
        }
        LevelTopology { n, agg_of, edge_map, offsets, nbr, entry_edge, capacity, n_edges: graph.edges.len() }
    }
}

/// Per-run numeric state of one coarse level: refreshed conductances, the
/// per-`h` diagonals, and the cycle's iterate/scratch vectors.
#[derive(Clone, Debug)]
pub(crate) struct LevelState {
    /// Per-edge conductance, refreshed from the finer level.
    g_edge: Vec<f64>,
    /// Per-CSR-entry copy of `g_edge`.
    g_entry: Vec<f64>,
    /// Per-aggregate convection conductance, refreshed from the finer level.
    pub(crate) g_conv: Vec<f64>,
    /// `C/h + Σg + g_conv` per cell (valid for the hierarchy's `diag_h`).
    diag: Vec<f64>,
    /// Reciprocal of `diag`.
    inv_diag: Vec<f64>,
    /// This level's solution (the re-scaled cycle output).
    x: Vec<f64>,
    /// Right-hand side (the restricted residual from the finer level).
    b: Vec<f64>,
    /// Preconditioner output (one cycle applied to `b`).
    z: Vec<f64>,
    /// Cycle-internal residual scratch.
    r: Vec<f64>,
    /// `A·z` scratch for the line search.
    az: Vec<f64>,
}

impl LevelState {
    fn new(topo: &LevelTopology) -> LevelState {
        let n = topo.n;
        LevelState {
            g_edge: vec![0.0; topo.n_edges],
            g_entry: vec![0.0; topo.nbr.len()],
            g_conv: vec![0.0; n],
            diag: vec![0.0; n],
            inv_diag: vec![0.0; n],
            x: vec![0.0; n],
            b: vec![0.0; n],
            z: vec![0.0; n],
            r: vec![0.0; n],
            az: vec![0.0; n],
        }
    }

    /// `sweeps` natural-order Gauss–Seidel sweeps on `A z = b`.
    fn smooth_z(&mut self, t: &LevelTopology, sweeps: usize) {
        for _ in 0..sweeps {
            for i in 0..t.n {
                let mut num = self.b[i];
                for k in t.offsets[i] as usize..t.offsets[i + 1] as usize {
                    num += self.g_entry[k] * self.z[t.nbr[k] as usize];
                }
                self.z[i] = num * self.inv_diag[i];
            }
        }
    }

    /// `sweeps` *reverse*-order Gauss–Seidel sweeps on `A z = b`. A
    /// forward pre-sweep and a backward post-sweep make the level's cycle
    /// a symmetric operator (restriction is the transpose of
    /// prolongation, the coarsest solve is exact), which is what lets the
    /// outer conjugate-gradient acceleration work at full strength.
    fn smooth_z_rev(&mut self, t: &LevelTopology, sweeps: usize) {
        for _ in 0..sweeps {
            for i in (0..t.n).rev() {
                let mut num = self.b[i];
                for k in t.offsets[i] as usize..t.offsets[i + 1] as usize {
                    num += self.g_entry[k] * self.z[t.nbr[k] as usize];
                }
                self.z[i] = num * self.inv_diag[i];
            }
        }
    }

    /// `r = b - A z` (the cycle-internal residual).
    fn residual_z(&mut self, t: &LevelTopology) {
        for i in 0..t.n {
            let mut r = self.b[i] - self.diag[i] * self.z[i];
            for k in t.offsets[i] as usize..t.offsets[i + 1] as usize {
                r += self.g_entry[k] * self.z[t.nbr[k] as usize];
            }
            self.r[i] = r;
        }
    }

    /// `az = A z`, returning `(z·az, z·b)` for the line search in one pass.
    fn apply_z(&mut self, t: &LevelTopology) -> (f64, f64) {
        let mut z_az = 0.0;
        let mut z_b = 0.0;
        for i in 0..t.n {
            let mut s = self.diag[i] * self.z[i];
            for k in t.offsets[i] as usize..t.offsets[i + 1] as usize {
                s -= self.g_entry[k] * self.z[t.nbr[k] as usize];
            }
            self.az[i] = s;
            z_az += self.z[i] * s;
            z_b += self.z[i] * self.b[i];
        }
        (z_az, z_b)
    }
}

/// The shareable coarse-hierarchy artifact: every level's aggregation maps,
/// CSR adjacency, and aggregated capacities — everything about the
/// hierarchy that does not change as temperatures move. Build it once per
/// (mesh, operator) pair and hand an `Arc` of it to each
/// [`crate::ThermalModel`] via `ThermalModel::with_artifacts`; each model
/// then allocates only its own per-run [`LevelState`]s.
#[derive(Debug)]
pub struct MgTopology {
    /// Coarse levels, finest first. `levels[0].agg_of` maps **fine grid**
    /// cells; `levels[l].agg_of` maps `levels[l-1]` cells for `l > 0`.
    pub(crate) levels: Vec<LevelTopology>,
}

impl MgTopology {
    /// Builds the hierarchy topology from the grid's edges, using the
    /// given conductances as matching strengths. The weights only steer
    /// aggregation quality; correctness never depends on them.
    pub(crate) fn build(grid: &ThermalGrid, g_edge: &[f64]) -> MgTopology {
        let mut graph = Graph {
            n: grid.n_cells(),
            edges: grid.edges.iter().map(|e| (e.a as u32, e.b as u32)).collect(),
            w: g_edge.to_vec(),
        };
        let mut capacity: Vec<f64> = grid.capacity.clone();
        let mut levels = Vec::new();
        while graph.n > COARSEST_MAX {
            let Some((agg_of, coarse, edge_map)) = coarsen_level(&graph) else { break };
            let mut cap_c = vec![0.0; coarse.n];
            for (i, &a) in agg_of.iter().enumerate() {
                cap_c[a as usize] += capacity[i];
            }
            capacity = cap_c.clone();
            levels.push(LevelTopology::new(agg_of, edge_map, &coarse, cap_c));
            graph = coarse;
        }
        MgTopology { levels }
    }

    /// Builds the hierarchy a fresh model at ambient temperature would
    /// build lazily on its first multigrid substep: the matching strengths
    /// are the edge conductances evaluated at a uniform `cfg.ambient_k`
    /// field (a model's temperatures before its first substep), so a
    /// shared topology is identical to the per-model lazy build.
    #[must_use]
    pub fn for_grid(grid: &ThermalGrid, cfg: &GridConfig) -> MgTopology {
        let k_at_ambient = |cell: usize| {
            if grid.is_silicon(cell) {
                cfg.silicon_k_override.unwrap_or_else(|| silicon_conductivity(cfg.ambient_k))
            } else {
                COPPER_CONDUCTIVITY
            }
        };
        let g_edge: Vec<f64> = grid
            .edges
            .iter()
            .map(|e| 1.0 / (e.g_a / k_at_ambient(e.a) + e.g_b / k_at_ambient(e.b)))
            .collect();
        MgTopology::build(grid, &g_edge)
    }

    /// Whether the hierarchy is unusable — no coarse level at all (mesh
    /// too small to coarsen), or coarsening stalled while the coarsest
    /// level is still too large to factor densely. The solver falls back
    /// to plain Gauss–Seidel in either case.
    #[must_use]
    pub fn is_degenerate(&self) -> bool {
        match self.levels.last() {
            None => true,
            Some(coarsest) => coarsest.n > DENSE_MAX,
        }
    }

    /// Number of coarse levels (excluding the fine grid).
    #[must_use]
    pub fn n_coarse_levels(&self) -> usize {
        self.levels.len()
    }
}

/// The coarse-level hierarchy plus the coarsest-level dense factorization:
/// an `Arc`-shared [`MgTopology`] and this solver instance's own per-level
/// numeric state.
#[derive(Clone, Debug)]
pub(crate) struct Multigrid {
    /// The shared immutable topology (aggregation maps, adjacency,
    /// capacities).
    topo: Arc<MgTopology>,
    /// Per-run numeric state, one entry per `topo.levels` entry.
    states: Vec<LevelState>,
    /// Lower-triangular Cholesky factor of the coarsest operator,
    /// row-major `n×n` (valid for `diag_h`).
    chol: Vec<f64>,
    /// Set when the fine conductances were refreshed after the last
    /// [`Multigrid::refresh_g`].
    pub(crate) stale_g: bool,
    /// Substep length the level diagonals (and `chol`) were built for
    /// (NaN = never).
    diag_h: f64,
}

impl Multigrid {
    /// Builds the hierarchy topology from the grid's edges (using the
    /// current conductances as matching strengths) and wraps it in a
    /// solver instance.
    pub(crate) fn build(grid: &ThermalGrid, g_edge: &[f64]) -> Multigrid {
        Multigrid::from_topology(Arc::new(MgTopology::build(grid, g_edge)))
    }

    /// Instantiates a solver on a shared topology: allocates this
    /// instance's per-level numeric state, everything else is the `Arc`.
    pub(crate) fn from_topology(topo: Arc<MgTopology>) -> Multigrid {
        let states = topo.levels.iter().map(LevelState::new).collect();
        Multigrid { topo, states, chol: Vec::new(), stale_g: true, diag_h: f64::NAN }
    }

    /// See [`MgTopology::is_degenerate`].
    pub(crate) fn is_degenerate(&self) -> bool {
        self.topo.is_degenerate()
    }

    /// Number of levels including the fine grid.
    pub(crate) fn n_levels(&self) -> usize {
        self.topo.levels.len() + 1
    }

    /// Propagates refreshed fine-grid conductances down the hierarchy
    /// (scatter-add per level) and invalidates the per-`h` diagonals.
    pub(crate) fn refresh_g(&mut self, fine_g_edge: &[f64], fine_g_conv: &[f64]) {
        for l in 0..self.states.len() {
            let topo = &self.topo.levels[l];
            let (done, rest) = self.states.split_at_mut(l);
            let (src_g, src_conv): (&[f64], &[f64]) = match done.last() {
                None => (fine_g_edge, fine_g_conv),
                Some(prev) => (&prev.g_edge, &prev.g_conv),
            };
            let lev = &mut rest[0];
            lev.g_edge.fill(0.0);
            for (e, &m) in topo.edge_map.iter().enumerate() {
                if m != INTERNAL {
                    lev.g_edge[m as usize] += src_g[e];
                }
            }
            for (k, g) in lev.g_entry.iter_mut().enumerate() {
                *g = lev.g_edge[topo.entry_edge[k] as usize];
            }
            lev.g_conv.fill(0.0);
            for (i, &a) in topo.agg_of.iter().enumerate() {
                lev.g_conv[a as usize] += src_conv[i];
            }
        }
        self.stale_g = false;
        self.diag_h = f64::NAN;
    }

    /// Whether the per-`h` diagonals and the coarsest factorization are
    /// valid for substep length `h`.
    pub(crate) fn diag_ready(&self, h: f64) -> bool {
        self.diag_h == h
    }

    /// Builds every level's `C/h`-augmented diagonal and factors the
    /// coarsest operator.
    pub(crate) fn build_diag(&mut self, h: f64) {
        for (topo, lev) in self.topo.levels.iter().zip(&mut self.states) {
            for i in 0..topo.n {
                let g_sum: f64 =
                    lev.g_entry[topo.offsets[i] as usize..topo.offsets[i + 1] as usize].iter().sum();
                let d = topo.capacity[i] / h + g_sum + lev.g_conv[i];
                lev.diag[i] = d;
                lev.inv_diag[i] = 1.0 / d;
            }
        }
        if let (Some(ct), Some(c)) = (self.topo.levels.last(), self.states.last()) {
            // Dense SPD assembly of the coarsest operator: diagonal plus
            // `-g` off-diagonals.
            let n = ct.n;
            let mut a = vec![0.0; n * n];
            for i in 0..n {
                a[i * n + i] = c.diag[i];
                for k in ct.offsets[i] as usize..ct.offsets[i + 1] as usize {
                    a[i * n + ct.nbr[k] as usize] = -c.g_entry[k];
                }
            }
            cholesky_in_place(&mut a, n);
            self.chol = a;
        }
        self.diag_h = h;
    }

    /// One coarse-grid correction of the fine iterate: restricts the fine
    /// residual `r`, solves the first coarse level by the K-cycle, and
    /// *assigns* the prolonged correction to `z` (the fine preconditioner
    /// starts from a zero guess, so no separate clear of `z` is needed).
    pub(crate) fn coarse_correction(&mut self, r: &[f64], z: &mut [f64]) {
        let t0 = &self.topo.levels[0];
        let l0 = &mut self.states[0];
        l0.b.fill(0.0);
        for (i, &ri) in r.iter().enumerate() {
            l0.b[t0.agg_of[i] as usize] += ri;
        }
        k_solve(&self.topo.levels, &mut self.states, &self.chol);
        let l0 = &self.states[0];
        for (i, t) in z.iter_mut().enumerate() {
            *t = l0.x[t0.agg_of[i] as usize];
        }
    }
}

/// Solves `levels[0]`'s system `A x ≈ b` (the K-cycle): exactly at the
/// coarsest level, otherwise by one cycle application re-scaled by an
/// energy-norm line search (a single flexible-CG step). The Krylov
/// re-scaling is what makes piecewise-constant aggregation competitive —
/// it stretches the systematically-undersized correction that a stationary
/// cycle would need many passes to accumulate.
fn k_solve(topo: &[LevelTopology], states: &mut [LevelState], chol: &[f64]) {
    if states.len() == 1 {
        let c = &mut states[0];
        cholesky_solve(chol, topo[0].n, &c.b, &mut c.x);
        return;
    }
    precond(topo, states, chol);
    let t = &topo[0];
    let cur = &mut states[0];
    let (z_az, z_b) = cur.apply_z(t);
    if z_az <= 0.0 {
        // Numerically degenerate (the correction vanished): take it as-is.
        cur.x.copy_from_slice(&cur.z);
        return;
    }
    let alpha = z_b / z_az;
    for i in 0..t.n {
        cur.x[i] = alpha * cur.z[i];
    }
}

/// One preconditioner application at `levels[0]`: `z ≈ A⁻¹ b` by
/// pre-smoothing, a recursive K-cycle correction, and post-smoothing.
fn precond(topo: &[LevelTopology], states: &mut [LevelState], chol: &[f64]) {
    let t = &topo[0];
    let (cur, rest) = states.split_at_mut(1);
    let cur = &mut cur[0];
    cur.z.fill(0.0);
    cur.smooth_z(t, PRE_SWEEPS);
    cur.residual_z(t);
    let next_topo = &topo[1];
    let next = &mut rest[0];
    next.b.fill(0.0);
    for (i, &ri) in cur.r.iter().enumerate() {
        next.b[next_topo.agg_of[i] as usize] += ri;
    }
    k_solve(&topo[1..], rest, chol);
    let next = &rest[0];
    for (i, z) in cur.z.iter_mut().enumerate() {
        *z += next.x[next_topo.agg_of[i] as usize];
    }
    cur.smooth_z_rev(t, POST_SWEEPS);
}

/// In-place dense Cholesky of the SPD matrix `a` (row-major `n×n`); the
/// lower triangle becomes `L` with `A = L·Lᵀ`.
fn cholesky_in_place(a: &mut [f64], n: usize) {
    for j in 0..n {
        let mut d = a[j * n + j];
        for k in 0..j {
            d -= a[j * n + k] * a[j * n + k];
        }
        // The operator is strictly diagonally dominant with positive
        // diagonal, so d > 0 holds in exact arithmetic and comfortably in
        // floating point.
        let l_jj = d.sqrt();
        a[j * n + j] = l_jj;
        for i in j + 1..n {
            let mut s = a[i * n + j];
            for k in 0..j {
                s -= a[i * n + k] * a[j * n + k];
            }
            a[i * n + j] = s / l_jj;
        }
    }
}

/// Solves `L·Lᵀ x = b` given the factor from [`cholesky_in_place`].
fn cholesky_solve(l: &[f64], n: usize, b: &[f64], x: &mut [f64]) {
    // Forward: L y = b (y stored in x).
    for i in 0..n {
        let mut s = b[i];
        for k in 0..i {
            s -= l[i * n + k] * x[k];
        }
        x[i] = s / l[i * n + i];
    }
    // Backward: Lᵀ x = y.
    for i in (0..n).rev() {
        let mut s = x[i];
        for k in i + 1..n {
            s -= l[k * n + i] * x[k];
        }
        x[i] = s / l[i * n + i];
    }
}

/// One greedy heavy-edge matching pass: every cell pairs with its strongest
/// still-unmatched neighbour (or stays a singleton). Returns the
/// fine-to-coarse map, the coarsened graph, and the fine-edge →
/// coarse-edge map.
fn coarsen_once(g: &Graph) -> (Vec<u32>, Graph, Vec<u32>) {
    // CSR adjacency of the pass's graph.
    let mut counts = vec![0u32; g.n + 1];
    for &(a, b) in &g.edges {
        counts[a as usize + 1] += 1;
        counts[b as usize + 1] += 1;
    }
    let mut offsets = counts;
    for i in 0..g.n {
        offsets[i + 1] += offsets[i];
    }
    let mut cursor: Vec<u32> = offsets[..g.n].to_vec();
    let mut nbr = vec![0u32; offsets[g.n] as usize];
    let mut entry_edge = vec![0u32; offsets[g.n] as usize];
    for (ei, &(a, b)) in g.edges.iter().enumerate() {
        let (a, b) = (a as usize, b as usize);
        nbr[cursor[a] as usize] = b as u32;
        entry_edge[cursor[a] as usize] = ei as u32;
        cursor[a] += 1;
        nbr[cursor[b] as usize] = a as u32;
        entry_edge[cursor[b] as usize] = ei as u32;
        cursor[b] += 1;
    }

    let mut agg = vec![u32::MAX; g.n];
    let mut next = 0u32;
    for i in 0..g.n {
        if agg[i] != u32::MAX {
            continue;
        }
        let mut best: Option<(u32, f64)> = None;
        for k in offsets[i] as usize..offsets[i + 1] as usize {
            let j = nbr[k];
            if agg[j as usize] == u32::MAX && j as usize != i {
                let w = g.w[entry_edge[k] as usize];
                if best.is_none_or(|(_, bw)| w > bw) {
                    best = Some((j, w));
                }
            }
        }
        agg[i] = next;
        if let Some((j, _)) = best {
            agg[j as usize] = next;
        }
        next += 1;
    }
    let n_c = next as usize;

    // Coarse edges: fine edges crossing two aggregates, deduplicated by the
    // (min, max) aggregate pair via a sort.
    let mut keyed: Vec<(u64, u32)> = Vec::with_capacity(g.edges.len());
    for (ei, &(a, b)) in g.edges.iter().enumerate() {
        let (ca, cb) = (agg[a as usize], agg[b as usize]);
        if ca != cb {
            let key = (u64::from(ca.min(cb)) << 32) | u64::from(ca.max(cb));
            keyed.push((key, ei as u32));
        }
    }
    keyed.sort_unstable();
    let mut edge_map = vec![INTERNAL; g.edges.len()];
    let mut edges_c: Vec<(u32, u32)> = Vec::new();
    let mut w_c: Vec<f64> = Vec::new();
    let mut last_key = u64::MAX;
    for &(key, ei) in &keyed {
        if key != last_key {
            edges_c.push(((key >> 32) as u32, (key & 0xffff_ffff) as u32));
            w_c.push(0.0);
            last_key = key;
        }
        let ci = edges_c.len() - 1;
        edge_map[ei as usize] = ci as u32;
        w_c[ci] += g.w[ei as usize];
    }

    (agg, Graph { n: n_c, edges: edges_c, w: w_c }, edge_map)
}

/// Double pairwise aggregation: two matching passes composed into aggregates
/// of ~4 cells (~4× coarsening per level). Returns `None` when the graph
/// refuses to coarsen (see [`MIN_COARSENING_RATIO`]).
fn coarsen_level(g: &Graph) -> Option<(Vec<u32>, Graph, Vec<u32>)> {
    let (mut agg, mut coarse, mut edge_map) = coarsen_once(g);
    for _ in 1..MATCHING_PASSES {
        let (agg2, c2, em2) = coarsen_once(&coarse);
        agg = agg.iter().map(|&a| agg2[a as usize]).collect();
        edge_map = edge_map
            .iter()
            .map(|&m| if m == INTERNAL { INTERNAL } else { em2[m as usize] })
            .collect();
        coarse = c2;
    }
    if coarse.n as f64 > MIN_COARSENING_RATIO * g.n as f64 {
        return None;
    }
    Some((agg, coarse, edge_map))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::grid::GridConfig;

    fn graph_path(n: usize) -> Graph {
        Graph {
            n,
            edges: (0..n - 1).map(|i| (i as u32, i as u32 + 1)).collect(),
            w: vec![1.0; n - 1],
        }
    }

    #[test]
    fn pairwise_matching_halves_a_path() {
        let g = graph_path(16);
        let (agg, coarse, edge_map) = coarsen_once(&g);
        assert_eq!(coarse.n, 8, "perfect matching on an even path");
        // Every aggregate holds exactly two cells.
        let mut sizes = vec![0; coarse.n];
        for &a in &agg {
            sizes[a as usize] += 1;
        }
        assert!(sizes.iter().all(|&s| s == 2));
        // Alternate edges are internal; the rest map to distinct coarse
        // edges with the summed weight.
        let internal = edge_map.iter().filter(|&&m| m == INTERNAL).count();
        assert_eq!(internal, 8);
        assert_eq!(coarse.edges.len(), 7);
        assert!(coarse.w.iter().all(|&w| (w - 1.0).abs() < 1e-12));
    }

    #[test]
    fn composed_matching_coarsens_by_about_eight() {
        let g = graph_path(64);
        let (agg, coarse, _) = coarsen_level(&g).expect("a path coarsens");
        assert_eq!(coarse.n, 64 >> MATCHING_PASSES, "factor 2 per matching pass");
        assert_eq!(*agg.iter().max().unwrap() as usize + 1, coarse.n);
    }

    #[test]
    fn refuses_to_coarsen_an_edgeless_graph() {
        let g = Graph { n: 10, edges: Vec::new(), w: Vec::new() };
        assert!(coarsen_level(&g).is_none(), "singletons only: no progress");
    }

    #[test]
    fn cholesky_solves_a_small_spd_system() {
        // A = [[4,1,0],[1,3,1],[0,1,2]], b = A·[1,2,3].
        let mut a = vec![4.0, 1.0, 0.0, 1.0, 3.0, 1.0, 0.0, 1.0, 2.0];
        let b = [6.0, 10.0, 8.0];
        cholesky_in_place(&mut a, 3);
        let mut x = [0.0; 3];
        cholesky_solve(&a, 3, &b, &mut x);
        for (got, expect) in x.iter().zip([1.0, 2.0, 3.0]) {
            assert!((got - expect).abs() < 1e-12, "{x:?}");
        }
    }

    #[test]
    fn hierarchy_conserves_capacity_and_convection() {
        let mut fp = Floorplan::new("mg", 4000.0, 4000.0);
        fp.add_component("hot", 500.0, 500.0, 1500.0, 1500.0, true);
        fp.add_component("cool", 2500.0, 2500.0, 1000.0, 1000.0, false);
        let cfg = GridConfig { hot_div: 8, default_div: 4, ..GridConfig::default() };
        let grid = ThermalGrid::build(&fp, &cfg).unwrap();
        // Plausible conductances: uniform weights are enough for topology.
        let g_edge = vec![1.0; grid.edges.len()];
        let mut g_conv = vec![0.0; grid.n_cells()];
        for &(cell, _, _) in &grid.convection {
            g_conv[cell] = 0.5;
        }
        let mut mg = Multigrid::build(&grid, &g_edge);
        assert!(!mg.is_degenerate());
        assert!(mg.n_levels() >= 2, "{} cells built {} levels", grid.n_cells(), mg.n_levels());
        mg.refresh_g(&g_edge, &g_conv);
        let fine_cap: f64 = grid.capacity.iter().sum();
        let fine_conv: f64 = g_conv.iter().sum();
        for (topo, lev) in mg.topo.levels.iter().zip(&mg.states) {
            let cap: f64 = topo.capacity.iter().sum();
            let conv: f64 = lev.g_conv.iter().sum();
            assert!((cap - fine_cap).abs() / fine_cap < 1e-12, "capacity conserved per level");
            assert!((conv - fine_conv).abs() / fine_conv < 1e-12, "convection conserved per level");
        }
        // Coarsest level small enough for the dense solve.
        assert!(mg.topo.levels.last().unwrap().n <= COARSEST_MAX);
        mg.build_diag(5e-4);
        assert!(mg.diag_ready(5e-4));
        assert!(!mg.chol.is_empty());
    }

    #[test]
    fn shared_topology_instances_are_independent_but_identical() {
        // Two solver instances on one Arc'd topology: same hierarchy shape,
        // separate numeric state; for_grid matches the lazy in-model build.
        let mut fp = Floorplan::new("shared", 4000.0, 4000.0);
        fp.add_component("hot", 500.0, 500.0, 2000.0, 2000.0, true);
        let cfg = GridConfig { hot_div: 10, default_div: 4, ..GridConfig::default() };
        let grid = ThermalGrid::build(&fp, &cfg).unwrap();
        let topo = Arc::new(MgTopology::for_grid(&grid, &cfg));
        assert!(!topo.is_degenerate());
        let mut a = Multigrid::from_topology(topo.clone());
        let b = Multigrid::from_topology(topo.clone());
        assert_eq!(a.n_levels(), b.n_levels());
        // Refreshing one instance leaves the other untouched.
        let g_edge = vec![2.0; grid.edges.len()];
        let g_conv = vec![0.0; grid.n_cells()];
        a.refresh_g(&g_edge, &g_conv);
        assert!(!a.stale_g);
        assert!(b.stale_g, "sibling instance state is independent");
        assert!(b.states[0].g_edge.iter().all(|&g| g == 0.0));
        // The ambient-weight builder reproduces what Multigrid::build would
        // do from the model's first refreshed conductances.
        let k = |cell: usize| {
            if grid.is_silicon(cell) { silicon_conductivity(cfg.ambient_k) } else { COPPER_CONDUCTIVITY }
        };
        let lazy_g: Vec<f64> =
            grid.edges.iter().map(|e| 1.0 / (e.g_a / k(e.a) + e.g_b / k(e.b))).collect();
        let lazy = Multigrid::build(&grid, &lazy_g);
        assert_eq!(lazy.n_levels(), a.n_levels());
        for (lt, st) in lazy.topo.levels.iter().zip(&topo.levels) {
            assert_eq!(lt.n, st.n);
            assert_eq!(lt.agg_of, st.agg_of, "identical aggregation under identical weights");
        }
    }
}
