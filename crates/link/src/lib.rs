//! # temu-link — the Ethernet statistics link
//!
//! The paper connects the FPGA emulation to the host-side thermal tool with
//! a standard Ethernet port: the statistics buffer "is concurrently
//! processed by our Ethernet dispatcher to send MAC packets in our own
//! format to the SW thermal modelling tool running in the connected host
//! PC", and the computed temperatures travel back the same way (§4, §6).
//!
//! This crate provides the real, byte-exact parts — [`MacFrame`] encoding
//! with IEEE 802.3 CRC-32 and the custom statistics/temperature payload
//! codecs — plus a bandwidth/latency [`EthernetLink`] model with a finite
//! buffer. When a sampling window produces more statistics bytes than the
//! link can drain in the window's physical time, the excess becomes VPCM
//! clock-freeze time ("stopping/resuming the statistics extraction mechanism
//! in case of congestion of the Ethernet connection", §4.2): the emulated
//! platform never loses statistics, it just emulates more slowly.

mod channel;
mod crc;
mod frame;
mod packet;

pub use channel::{EthernetConfig, EthernetLink, LinkStats};
pub use crc::crc32;
pub use frame::{FrameError, MacAddr, MacFrame, TEMU_ETHERTYPE};
pub use packet::{PacketError, StatsPacket, TempPacket};
