//! Design-space exploration: the use case the emulation framework exists for
//! (section 1) — sweep core counts, cache sizes and interconnects on the
//! same workload, at emulation speed, and check each candidate fits the
//! FPGA.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use temu::fpga::{estimate, CostModel, V2VP30};
use temu::mem::CacheConfig;
use temu::platform::{IcChoice, Machine, PlatformConfig};
use temu::workloads::dithering::{self, DitherConfig};
use temu::workloads::image::GreyImage;

fn main() {
    println!(
        "{:<34} {:>10} {:>10} {:>9} {:>10} {:>8}",
        "configuration", "cycles", "D$ miss%", "bus wait", "emu MIPS", "fits?"
    );

    for cores in [1u32, 2, 4] {
        for (cache_label, cache) in [("4KB", CacheConfig::paper_l1_4k()), ("8KB", CacheConfig::paper_l1_8k())] {
            for noc in [false, true] {
                let mut platform =
                    if noc { PlatformConfig::paper_noc(cores as usize) } else { PlatformConfig::paper_bus(cores as usize) };
                platform.icache = Some(cache);
                platform.dcache = Some(cache);

                let workload = DitherConfig { width: 64, height: 64, images: 2, cores };
                let program = dithering::program(&workload).expect("assembles");
                let mut machine = Machine::new(platform.clone()).expect("valid");
                machine.load_program_all(&program).expect("fits");
                for i in 0..workload.images {
                    let img = GreyImage::synthetic(64, 64, 7 + u64::from(i));
                    let off = workload.image_addr(i) - temu::workloads::SHARED_BASE;
                    machine.shared_mut().load(off, &img.pixels).expect("loads");
                }
                let s = machine.run_to_halt(u64::MAX).expect("runs");

                let dmiss: f64 = {
                    let d = &s.stats.dcaches;
                    let (m, a): (u64, u64) = (d.iter().map(|c| c.misses).sum(), d.iter().map(|c| c.accesses()).sum());
                    if a == 0 { 0.0 } else { 100.0 * m as f64 / a as f64 }
                };
                let report = estimate(&platform, &CostModel::default(), V2VP30, 1);
                println!(
                    "{:<34} {:>10} {:>9.2}% {:>9} {:>10.1} {:>8}",
                    format!("{cores} core(s), {cache_label} L1, {}", if noc { "NoC" } else { "OPB" }),
                    s.cycles,
                    dmiss,
                    s.stats.interconnect.contention_cycles,
                    s.instructions as f64 / s.wall.as_secs_f64().max(1e-9) / 1e6,
                    if report.fits() { "yes" } else { "NO" },
                );
            }
        }
    }
    println!("\nEvery row is one cycle-accurate 'synthesis-free' exploration point; the paper's");
    println!("flow needs 10-12 hours of EDK synthesis per HW change (section 6), the emulator none.");
}
