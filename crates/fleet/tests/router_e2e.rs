//! Router end-to-end: an *unmodified* [`Client`] (the exact library
//! under `temu-client`) drives a 2-member fleet through the router —
//! submit/stream, cached resubmission on the same member, proxied
//! status/result/watch/cancel, and the aggregated stats breakdown.

use std::time::Duration;
use temu_fleet::{Router, RouterConfig};
use temu_framework::{
    AxisSpec, ImplicitSolve, JsonValue, ScenarioSpec, SweepSpec, WorkloadSpec,
};
use temu_serve::{Client, ClientError, ServeConfig, Server, ServerHandle};

/// A 4-point near-instant sweep (two tiny workloads × two solvers).
fn tiny_sweep(name: &str) -> SweepSpec {
    let tiny = |iters: u32| WorkloadSpec::Matrix { n: 4, iters, cores: 1 };
    SweepSpec {
        name: String::from(name),
        base: ScenarioSpec {
            cores: Some(1),
            workload: Some(tiny(1)),
            sampling_window_s: Some(0.0005),
            windows: Some(2),
            strict_convergence: Some(true),
            ..ScenarioSpec::default()
        },
        axes: vec![
            AxisSpec::Workloads(vec![tiny(1), tiny(2)]),
            AxisSpec::Solvers(vec![ImplicitSolve::GaussSeidel, ImplicitSolve::Multigrid]),
        ],
        threads: None,
    }
}

fn spawn_member(name: &str) -> ServerHandle {
    Server::spawn(ServeConfig {
        addr: String::from("127.0.0.1:0"),
        member: Some(String::from(name)),
        ..ServeConfig::default()
    })
    .expect("bind a member on an ephemeral port")
}

fn spawn_fleet() -> (ServerHandle, ServerHandle, temu_fleet::RouterHandle) {
    let a = spawn_member("a");
    let b = spawn_member("b");
    let router = Router::spawn(RouterConfig {
        addr: String::from("127.0.0.1:0"),
        members: vec![a.addr().to_string(), b.addr().to_string()],
        probe_interval: Duration::from_millis(200),
        ..RouterConfig::default()
    })
    .expect("bind the router on an ephemeral port");
    (a, b, router)
}

#[test]
fn unmodified_client_is_fully_cached_on_resubmission_through_the_router() {
    let (a, b, router) = spawn_fleet();
    let spec = tiny_sweep("fleet-e2e");
    let mut client = Client::connect(&router.addr().to_string()).expect("connect to router");

    // First submission executes everything on whichever member owns the
    // content key.
    let mut events: Vec<JsonValue> = Vec::new();
    let outcome = client.submit(&spec, true, |e| events.push(e.clone())).expect("first submit");
    let done = outcome.done.expect("watched submissions end with a done summary");
    assert!(done.ok, "all points converge: {done:?}");
    assert_eq!((done.points, done.executed, done.cache_hits, done.failed), (4, 4, 0, 0));
    // Every relayed event carries the *router's* job id.
    for event in &events {
        assert_eq!(event.get("job").and_then(JsonValue::as_u64), Some(outcome.job));
    }

    // The identical resubmission rendezvous-hashes to the same member
    // and is served entirely from its cache.
    let rerun = client.submit(&spec, true, |_| {}).expect("resubmit");
    let cached = rerun.done.expect("done summary");
    assert!(cached.ok);
    assert_eq!(
        (cached.executed, cached.cache_hits),
        (0, 4),
        "the second run must be 100% cached: {cached:?}"
    );
    assert_ne!(rerun.job, outcome.job, "the router hands out fresh job ids");

    // Aggregated stats: fleet-level counters plus the per-member
    // breakdown, with exactly one member having taken both submissions.
    let stats = client.stats().expect("router stats");
    assert_eq!(stats.get("fleet").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(stats.get("members_up").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(stats.get("submissions").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(stats.get("failovers").and_then(JsonValue::as_u64), Some(0));
    let Some(JsonValue::Arr(members)) = stats.get("members") else {
        panic!("stats without a members array: {stats}")
    };
    assert_eq!(members.len(), 2);
    let routed: Vec<u64> =
        members.iter().map(|m| m.get("routed").and_then(JsonValue::as_u64).unwrap_or(0)).collect();
    assert_eq!(routed.iter().sum::<u64>(), 2, "both submissions routed: {routed:?}");
    assert!(
        routed.contains(&2),
        "identical submissions land on the same member: {routed:?}"
    );
    for member in members {
        assert!(
            matches!(member.get("member").and_then(JsonValue::as_str), Some("a" | "b")),
            "probe carries the member identity: {member}"
        );
    }

    router.shutdown();
    a.shutdown();
    b.shutdown();
}

#[test]
fn status_result_watch_and_cancel_proxy_under_router_job_ids() {
    let (a, b, router) = spawn_fleet();
    let spec = tiny_sweep("fleet-proxy");
    let addr = router.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect to router");

    let outcome = client.submit_with(&spec, true, 7, |_| {}).expect("watched submit");
    assert!(outcome.done.expect("done summary").ok);
    let job = outcome.job;

    let status = client.status(job).expect("status through router");
    assert_eq!(status.get("job").and_then(JsonValue::as_u64), Some(job));
    assert_eq!(status.get("state").and_then(JsonValue::as_str), Some("done"));
    assert_eq!(
        status.get("priority").and_then(JsonValue::as_u64),
        Some(7),
        "priority passes through router and member: {status}"
    );

    let result = client.result(job).expect("result through router");
    assert_eq!(result.get("job").and_then(JsonValue::as_u64), Some(job));
    assert!(result.get("report").is_some(), "result carries the report: {result}");

    // Watching a finished job answers with its done summary immediately.
    let done = client.watch(job, |_| {}).expect("watch through router");
    assert!(done.ok);
    assert_eq!(done.points, 4);

    // Cancelling a finished job is the member's typed refusal, proxied.
    let refusal = client.cancel(job).expect_err("finished jobs cannot be cancelled");
    assert!(
        matches!(&refusal, ClientError::Server(m) if m.contains("cannot be cancelled")),
        "unexpected refusal: {refusal:?}"
    );

    // Unknown jobs are refused by the router itself (no route).
    let missing = client.status(9999).expect_err("unknown job");
    assert!(matches!(&missing, ClientError::Server(m) if m.contains("no such job 9999")));

    router.shutdown();
    a.shutdown();
    b.shutdown();
}

#[test]
fn distinct_sweeps_shard_by_content_key_not_by_name() {
    let (a, b, router) = spawn_fleet();
    let addr = router.addr().to_string();
    let mut client = Client::connect(&addr).expect("connect to router");

    // Same physics, different name/threads: must land on the same member
    // (the second run fully cached there).
    let mut renamed = tiny_sweep("original");
    let first = client.submit(&renamed, true, |_| {}).expect("submit original");
    assert!(first.done.expect("done").ok);
    renamed.name = String::from("renamed");
    renamed.threads = Some(2);
    let cached = client.submit(&renamed, true, |_| {}).expect("submit renamed");
    let done = cached.done.expect("done");
    assert_eq!((done.executed, done.cache_hits), (0, 4), "same content key: {done:?}");

    router.shutdown();
    a.shutdown();
    b.shutdown();
}
