//! The headline bugfix contract: on meshes where warm-started SOR
//! Gauss–Seidel exhausts its sweep budget (the silent non-convergence the
//! committed `huge` bench row used to hide), the multigrid solver must
//! converge every substep — and the accounting/strict machinery must
//! surface the Gauss–Seidel failure instead of letting it pass silently.

use temu_thermal::{
    Floorplan, GridConfig, ImplicitSolve, Integrator, SweepMode, ThermalError, ThermalModel,
};

/// A ~37k-cell uniform mesh (96×96 tiles × 4 layers) at the default 5e-4 s
/// substep: fine enough that plain Gauss–Seidel's contraction collapses.
fn big_config(solve: ImplicitSolve) -> (Floorplan, GridConfig) {
    let mut fp = Floorplan::new("big", 2000.0, 2000.0);
    fp.add_component("all", 0.0, 0.0, 2000.0, 2000.0, true);
    let cfg = GridConfig {
        hot_div: 96,
        integrator: Integrator::SemiImplicit { dt: 5e-4 },
        sweep: SweepMode::Serial,
        implicit_solve: solve,
        ..GridConfig::default()
    };
    (fp, cfg)
}

fn big_model(solve: ImplicitSolve, strict: bool) -> ThermalModel {
    let (fp, cfg) = big_config(solve);
    let cfg = GridConfig { strict_convergence: strict, ..cfg };
    let mut m = ThermalModel::new(&fp, &cfg).unwrap();
    m.set_component_power(0, 8.0);
    m
}

#[test]
fn gauss_seidel_hits_the_sweep_cap_where_multigrid_converges() {
    // The bug being fixed: Gauss–Seidel accepts unconverged substeps on
    // this mesh — and now says so.
    let mut gs = big_model(ImplicitSolve::GaussSeidel, false);
    gs.step(0.002); // 4 substeps
    let gs_stats = gs.solver_stats();
    assert!(
        gs_stats.unconverged_substeps > 0,
        "the mesh must exercise the failure mode (stats {gs_stats:?})"
    );
    assert!(gs_stats.worst_residual_k > 0.0, "the worst residual is recorded");

    // The fix: multigrid converges every substep on the same mesh.
    let mut mg = big_model(ImplicitSolve::Multigrid, false);
    assert!(mg.uses_multigrid());
    mg.step(0.002);
    let mg_stats = mg.solver_stats();
    assert_eq!(mg_stats.unconverged_substeps, 0, "stats {mg_stats:?}");
    assert!(mg_stats.total_cycles > 0, "the hierarchy was actually used");
    assert!(mg.multigrid_levels().unwrap() >= 3, "a real hierarchy was built");
    assert!(mg.max_temp().is_finite() && mg.max_temp() > 300.0);
}

#[test]
fn strict_mode_rejects_the_unconverged_substep() {
    let mut gs = big_model(ImplicitSolve::GaussSeidel, true);
    let err = gs.try_step(0.002).unwrap_err();
    assert!(
        matches!(err, ThermalError::NotConverged { .. }),
        "strict Gauss–Seidel surfaces the failure: {err:?}"
    );
    // The error message carries the diagnosis.
    let msg = err.to_string();
    assert!(msg.contains("did not converge"), "{msg}");

    let mut mg = big_model(ImplicitSolve::Multigrid, true);
    mg.try_step(0.002).expect("strict multigrid converges");
}

#[test]
fn auto_resolves_by_cell_count() {
    // The big mesh is far above the default threshold.
    let auto = big_model(ImplicitSolve::Auto, false);
    assert!(auto.uses_multigrid());
    // A paper-scale mesh stays on Gauss–Seidel under Auto.
    let mut fp = Floorplan::new("small", 2000.0, 2000.0);
    fp.add_component("all", 0.0, 0.0, 2000.0, 2000.0, false);
    let small = ThermalModel::new(&fp, &GridConfig::default()).unwrap();
    assert!(!small.uses_multigrid());
    // The explicit integrator never multigrids.
    let explicit = GridConfig {
        integrator: Integrator::Explicit,
        implicit_solve: ImplicitSolve::Multigrid,
        ..GridConfig::default()
    };
    let m = ThermalModel::new(&fp, &explicit).unwrap();
    assert!(!m.uses_multigrid());
}

#[test]
fn multigrid_tracks_gauss_seidel_where_both_converge() {
    // On a mesh where Gauss–Seidel *does* converge, the two solvers solve
    // the same linear systems to the same tolerance — trajectories must
    // agree tightly (the Fig. 4b golden test in temu-bench covers the
    // full-transient contract; this is the quick unit-level version).
    let mut fp = Floorplan::new("mid", 3000.0, 3000.0);
    fp.add_component("cpu", 500.0, 500.0, 2000.0, 2000.0, true);
    let base = GridConfig {
        hot_div: 12,
        integrator: Integrator::SemiImplicit { dt: 5e-4 },
        sweep: SweepMode::Serial,
        ..GridConfig::default()
    };
    let build = |solve| {
        let cfg = GridConfig { implicit_solve: solve, ..base };
        let mut m = ThermalModel::new(&fp, &cfg).unwrap();
        m.set_component_power(0, 3.0);
        m
    };
    let mut gs = build(ImplicitSolve::GaussSeidel);
    let mut mg = build(ImplicitSolve::Multigrid);
    assert!(mg.uses_multigrid() && !gs.uses_multigrid());
    for _ in 0..20 {
        gs.step(0.01);
        mg.step(0.01);
    }
    assert_eq!(gs.solver_stats().unconverged_substeps, 0);
    assert_eq!(mg.solver_stats().unconverged_substeps, 0);
    let drift = gs
        .temps()
        .iter()
        .zip(mg.temps())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(drift < 1e-4, "multigrid vs Gauss-Seidel drift {drift:.2e} K");
}
