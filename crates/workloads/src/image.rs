//! Deterministic synthetic grey-scale images for the dithering driver.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A grey-scale image, one byte per pixel, row-major.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GreyImage {
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
    /// Pixel values, `height * width` bytes.
    pub pixels: Vec<u8>,
}

impl GreyImage {
    /// A reproducible test image: a diagonal gradient with seeded noise
    /// (keeps the error-diffusion filter busy across the full dynamic range).
    pub fn synthetic(width: usize, height: usize, seed: u64) -> GreyImage {
        assert!(width > 0 && height > 0, "image must be non-empty");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pixels = Vec::with_capacity(width * height);
        for y in 0..height {
            for x in 0..width {
                let grad = ((x + y) * 255 / (width + height - 2).max(1)) as i32;
                let noise = rng.gen_range(-24i32..=24);
                pixels.push((grad + noise).clamp(0, 255) as u8);
            }
        }
        GreyImage { width, height, pixels }
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.pixels[y * self.width + x]
    }

    /// Fraction of pixels that are pure black or pure white (1.0 for a
    /// correctly dithered output).
    pub fn binary_fraction(&self) -> f64 {
        let n = self.pixels.iter().filter(|&&p| p == 0 || p == 255).count();
        n as f64 / self.pixels.len() as f64
    }

    /// Mean pixel value (error diffusion approximately preserves it).
    pub fn mean(&self) -> f64 {
        self.pixels.iter().map(|&p| f64::from(p)).sum::<f64>() / self.pixels.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic() {
        let a = GreyImage::synthetic(64, 64, 42);
        let b = GreyImage::synthetic(64, 64, 42);
        assert_eq!(a, b);
        let c = GreyImage::synthetic(64, 64, 43);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn gradient_spans_range() {
        let img = GreyImage::synthetic(128, 128, 1);
        assert!(img.get(0, 0) < 80, "dark corner");
        assert!(img.get(127, 127) > 175, "bright corner");
        let m = img.mean();
        assert!(m > 100.0 && m < 155.0, "mid-grey mean: {m}");
    }

    #[test]
    fn binary_fraction_of_grey_is_low() {
        let img = GreyImage::synthetic(64, 64, 7);
        assert!(img.binary_fraction() < 0.2);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_image_panics() {
        let _ = GreyImage::synthetic(0, 4, 1);
    }
}
