//! The signal registry: the cycle-by-cycle bookkeeping a signal-level
//! simulator performs for every port of every component.

/// A registry of named 32-bit signals with per-cycle commit and transition
/// detection (value-change dumping is what HDL simulation kernels spend
//  their time on).
#[derive(Clone, Debug, Default)]
pub struct SignalBoard {
    names: Vec<String>,
    next: Vec<u32>,
    current: Vec<u32>,
    transitions: u64,
    commits: u64,
}

impl SignalBoard {
    /// Creates an empty board.
    pub fn new() -> SignalBoard {
        SignalBoard::default()
    }

    /// Registers a signal, returning its index.
    pub fn register(&mut self, name: impl Into<String>) -> usize {
        self.names.push(name.into());
        self.next.push(0);
        self.current.push(0);
        self.names.len() - 1
    }

    /// Number of registered signals.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether no signals are registered.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Drives a signal's next value (evaluate phase).
    pub fn drive(&mut self, idx: usize, value: u32) {
        self.next[idx] = value;
    }

    /// Reads a signal's committed value.
    pub fn read(&self, idx: usize) -> u32 {
        self.current[idx]
    }

    /// Whether the evaluate phase changed anything (delta-cycle settle check).
    pub fn unsettled(&self) -> bool {
        self.next != self.current
    }

    /// Commits all driven values (update phase), accumulating bit-transition
    /// counts.
    pub fn commit(&mut self) {
        for (cur, &nxt) in self.current.iter_mut().zip(&self.next) {
            self.transitions += u64::from((*cur ^ nxt).count_ones());
            *cur = nxt;
        }
        self.commits += 1;
    }

    /// Total bit transitions observed across all commits.
    pub fn transitions(&self) -> u64 {
        self.transitions
    }

    /// Number of commit (update) phases executed.
    pub fn commits(&self) -> u64 {
        self.commits
    }

    /// Name of signal `idx`.
    pub fn name(&self, idx: usize) -> &str {
        &self.names[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn drive_commit_read() {
        let mut b = SignalBoard::new();
        let s = b.register("core0.pc");
        assert_eq!(b.read(s), 0);
        b.drive(s, 0xF);
        assert!(b.unsettled());
        assert_eq!(b.read(s), 0, "not visible before commit");
        b.commit();
        assert_eq!(b.read(s), 0xF);
        assert!(!b.unsettled());
        assert_eq!(b.transitions(), 4);
        assert_eq!(b.commits(), 1);
    }

    #[test]
    fn transitions_accumulate_per_bit() {
        let mut b = SignalBoard::new();
        let s = b.register("bus.addr");
        b.drive(s, 0b1010);
        b.commit();
        b.drive(s, 0b0110);
        b.commit();
        assert_eq!(b.transitions(), 2 + 2);
    }

    #[test]
    fn names_and_len() {
        let mut b = SignalBoard::new();
        assert!(b.is_empty());
        let s = b.register("x");
        assert_eq!(b.len(), 1);
        assert_eq!(b.name(s), "x");
    }
}
