//! Memory-controller address map (§3.2).
//!
//! One memory controller is attached to every core; it routes each request by
//! address to the private memory, the shared memory (through the platform
//! interconnect) or the memory-mapped I/O window, and knows which ranges are
//! cacheable.

use crate::error::MemConfigError;
use std::fmt;

/// Device class a range maps to.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum RangeTarget {
    /// The core's private main memory, local to the memory controller.
    Private,
    /// The shared main memory, reached over the interconnect.
    Shared,
    /// Memory-mapped I/O (sniffer control, core id, sensors, console).
    Mmio,
}

/// One mapped address range.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MappedRange {
    /// First byte address of the range.
    pub base: u32,
    /// Size in bytes.
    pub size: u32,
    /// Device the range maps to.
    pub target: RangeTarget,
    /// Whether accesses in the range go through the L1 caches.
    pub cacheable: bool,
}

impl MappedRange {
    /// Whether `addr` falls inside the range.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && (addr - self.base) < self.size
    }

    /// Offset of `addr` within the range.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `addr` is not contained.
    pub fn offset(&self, addr: u32) -> u32 {
        debug_assert!(self.contains(addr));
        addr - self.base
    }
}

impl fmt::Display for MappedRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#010x}..{:#010x} -> {:?}{}",
            self.base,
            self.base as u64 + self.size as u64,
            self.target,
            if self.cacheable { " (cacheable)" } else { "" }
        )
    }
}

/// The per-core address map. The defaults mirror the paper's platform:
/// private memory at 0, shared memory at `0x1000_0000`, MMIO at `0xFFFF_0000`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AddressMap {
    ranges: Vec<MappedRange>,
}

/// Default base address of the shared main memory.
pub const SHARED_BASE: u32 = 0x1000_0000;
/// Default base address of the MMIO window.
pub const MMIO_BASE: u32 = 0xFFFF_0000;
/// Default size of the MMIO window.
pub const MMIO_SIZE: u32 = 0x1000;

impl AddressMap {
    /// Builds an address map from explicit ranges.
    ///
    /// # Errors
    ///
    /// Returns [`MemConfigError`] if a range is empty-sized, wraps the
    /// address space, or overlaps another.
    pub fn new(ranges: Vec<MappedRange>) -> Result<AddressMap, MemConfigError> {
        for r in &ranges {
            if r.size == 0 {
                return Err(MemConfigError::ZeroSizedRange { base: r.base });
            }
            if r.base.checked_add(r.size - 1).is_none() {
                return Err(MemConfigError::WrappingRange { base: r.base });
            }
        }
        for (i, a) in ranges.iter().enumerate() {
            for b in &ranges[i + 1..] {
                let a_end = a.base as u64 + a.size as u64;
                let b_end = b.base as u64 + b.size as u64;
                if (a.base as u64) < b_end && (b.base as u64) < a_end {
                    return Err(MemConfigError::OverlappingRanges { a: *a, b: *b });
                }
            }
        }
        Ok(AddressMap { ranges })
    }

    /// The paper's default map: `priv_size` bytes of private memory at 0
    /// (cacheable), `shared_size` bytes of shared memory at
    /// [`SHARED_BASE`] (`shared_cacheable` selectable), MMIO window.
    pub fn paper_default(priv_size: u32, shared_size: u32, shared_cacheable: bool) -> AddressMap {
        AddressMap::new(vec![
            MappedRange { base: 0, size: priv_size, target: RangeTarget::Private, cacheable: true },
            MappedRange { base: SHARED_BASE, size: shared_size, target: RangeTarget::Shared, cacheable: shared_cacheable },
            MappedRange { base: MMIO_BASE, size: MMIO_SIZE, target: RangeTarget::Mmio, cacheable: false },
        ])
        .expect("default map is disjoint")
    }

    /// Finds the range containing `addr`.
    pub fn lookup(&self, addr: u32) -> Option<&MappedRange> {
        self.ranges.iter().find(|r| r.contains(addr))
    }

    /// Iterates over all ranges.
    pub fn iter(&self) -> impl Iterator<Item = &MappedRange> {
        self.ranges.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_map_routes() {
        let m = AddressMap::paper_default(64 * 1024, 1024 * 1024, false);
        assert_eq!(m.lookup(0x100).unwrap().target, RangeTarget::Private);
        assert_eq!(m.lookup(SHARED_BASE + 4).unwrap().target, RangeTarget::Shared);
        assert_eq!(m.lookup(MMIO_BASE).unwrap().target, RangeTarget::Mmio);
        assert!(m.lookup(0x0800_0000).is_none(), "hole between ranges");
        assert!(!m.lookup(SHARED_BASE).unwrap().cacheable);
        assert!(m.lookup(0).unwrap().cacheable);
    }

    #[test]
    fn contains_and_offset() {
        let r = MappedRange { base: 0x1000, size: 0x100, target: RangeTarget::Shared, cacheable: false };
        assert!(r.contains(0x1000));
        assert!(r.contains(0x10FF));
        assert!(!r.contains(0x1100));
        assert!(!r.contains(0xFFF));
        assert_eq!(r.offset(0x1010), 0x10);
    }

    #[test]
    fn overlap_rejected() {
        let e = AddressMap::new(vec![
            MappedRange { base: 0, size: 0x200, target: RangeTarget::Private, cacheable: true },
            MappedRange { base: 0x100, size: 0x100, target: RangeTarget::Shared, cacheable: false },
        ]);
        assert!(e.is_err());
    }

    #[test]
    fn zero_size_rejected() {
        let e = AddressMap::new(vec![MappedRange { base: 0, size: 0, target: RangeTarget::Private, cacheable: true }]);
        assert!(e.is_err());
    }

    #[test]
    fn wrapping_range_rejected() {
        let e = AddressMap::new(vec![MappedRange {
            base: 0xFFFF_FFF0,
            size: 0x100,
            target: RangeTarget::Mmio,
            cacheable: false,
        }]);
        assert!(e.is_err());
    }

    #[test]
    fn range_display() {
        let r = MappedRange { base: 0, size: 16, target: RangeTarget::Private, cacheable: true };
        let s = r.to_string();
        assert!(s.contains("Private") && s.contains("cacheable"));
    }
}
