//! Typed errors of the thermal meshing and solver configuration.

use std::error::Error;
use std::fmt;

/// Why a [`GridConfig`](crate::GridConfig) was rejected or a
/// [`ThermalGrid`](crate::ThermalGrid) could not be built.
#[derive(Clone, Copy, PartialEq, Debug)]
#[non_exhaustive]
pub enum ThermalError {
    /// `si_layers` is zero.
    NoSiliconLayers,
    /// `cu_layers` is zero.
    NoCopperLayers,
    /// `default_div` or `hot_div` is zero.
    ZeroSubdivision,
    /// The filler pitch is not a positive number.
    NonPositiveFillerPitch {
        /// The offending pitch, µm.
        pitch_um: f64,
    },
    /// The ambient temperature is not a positive number.
    NonPositiveAmbient {
        /// The offending temperature, K.
        ambient_k: f64,
    },
    /// The package-to-air resistance is not positive (use
    /// `f64::INFINITY` for an adiabatic top).
    NonPositivePackageResistance {
        /// The offending resistance, K/W.
        k_per_w: f64,
    },
    /// The semi-implicit substep is not a positive number.
    NonPositiveSubstep {
        /// The offending substep, seconds.
        dt_s: f64,
    },
    /// The parallel-sweep threshold is zero cells.
    ZeroParallelThreshold,
    /// The multigrid switch-over threshold is zero cells.
    ZeroMultigridThreshold,
    /// An implicit substep exhausted its iteration budget without meeting
    /// the convergence tolerance, and the configuration demands strict
    /// convergence (`GridConfig::strict_convergence`). The temperature
    /// field is left at the last accepted substep.
    NotConverged {
        /// Simulated time of the substep that failed, seconds.
        time_s: f64,
        /// The substep's final iteration update (max |ΔT| of the last
        /// sweep), K — the solver's convergence measure, still above the
        /// tolerance.
        residual_k: f64,
        /// Fine-level Gauss–Seidel sweeps the substep spent.
        sweeps: usize,
    },
    /// The tiling failed to partition the die (an inconsistent floorplan:
    /// overlapping or out-of-bounds components).
    CoverageGap {
        /// Area the tiles cover, m².
        covered_m2: f64,
        /// Die area, m².
        die_m2: f64,
    },
}

impl fmt::Display for ThermalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThermalError::NoSiliconLayers => write!(f, "at least one silicon layer is required"),
            ThermalError::NoCopperLayers => write!(f, "at least one copper layer is required"),
            ThermalError::ZeroSubdivision => write!(f, "component subdivisions must be >= 1"),
            ThermalError::NonPositiveFillerPitch { pitch_um } => {
                write!(f, "filler pitch must be positive (got {pitch_um})")
            }
            ThermalError::NonPositiveAmbient { ambient_k } => {
                write!(f, "ambient temperature must be positive (got {ambient_k})")
            }
            ThermalError::NonPositivePackageResistance { k_per_w } => {
                write!(f, "package-to-air resistance must be positive (got {k_per_w}; use INFINITY for adiabatic)")
            }
            ThermalError::NonPositiveSubstep { dt_s } => {
                write!(f, "semi-implicit substep must be positive (got {dt_s})")
            }
            ThermalError::ZeroParallelThreshold => write!(f, "parallel threshold must be >= 1 cell"),
            ThermalError::ZeroMultigridThreshold => write!(f, "multigrid threshold must be >= 1 cell"),
            ThermalError::NotConverged { time_s, residual_k, sweeps } => write!(
                f,
                "implicit substep at t={time_s:.6} s did not converge within {sweeps} sweeps (last update {residual_k:.3e} K)"
            ),
            ThermalError::CoverageGap { covered_m2, die_m2 } => {
                write!(f, "tiling covers {covered_m2:.3e} m^2 of a {die_m2:.3e} m^2 die")
            }
        }
    }
}

impl Error for ThermalError {}
