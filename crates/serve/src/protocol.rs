//! The `temu-serve` wire protocol: newline-delimited JSON over TCP.
//!
//! Every frame — request, response, or streamed event — is one complete
//! JSON object on one line. A connection carries any number of requests;
//! each request yields exactly one response line, except `submit` with
//! `"watch": true` and `watch`, which follow the response with a stream of
//! event lines ending in a `"done"` event.
//!
//! # Requests
//!
//! | `cmd` | fields | response |
//! |---|---|---|
//! | `submit` | `sweep` ([`SweepSpec`] object), optional `watch`, optional `priority` (default 0; higher runs first, FIFO within a level) | `{"ok", "job", "total"}` (+ events) |
//! | `status` | `job` | job state and progress counters |
//! | `result` | `job` | the finished job's [`SweepReport`](temu_framework::SweepReport) JSON |
//! | `cancel` | `job` | ok for queued jobs; running/finished jobs refuse |
//! | `watch` | `job` | `{"ok"}` + event stream until the job finishes |
//! | `stats` | — | server counters (jobs, queue depth, cache hit rate) |
//! | `metrics` | — | versioned metrics snapshot (`{"ok", "temu_metrics", "counters", "gauges", "histograms"}`) |
//! | `results` | optional `after` (cursor, default 0), `follow`, `job` | `{"ok", "cursor", "earliest_retained"}` + completed-point NDJSON events, ending in `{"event": "end", "cursor"}` |
//! | `shutdown` | — | `{"ok"}`; the server then stops accepting and exits |
//!
//! # Events
//!
//! `{"event": "start", "job", "total"}` once when a job begins executing;
//! `{"event": "point", ...}` per finished grid point (label, cache_hit,
//! ok, and either summary headline numbers or the point's error);
//! `{"event": "done", "job", "ok", "points", "executed", "cache_hits",
//! "failed", "wall_s"}` exactly once, last (with `"error"` when the job
//! failed to lower and `"cancelled": true` when it was cancelled).
//!
//! Responses to failed requests are `{"ok": false, "error": "..."}`; the
//! connection stays usable. Refusals a peer may want to branch on also
//! carry a machine-readable `"code"` field (`frame_too_long`,
//! `queue_full`) — see [`coded_error_line`].

use std::error::Error;
use std::fmt;
use std::io::BufRead;
use temu_framework::{json_escape, JsonValue, SpecError, SweepSpec};

/// The default server address (loopback; the server is an experiment
/// cache, not an internet service).
pub const DEFAULT_ADDR: &str = "127.0.0.1:7181";

/// Environment variable overriding the default address for both bins.
pub const ADDR_ENV: &str = "TEMU_SERVE_ADDR";

/// The hard bound on one NDJSON frame (1 MiB). A peer sending a longer
/// line — slowloris drip, a runaway spec, or plain garbage — is refused
/// with a typed error instead of being buffered unbounded into memory.
pub const MAX_FRAME_LEN: usize = 1 << 20;

/// A transport-level failure of the NDJSON framing layer, shared by the
/// server's connection handler and the [`Client`](crate::Client).
#[derive(Debug)]
#[non_exhaustive]
pub enum ProtocolError {
    /// A socket deadline elapsed (`set_read_timeout`/`set_write_timeout`):
    /// the peer stopped sending or stopped draining.
    Timeout,
    /// The peer sent a line longer than the frame bound.
    FrameTooLong {
        /// The bound that was exceeded ([`MAX_FRAME_LEN`] by default).
        limit: usize,
    },
    /// The peer closed the connection.
    Closed,
    /// Any other socket failure.
    Io(std::io::Error),
    /// The frame's bytes were not UTF-8.
    Malformed(String),
}

impl fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtocolError::Timeout => write!(f, "socket deadline elapsed"),
            ProtocolError::FrameTooLong { limit } => {
                write!(f, "frame exceeds the {limit}-byte protocol bound")
            }
            ProtocolError::Closed => write!(f, "peer closed the connection"),
            ProtocolError::Io(e) => write!(f, "socket: {e}"),
            ProtocolError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl Error for ProtocolError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ProtocolError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> ProtocolError {
        match e.kind() {
            // A read/write deadline surfaces as WouldBlock on Unix and
            // TimedOut on Windows; both mean the peer missed the deadline.
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ProtocolError::Timeout,
            std::io::ErrorKind::UnexpectedEof => ProtocolError::Closed,
            _ => ProtocolError::Io(e),
        }
    }
}

impl ProtocolError {
    /// Whether retrying the operation on a fresh connection could
    /// succeed (connection-level trouble, not a malformed frame).
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(self, ProtocolError::Timeout | ProtocolError::Closed | ProtocolError::Io(_))
    }
}

/// Reads one newline-terminated frame without ever buffering more than
/// `max` bytes: the length check runs as bytes arrive, so an oversized or
/// never-terminated line is refused while still in flight. Returns
/// `Ok(None)` on clean EOF; a final unterminated line is delivered as a
/// frame (the lenient behavior of `BufRead::lines`).
///
/// # Errors
///
/// [`ProtocolError::FrameTooLong`] past the bound,
/// [`ProtocolError::Timeout`] when the socket deadline elapses mid-frame,
/// [`ProtocolError::Malformed`] for non-UTF-8 bytes, and
/// [`ProtocolError::Io`] for any other socket failure.
pub fn read_frame<R: BufRead>(reader: &mut R, max: usize) -> Result<Option<String>, ProtocolError> {
    let mut frame: Vec<u8> = Vec::new();
    loop {
        let available = match reader.fill_buf() {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ProtocolError::from(e)),
        };
        if available.is_empty() {
            if frame.is_empty() {
                return Ok(None);
            }
            break;
        }
        let (chunk, terminated) = match available.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos + 1, true),
            None => (available.len(), false),
        };
        // Check before buffering: the frame is refused while oversized
        // bytes are still on the wire, not after they fill memory (+2
        // tolerates a CRLF terminator on an exactly-max-length frame; the
        // post-loop check bounds the content itself).
        if frame.len() + chunk > max.saturating_add(2) {
            return Err(ProtocolError::FrameTooLong { limit: max });
        }
        frame.extend_from_slice(&available[..chunk]);
        reader.consume(chunk);
        if terminated {
            frame.pop();
            if frame.last() == Some(&b'\r') {
                frame.pop();
            }
            break;
        }
    }
    if frame.len() > max {
        return Err(ProtocolError::FrameTooLong { limit: max });
    }
    if temu_obs::enabled() {
        static FRAME_BYTES: std::sync::OnceLock<std::sync::Arc<temu_obs::Histogram>> =
            std::sync::OnceLock::new();
        FRAME_BYTES
            .get_or_init(|| temu_obs::global().histogram("serve.frame_bytes"))
            .record(frame.len() as u64);
    }
    String::from_utf8(frame)
        .map(Some)
        .map_err(|_| ProtocolError::Malformed(String::from("non-UTF-8 bytes")))
}

/// One parsed client request.
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub enum Request {
    /// Queue a sweep; optionally stream its progress on this connection.
    Submit {
        /// The experiment to run.
        spec: Box<SweepSpec>,
        /// Stream `point`/`done` events after the acknowledgement.
        watch: bool,
        /// Scheduling priority: higher claims a worker first, FIFO within
        /// a level. 0 (the default) is the normal batch tier; old servers
        /// ignore the field and schedule plain FIFO.
        priority: i64,
    },
    /// Report a job's state and progress counters.
    Status {
        /// The job id from `submit`.
        job: u64,
    },
    /// Fetch a finished job's full `SweepReport` JSON.
    Result {
        /// The job id from `submit`.
        job: u64,
    },
    /// Cancel a still-queued job.
    Cancel {
        /// The job id from `submit`.
        job: u64,
    },
    /// Attach to a job's event stream until it finishes.
    Watch {
        /// The job id from `submit`.
        job: u64,
    },
    /// Report server counters.
    Stats,
    /// Report a full metrics-registry snapshot.
    Metrics,
    /// Replay (and optionally follow) the completed-point event feed.
    Results {
        /// Replay only events with a sequence number strictly greater
        /// than this cursor (0 replays everything still retained).
        after: u64,
        /// Keep the stream open and push new events as points finish;
        /// otherwise replay what is retained and end.
        follow: bool,
        /// Restrict the stream to one job's events; the stream ends once
        /// that job's terminal event has been sent (even under `follow`).
        job: Option<u64>,
    },
    /// Stop the server.
    Shutdown,
}

impl Request {
    /// Parses one request line.
    ///
    /// # Errors
    ///
    /// A human-readable description of the malformed frame.
    pub fn parse(line: &str) -> Result<Request, String> {
        let v = JsonValue::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
        let cmd = v
            .get("cmd")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| String::from("missing string field \"cmd\""))?;
        let job = || {
            v.get("job")
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("\"{cmd}\" needs an integer \"job\" field"))
        };
        match cmd {
            "submit" => {
                let spec_value =
                    v.get("sweep").ok_or_else(|| String::from("\"submit\" needs a \"sweep\" spec object"))?;
                let spec = SweepSpec::from_value(spec_value).map_err(|e| e.to_string())?;
                let watch = v.get("watch").and_then(JsonValue::as_bool).unwrap_or(false);
                let priority = v.get("priority").and_then(JsonValue::as_i64).unwrap_or(0);
                Ok(Request::Submit { spec: Box::new(spec), watch, priority })
            }
            "status" => Ok(Request::Status { job: job()? }),
            "result" => Ok(Request::Result { job: job()? }),
            "cancel" => Ok(Request::Cancel { job: job()? }),
            "watch" => Ok(Request::Watch { job: job()? }),
            "stats" => Ok(Request::Stats),
            "metrics" => Ok(Request::Metrics),
            "results" => {
                let after = v.get("after").and_then(JsonValue::as_u64).unwrap_or(0);
                let follow = v.get("follow").and_then(JsonValue::as_bool).unwrap_or(false);
                let job = v.get("job").and_then(JsonValue::as_u64);
                Ok(Request::Results { after, follow, job })
            }
            "shutdown" => Ok(Request::Shutdown),
            other => Err(format!("unknown cmd {other:?}")),
        }
    }

    /// Renders the request as one protocol line (no trailing newline).
    #[must_use]
    pub fn to_line(&self) -> String {
        match self {
            Request::Submit { spec, watch, priority } => {
                // The default priority is omitted so the rendered line is
                // byte-identical to what pre-priority clients sent.
                let priority = if *priority == 0 {
                    String::new()
                } else {
                    format!("\"priority\": {priority}, ")
                };
                format!(
                    "{{\"cmd\": \"submit\", \"watch\": {watch}, {priority}\"sweep\": {}}}",
                    spec.to_json()
                )
            }
            Request::Status { job } => format!("{{\"cmd\": \"status\", \"job\": {job}}}"),
            Request::Result { job } => format!("{{\"cmd\": \"result\", \"job\": {job}}}"),
            Request::Cancel { job } => format!("{{\"cmd\": \"cancel\", \"job\": {job}}}"),
            Request::Watch { job } => format!("{{\"cmd\": \"watch\", \"job\": {job}}}"),
            Request::Stats => String::from("{\"cmd\": \"stats\"}"),
            Request::Metrics => String::from("{\"cmd\": \"metrics\"}"),
            Request::Results { after, follow, job } => {
                let job = match job {
                    Some(id) => format!(", \"job\": {id}"),
                    None => String::new(),
                };
                format!("{{\"cmd\": \"results\", \"after\": {after}, \"follow\": {follow}{job}}}")
            }
            Request::Shutdown => String::from("{\"cmd\": \"shutdown\"}"),
        }
    }
}

/// Renders the standard error response line.
#[must_use]
pub fn error_line(message: &str) -> String {
    format!("{{\"ok\": false, \"error\": \"{}\"}}", json_escape(message))
}

/// Renders an error response line carrying a machine-readable `code`
/// alongside the human message — for refusals a peer wants to branch on:
/// the fleet router fails a `queue_full` submission over to the next
/// member in rendezvous order instead of surfacing it to the client.
#[must_use]
pub fn coded_error_line(code: &str, message: &str) -> String {
    format!(
        "{{\"ok\": false, \"code\": \"{}\", \"error\": \"{}\"}}",
        json_escape(code),
        json_escape(message)
    )
}

/// Interprets a spec file's JSON as a submittable [`SweepSpec`]: a
/// document with a `"sweep"` key is a sweep spec; anything else is read
/// as a [`ScenarioSpec`](temu_framework::ScenarioSpec) and wrapped into a
/// one-point sweep (named after the spec's `name`, or `"scenario"`).
///
/// # Errors
///
/// [`SpecError`] from whichever shape the document matched.
pub fn spec_from_document(v: &JsonValue) -> Result<SweepSpec, SpecError> {
    if v.get("sweep").is_some() {
        return SweepSpec::from_value(v);
    }
    let scenario = temu_framework::ScenarioSpec::from_value(v)?;
    let name = scenario.name.clone().unwrap_or_else(|| String::from("scenario"));
    Ok(SweepSpec::new(name, scenario))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requests_round_trip_through_lines() {
        let reqs = vec![
            Request::Submit {
                spec: Box::new(SweepSpec::named("smoke").unwrap()),
                watch: true,
                priority: 0,
            },
            Request::Submit {
                spec: Box::new(SweepSpec::named("smoke").unwrap()),
                watch: false,
                priority: 9,
            },
            Request::Status { job: 3 },
            Request::Result { job: 4 },
            Request::Cancel { job: 5 },
            Request::Watch { job: 6 },
            Request::Stats,
            Request::Metrics,
            Request::Results { after: 0, follow: false, job: None },
            Request::Results { after: 41, follow: true, job: Some(7) },
            Request::Shutdown,
        ];
        for req in reqs {
            let line = req.to_line();
            assert!(!line.contains('\n'), "one frame = one line: {line}");
            assert_eq!(Request::parse(&line).unwrap(), req);
        }
    }

    #[test]
    fn malformed_requests_are_described() {
        assert!(Request::parse("").unwrap_err().contains("invalid JSON"));
        assert!(Request::parse("{}").unwrap_err().contains("cmd"));
        assert!(Request::parse("{\"cmd\": \"nope\"}").unwrap_err().contains("unknown cmd"));
        assert!(Request::parse("{\"cmd\": \"status\"}").unwrap_err().contains("job"));
        assert!(Request::parse("{\"cmd\": \"submit\"}").unwrap_err().contains("sweep"));
        let bad_spec = "{\"cmd\": \"submit\", \"sweep\": {\"sweep\": \"x\", \"base\": {\"preset\": 7}}}";
        assert!(Request::parse(bad_spec).unwrap_err().contains("preset"));
    }

    #[test]
    fn default_priority_renders_the_pre_priority_line() {
        let req = Request::Submit {
            spec: Box::new(SweepSpec::named("smoke").unwrap()),
            watch: true,
            priority: 0,
        };
        assert!(
            !req.to_line().contains("priority"),
            "priority 0 is omitted for old-server byte compatibility"
        );
        match Request::parse(&req.to_line()).unwrap() {
            Request::Submit { priority, .. } => assert_eq!(priority, 0),
            other => panic!("expected submit, got {other:?}"),
        }
    }

    #[test]
    fn scenario_documents_wrap_into_one_point_sweeps() {
        let v = JsonValue::parse("{\"preset\": \"paper_fig6\", \"name\": \"mine\"}").unwrap();
        let spec = spec_from_document(&v).unwrap();
        assert_eq!(spec.name, "mine");
        assert_eq!(spec.axes.len(), 0);
        let v = JsonValue::parse("{\"sweep\": \"s\", \"axes\": [{\"axis\": \"cores\", \"values\": [1, 2]}]}")
            .unwrap();
        assert_eq!(spec_from_document(&v).unwrap().lower().unwrap().n_points(), 2);
    }
}
