//! Chaos e2e: the fault-injection harness turned up high against a real
//! in-process server. Workers panic at checkpoints, journal appends tear,
//! and fresh connections drop — yet no request hangs, every job reaches a
//! terminal state, progress accumulates in the store across panics, and a
//! resubmitted sweep eventually completes fully from the cache.
//!
//! Lives in its own test binary so `fault::install` (process-global,
//! first caller wins) cannot leak into the other e2e suites.

use std::path::PathBuf;
use temu_framework::{
    AxisSpec, ImplicitSolve, JsonValue, ScenarioSpec, SweepSpec, WorkloadSpec,
};
use temu_serve::client::submit_with_retry;
use temu_serve::journal::replay;
use temu_serve::{Client, ClientError, FaultPlan, RetryPolicy, ServeConfig, Server};

/// A 4-point sweep on one campaign thread, so a checkpoint (and therefore
/// a `worker_panic` roll) lands between every grid point.
fn chaos_sweep() -> SweepSpec {
    let tiny = |iters: u32| WorkloadSpec::Matrix { n: 4, iters, cores: 1 };
    SweepSpec {
        name: String::from("chaos"),
        base: ScenarioSpec {
            cores: Some(1),
            workload: Some(tiny(1)),
            sampling_window_s: Some(0.0005),
            windows: Some(2),
            strict_convergence: Some(true),
            ..ScenarioSpec::default()
        },
        axes: vec![
            AxisSpec::Workloads(vec![tiny(1), tiny(2)]),
            AxisSpec::Solvers(vec![ImplicitSolve::GaussSeidel, ImplicitSolve::Multigrid]),
        ],
        threads: Some(1),
    }
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("temu_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Retries a client call until it survives the connection-dropping fault.
fn with_retry<T>(mut call: impl FnMut() -> Result<T, ClientError>) -> T {
    for _ in 0..40 {
        match call() {
            Ok(value) => return value,
            Err(e) if e.is_transient() => std::thread::sleep(std::time::Duration::from_millis(5)),
            Err(e) => panic!("non-transient client error under chaos: {e}"),
        }
    }
    panic!("client call did not survive 40 attempts under chaos");
}

#[test]
fn server_under_injected_faults_stays_terminal_and_converges_to_cached() {
    // Every fault dialed high, installed before the server exists. The
    // `install` return tells us whether this process won the global slot
    // (it must — this test binary owns it).
    assert!(
        temu_serve::fault::install(FaultPlan { worker_panic: 0.5, torn_write: 0.5, drop_conn: 0.3 }),
        "this test binary installs the fault plan first"
    );

    let dir = temp_dir();
    let store = dir.join("cache.jsonl");
    let _ = std::fs::remove_file(&store);
    let journal = store.with_file_name("jobs.jsonl");
    let _ = std::fs::remove_file(&journal);

    let handle = Server::spawn(ServeConfig {
        addr: String::from("127.0.0.1:0"),
        store: Some(store.clone()),
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port");
    let addr = handle.addr().to_string();
    let spec = chaos_sweep();
    let policy = RetryPolicy { retries: 8, ..RetryPolicy::default() };

    // Resubmit until one run completes with every point ok. Each failed
    // run still banked at least the points it executed before its panic
    // (the checkpoint hook syncs the store first, then rolls the panic
    // die), so this converges long before the attempt budget — the final
    // successful run is typically served fully from the cache, where no
    // checkpoint fires and `worker_panic` cannot reach it.
    let mut done = None;
    let mut attempts = 0u32;
    while attempts < 60 {
        attempts += 1;
        let outcome = submit_with_retry(&addr, &policy, &spec, true, 0, |_| {})
            .expect("submission survives transient chaos");
        let summary = outcome.done.expect("watched submissions end with a done summary");
        if summary.ok && summary.failed == 0 {
            done = Some(summary);
            break;
        }
    }
    let done = done.expect("a chaos-battered sweep still completes within 60 submissions");
    assert_eq!(done.points, 4);
    assert_eq!(done.executed + done.cache_hits, 4, "the whole grid was served");

    // One more submission is pure cache: immune to worker panics.
    let outcome = submit_with_retry(&addr, &policy, &spec, true, 0, |_| {})
        .expect("cached resubmission survives transient chaos");
    let cached = outcome.done.unwrap();
    assert!(cached.ok);
    assert_eq!((cached.cache_hits, cached.executed, cached.failed), (4, 0, 0));

    // Every job the server ever accepted is terminal, and the server is
    // still answering requests.
    let stats = with_retry(|| Client::connect_with_retry(&addr, &policy)?.stats());
    let counter = |k: &str| stats.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
    assert_eq!(stats.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(counter("running"), 0);
    assert_eq!(counter("queue_depth"), 0);
    assert_eq!(
        counter("jobs_submitted"),
        counter("jobs_completed") + counter("jobs_failed") + counter("jobs_cancelled"),
        "no job is left in limbo: {stats}"
    );
    assert!(counter("jobs_completed") >= 2, "both clean runs completed: {stats}");

    with_retry(|| Client::connect_with_retry(&addr, &policy)?.shutdown());
    handle.shutdown();

    // The journal the chaos run left behind — torn appends and all —
    // replays without panicking, and never resurrects a job id that was
    // never submitted.
    let text = std::fs::read_to_string(&journal).expect("journal exists next to the store");
    let replayed = replay(&text);
    let submitted = counter("jobs_submitted");
    for job in &replayed.pending {
        assert!(job.id >= 1 && job.id <= submitted, "phantom pending job {}", job.id);
        // A torn tail may lose the highest ids entirely, but whatever is
        // recoverable must be cleared by the fresh-id horizon.
        assert!(replayed.next_id > job.id, "fresh ids clear every recovered job");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// SIGKILL mid-point: window-granular checkpoint/restore through the real bin
// ---------------------------------------------------------------------------

/// A one-point sweep long enough (150 sampling windows) that SIGKILL lands
/// in the middle of the *point*, not between points — the case the
/// between-point store flush cannot save.
fn long_point_sweep() -> SweepSpec {
    SweepSpec {
        name: String::from("midpoint"),
        base: ScenarioSpec {
            cores: Some(1),
            workload: Some(WorkloadSpec::Matrix { n: 4, iters: 3, cores: 1 }),
            sampling_window_s: Some(0.0005),
            windows: Some(150),
            strict_convergence: Some(true),
            ..ScenarioSpec::default()
        },
        axes: Vec::new(),
        threads: Some(1),
    }
}

/// Spawns the real `temu-serve` bin with window checkpointing every
/// window, returning the child, its bound address, and the banner's
/// recovered-job / recovered-checkpoint counts.
fn spawn_checkpointing_serve(
    store: &std::path::Path,
) -> (std::process::Child, String, u64, u64) {
    use std::io::BufRead as _;
    let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_temu-serve"))
        .args(["--addr", "127.0.0.1:0", "--window-checkpoint", "1", "--store"])
        .arg(store)
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn temu-serve");
    let mut stdout = std::io::BufReader::new(child.stdout.take().expect("piped stdout"));
    let (mut addr, mut recovered_jobs, mut recovered_states) = (None, 0u64, 0u64);
    let mut line = String::new();
    loop {
        line.clear();
        if stdout.read_line(&mut line).expect("read banner") == 0 {
            panic!("temu-serve exited before printing its banner");
        }
        let trimmed = line.trim();
        if let Some(rest) = trimmed.strip_prefix("temu-serve listening on ") {
            addr = Some(rest.to_string());
        }
        if let Some((head, _)) = trimmed.split_once(" job(s) recovered") {
            recovered_jobs = head.rsplit(' ').next().and_then(|n| n.parse().ok()).unwrap_or(0);
        }
        if let Some((head, _)) = trimmed.split_once(" mid-point state(s) recovered") {
            recovered_states = head.rsplit(' ').next().and_then(|n| n.parse().ok()).unwrap_or(0);
        }
        if trimmed.contains("worker(s)") {
            break;
        }
    }
    (child, addr.expect("server printed its address"), recovered_jobs, recovered_states)
}

fn progress_windows(event: &JsonValue) -> Option<u64> {
    event
        .get("progress")
        .and_then(|p| p.get("windows"))
        .and_then(JsonValue::as_u64)
}

#[test]
fn sigkill_mid_point_resumes_from_the_window_checkpoint() {
    let dir = std::env::temp_dir().join(format!("temu_midpoint_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("cache.jsonl");
    for stale in ["cache.jsonl", "jobs.jsonl", "jobs.checkpoints.jsonl"] {
        let _ = std::fs::remove_file(dir.join(stale));
    }
    let spec = long_point_sweep();

    // Ground truth: the same point, uninterrupted and in-process.
    let reference = spec
        .lower()
        .unwrap()
        .run_cached(&temu_framework::ResultCache::in_memory());
    assert!(reference.all_ok());
    assert_eq!(reference.points.len(), 1);
    let ref_point = &reference.points[0];
    let ref_summary = ref_point.outcome.as_ref().unwrap();

    // First incarnation: submit, wait until the point is visibly past
    // window 10 via the mid-point `progress` events, then SIGKILL.
    let (mut first, addr, recovered_jobs, recovered_states) = spawn_checkpointing_serve(&store);
    assert_eq!((recovered_jobs, recovered_states), (0, 0), "a fresh journal recovers nothing");
    let (tx, rx) = std::sync::mpsc::channel();
    let watcher = {
        let spec = spec.clone();
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut client = Client::connect(&addr).expect("connect to first server");
            // The submission dies with the server; the error is expected.
            let _ = client.submit(&spec, true, |event| {
                if let Some(windows) = progress_windows(event) {
                    let _ = tx.send(windows);
                }
            });
        })
    };
    let mut killed_after = 0;
    while killed_after < 10 {
        killed_after = rx
            .recv_timeout(std::time::Duration::from_secs(60))
            .expect("the point reports mid-point progress before the kill");
    }
    first.kill().expect("SIGKILL the server mid-point");
    let _ = first.wait();
    watcher.join().expect("watcher thread exits after the server dies");

    // Second incarnation: the journal recovers the job AND the checkpoint
    // store recovers the in-flight point's last window boundary.
    let (mut second, addr2, recovered_jobs, recovered_states) = spawn_checkpointing_serve(&store);
    assert_eq!(recovered_jobs, 1, "the killed job is re-enqueued");
    assert_eq!(recovered_states, 1, "the in-flight point's run state is recovered");
    let mut client = Client::connect(&addr2).expect("connect to restarted server");
    let mut resumed_progress: Vec<u64> = Vec::new();
    let done = client
        .watch(1, |event| {
            if let Some(windows) = progress_windows(event) {
                resumed_progress.push(windows);
            }
        })
        .expect("watch the recovered job to completion");
    assert!(done.ok, "the recovered job completes: {done:?}");
    assert_eq!(done.failed, 0);
    assert_eq!(
        (done.executed, done.cache_hits),
        (1, 0),
        "a mid-point resume still *executes* the point (it is not a cache hit)"
    );

    // The resume really was mid-point: the first boundary reported after
    // the restart continues past the pre-kill checkpoint instead of
    // starting over at window 1, so windows run after the restart < total.
    let first_after = *resumed_progress.first().expect("the resumed point reports progress");
    assert!(
        first_after > killed_after && first_after < 150,
        "resume continues from the checkpoint (first boundary after restart: \
         {first_after}, pre-kill progress: {killed_after})"
    );

    // The resumed point's report matches the uninterrupted run.
    let frame = client.result(1).expect("fetch the recovered job's report");
    let report = frame.get("report").expect("report attached");
    let points = report.get("points").and_then(JsonValue::as_arr).expect("points array");
    assert_eq!(points.len(), 1);
    let fetched = &points[0];
    let key = format!("{:016x}", ref_point.key.unwrap());
    assert_eq!(fetched.get("key").and_then(JsonValue::as_str), Some(key.as_str()));
    assert_eq!(fetched.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(fetched.get("windows").and_then(JsonValue::as_u64), Some(ref_summary.windows));
    assert_eq!(
        fetched.get("instructions").and_then(JsonValue::as_u64),
        Some(ref_summary.instructions),
        "the resumed point retired exactly the uninterrupted instruction count"
    );
    // The wire rounds peaks to 3 decimals; round the reference the same way.
    let wire_peak = ref_summary.peak_temp_k.map(|t| format!("{t:.3}").parse::<f64>().unwrap());
    assert_eq!(
        fetched.get("peak_temp_k").and_then(JsonValue::as_f64),
        wire_peak,
        "the resumed point's peak temperature matches the uninterrupted run"
    );

    client.shutdown().expect("graceful shutdown");
    let _ = second.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
