//! The Virtual Platform Clock Manager (§4.2) and the §7 DFS policy.
//!
//! The VPCM relates **virtual cycles** (the emulated MPSoC's clock) to
//! **physical FPGA time**. On the paper's board every virtual cycle costs one
//! 100 MHz physical cycle, plus *freeze* cycles whenever
//!
//! * a physically slower device (DDR standing in for an emulated low-latency
//!   memory) needs extra physical cycles the emulated platform must not see, or
//! * the Ethernet statistics link congests and the extraction buffer must be
//!   drained before emulation may proceed.
//!
//! Virtual-frequency scaling is what lets the 100 MHz FPGA emulate a 500 MHz
//! MPSoC: a 10 ms virtual sampling window at 500 MHz is 5 M virtual cycles,
//! i.e. 50 ms of physical execution — the thermal model is still fed 10 ms
//! windows. The [`DfsPolicy`] frequency ladder generalizes the run-time
//! thermal manager of §7 (500 MHz above 350 K → 100 MHz until back under
//! 340 K) to any number of hysteresis-separated clock levels.

use crate::error::PlatformError;
use temu_state::{StateError, StateReader, StateWriter};

/// Virtual-clock bookkeeping for one platform.
#[derive(Clone, Copy, Debug)]
pub struct Vpcm {
    /// Physical FPGA clock in Hz.
    pub fpga_hz: u64,
    virtual_hz: u64,
    freeze_mem: u64,
    freeze_link: u64,
}

impl Vpcm {
    /// Creates a VPCM with the given physical and initial virtual frequency.
    pub fn new(fpga_hz: u64, virtual_hz: u64) -> Vpcm {
        assert!(fpga_hz > 0 && virtual_hz > 0, "clock frequencies must be nonzero");
        Vpcm { fpga_hz, virtual_hz, freeze_mem: 0, freeze_link: 0 }
    }

    /// Current virtual (emulated) frequency in Hz.
    pub fn virtual_hz(&self) -> u64 {
        self.virtual_hz
    }

    /// Retunes the virtual clock (the DFS actuator).
    pub fn set_virtual_hz(&mut self, hz: u64) {
        assert!(hz > 0, "virtual frequency must be nonzero");
        self.virtual_hz = hz;
    }

    /// Virtual cycles in `seconds` of emulated time at the current frequency.
    pub fn cycles_in(&self, seconds: f64) -> u64 {
        (seconds * self.virtual_hz as f64).round() as u64
    }

    /// Emulated seconds represented by `cycles` virtual cycles at the current
    /// frequency.
    pub fn virtual_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.virtual_hz as f64
    }

    /// Records physical freeze cycles caused by slow memory devices.
    pub fn record_mem_freeze(&mut self, cycles: u64) {
        self.freeze_mem += cycles;
    }

    /// Records physical freeze cycles caused by statistics-link congestion.
    pub fn record_link_freeze(&mut self, cycles: u64) {
        self.freeze_link += cycles;
    }

    /// Freeze cycles accumulated since the last [`Vpcm::take_freezes`]
    /// (memory-induced, link-induced).
    pub fn freezes(&self) -> (u64, u64) {
        (self.freeze_mem, self.freeze_link)
    }

    /// Returns and resets the freeze counters.
    pub fn take_freezes(&mut self) -> (u64, u64) {
        (std::mem::take(&mut self.freeze_mem), std::mem::take(&mut self.freeze_link))
    }

    /// Physical FPGA seconds needed to emulate `virtual_cycles` given the
    /// currently accumulated freezes: `(virtual + frozen) / fpga_hz`.
    ///
    /// This is the quantity the paper's Table 3 reports for the HW emulator.
    pub fn fpga_seconds(&self, virtual_cycles: u64) -> f64 {
        (virtual_cycles + self.freeze_mem + self.freeze_link) as f64 / self.fpga_hz as f64
    }

    /// Serializes the clock state (virtual frequency + untaken freezes).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.u64(self.virtual_hz);
        w.u64(self.freeze_mem);
        w.u64(self.freeze_link);
    }

    /// Restores state saved by [`Vpcm::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`StateError::BadValue`] on a zero virtual frequency.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let hz = r.u64()?;
        if hz == 0 {
            return Err(StateError::BadValue { what: "virtual frequency", value: 0 });
        }
        self.virtual_hz = hz;
        self.freeze_mem = r.u64()?;
        self.freeze_link = r.u64()?;
        Ok(())
    }
}

/// One hysteresis band of a [`DfsPolicy`] ladder, sitting between two
/// adjacent frequency levels.
///
/// While the platform runs at or above the band's faster level, exceeding
/// `hot_k` steps the clock down past the band; while it runs at or below
/// the slower level, cooling under `cool_k` steps it back up. The gap
/// between the two thresholds is the hysteresis that keeps the policy from
/// chattering around a single set point.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct DfsBand {
    /// Throttle down past this band when any sensor exceeds this (K).
    pub hot_k: f64,
    /// Recover up past this band when all sensors drop below this (K).
    pub cool_k: f64,
}

/// The run-time thermal-management policy: a frequency *ladder* of N
/// descending clock levels separated by N−1 hysteresis bands.
///
/// The paper's §7 policy — "a simple dual-state machine that monitors at
/// run-time if the temperature of each MPSoC component increases/decreases
/// above/below two certain thresholds (350 or 340 degrees Kelvin)", scaling
/// between 500 and 100 MHz — is the trivial two-level ladder
/// ([`DfsPolicy::paper`]). Deeper ladders (as explored by multi-level
/// emulated DVFS monitors) throttle progressively: each window the hottest
/// sensor temperature is compared against the bands around the current
/// level, stepping down one band per `hot_k` exceeded and back up one band
/// per `cool_k` undercut.
#[derive(Clone, PartialEq, Debug)]
pub struct DfsPolicy {
    /// Clock levels in Hz, strictly descending (index 0 = fastest).
    levels_hz: Vec<u64>,
    /// `bands[i]` sits between `levels_hz[i]` and `levels_hz[i + 1]`; hot
    /// and cool thresholds are strictly increasing along the ladder (it
    /// takes an ever hotter die to throttle further down).
    bands: Vec<DfsBand>,
    level: usize,
}

impl DfsPolicy {
    /// The paper's exact policy: 350 K / 340 K thresholds, 500/100 MHz.
    pub fn paper() -> DfsPolicy {
        DfsPolicy::new(350.0, 340.0, 500_000_000, 100_000_000)
            .expect("the paper's dual-threshold policy is a valid ladder")
    }

    /// Creates the classic two-level policy with custom thresholds and
    /// frequencies.
    ///
    /// # Errors
    ///
    /// [`PlatformError::DfsLadder`] when the hysteresis band is empty or
    /// inverted (`cool_threshold_k >= hot_threshold_k`) or the frequencies
    /// do not strictly descend.
    pub fn new(
        hot_threshold_k: f64,
        cool_threshold_k: f64,
        high_hz: u64,
        low_hz: u64,
    ) -> Result<DfsPolicy, PlatformError> {
        DfsPolicy::ladder(&[high_hz, low_hz], &[DfsBand { hot_k: hot_threshold_k, cool_k: cool_threshold_k }])
    }

    /// Creates an N-level ladder: `levels_hz` strictly descending clock
    /// frequencies and `bands[i]` the hysteresis band between
    /// `levels_hz[i]` and `levels_hz[i + 1]`.
    ///
    /// # Errors
    ///
    /// [`PlatformError::DfsLadder`] when the ladder is malformed: fewer
    /// than two levels, a zero or non-descending frequency, a band count
    /// other than `levels_hz.len() - 1`, an empty or inverted band
    /// (`cool_k >= hot_k`), a non-finite threshold, or bands whose
    /// thresholds do not strictly increase down the ladder.
    pub fn ladder(levels_hz: &[u64], bands: &[DfsBand]) -> Result<DfsPolicy, PlatformError> {
        let fail = |reason: String| Err(PlatformError::DfsLadder { reason });
        if levels_hz.len() < 2 {
            return fail(format!("a ladder needs at least two frequency levels, got {}", levels_hz.len()));
        }
        if bands.len() != levels_hz.len() - 1 {
            return fail(format!(
                "{} level(s) need exactly {} hysteresis band(s), got {}",
                levels_hz.len(),
                levels_hz.len() - 1,
                bands.len()
            ));
        }
        if levels_hz.contains(&0) {
            return fail(String::from("frequency levels must be nonzero"));
        }
        if !levels_hz.windows(2).all(|w| w[0] > w[1]) {
            return fail(format!("frequency levels must strictly descend, got {levels_hz:?}"));
        }
        for (i, b) in bands.iter().enumerate() {
            if !b.hot_k.is_finite() || !b.cool_k.is_finite() {
                return fail(format!("band {i} thresholds must be finite, got {b:?}"));
            }
            if b.cool_k >= b.hot_k {
                return fail(format!(
                    "band {i}: cool threshold {} K must sit below hot threshold {} K",
                    b.cool_k, b.hot_k
                ));
            }
        }
        if !bands.windows(2).all(|w| w[0].hot_k < w[1].hot_k && w[0].cool_k < w[1].cool_k) {
            return fail(format!("band thresholds must strictly increase down the ladder, got {bands:?}"));
        }
        Ok(DfsPolicy { levels_hz: levels_hz.to_vec(), bands: bands.to_vec(), level: 0 })
    }

    /// Whether the policy currently holds the platform below its top
    /// frequency.
    pub fn is_throttled(&self) -> bool {
        self.level > 0
    }

    /// The current ladder rung (0 = fastest).
    pub fn level(&self) -> usize {
        self.level
    }

    /// The ladder's clock levels, Hz, fastest first.
    pub fn levels_hz(&self) -> &[u64] {
        &self.levels_hz
    }

    /// The hysteresis bands between adjacent levels.
    pub fn bands(&self) -> &[DfsBand] {
        &self.bands
    }

    /// A compact configuration label, e.g. `"500-100MHz@350/340"` for the
    /// paper's policy (frequencies in MHz, then each band's hot/cool
    /// thresholds in K) — used as a sweep-axis value name.
    pub fn label(&self) -> String {
        let freqs: Vec<String> = self.levels_hz.iter().map(|hz| format!("{}", hz / 1_000_000)).collect();
        let bands: Vec<String> = self.bands.iter().map(|b| format!("{}/{}", b.hot_k, b.cool_k)).collect();
        format!("{}MHz@{}", freqs.join("-"), bands.join("+"))
    }

    /// Restores the ladder position from a checkpoint. Returns `false`
    /// (leaving the level unchanged) if `level` names no rung of this
    /// ladder — the checkpoint belongs to a different policy.
    pub fn restore_level(&mut self, level: usize) -> bool {
        if level < self.levels_hz.len() {
            self.level = level;
            true
        } else {
            false
        }
    }

    /// Feeds the hottest sensor temperature and returns the frequency the
    /// platform should run at for the next window, stepping at most one
    /// band per call in either direction (the window-granular state
    /// machine of §7).
    pub fn update(&mut self, max_temp_k: f64) -> u64 {
        if self.level + 1 < self.levels_hz.len() && max_temp_k > self.bands[self.level].hot_k {
            self.level += 1;
        } else if self.level > 0 && max_temp_k < self.bands[self.level - 1].cool_k {
            self.level -= 1;
        }
        self.levels_hz[self.level]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_and_seconds_round_trip() {
        let v = Vpcm::new(100_000_000, 500_000_000);
        assert_eq!(v.cycles_in(0.010), 5_000_000);
        assert!((v.virtual_seconds(5_000_000) - 0.010).abs() < 1e-12);
    }

    #[test]
    fn fpga_time_includes_freezes() {
        let mut v = Vpcm::new(100_000_000, 500_000_000);
        assert!((v.fpga_seconds(5_000_000) - 0.05).abs() < 1e-12, "5M cycles at 100MHz physical");
        v.record_mem_freeze(1_000_000);
        v.record_link_freeze(500_000);
        assert!((v.fpga_seconds(5_000_000) - 0.065).abs() < 1e-12);
        assert_eq!(v.take_freezes(), (1_000_000, 500_000));
        assert_eq!(v.freezes(), (0, 0));
    }

    #[test]
    fn dfs_retunes() {
        let mut v = Vpcm::new(100_000_000, 500_000_000);
        v.set_virtual_hz(100_000_000);
        assert_eq!(v.virtual_hz(), 100_000_000);
        assert_eq!(v.cycles_in(0.01), 1_000_000);
    }

    #[test]
    fn dfs_policy_hysteresis() {
        let mut p = DfsPolicy::paper();
        assert_eq!(p.update(300.0), 500_000_000, "cool: full speed");
        assert_eq!(p.update(349.9), 500_000_000, "below hot threshold");
        assert_eq!(p.update(350.1), 100_000_000, "crossed 350K: throttle");
        assert!(p.is_throttled());
        assert_eq!(p.update(345.0), 100_000_000, "inside hysteresis band: stay throttled");
        assert_eq!(p.update(339.9), 500_000_000, "cooled under 340K: full speed");
        assert!(!p.is_throttled());
    }

    #[test]
    fn three_level_ladder_steps_band_by_band() {
        let mut p = DfsPolicy::ladder(
            &[500_000_000, 250_000_000, 100_000_000],
            &[DfsBand { hot_k: 345.0, cool_k: 335.0 }, DfsBand { hot_k: 355.0, cool_k: 347.0 }],
        )
        .unwrap();
        assert_eq!(p.levels_hz().len(), 3);
        assert_eq!(p.update(300.0), 500_000_000, "cool: top rung");
        assert_eq!(p.update(346.0), 250_000_000, "crossed band 0: one rung down");
        assert_eq!(p.level(), 1);
        assert_eq!(p.update(350.0), 250_000_000, "inside band 1 hysteresis: hold");
        assert_eq!(p.update(356.0), 100_000_000, "crossed band 1: bottom rung");
        assert!(p.is_throttled());
        assert_eq!(p.update(348.0), 100_000_000, "above band 1 cool: hold");
        assert_eq!(p.update(346.0), 250_000_000, "under 347 K: one rung up");
        assert_eq!(p.update(340.0), 250_000_000, "inside band 0 hysteresis: hold");
        assert_eq!(p.update(334.0), 500_000_000, "under 335 K: back to the top");
        assert!(!p.is_throttled());
    }

    #[test]
    fn ladder_steps_one_band_per_window() {
        // Even a huge jump throttles one band per update: the state machine
        // reacts at sampling-window granularity like the paper's.
        let mut p = DfsPolicy::ladder(
            &[500_000_000, 250_000_000, 100_000_000],
            &[DfsBand { hot_k: 345.0, cool_k: 335.0 }, DfsBand { hot_k: 355.0, cool_k: 347.0 }],
        )
        .unwrap();
        assert_eq!(p.update(400.0), 250_000_000);
        assert_eq!(p.update(400.0), 100_000_000);
        assert_eq!(p.update(300.0), 250_000_000);
        assert_eq!(p.update(300.0), 500_000_000);
    }

    #[test]
    fn malformed_ladders_are_typed_errors() {
        use crate::error::PlatformError;
        let bad = |r: Result<DfsPolicy, PlatformError>, what: &str| {
            assert!(matches!(r, Err(PlatformError::DfsLadder { .. })), "{what}: {r:?}");
        };
        bad(DfsPolicy::new(340.0, 350.0, 2, 1), "inverted band");
        bad(DfsPolicy::new(350.0, 350.0, 2, 1), "empty band");
        bad(DfsPolicy::new(350.0, 340.0, 1, 1), "equal frequencies");
        bad(DfsPolicy::new(350.0, 340.0, 1, 2), "ascending frequencies");
        bad(DfsPolicy::new(350.0, 340.0, 2, 0), "zero frequency");
        bad(DfsPolicy::ladder(&[500], &[]), "single level");
        bad(DfsPolicy::ladder(&[500, 100], &[]), "missing band");
        bad(DfsPolicy::ladder(&[500, 100], &[DfsBand { hot_k: f64::NAN, cool_k: 340.0 }]), "NaN threshold");
        bad(
            DfsPolicy::ladder(
                &[500, 250, 100],
                &[DfsBand { hot_k: 355.0, cool_k: 345.0 }, DfsBand { hot_k: 350.0, cool_k: 340.0 }],
            ),
            "bands not increasing down the ladder",
        );
        assert!(DfsPolicy::new(350.0, 340.0, 500_000_000, 100_000_000).is_ok());
    }

    #[test]
    fn policy_labels_are_compact() {
        assert_eq!(DfsPolicy::paper().label(), "500-100MHz@350/340");
        let l = DfsPolicy::ladder(
            &[500_000_000, 250_000_000, 100_000_000],
            &[DfsBand { hot_k: 345.0, cool_k: 335.0 }, DfsBand { hot_k: 355.0, cool_k: 347.0 }],
        )
        .unwrap();
        assert_eq!(l.label(), "500-250-100MHz@345/335+355/347");
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_clock_panics() {
        let _ = Vpcm::new(0, 1);
    }
}
