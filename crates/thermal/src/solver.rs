//! Transient RC solver with non-linear silicon conductivity.
//!
//! # Hot-path layout (CSR + colored sweeps)
//!
//! The solver keeps every per-substep quantity in flat arrays indexed by the
//! grid's CSR adjacency (see [`crate::csr`]): per-entry conductances
//! (`g_entry`), per-cell convection conductances (`g_conv`, zero when the
//! cell has no convection path — the update needs no branch), and for the
//! semi-implicit path a precomputed reciprocal diagonal (`inv_diag`) so the
//! Gauss–Seidel update is one fused multiply-accumulate pass per cell.
//!
//! # Coefficient refresh lag
//!
//! Silicon conductivity `k(T) = 150·(300/T)^{4/3}` costs a `powf` per cell.
//! The temperature drift across one substep is micro-kelvins, so the
//! optimized paths refresh the non-linear coefficients lazily instead of
//! every substep: the explicit path every [`K_REFRESH`] stability-bounded
//! substeps (the seed's own cadence), the semi-implicit path whenever the
//! temperature field has drifted more than [`REFRESH_DRIFT_K`] since the
//! last refresh — tight in fast transients, nearly free at steady state.
//! The lagged coefficients perturb the trajectory orders of magnitude less
//! than the discretization error (the equivalence tests bound the drift
//! below 1e-4 K over a transient) while removing the `powf`s and the
//! per-edge divisions from the per-substep cost.
//!
//! # Parallel colored sweeps
//!
//! With cells partitioned into colors such that no color contains two
//! adjacent cells, a Gauss–Seidel sweep processes colors in order and every
//! cell within a color in parallel — the update of a cell reads only cells
//! of other colors, so there are no intra-color dependencies. Above
//! [`crate::GridConfig::parallel_threshold`] cells (mode
//! [`SweepMode::Auto`]) the color passes and the explicit flow accumulation
//! run on a persistent worker pool; below it everything stays on one thread
//! because fork-join overhead would exceed the sweep cost.
//!
//! [`SweepMode::Reference`] preserves the seed implementation's exact
//! arithmetic (natural-order serial sweeps, per-substep refresh) as the
//! golden baseline for equivalence tests and speedup measurements.

use crate::csr::{CellCsr, NO_CONV};
use crate::error::ThermalError;
use crate::floorplan::{ComponentId, Floorplan};
use crate::grid::{GridConfig, ImplicitSolve, Integrator, SweepMode, ThermalGrid};
use crate::mg::{MgTopology, Multigrid};
use crate::pool::{self, SpinBarrier, UnsafeSlice};
use crate::props::{silicon_conductivity, COPPER_CONDUCTIVITY};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use temu_state::{StateError, StateReader, StateWriter};

/// Cached handles into the process-wide metrics registry for the
/// per-substep hot path: one relaxed load (`temu_obs::enabled`) gates all
/// recording, and the handles are resolved once so a substep never takes
/// the registry lock.
struct SubstepObs {
    /// Wall-clock per implicit substep, nanoseconds.
    latency_ns: Arc<temu_obs::Histogram>,
    /// Gauss–Seidel sweeps (smoother sweeps, on the MG path) per substep.
    sweeps: Arc<temu_obs::Histogram>,
    /// Final per-substep residual in nano-kelvin (the `f64` residual is
    /// scaled by 1e9 so the log2 buckets resolve the 1e-6 K tolerance).
    residual_nk: Arc<temu_obs::Histogram>,
    /// Path counters: which solver serviced the substep.
    substeps_mg: Arc<temu_obs::Counter>,
    substeps_gs: Arc<temu_obs::Counter>,
    substeps_explicit: Arc<temu_obs::Counter>,
    substeps_fused: Arc<temu_obs::Counter>,
}

fn substep_obs() -> &'static SubstepObs {
    static OBS: std::sync::OnceLock<SubstepObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let scope = temu_obs::global().scope("thermal");
        SubstepObs {
            latency_ns: scope.histogram("substep_ns"),
            sweeps: scope.histogram("substep_sweeps"),
            residual_nk: scope.histogram("residual_nk"),
            substeps_mg: scope.counter("substeps_mg"),
            substeps_gs: scope.counter("substeps_gs"),
            substeps_explicit: scope.counter("substeps_explicit"),
            substeps_fused: scope.counter("substeps_fused"),
        }
    })
}

/// A residual in kelvin as integer nano-kelvin, saturating (negative and
/// non-finite inputs clamp to the range ends).
fn residual_nanokelvin(residual_k: f64) -> u64 {
    let nk = residual_k * 1e9;
    if nk.is_finite() && nk >= 0.0 {
        if nk >= u64::MAX as f64 {
            u64::MAX
        } else {
            nk as u64
        }
    } else if nk > 0.0 {
        u64::MAX
    } else {
        0
    }
}

/// Magic bytes of a [`ThermalModel::snapshot`] stream.
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"TSNP";

/// Version of the snapshot format written by this build.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Substeps between non-linear coefficient refreshes on the optimized
/// explicit path (the reference path matches the seed's fixed cadence; the
/// stability-bounded explicit substep is small enough that 16 substeps of
/// lag stay in the micro-kelvin range).
const K_REFRESH: u64 = 16;

/// Temperature drift since the last refresh that triggers a coefficient
/// refresh on the optimized semi-implicit path. The silicon conductivity
/// changes by `(4/3)/T ≈ 0.44 %` per kelvin, so a 5 mK lag perturbs the
/// conductances by ~2e-5 relative — an order of magnitude below the 1e-4 K
/// equivalence budget, while letting a near-steady mesh skip the `powf`
/// refresh for hundreds of substeps.
const REFRESH_DRIFT_K: f64 = 5e-3;

/// Hard cap on substeps between refreshes of the semi-implicit path.
const REFRESH_MAX_INTERVAL: u64 = 256;

/// Gauss–Seidel iteration cap per implicit substep.
const MAX_SWEEPS: usize = 60;

/// Multigrid cycle cap per implicit substep. Each cycle costs roughly
/// three fine-grid sweeps ([`FINE_POST_SWEEPS`] smoothing + one operator
/// application + the coarse visit), so 40 cycles is about double the
/// Gauss–Seidel sweep budget — warm-started substeps converge in 1–3
/// cycles, and the headroom exists for the rare cold-start substep, which
/// must *converge*, not merely stay within a pretty budget.
const MAX_CYCLES: usize = 40;

/// Fine-grid Gauss–Seidel sweeps after each cycle's coarse-grid correction
/// (the piecewise-constant prolongation re-introduces high-frequency error
/// that the post-sweeps must kill). There is no fine pre-smoothing: with a
/// zero initial guess the coarse correction restricts the outer FCG
/// residual directly — the calibrated sweet spot on the 46k-cell rung, a
/// full residual pass cheaper per cycle than the textbook pre+post shape.
const FINE_POST_SWEEPS: usize = 2;

/// Gauss–Seidel convergence threshold, kelvin: sub-tenth-of-a-microkelvin
/// per substep is far below both the discretization error and the sensor
/// quantization.
const SWEEP_TOL: f64 = 1e-7;

/// Derives a successive-over-relaxation factor from the observed
/// Gauss–Seidel contraction.
///
/// The first sweeps kill the high-frequency error modes fast, so the early
/// delta ratios badly underestimate the asymptotic contraction ρ (on a fine
/// mesh the ratio climbs from ~0.4 to ~0.95 over a few sweeps). The tuner
/// therefore watches plain-GS ratios until they stabilize (two consecutive
/// ratios within 2 %, or five sweeps), then locks the classic
/// `ω = 2 / (1 + √(1 − ρ))`. The system matrix is symmetric positive
/// definite, so SOR converges for any ω in (0, 2) — the clamp guards the
/// estimate, not correctness.
struct SorTuner {
    omega: f64,
    d_prev: f64,
    r_prev: f64,
}

impl SorTuner {
    fn new() -> SorTuner {
        SorTuner { omega: 1.0, d_prev: f64::INFINITY, r_prev: 0.0 }
    }

    /// Feeds the max update of the sweep just finished; returns the factor
    /// to use for the next sweep.
    fn observe(&mut self, sweep: usize, d: f64) -> f64 {
        if self.omega == 1.0 && sweep >= 1 && self.d_prev.is_finite() && self.d_prev > 0.0 {
            let r = d / self.d_prev;
            if r > 0.0 && r < 1.0 && sweep >= 2 && ((r - self.r_prev).abs() < 0.02 * r || sweep >= 5) {
                self.omega = (2.0 / (1.0 + (1.0 - r).sqrt())).clamp(1.0, 1.95);
            }
            self.r_prev = r;
        }
        self.d_prev = d;
        self.omega
    }
}

/// Convergence accounting of the implicit solver since model construction.
///
/// The headline field is `unconverged_substeps`: every implicit substep
/// that exhausted its iteration budget without meeting the tolerance and
/// was accepted anyway (the silent failure mode of large meshes under
/// plain Gauss–Seidel). A committed benchmark row with a non-zero count is
/// measuring a solver that quietly stopped converging — treat it as a bug,
/// not a number. [`GridConfig::strict_convergence`] upgrades the
/// accounting into a hard [`ThermalError::NotConverged`] from
/// [`ThermalModel::try_step`].
#[derive(Clone, Copy, PartialEq, Debug, Default)]
#[non_exhaustive]
pub struct SolverStats {
    /// Integration substeps taken (both integrators).
    pub substeps: u64,
    /// Implicit substeps accepted without reaching the convergence
    /// tolerance. Zero on a healthy run.
    pub unconverged_substeps: u64,
    /// Largest final-iteration update (max |ΔT| of the last sweep, K)
    /// among unconverged substeps — how far from converged the worst
    /// accepted substep still was. 0.0 when every substep converged.
    pub worst_residual_k: f64,
    /// Fine-grid Gauss–Seidel sweeps spent by implicit substeps.
    pub total_sweeps: u64,
    /// Multigrid W-cycles spent by implicit substeps (0 on the plain
    /// Gauss–Seidel path).
    pub total_cycles: u64,
}

impl SolverStats {
    /// The counter difference `self − base`, for reporting per-run deltas
    /// on top of the model's cumulative accounting. `worst_residual_k` is
    /// a watermark, not a counter: the value is carried from `self`, which
    /// is exact when the watermark was re-armed at `base` via
    /// [`ThermalModel::reset_residual_watermark`].
    #[must_use]
    pub fn delta_since(&self, base: &SolverStats) -> SolverStats {
        SolverStats {
            substeps: self.substeps - base.substeps,
            unconverged_substeps: self.unconverged_substeps - base.unconverged_substeps,
            worst_residual_k: self.worst_residual_k,
            total_sweeps: self.total_sweeps - base.total_sweeps,
            total_cycles: self.total_cycles - base.total_cycles,
        }
    }
}

/// The thermal model: a meshed floorplan plus its temperature state and the
/// per-component power inputs.
///
/// Integration cost per substep is linear in the number of cells (each cell
/// interacts only with its neighbours, §5.2).
#[derive(Clone, Debug)]
pub struct ThermalModel {
    /// The meshed cell network — immutable, shareable between models via
    /// [`ThermalModel::with_artifacts`].
    grid: Arc<ThermalGrid>,
    /// This model's own solver configuration. A shared `grid` carries the
    /// config of whoever built it, which may differ from this model's in
    /// the per-run knobs (integrator, sweep mode, strictness) — every
    /// config read in the solver goes through this field, never
    /// `grid.cfg`.
    cfg: GridConfig,
    /// Shared multigrid hierarchy topology, when the model was built from
    /// artifacts; the lazily-built [`Multigrid`] instantiates on it
    /// instead of re-coarsening the mesh.
    mg_topo: Option<Arc<MgTopology>>,
    temps: Vec<f64>,
    comp_power: Vec<f64>,
    cell_power: Vec<f64>,
    k_cell: Vec<f64>,
    flow: Vec<f64>,
    /// Per-edge conductance at the last refresh.
    g_edge: Vec<f64>,
    /// Per-CSR-entry copy of `g_edge` — sweeps read it sequentially.
    g_entry: Vec<f64>,
    /// Per-cell convection conductance (0 where no convection path).
    g_conv: Vec<f64>,
    /// Per-cell `C/h` for the semi-implicit diagonal (valid for `diag_h`).
    c_over_h: Vec<f64>,
    /// Per-cell Gauss–Seidel diagonal `C/h + Σg + g_conv` (valid for
    /// `diag_h`; the multigrid residual pass reads it directly).
    diag: Vec<f64>,
    /// Per-cell reciprocal Gauss–Seidel diagonal (valid for `diag_h`).
    inv_diag: Vec<f64>,
    /// Substep the diagonal arrays were built for (NaN = stale).
    diag_h: f64,
    /// Coarse-grid hierarchy of the multigrid implicit solver, built on
    /// first use (`None` until then, and forever when the model never runs
    /// a multigrid substep).
    mg: Option<Multigrid>,
    /// Right-hand side of the implicit system (multigrid path scratch).
    rhs: Vec<f64>,
    /// Fine-grid outer residual (multigrid path scratch).
    resid: Vec<f64>,
    /// Preconditioner output (multigrid path scratch).
    fcg_z: Vec<f64>,
    /// FCG search direction (multigrid path scratch).
    fcg_p: Vec<f64>,
    /// `A·p` (multigrid path scratch).
    fcg_ap: Vec<f64>,
    /// Scratch for `stable_dt` (reused across calls instead of allocating).
    g_scratch: Vec<f64>,
    /// Temperature snapshot at the last coefficient refresh (drift-based
    /// refresh policy of the semi-implicit path).
    refresh_temps: Vec<f64>,
    /// Per-cell temperature change of the previous implicit substep —
    /// extrapolated as the warm start of the next substep's sweeps.
    step_delta: Vec<f64>,
    /// Substep length `step_delta` was recorded at (NaN = no prediction);
    /// a different `h` means the prediction's scale is wrong.
    step_delta_h: f64,
    /// The substep change before `step_delta` (second-order warm start).
    step_delta_prev: Vec<f64>,
    /// Substep length `step_delta_prev` was recorded at (NaN = invalid).
    step_delta_prev_h: f64,
    /// Sweeps the last implicit substep needed (diagnostic).
    last_sweeps: usize,
    /// Multigrid cycles the last implicit substep needed (0 on the plain
    /// Gauss–Seidel path).
    last_cycles: usize,
    /// Whether the last implicit substep was accepted unconverged.
    last_substep_unconverged: bool,
    /// The last implicit substep's final iteration update, K.
    last_delta: f64,
    /// Implicit substeps accepted without reaching the convergence
    /// tolerance (see [`SolverStats`]).
    unconverged_substeps: u64,
    /// Largest final-iteration update among unconverged substeps, K.
    worst_unconverged_delta: f64,
    /// Fine-grid Gauss–Seidel sweeps spent by implicit substeps.
    total_sweeps: u64,
    /// Multigrid W-cycles spent by implicit substeps.
    total_cycles: u64,
    /// Implicit substeps since the last coefficient refresh. Persists
    /// across `step` calls: the coefficients depend only on temperatures,
    /// which do not move between calls, so a new sampling window must not
    /// force a refresh by itself.
    since_refresh: u64,
    /// Substeps taken since construction (perf accounting).
    substeps: u64,
    work: Vec<f64>,
    /// Per-worker reduction slots for parallel sweeps.
    worker_acc: Vec<f64>,
    time: f64,
    energy_in: f64,
    energy_out: f64,
}

impl ThermalModel {
    /// Meshes `fp` and initializes every cell at ambient temperature.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError`] if the grid configuration is invalid.
    pub fn new(fp: &Floorplan, cfg: &GridConfig) -> Result<ThermalModel, ThermalError> {
        let grid = Arc::new(ThermalGrid::build(fp, cfg)?);
        ThermalModel::with_artifacts(grid, None, cfg)
    }

    /// Builds a model on pre-built shared artifacts: the meshed grid and
    /// (optionally) the multigrid hierarchy topology, both behind `Arc`s
    /// so k models of one sweep share one mesh and one hierarchy instead
    /// of rebuilding them k times. `cfg` is *this model's* solver
    /// configuration; it must be mesh-compatible with the config the grid
    /// was built from (same [`GridConfig::mesh_fingerprint`]) but may
    /// differ in every per-run knob.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError`] if `cfg` is invalid.
    pub fn with_artifacts(
        grid: Arc<ThermalGrid>,
        mg_topo: Option<Arc<MgTopology>>,
        cfg: &GridConfig,
    ) -> Result<ThermalModel, ThermalError> {
        cfg.validate()?;
        debug_assert_eq!(
            grid.cfg.mesh_fingerprint(),
            cfg.mesh_fingerprint(),
            "shared grid geometry must match the model's config"
        );
        let n = grid.n_cells();
        let n_entries = grid.csr.n_entries();
        Ok(ThermalModel {
            temps: vec![cfg.ambient_k; n],
            comp_power: vec![0.0; grid.comp_cells.len()],
            cell_power: vec![0.0; n],
            k_cell: vec![0.0; n],
            flow: vec![0.0; n],
            g_edge: vec![0.0; grid.edges.len()],
            g_entry: vec![0.0; n_entries],
            g_conv: vec![0.0; n],
            c_over_h: vec![0.0; n],
            diag: vec![0.0; n],
            inv_diag: vec![0.0; n],
            diag_h: f64::NAN,
            mg: None,
            rhs: vec![0.0; n],
            resid: vec![0.0; n],
            fcg_z: vec![0.0; n],
            fcg_p: vec![0.0; n],
            fcg_ap: vec![0.0; n],
            g_scratch: vec![0.0; n],
            refresh_temps: vec![cfg.ambient_k; n],
            step_delta: vec![0.0; n],
            step_delta_h: f64::NAN,
            step_delta_prev: vec![0.0; n],
            step_delta_prev_h: f64::NAN,
            last_sweeps: 0,
            last_cycles: 0,
            last_substep_unconverged: false,
            last_delta: 0.0,
            unconverged_substeps: 0,
            worst_unconverged_delta: 0.0,
            total_sweeps: 0,
            total_cycles: 0,
            since_refresh: REFRESH_MAX_INTERVAL,
            substeps: 0,
            work: vec![cfg.ambient_k; n],
            worker_acc: Vec::new(),
            time: 0.0,
            energy_in: 0.0,
            energy_out: 0.0,
            cfg: *cfg,
            mg_topo,
            grid,
        })
    }

    /// The underlying grid.
    pub fn grid(&self) -> &ThermalGrid {
        &self.grid
    }

    /// The underlying grid as a shareable artifact (hand it to
    /// [`ThermalModel::with_artifacts`] to build sibling models without
    /// re-meshing).
    pub fn grid_arc(&self) -> Arc<ThermalGrid> {
        self.grid.clone()
    }

    /// This model's solver configuration.
    pub fn config(&self) -> &GridConfig {
        &self.cfg
    }

    /// Simulated seconds elapsed.
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Whether sweeps currently execute on the worker pool (resolves
    /// [`SweepMode::Auto`] against the mesh size and the pool width —
    /// a single-worker pool would add dispatch overhead for nothing, so
    /// `Auto` only engages when there is real parallelism to buy).
    pub fn uses_parallel_sweeps(&self) -> bool {
        match self.cfg.sweep {
            SweepMode::Reference | SweepMode::Serial => false,
            SweepMode::Parallel => true,
            SweepMode::Auto => {
                self.temps.len() >= self.cfg.parallel_threshold
                    && pool::global().n_workers() > 1
            }
        }
    }

    fn reference_mode(&self) -> bool {
        self.cfg.sweep == SweepMode::Reference
    }

    /// Whether the semi-implicit substeps run multigrid W-cycles (resolves
    /// [`ImplicitSolve::Auto`] against the mesh size). Always false for the
    /// explicit integrator and for the seed-faithful
    /// [`SweepMode::Reference`] path.
    pub fn uses_multigrid(&self) -> bool {
        if self.reference_mode() || !matches!(self.cfg.integrator, Integrator::SemiImplicit { .. }) {
            return false;
        }
        match self.cfg.implicit_solve {
            ImplicitSolve::GaussSeidel => false,
            ImplicitSolve::Multigrid => true,
            ImplicitSolve::Auto => self.temps.len() >= self.cfg.multigrid_threshold,
        }
    }

    /// Number of multigrid levels (including the fine grid) once the
    /// hierarchy has been built; `None` before the first multigrid substep
    /// (or forever when multigrid is not in use).
    pub fn multigrid_levels(&self) -> Option<usize> {
        self.mg.as_ref().map(Multigrid::n_levels)
    }

    /// Convergence accounting since construction (see [`SolverStats`]).
    pub fn solver_stats(&self) -> SolverStats {
        SolverStats {
            substeps: self.substeps,
            unconverged_substeps: self.unconverged_substeps,
            worst_residual_k: self.worst_unconverged_delta,
            total_sweeps: self.total_sweeps,
            total_cycles: self.total_cycles,
        }
    }

    /// Re-arms the `worst_residual_k` watermark without touching the
    /// cumulative counters. Callers that report per-run deltas (the
    /// co-emulation loop's per-call [`SolverStats`]) reset it at the start
    /// of each run so the reported residual belongs to that run alone.
    pub fn reset_residual_watermark(&mut self) {
        self.worst_unconverged_delta = 0.0;
    }

    /// Serializes the model's run state at a step boundary (between
    /// [`ThermalModel::try_step`] calls): temperatures, component powers,
    /// the coefficient-refresh anchor, the second-order warm-start vectors
    /// and their substep lengths, the convergence accounting and the
    /// time/energy bookkeeping. The mesh, the solver configuration and the
    /// multigrid hierarchy are *not* recorded — [`ThermalModel::restore`]
    /// rebuilds them deterministically from the same floorplan and config.
    ///
    /// The SOR tuner holds no state across substeps (a fresh
    /// [`SorTuner`] is constructed inside every solve), so snapshots taken
    /// at step boundaries cover it vacuously.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = StateWriter::new(SNAPSHOT_MAGIC, SNAPSHOT_VERSION);
        w.f64_slice(&self.temps);
        w.f64_slice(&self.comp_power);
        w.f64_slice(&self.refresh_temps);
        w.u64(self.since_refresh);
        w.bool(self.mg.is_some());
        w.f64_slice(&self.step_delta);
        w.f64(self.step_delta_h);
        w.f64_slice(&self.step_delta_prev);
        w.f64(self.step_delta_prev_h);
        w.usize(self.last_sweeps);
        w.usize(self.last_cycles);
        w.bool(self.last_substep_unconverged);
        w.f64(self.last_delta);
        w.u64(self.unconverged_substeps);
        w.f64(self.worst_unconverged_delta);
        w.u64(self.total_sweeps);
        w.u64(self.total_cycles);
        w.u64(self.substeps);
        w.f64(self.time);
        w.f64(self.energy_in);
        w.f64(self.energy_out);
        w.into_bytes()
    }

    /// Restores a [`ThermalModel::snapshot`] into a model built from the
    /// *same* floorplan and configuration. After a successful restore the
    /// model continues **bitwise-identically** to the snapshotted one: the
    /// conductances are re-derived at the recorded refresh anchor, the
    /// multigrid hierarchy (when the snapshotted model had built one) is
    /// re-aggregated from the same ambient-uniform conductances the
    /// original was built from, and the warm-start vectors resume the
    /// solver on the identical iterate.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] if the snapshot's geometry (cell or
    /// component count) disagrees with this model's — it belongs to a
    /// different floorplan or mesh — or the stream is corrupt. The model
    /// is unchanged on error.
    pub fn restore(&mut self, bytes: &[u8]) -> Result<(), StateError> {
        let (mut r, _) = StateReader::new(bytes, SNAPSHOT_MAGIC, SNAPSHOT_VERSION)?;
        let n = self.temps.len();
        let temps = r.f64_vec_exact(n)?;
        let comp_power = r.f64_vec_exact(self.comp_power.len())?;
        let refresh_temps = r.f64_vec_exact(n)?;
        let since_refresh = r.u64()?;
        let mg_built = r.bool()?;
        let step_delta = r.f64_vec_exact(n)?;
        let step_delta_h = r.f64()?;
        let step_delta_prev = r.f64_vec_exact(n)?;
        let step_delta_prev_h = r.f64()?;
        let last_sweeps = r.usize()?;
        let last_cycles = r.usize()?;
        let last_substep_unconverged = r.bool()?;
        let last_delta = r.f64()?;
        let unconverged_substeps = r.u64()?;
        let worst_unconverged_delta = r.f64()?;
        let total_sweeps = r.u64()?;
        let total_cycles = r.u64()?;
        let substeps = r.u64()?;
        let time = r.f64()?;
        let energy_in = r.f64()?;
        let energy_out = r.f64()?;
        r.finish()?;
        for &p in &comp_power {
            if !(p.is_finite() && p >= 0.0) {
                return Err(StateError::BadValue { what: "component power", value: p.to_bits() });
            }
        }
        self.set_powers(&comp_power);
        if mg_built && self.mg.is_none() {
            // The original hierarchy was aggregated from the first refresh's
            // conductances — the ambient-uniform field, since every model
            // starts at ambient. Rebuild from the same inputs so the
            // aggregation (and hence every coarse-grid visit) is identical.
            self.mg = Some(match &self.mg_topo {
                Some(topo) => Multigrid::from_topology(topo.clone()),
                None => {
                    let amb = self.cfg.ambient_k;
                    for i in 0..n {
                        self.k_cell[i] = self.conductivity(i, amb);
                    }
                    self.refresh_conductances();
                    Multigrid::build(&self.grid, &self.g_edge)
                }
            });
        }
        // Re-derive the lagged coefficients at the recorded refresh anchor,
        // then install the live temperatures on top. `refresh_conductances`
        // marks the implicit diagonal and the multigrid conductances stale;
        // the next substep rebuilds both from these exact inputs, which is
        // what the snapshotted model would have done too.
        self.temps.copy_from_slice(&refresh_temps);
        self.refresh_conductivities();
        self.refresh_conductances();
        self.refresh_temps.copy_from_slice(&refresh_temps);
        self.temps.copy_from_slice(&temps);
        self.since_refresh = since_refresh;
        self.step_delta = step_delta;
        self.step_delta_h = step_delta_h;
        self.step_delta_prev = step_delta_prev;
        self.step_delta_prev_h = step_delta_prev_h;
        self.last_sweeps = last_sweeps;
        self.last_cycles = last_cycles;
        self.last_substep_unconverged = last_substep_unconverged;
        self.last_delta = last_delta;
        self.unconverged_substeps = unconverged_substeps;
        self.worst_unconverged_delta = worst_unconverged_delta;
        self.total_sweeps = total_sweeps;
        self.total_cycles = total_cycles;
        self.substeps = substeps;
        self.time = time;
        self.energy_in = energy_in;
        self.energy_out = energy_out;
        Ok(())
    }

    /// Sets a component's dissipated power in watts (injected as equivalent
    /// current sources on its bottom-surface cells, weighted by area).
    ///
    /// # Panics
    ///
    /// Panics if `power_w` is negative or not finite.
    pub fn set_component_power(&mut self, comp: ComponentId, power_w: f64) {
        assert!(power_w >= 0.0 && power_w.is_finite(), "power must be a finite non-negative number");
        self.comp_power[comp] = power_w;
        // Bottom-layer cell index == tile index (layer 0 comes first).
        for &(tile, frac) in &self.grid.comp_cells[comp] {
            self.cell_power[tile] = power_w * frac;
        }
    }

    /// Sets all component powers at once.
    ///
    /// # Panics
    ///
    /// Panics if the slice length does not match the component count.
    pub fn set_powers(&mut self, powers_w: &[f64]) {
        assert_eq!(powers_w.len(), self.comp_power.len(), "one power value per floorplan component");
        for (c, &p) in powers_w.iter().enumerate() {
            self.set_component_power(c, p);
        }
    }

    /// Total power currently injected, W.
    pub fn total_power(&self) -> f64 {
        self.comp_power.iter().sum()
    }

    /// Cell temperatures (layer-major: bottom silicon first).
    pub fn temps(&self) -> &[f64] {
        &self.temps
    }

    /// Hottest cell temperature, K.
    pub fn max_temp(&self) -> f64 {
        self.temps.iter().copied().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Coolest cell temperature, K.
    pub fn min_temp(&self) -> f64 {
        self.temps.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Area-weighted mean temperature of a component's bottom cells — what
    /// the platform's temperature sensor for that component reads.
    pub fn component_temp(&self, comp: ComponentId) -> f64 {
        let cells = &self.grid.comp_cells[comp];
        let mut acc = 0.0;
        let mut total = 0.0;
        for &(tile, frac) in cells {
            acc += self.temps[tile] * frac;
            total += frac;
        }
        acc / total.max(f64::MIN_POSITIVE)
    }

    /// Hottest bottom cell of a component.
    pub fn component_max_temp(&self, comp: ComponentId) -> f64 {
        self.grid.comp_cells[comp]
            .iter()
            .map(|&(tile, _)| self.temps[tile])
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Temperatures of every component (sensor vector for the platform).
    pub fn component_temps(&self) -> Vec<f64> {
        (0..self.comp_power.len()).map(|c| self.component_temp(c)).collect()
    }

    /// Energy injected since construction, J.
    pub fn energy_in(&self) -> f64 {
        self.energy_in
    }

    /// Energy convected to ambient since construction, J.
    pub fn energy_out(&self) -> f64 {
        self.energy_out
    }

    /// Heat currently stored relative to ambient, J (`Σ C_i (T_i - T_amb)`).
    pub fn stored_energy(&self) -> f64 {
        let amb = self.cfg.ambient_k;
        self.temps.iter().zip(&self.grid.capacity).map(|(&t, &c)| c * (t - amb)).sum()
    }

    fn conductivity(&self, cell: usize, temp: f64) -> f64 {
        if self.grid.is_silicon(cell) {
            match self.cfg.silicon_k_override {
                Some(k) => k,
                None => silicon_conductivity(temp),
            }
        } else {
            COPPER_CONDUCTIVITY
        }
    }

    /// Recomputes per-cell conductivities at the current temperatures.
    fn refresh_conductivities(&mut self) {
        if self.uses_parallel_sweeps() && self.cfg.silicon_k_override.is_none() {
            // The powf per silicon cell is the single most expensive part of
            // a refresh — fan it out.
            let n = self.temps.len();
            let grid = &self.grid;
            let temps = &self.temps;
            let k_slice = UnsafeSlice::new(&mut self.k_cell);
            pool::global().run(&|w, nw| {
                for i in pool::chunk(n, w, nw) {
                    let k = if grid.is_silicon(i) {
                        silicon_conductivity(temps[i])
                    } else {
                        COPPER_CONDUCTIVITY
                    };
                    // SAFETY: chunks are disjoint; one writer per index.
                    unsafe { k_slice.write(i, k) };
                }
            });
        } else {
            for i in 0..self.temps.len() {
                self.k_cell[i] = self.conductivity(i, self.temps[i]);
            }
        }
    }

    /// Recomputes edge/entry/convection conductances from `k_cell` and
    /// marks the implicit diagonal stale.
    fn refresh_conductances(&mut self) {
        if self.uses_parallel_sweeps() {
            let (edges, csr, k_cell) = (&self.grid.edges, &self.grid.csr, &self.k_cell);
            let g_edge = UnsafeSlice::new(&mut self.g_edge);
            let g_entry = UnsafeSlice::new(&mut self.g_entry);
            let barrier = SpinBarrier::new(pool::global().n_workers());
            let n_entries = csr.edge.len();
            pool::global().run(&|w, nw| {
                for gi in pool::chunk(edges.len(), w, nw) {
                    let e = &edges[gi];
                    // SAFETY: chunks are disjoint; one writer per index.
                    unsafe { g_edge.write(gi, 1.0 / (e.g_a / k_cell[e.a] + e.g_b / k_cell[e.b])) };
                }
                // Every edge conductance lands before any entry copies it.
                barrier.wait();
                for k in pool::chunk(n_entries, w, nw) {
                    // SAFETY: disjoint writes; `g_edge` is read-only now.
                    unsafe { g_entry.write(k, g_edge.read(csr.edge[k] as usize)) };
                }
            });
        } else {
            for (gi, e) in self.grid.edges.iter().enumerate() {
                self.g_edge[gi] = 1.0 / (e.g_a / self.k_cell[e.a] + e.g_b / self.k_cell[e.b]);
            }
            let csr = &self.grid.csr;
            for (k, g) in self.g_entry.iter_mut().enumerate() {
                *g = self.g_edge[csr.edge[k] as usize];
            }
        }
        for &(cell, r_pkg, g_half) in &self.grid.convection {
            self.g_conv[cell] = 1.0 / (r_pkg + g_half / self.k_cell[cell]);
        }
        self.diag_h = f64::NAN;
        if let Some(mg) = &mut self.mg {
            mg.stale_g = true;
        }
    }

    fn refresh_all(&mut self) {
        self.refresh_conductivities();
        self.refresh_conductances();
        self.refresh_temps.copy_from_slice(&self.temps);
        self.since_refresh = 0;
    }

    /// Max |ΔT| of any cell since the coefficients were last refreshed.
    fn drift_since_refresh(&self) -> f64 {
        self.temps
            .iter()
            .zip(&self.refresh_temps)
            .map(|(t, r)| (t - r).abs())
            .fold(0.0, f64::max)
    }

    /// Builds the semi-implicit diagonal arrays for substep `h`.
    fn build_diag(&mut self, h: f64) {
        let n = self.temps.len();
        let (csr, capacity) = (&self.grid.csr, &self.grid.capacity);
        let (g_entry, g_conv) = (&self.g_entry, &self.g_conv);
        if self.uses_parallel_sweeps() {
            let c_over_h = UnsafeSlice::new(&mut self.c_over_h);
            let diag = UnsafeSlice::new(&mut self.diag);
            let inv_diag = UnsafeSlice::new(&mut self.inv_diag);
            pool::global().run(&|w, nw| {
                for i in pool::chunk(n, w, nw) {
                    let c = capacity[i] / h;
                    let g_sum: f64 =
                        g_entry[csr.offsets[i] as usize..csr.offsets[i + 1] as usize].iter().sum();
                    let d = c + g_sum + g_conv[i];
                    // SAFETY: chunks are disjoint; one writer per index.
                    unsafe { c_over_h.write(i, c) };
                    unsafe { diag.write(i, d) };
                    unsafe { inv_diag.write(i, 1.0 / d) };
                }
            });
        } else {
            for i in 0..n {
                let c = capacity[i] / h;
                let g_sum: f64 =
                    g_entry[csr.offsets[i] as usize..csr.offsets[i + 1] as usize].iter().sum();
                let d = c + g_sum + g_conv[i];
                self.c_over_h[i] = c;
                self.diag[i] = d;
                self.inv_diag[i] = 1.0 / d;
            }
        }
        self.diag_h = h;
    }

    /// Largest stable explicit substep for the current temperature field.
    ///
    /// Refreshes the conductances as a side effect (the explicit path
    /// relies on this for its first substeps).
    pub fn stable_dt(&mut self) -> f64 {
        self.refresh_all();
        let csr = &self.grid.csr;
        for i in 0..self.temps.len() {
            let g_sum: f64 = self.g_entry[csr.offsets[i] as usize..csr.offsets[i + 1] as usize].iter().sum();
            self.g_scratch[i] = g_sum + self.g_conv[i];
        }
        let mut dt = f64::INFINITY;
        for (i, &g) in self.g_scratch.iter().enumerate() {
            if g > 0.0 {
                dt = dt.min(self.grid.capacity[i] / g);
            }
        }
        dt * 0.3
    }

    /// Advances the model by `seconds`, substepping for stability.
    ///
    /// See the module docs for the refresh-lag and parallel-sweep
    /// machinery; the paper's §5.2 real-time budget (2 s of simulation on a
    /// 660-cell floorplan in under 2 s of host time) is what this hot path
    /// exists to beat.
    ///
    /// An implicit substep that exhausts its iteration budget is accepted
    /// and *recorded* in [`SolverStats`]; under
    /// [`GridConfig::strict_convergence`] use [`ThermalModel::try_step`]
    /// instead, which turns such a substep into an error.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or not finite, or (strict mode
    /// only) if an implicit substep fails to converge — call
    /// [`ThermalModel::try_step`] to handle that case gracefully.
    pub fn step(&mut self, seconds: f64) {
        if let Err(e) = self.try_step(seconds) {
            panic!("{e}");
        }
    }

    /// [`ThermalModel::step`], reporting strict-mode convergence failures
    /// as [`ThermalError::NotConverged`] instead of proceeding: integration
    /// stops at the offending substep, leaving the model at the last
    /// accepted state. Without [`GridConfig::strict_convergence`] this
    /// never errors.
    ///
    /// # Errors
    ///
    /// [`ThermalError::NotConverged`] in strict mode.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or not finite.
    pub fn try_step(&mut self, seconds: f64) -> Result<(), ThermalError> {
        assert!(seconds >= 0.0 && seconds.is_finite(), "step duration must be finite and non-negative");
        if seconds == 0.0 {
            return Ok(());
        }
        match self.cfg.integrator {
            Integrator::Explicit => {
                let dt_max = self.stable_dt();
                let n_sub = (seconds / dt_max).ceil().max(1.0) as u64;
                let dt = seconds / n_sub as f64;
                let reference = self.reference_mode();
                for n in 0..n_sub {
                    if n > 0 && n % K_REFRESH == 0 {
                        if reference {
                            self.refresh_conductivities();
                        } else {
                            self.refresh_all();
                        }
                    }
                    if reference {
                        self.substep_reference(dt);
                    } else {
                        self.substep_csr(dt);
                    }
                }
                if temu_obs::enabled() {
                    substep_obs().substeps_explicit.add(n_sub);
                }
                Ok(())
            }
            Integrator::SemiImplicit { dt } => {
                let n_sub = (seconds / dt).ceil().max(1.0) as u64;
                let h = seconds / n_sub as f64;
                let reference = self.reference_mode();
                let multigrid = self.uses_multigrid();
                for _ in 0..n_sub {
                    if reference {
                        self.implicit_substep_reference(h);
                    } else {
                        if self.since_refresh >= REFRESH_MAX_INTERVAL
                            || self.drift_since_refresh() > REFRESH_DRIFT_K
                        {
                            self.refresh_all();
                        }
                        let t0 = temu_obs::enabled().then(std::time::Instant::now);
                        if multigrid {
                            self.implicit_substep_mg(h);
                        } else {
                            self.implicit_substep_csr(h);
                        }
                        if let Some(t0) = t0 {
                            let o = substep_obs();
                            o.latency_ns.record_duration(t0.elapsed());
                            o.sweeps.record(self.last_sweeps as u64);
                            o.residual_nk.record(residual_nanokelvin(self.last_delta));
                            if multigrid { &o.substeps_mg } else { &o.substeps_gs }.inc();
                        }
                        self.since_refresh += 1;
                    }
                    self.check_strict()?;
                }
                Ok(())
            }
        }
    }

    /// In strict mode, converts a just-recorded unconverged substep into
    /// the typed error.
    fn check_strict(&self) -> Result<(), ThermalError> {
        if self.cfg.strict_convergence && self.last_substep_unconverged {
            return Err(ThermalError::NotConverged {
                time_s: self.time,
                residual_k: self.last_delta,
                sweeps: self.last_sweeps,
            });
        }
        Ok(())
    }

    /// Advances `k` models by `seconds` in lockstep, solving their
    /// implicit substeps as one batched many-RHS sweep: the k temperature
    /// iterates are packed in SoA layout (`soa[cell * k + model]`) and one
    /// pass over the shared CSR adjacency updates all k vectors per cell.
    /// The per-model arithmetic — warm start, SOR tuning, refresh policy,
    /// convergence test — is *exactly* the serial path's, in the same
    /// order, so the result is bitwise identical to calling
    /// [`ThermalModel::try_step`] on each model in turn; what batching
    /// buys is one traversal of the adjacency indices (and hot cache
    /// lines) servicing k scenarios instead of one.
    ///
    /// The fused kernel engages when every model shares the same grid
    /// `Arc` and integrator and runs the serial Gauss–Seidel path; any
    /// other mix (reference mode, parallel sweeps, multigrid, explicit
    /// integration) falls back to sequential stepping — still correct,
    /// just unbatched.
    ///
    /// # Errors
    ///
    /// [`ThermalError::NotConverged`] in strict mode, from the first model
    /// whose substep fails; integration stops there for every model, as
    /// [`ThermalModel::try_step`] stops at the offending substep.
    ///
    /// # Panics
    ///
    /// Panics if `seconds` is negative or not finite.
    pub fn try_step_batch(
        models: &mut [&mut ThermalModel],
        seconds: f64,
    ) -> Result<(), ThermalError> {
        assert!(seconds >= 0.0 && seconds.is_finite(), "step duration must be finite and non-negative");
        if models.is_empty() || seconds == 0.0 {
            return Ok(());
        }
        let fusable = {
            let (first, rest) = models.split_first().expect("non-empty");
            let serial_gs = |m: &ThermalModel| {
                matches!(m.cfg.integrator, Integrator::SemiImplicit { .. })
                    && !m.reference_mode()
                    && !m.uses_parallel_sweeps()
                    && !m.uses_multigrid()
            };
            models.len() >= 2
                && serial_gs(first)
                && rest.iter().all(|m| {
                    Arc::ptr_eq(&m.grid, &first.grid)
                        && m.cfg.integrator == first.cfg.integrator
                        && serial_gs(m)
                })
        };
        if !fusable {
            for m in models.iter_mut() {
                m.try_step(seconds)?;
            }
            return Ok(());
        }
        // Cap the fusion width: every model carries its own conductance/
        // capacitance arrays (the operator is quasi-nonlinear), so a fused
        // sweep's working set grows by ~n·10 doubles per model. Past a few
        // models that spills the cache level the serial path solves in,
        // and the fused pass gets slower, not faster. Chunks still
        // amortize the shared CSR index traversal; results are unchanged
        // (the models are mutually independent).
        const FUSE_WIDTH: usize = 8;
        if models.len() > FUSE_WIDTH {
            for chunk in models.chunks_mut(FUSE_WIDTH) {
                Self::try_step_batch(chunk, seconds)?;
            }
            return Ok(());
        }
        let Integrator::SemiImplicit { dt } = models[0].cfg.integrator else { unreachable!() };
        let n_sub = (seconds / dt).ceil().max(1.0) as u64;
        let h = seconds / n_sub as f64;
        let grid = models[0].grid.clone();
        let csr = &grid.csr;
        let n = grid.n_cells();
        let k = models.len();
        let mut tuners: Vec<SorTuner> = Vec::with_capacity(k);
        let mut omega = vec![1.0f64; k];
        let mut settled = vec![false; k];
        let mut sweeps_used = vec![MAX_SWEEPS; k];
        let mut final_delta = vec![f64::INFINITY; k];
        let mut converged = vec![false; k];
        let mut max_delta = vec![0.0f64; k];
        for _ in 0..n_sub {
            let t0 = temu_obs::enabled().then(std::time::Instant::now);
            for m in models.iter_mut() {
                if m.since_refresh >= REFRESH_MAX_INTERVAL || m.drift_since_refresh() > REFRESH_DRIFT_K {
                    m.refresh_all();
                }
                m.implicit_substep_begin(h);
            }
            // Fused sweeps: each model runs its own SorTuner/ω and stops
            // sweeping the moment its own update drops below tolerance,
            // exactly as `solve_serial` would. The models update their own
            // work vectors in place, in the same cell order as the serial
            // path, so every iterate is bit-for-bit the serial one; the
            // fusion wins by loading each cell's CSR row bounds and
            // neighbor indices once for all k models, and by interleaving
            // k independent Gauss–Seidel recurrences (the serial sweep is
            // latency-bound on its own dependency chain).
            tuners.clear();
            tuners.resize_with(k, SorTuner::new);
            omega.fill(1.0);
            settled.fill(false);
            sweeps_used.fill(MAX_SWEEPS);
            final_delta.fill(f64::INFINITY);
            converged.fill(false);
            for sweep in 0..MAX_SWEEPS {
                if settled.iter().all(|&s| s) {
                    break;
                }
                max_delta.fill(0.0);
                for i in 0..n {
                    let (lo, hi) = (csr.offsets[i] as usize, csr.offsets[i + 1] as usize);
                    let nbrs = &csr.nbr[lo..hi];
                    for (j, m) in models.iter_mut().enumerate() {
                        if settled[j] {
                            continue;
                        }
                        let mut num =
                            m.c_over_h[i] * m.temps[i] + m.cell_power[i] + m.g_conv[i] * m.cfg.ambient_k;
                        for (&g, &nb) in m.g_entry[lo..hi].iter().zip(nbrs) {
                            num += g * m.work[nb as usize];
                        }
                        let old = m.work[i];
                        let new = old + omega[j] * (num * m.inv_diag[i] - old);
                        max_delta[j] = max_delta[j].max((new - old).abs());
                        m.work[i] = new;
                    }
                }
                for j in 0..k {
                    if settled[j] {
                        continue;
                    }
                    final_delta[j] = max_delta[j];
                    if max_delta[j] < SWEEP_TOL {
                        settled[j] = true;
                        sweeps_used[j] = sweep + 1;
                        converged[j] = true;
                    } else {
                        omega[j] = tuners[j].observe(sweep, max_delta[j]);
                    }
                }
            }
            for (j, m) in models.iter_mut().enumerate() {
                let amb = m.cfg.ambient_k;
                m.record_implicit(sweeps_used[j], 0, final_delta[j], converged[j]);
                m.implicit_substep_finish(h, amb);
                m.since_refresh += 1;
            }
            if let Some(t0) = t0 {
                let o = substep_obs();
                // One fused round advances all k models one substep; the
                // latency histogram records the round (amortized cost),
                // the counter the per-model substeps it serviced.
                o.latency_ns.record_duration(t0.elapsed());
                o.substeps_fused.add(k as u64);
                for j in 0..k {
                    o.sweeps.record(sweeps_used[j] as u64);
                    o.residual_nk.record(residual_nanokelvin(final_delta[j]));
                }
            }
            for m in models.iter() {
                m.check_strict()?;
            }
        }
        Ok(())
    }

    /// One backward-Euler substep on the optimized path: solve
    /// `(C/h + G) T' = C/h * T + P + G_conv * T_amb` by colored Gauss–Seidel
    /// with conductances lagged at the last refresh. The system matrix is
    /// strictly diagonally dominant, so the sweeps converge unconditionally
    /// in any order.
    fn implicit_substep_csr(&mut self, h: f64) {
        self.implicit_substep_begin(h);
        let amb = self.cfg.ambient_k;
        let (sweeps, delta, converged) = if self.uses_parallel_sweeps() {
            self.solve_colored_parallel(amb)
        } else {
            self.solve_serial(amb)
        };
        self.record_implicit(sweeps, 0, delta, converged);
        self.implicit_substep_finish(h, amb);
    }

    /// One backward-Euler substep solved by multigrid W-cycles: the
    /// warm-started fine-grid Gauss–Seidel sweeps act as the smoother
    /// (colored and pool-parallel exactly like the plain path), and the
    /// smooth error remainder is corrected on the aggregated coarse
    /// hierarchy ([`crate::mg`]). Falls back to plain sweeps when the mesh
    /// is too small to coarsen.
    fn implicit_substep_mg(&mut self, h: f64) {
        // The hierarchy topology is built once, from the first refreshed
        // conductances (the matching strengths); `refresh_all` has run by
        // the time any substep executes. A model built on a shared
        // topology artifact instantiates on it instead — identical, since
        // the artifact was built at the same ambient-uniform conductances.
        if self.mg.is_none() {
            self.mg = Some(match &self.mg_topo {
                Some(topo) => Multigrid::from_topology(topo.clone()),
                None => Multigrid::build(&self.grid, &self.g_edge),
            });
        }
        if self.mg.as_ref().expect("just built").is_degenerate() {
            self.implicit_substep_csr(h);
            return;
        }
        self.implicit_substep_begin(h);
        {
            let mg = self.mg.as_mut().expect("just built");
            if mg.stale_g {
                mg.refresh_g(&self.g_edge, &self.g_conv);
            }
            if !mg.diag_ready(h) {
                mg.build_diag(h);
            }
        }
        let amb = self.cfg.ambient_k;
        // Precompute the right-hand side once: the smoother re-reads it
        // every sweep and the residual pass every cycle.
        for i in 0..self.rhs.len() {
            self.rhs[i] = self.c_over_h[i] * self.temps[i] + self.cell_power[i] + self.g_conv[i] * amb;
        }
        let parallel = self.uses_parallel_sweeps();
        let csr = &self.grid.csr;
        let mg = self.mg.as_mut().expect("just built");
        let (g_entry, diag, inv_diag) = (&self.g_entry, &self.diag, &self.inv_diag);
        let (rhs, work) = (&self.rhs, &mut self.work);
        let resid = &mut self.resid;
        let (z, p, ap) = (&mut self.fcg_z, &mut self.fcg_p, &mut self.fcg_ap);
        let mut sweeps = 0usize;
        let mut cycles = 0usize;
        let mut converged = false;
        // Outer flexible CG on the warm-started iterate, preconditioned by
        // one multigrid cycle per iteration. The convergence measure is the
        // diagonally-scaled residual `max |r_i| / A_ii` — the size of the
        // next Jacobi update, the same "last update below tolerance"
        // contract the Gauss–Seidel path enforces.
        let mut delta = fine_residual(csr, g_entry, diag, inv_diag, rhs, work, resid);
        if delta < SWEEP_TOL {
            converged = true;
        }
        let mut p_ap_prev = 0.0;
        while !converged && cycles < MAX_CYCLES {
            // Preconditioner: z ≈ A⁻¹ resid. With a zero initial guess the
            // outer residual restricts directly (see [`FINE_POST_SWEEPS`])
            // and the prolonged correction is assigned, not accumulated.
            mg.coarse_correction(resid, z);
            if parallel {
                gs_sweeps_colored_parallel(csr, g_entry, inv_diag, resid, z, FINE_POST_SWEEPS);
            } else {
                // Forward + backward: a symmetric smoother keeps the whole
                // preconditioner symmetric positive definite, which the
                // outer conjugate-gradient acceleration rewards with
                // visibly fewer cycles than two forward sweeps.
                gs_sweeps_serial(csr, g_entry, inv_diag, resid, z, 1);
                gs_sweep_serial_rev(csr, g_entry, inv_diag, resid, z);
            }
            sweeps += FINE_POST_SWEEPS;
            // Flexible CG update (β from the stored A·p — the
            // preconditioner is not constant across iterations).
            if cycles == 0 {
                p.copy_from_slice(z);
            } else {
                let beta = -dot(z, ap) / p_ap_prev;
                for i in 0..p.len() {
                    p[i] = z[i] + beta * p[i];
                }
            }
            let (p_ap, z_r) = fine_apply_dots(csr, g_entry, diag, p, ap, z, resid);
            if p_ap <= 0.0 || z_r == 0.0 {
                break;
            }
            p_ap_prev = p_ap;
            let alpha = z_r / p_ap;
            delta = 0.0;
            for i in 0..work.len() {
                work[i] += alpha * p[i];
                let r = resid[i] - alpha * ap[i];
                resid[i] = r;
                delta = delta.max((r * inv_diag[i]).abs());
            }
            cycles += 1;
            if delta < SWEEP_TOL {
                converged = true;
            }
        }
        self.record_implicit(sweeps, cycles, delta, converged);
        self.implicit_substep_finish(h, amb);
    }

    /// Shared head of an optimized implicit substep: per-`h` diagonals and
    /// the warm start. Extrapolating the previous substep's per-cell change
    /// leaves an O(h²) leftover error under smooth heating instead of O(h)
    /// — and with *two* previous changes available, extrapolating the
    /// change linearly (`2δₙ − δₙ₋₁`) shaves another order, which
    /// typically saves most of the iterations.
    fn implicit_substep_begin(&mut self, h: f64) {
        if self.diag_h != h {
            self.build_diag(h);
        }
        if self.step_delta_h == h {
            if self.step_delta_prev_h == h {
                for i in 0..self.work.len() {
                    self.work[i] =
                        self.temps[i] + 2.0 * self.step_delta[i] - self.step_delta_prev[i];
                }
            } else {
                for i in 0..self.work.len() {
                    self.work[i] = self.temps[i] + self.step_delta[i];
                }
            }
        } else {
            self.work.copy_from_slice(&self.temps);
        }
    }

    /// Shared tail of an optimized implicit substep: warm-start state,
    /// energy bookkeeping on the accepted state, and the swap.
    fn implicit_substep_finish(&mut self, h: f64, amb: f64) {
        std::mem::swap(&mut self.step_delta, &mut self.step_delta_prev);
        self.step_delta_prev_h = self.step_delta_h;
        for i in 0..self.work.len() {
            self.step_delta[i] = self.work[i] - self.temps[i];
        }
        self.step_delta_h = h;
        let mut out = 0.0;
        for &(cell, _, _) in &self.grid.convection {
            out += (self.work[cell] - amb) * self.g_conv[cell];
        }
        self.energy_out += out * h;
        self.energy_in += self.total_power() * h;
        std::mem::swap(&mut self.temps, &mut self.work);
        self.time += h;
        self.substeps += 1;
    }

    /// Records one implicit substep's solver effort and convergence
    /// outcome.
    fn record_implicit(&mut self, sweeps: usize, cycles: usize, delta: f64, converged: bool) {
        self.last_sweeps = sweeps;
        self.last_cycles = cycles;
        self.last_delta = delta;
        self.last_substep_unconverged = !converged;
        self.total_sweeps += sweeps as u64;
        self.total_cycles += cycles as u64;
        if !converged {
            self.unconverged_substeps += 1;
            self.worst_unconverged_delta = self.worst_unconverged_delta.max(delta);
        }
    }

    // (The SOR factor derivation lives on `SorTuner`.)

    /// Fine-grid Gauss–Seidel sweeps the last implicit substep needed
    /// (diagnostic, for the scaling benchmark's sweep statistics).
    pub fn last_sweep_count(&self) -> usize {
        self.last_sweeps
    }

    /// Multigrid W-cycles the last implicit substep needed (0 on the plain
    /// Gauss–Seidel path).
    pub fn last_cycle_count(&self) -> usize {
        self.last_cycles
    }

    /// Integration substeps taken since construction (perf accounting —
    /// the scaling benchmark's substeps/second numerator).
    pub fn substeps_taken(&self) -> u64 {
        self.substeps
    }

    /// Serial Gauss–Seidel/SOR solve in natural cell order: plain sweeps
    /// until the contraction ratio stabilizes, then over-relaxed sweeps
    /// until [`SWEEP_TOL`]. Returns `(sweeps, final max |ΔT|, converged)`.
    fn solve_serial(&mut self, amb: f64) -> (usize, f64, bool) {
        let csr = &self.grid.csr;
        let mut tuner = SorTuner::new();
        let mut omega = 1.0f64;
        let mut max_delta = f64::INFINITY;
        for sweep in 0..MAX_SWEEPS {
            max_delta = 0.0f64;
            for i in 0..self.work.len() {
                let mut num = self.c_over_h[i] * self.temps[i] + self.cell_power[i] + self.g_conv[i] * amb;
                for k in csr.offsets[i] as usize..csr.offsets[i + 1] as usize {
                    num += self.g_entry[k] * self.work[csr.nbr[k] as usize];
                }
                let old = self.work[i];
                let new = old + omega * (num * self.inv_diag[i] - old);
                max_delta = max_delta.max((new - old).abs());
                self.work[i] = new;
            }
            if max_delta < SWEEP_TOL {
                return (sweep + 1, max_delta, true);
            }
            omega = tuner.observe(sweep, max_delta);
        }
        (MAX_SWEEPS, max_delta, false)
    }

    /// Colored Gauss–Seidel/SOR solve on the worker pool, dispatched as a
    /// *single* pool job per substep: workers sweep color by color with a
    /// spin barrier at each color boundary (within a color no two cells are
    /// adjacent, so the chunked updates race on nothing) and worker 0
    /// reduces the convergence test and the SOR factor between sweeps.
    /// Returns `(sweeps, final max |ΔT|, converged)`.
    fn solve_colored_parallel(&mut self, amb: f64) -> (usize, f64, bool) {
        let pool = pool::global();
        let nw = pool.n_workers();
        self.worker_acc.resize(nw, 0.0);
        let csr = &self.grid.csr;
        let (g_entry, g_conv) = (&self.g_entry, &self.g_conv);
        let (c_over_h, inv_diag) = (&self.c_over_h, &self.inv_diag);
        let (temps, cell_power) = (&self.temps, &self.cell_power);
        let work = UnsafeSlice::new(&mut self.work);
        let acc = UnsafeSlice::new(&mut self.worker_acc);
        let barrier = SpinBarrier::new(nw);
        let omega_bits = AtomicU64::new(1.0f64.to_bits());
        let stop = AtomicUsize::new(0);
        let sweeps_done = AtomicUsize::new(MAX_SWEEPS);
        let delta_bits = AtomicU64::new(f64::INFINITY.to_bits());
        pool.run(&|w, n| {
            let mut tuner = SorTuner::new(); // only worker 0's is consulted
            for sweep in 0..MAX_SWEEPS {
                let omega = f64::from_bits(omega_bits.load(Ordering::Acquire));
                let mut local_max = 0.0f64;
                for color in 0..csr.n_colors() {
                    let cells = csr.color_cells(color);
                    for &cell in &cells[pool::chunk(cells.len(), w, n)] {
                        let i = cell as usize;
                        let mut num = c_over_h[i] * temps[i] + cell_power[i] + g_conv[i] * amb;
                        let (lo, hi) = (csr.offsets[i] as usize, csr.offsets[i + 1] as usize);
                        for (&g, &nb) in g_entry[lo..hi].iter().zip(&csr.nbr[lo..hi]) {
                            // SAFETY: neighbours are never this color, so no
                            // worker writes them during this color pass.
                            num += g * unsafe { work.read(nb as usize) };
                        }
                        // SAFETY: cell `i` is in exactly one worker's chunk.
                        let old = unsafe { work.read(i) };
                        let new = old + omega * (num * inv_diag[i] - old);
                        local_max = local_max.max((new - old).abs());
                        unsafe { work.write(i, new) };
                    }
                    barrier.wait();
                }
                // SAFETY: one slot per worker.
                unsafe { acc.write(w, local_max) };
                barrier.wait();
                if w == 0 {
                    let mut max_delta = 0.0f64;
                    for i in 0..n {
                        // SAFETY: every worker wrote its slot before the
                        // barrier.
                        max_delta = max_delta.max(unsafe { acc.read(i) });
                    }
                    delta_bits.store(max_delta.to_bits(), Ordering::Relaxed);
                    if max_delta < SWEEP_TOL {
                        stop.store(1, Ordering::Release);
                        sweeps_done.store(sweep + 1, Ordering::Relaxed);
                    } else {
                        omega_bits.store(tuner.observe(sweep, max_delta).to_bits(), Ordering::Release);
                    }
                }
                barrier.wait();
                if stop.load(Ordering::Acquire) == 1 {
                    break;
                }
            }
        });
        let delta = f64::from_bits(delta_bits.load(Ordering::Relaxed));
        let converged = stop.load(Ordering::Relaxed) == 1;
        (sweeps_done.load(Ordering::Relaxed), delta, converged)
    }

    /// One forward-Euler substep on the optimized path: per-cell flow
    /// accumulation over the CSR entries (each edge is visited from both
    /// ends, which keeps the update conflict-free and the conservation
    /// exact — `g·(T_i−T_j)` and `g·(T_j−T_i)` are exact negations).
    fn substep_csr(&mut self, dt: f64) {
        let amb = self.cfg.ambient_k;
        let n = self.temps.len();
        let out = if self.uses_parallel_sweeps() {
            let pool = pool::global();
            let nw = pool.n_workers();
            self.worker_acc.resize(nw, 0.0);
            let csr = &self.grid.csr;
            let (g_entry, g_conv) = (&self.g_entry, &self.g_conv);
            let (cell_power, capacity) = (&self.cell_power, &self.grid.capacity);
            let temps = UnsafeSlice::new(&mut self.temps);
            let flow = UnsafeSlice::new(&mut self.flow);
            let acc = UnsafeSlice::new(&mut self.worker_acc);
            let barrier = SpinBarrier::new(nw);
            pool.run(&|w, n_workers| {
                let range = pool::chunk(n, w, n_workers);
                let mut local_out = 0.0;
                for i in range.clone() {
                    // SAFETY: nobody writes `temps` before the barrier.
                    let t_i = unsafe { temps.read(i) };
                    let mut f = cell_power[i];
                    let (lo, hi) = (csr.offsets[i] as usize, csr.offsets[i + 1] as usize);
                    for (&g, &nb) in g_entry[lo..hi].iter().zip(&csr.nbr[lo..hi]) {
                        f += g * (unsafe { temps.read(nb as usize) } - t_i);
                    }
                    let q_conv = g_conv[i] * (t_i - amb);
                    f -= q_conv;
                    local_out += q_conv;
                    // SAFETY: chunks are disjoint; one writer per index.
                    unsafe { flow.write(i, f) };
                }
                // SAFETY: one slot per worker.
                unsafe { acc.write(w, local_out) };
                // All flows are computed before any temperature moves.
                barrier.wait();
                for i in range {
                    // SAFETY: chunks are disjoint; one writer per index, and
                    // no worker reads foreign temperatures after the barrier.
                    unsafe { temps.write(i, temps.read(i) + flow.read(i) * dt / capacity[i]) };
                }
            });
            self.worker_acc[..nw].iter().sum()
        } else {
            let csr = &self.grid.csr;
            let mut out = 0.0;
            for i in 0..n {
                let mut f = self.cell_power[i];
                let t_i = self.temps[i];
                for k in csr.offsets[i] as usize..csr.offsets[i + 1] as usize {
                    f += self.g_entry[k] * (self.temps[csr.nbr[k] as usize] - t_i);
                }
                let q_conv = self.g_conv[i] * (t_i - amb);
                f -= q_conv;
                out += q_conv;
                self.flow[i] = f;
            }
            for i in 0..n {
                self.temps[i] += self.flow[i] * dt / self.grid.capacity[i];
            }
            out
        };
        self.energy_in += self.total_power() * dt;
        self.energy_out += out * dt;
        self.time += dt;
        self.substeps += 1;
    }

    /// Seed-faithful backward-Euler substep (refresh every substep,
    /// natural-order serial sweeps, per-edge divisions) — the golden
    /// baseline.
    fn implicit_substep_reference(&mut self, h: f64) {
        let amb = self.cfg.ambient_k;
        for i in 0..self.temps.len() {
            self.k_cell[i] = self.conductivity(i, self.temps[i]);
        }
        for (gi, e) in self.grid.edges.iter().enumerate() {
            self.g_edge[gi] = 1.0 / (e.g_a / self.k_cell[e.a] + e.g_b / self.k_cell[e.b]);
        }
        self.work.copy_from_slice(&self.temps);
        let csr = &self.grid.csr;
        let mut sweeps = MAX_SWEEPS;
        let mut final_delta = f64::INFINITY;
        let mut converged = false;
        for sweep in 0..MAX_SWEEPS {
            let mut max_delta = 0.0f64;
            for i in 0..self.work.len() {
                let c_over_h = self.grid.capacity[i] / h;
                let mut num = c_over_h * self.temps[i] + self.cell_power[i];
                let mut diag = c_over_h;
                for k in csr.offsets[i] as usize..csr.offsets[i + 1] as usize {
                    let g = self.g_edge[csr.edge[k] as usize];
                    num += g * self.work[csr.nbr[k] as usize];
                    diag += g;
                }
                if csr.conv[i] != NO_CONV {
                    let (_, r_pkg, g_half) = self.grid.convection[csr.conv[i] as usize];
                    let g = 1.0 / (r_pkg + g_half / self.k_cell[i]);
                    num += g * amb;
                    diag += g;
                }
                let new = num / diag;
                max_delta = max_delta.max((new - self.work[i]).abs());
                self.work[i] = new;
            }
            final_delta = max_delta;
            if max_delta < SWEEP_TOL {
                sweeps = sweep + 1;
                converged = true;
                break;
            }
        }
        // The arithmetic above is seed-faithful; the accounting is not part
        // of the trajectory, so the reference path surfaces non-convergence
        // like every other path.
        self.record_implicit(sweeps, 0, final_delta, converged);
        let mut out = 0.0;
        for &(cell, r_pkg, g_half) in &self.grid.convection {
            out += (self.work[cell] - amb) / (r_pkg + g_half / self.k_cell[cell]);
        }
        self.energy_out += out * h;
        self.energy_in += self.total_power() * h;
        std::mem::swap(&mut self.temps, &mut self.work);
        self.time += h;
        self.substeps += 1;
    }

    /// Seed-faithful forward-Euler substep (edge-wise divisions).
    fn substep_reference(&mut self, dt: f64) {
        let amb = self.cfg.ambient_k;
        self.flow.copy_from_slice(&self.cell_power);
        for e in &self.grid.edges {
            let r = e.g_a / self.k_cell[e.a] + e.g_b / self.k_cell[e.b];
            let q = (self.temps[e.a] - self.temps[e.b]) / r;
            self.flow[e.a] -= q;
            self.flow[e.b] += q;
        }
        let mut out = 0.0;
        for &(cell, r_pkg, g_half) in &self.grid.convection {
            let r = r_pkg + g_half / self.k_cell[cell];
            let q = (self.temps[cell] - amb) / r;
            self.flow[cell] -= q;
            out += q;
        }
        for i in 0..self.temps.len() {
            self.temps[i] += self.flow[i] * dt / self.grid.capacity[i];
        }
        self.energy_in += self.total_power() * dt;
        self.energy_out += out * dt;
        self.time += dt;
        self.substeps += 1;
    }

    /// Runs until the hottest cell changes by less than `tol_k_per_s` kelvin
    /// per second (or `max_seconds` elapse). Returns the simulated seconds it
    /// took.
    ///
    /// The probe interval between convergence checks starts at 50 ms and
    /// doubles (capped at 1.6 s) once the rate falls within an order of
    /// magnitude of the tolerance — the long exponential tail of a large
    /// mesh is screened with a handful of checks instead of thousands of
    /// tiny ones.
    pub fn run_to_steady(&mut self, max_seconds: f64, tol_k_per_s: f64) -> f64 {
        let start = self.time;
        let mut probe = 0.05f64;
        while self.time - start < max_seconds {
            let before = self.max_temp();
            let window = probe.min(max_seconds - (self.time - start)).max(1e-9);
            self.step(window);
            let rate = (self.max_temp() - before).abs() / window;
            if rate < tol_k_per_s {
                break;
            }
            if rate < 10.0 * tol_k_per_s {
                probe = (probe * 2.0).min(1.6);
            }
        }
        self.time - start
    }

    /// Jumps directly to the steady state of the current power vector by
    /// relaxing the network with the capacitive terms removed (backward
    /// Euler with an effectively infinite step). Simulated time does not
    /// advance; energy counters are untouched. Useful for worst-case
    /// floorplan screening before running transients.
    pub fn solve_steady_state(&mut self) {
        // March with steps much longer than the package time constant: the
        // capacitive diagonal keeps Gauss-Seidel contracting per step while
        // each step closes most of the remaining distance, and the lagged
        // non-linear conductivities settle along the way.
        let saved_time = self.time;
        let (saved_in, saved_out) = (self.energy_in, self.energy_out);
        // Individual strides are *expected* to stop short of the transient
        // tolerance (the outer loop converges, not each stride), so they
        // must not pollute the convergence accounting or trip strict mode.
        let saved_unconverged = self.unconverged_substeps;
        let saved_worst = self.worst_unconverged_delta;
        let (saved_sweeps, saved_cycles) = (self.total_sweeps, self.total_cycles);
        // With the capacitive diagonal nearly gone at h = 50 s, the system
        // is the pure conduction network — exactly where large meshes need
        // the multigrid strides (plain Gauss–Seidel stagnates there, which
        // would fool the max-temp convergence test below).
        let multigrid = self.uses_multigrid();
        for _ in 0..64 {
            let before = self.max_temp();
            if self.reference_mode() {
                self.implicit_substep_reference(50.0);
            } else {
                // Temperatures move by tens of kelvin per 50 s stride, so
                // refresh the non-linear coefficients every stride here.
                self.refresh_all();
                if multigrid {
                    self.implicit_substep_mg(50.0);
                } else {
                    self.implicit_substep_csr(50.0);
                }
            }
            if (self.max_temp() - before).abs() < 1e-6 {
                break;
            }
        }
        self.time = saved_time;
        self.energy_in = saved_in;
        self.energy_out = saved_out;
        self.unconverged_substeps = saved_unconverged;
        self.worst_unconverged_delta = saved_worst;
        self.total_sweeps = saved_sweeps;
        self.total_cycles = saved_cycles;
        self.last_substep_unconverged = false;
    }
}

/// `sweeps` natural-order Gauss–Seidel sweeps of `A x = rhs` on the fine
/// grid (plain, no over-relaxation — multigrid smoothing).
fn gs_sweeps_serial(
    csr: &CellCsr,
    g_entry: &[f64],
    inv_diag: &[f64],
    rhs: &[f64],
    work: &mut [f64],
    sweeps: usize,
) {
    for _ in 0..sweeps {
        for i in 0..work.len() {
            let mut num = rhs[i];
            for k in csr.offsets[i] as usize..csr.offsets[i + 1] as usize {
                num += g_entry[k] * work[csr.nbr[k] as usize];
            }
            work[i] = num * inv_diag[i];
        }
    }
}

/// The colored worker-pool counterpart of [`gs_sweeps_serial`]: one pool
/// job runs all `sweeps` with a spin barrier at every color boundary.
fn gs_sweeps_colored_parallel(
    csr: &CellCsr,
    g_entry: &[f64],
    inv_diag: &[f64],
    rhs: &[f64],
    work: &mut [f64],
    sweeps: usize,
) {
    let pool = pool::global();
    let nw = pool.n_workers();
    let work = UnsafeSlice::new(work);
    let barrier = SpinBarrier::new(nw);
    pool.run(&|w, n| {
        for _ in 0..sweeps {
            for color in 0..csr.n_colors() {
                let cells = csr.color_cells(color);
                for &cell in &cells[pool::chunk(cells.len(), w, n)] {
                    let i = cell as usize;
                    let mut num = rhs[i];
                    let (lo, hi) = (csr.offsets[i] as usize, csr.offsets[i + 1] as usize);
                    for (&g, &nb) in g_entry[lo..hi].iter().zip(&csr.nbr[lo..hi]) {
                        // SAFETY: neighbours are never this color, so no
                        // worker writes them during this color pass.
                        num += g * unsafe { work.read(nb as usize) };
                    }
                    // SAFETY: cell `i` is in exactly one worker's chunk.
                    unsafe { work.write(i, num * inv_diag[i]) };
                }
                barrier.wait();
            }
        }
    });
}

/// One *reverse*-order Gauss–Seidel sweep of `A x = rhs` on the fine grid
/// (the backward half of the symmetric smoother).
fn gs_sweep_serial_rev(
    csr: &CellCsr,
    g_entry: &[f64],
    inv_diag: &[f64],
    rhs: &[f64],
    work: &mut [f64],
) {
    for i in (0..work.len()).rev() {
        let mut num = rhs[i];
        for k in csr.offsets[i] as usize..csr.offsets[i + 1] as usize {
            num += g_entry[k] * work[csr.nbr[k] as usize];
        }
        work[i] = num * inv_diag[i];
    }
}

/// `ap = A p` on the fine grid, with the FCG inner products `(p·ap, z·r)`
/// accumulated in the same pass.
fn fine_apply_dots(
    csr: &CellCsr,
    g_entry: &[f64],
    diag: &[f64],
    p: &[f64],
    ap: &mut [f64],
    z: &[f64],
    r: &[f64],
) -> (f64, f64) {
    let mut p_ap = 0.0;
    let mut z_r = 0.0;
    for i in 0..p.len() {
        let mut s = diag[i] * p[i];
        for k in csr.offsets[i] as usize..csr.offsets[i + 1] as usize {
            s -= g_entry[k] * p[csr.nbr[k] as usize];
        }
        ap[i] = s;
        p_ap += p[i] * s;
        z_r += z[i] * r[i];
    }
    (p_ap, z_r)
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Fine-grid residual `r = rhs - A x` of the implicit system; returns
/// `max_i |r_i| / A_ii` (the size of the next Jacobi update) in the same
/// pass.
fn fine_residual(
    csr: &CellCsr,
    g_entry: &[f64],
    diag: &[f64],
    inv_diag: &[f64],
    rhs: &[f64],
    work: &[f64],
    resid: &mut [f64],
) -> f64 {
    let mut delta = 0.0f64;
    for i in 0..work.len() {
        let mut r = rhs[i] - diag[i] * work[i];
        for k in csr.offsets[i] as usize..csr.offsets[i + 1] as usize {
            r += g_entry[k] * work[csr.nbr[k] as usize];
        }
        resid[i] = r;
        delta = delta.max((r * inv_diag[i]).abs());
    }
    delta
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;
    use crate::reference::analytic_stack_temp;

    fn uniform(power: f64, cfg: &GridConfig) -> ThermalModel {
        let mut fp = Floorplan::new("u", 2000.0, 2000.0);
        let c = fp.add_component("all", 0.0, 0.0, 2000.0, 2000.0, false);
        let mut m = ThermalModel::new(&fp, cfg).unwrap();
        m.set_component_power(c, power);
        m
    }

    /// Runs `m` for `pre` steps of `dt`, snapshots into a fresh model built
    /// by `fresh`, then steps both (and an uninterrupted twin is `m`
    /// itself) `post` more times and asserts bitwise-equal trajectories.
    fn assert_restore_bitwise(
        mut m: ThermalModel,
        fresh: impl Fn() -> ThermalModel,
        dt: f64,
        pre: usize,
        post: usize,
    ) {
        for _ in 0..pre {
            m.step(dt);
        }
        let snap = m.snapshot();
        let mut r = fresh();
        r.restore(&snap).unwrap();
        assert_eq!(m.temps(), r.temps(), "restore reproduces the temperature field exactly");
        assert_eq!(m.time().to_bits(), r.time().to_bits());
        assert_eq!(m.solver_stats(), r.solver_stats());
        for i in 0..post {
            m.step(dt);
            r.step(dt);
            assert_eq!(m.temps(), r.temps(), "step {i} after restore diverged");
        }
        assert_eq!(m.energy_in().to_bits(), r.energy_in().to_bits());
        assert_eq!(m.energy_out().to_bits(), r.energy_out().to_bits());
        assert_eq!(m.solver_stats(), r.solver_stats());
    }

    #[test]
    fn snapshot_restore_gauss_seidel_bitwise() {
        let cfg = GridConfig { implicit_solve: ImplicitSolve::GaussSeidel, ..GridConfig::default() };
        assert_restore_bitwise(uniform(2.0, &cfg), || uniform(2.0, &cfg), 0.02, 7, 9);
    }

    #[test]
    fn snapshot_restore_multigrid_bitwise() {
        let cfg = GridConfig {
            implicit_solve: ImplicitSolve::Multigrid,
            ..GridConfig::default()
        };
        assert_restore_bitwise(uniform(2.0, &cfg), || uniform(2.0, &cfg), 0.02, 7, 9);
    }

    #[test]
    fn snapshot_restore_explicit_bitwise() {
        let cfg = GridConfig { integrator: Integrator::Explicit, ..GridConfig::default() };
        assert_restore_bitwise(uniform(2.0, &cfg), || uniform(2.0, &cfg), 0.01, 3, 4);
    }

    #[test]
    fn snapshot_restore_with_power_change_midway() {
        // The restored model must track a *changed* input trajectory too.
        let cfg = GridConfig { implicit_solve: ImplicitSolve::GaussSeidel, ..GridConfig::default() };
        let mut m = uniform(2.0, &cfg);
        for _ in 0..5 {
            m.step(0.02);
        }
        let snap = m.snapshot();
        let mut r = uniform(0.0, &cfg);
        r.restore(&snap).unwrap();
        m.set_component_power(0, 4.0);
        r.set_component_power(0, 4.0);
        for _ in 0..5 {
            m.step(0.02);
            r.step(0.02);
        }
        assert_eq!(m.temps(), r.temps());
    }

    #[test]
    fn restore_rejects_wrong_geometry() {
        let cfg = GridConfig::default();
        let m = uniform(1.0, &cfg);
        let snap = m.snapshot();
        let fine = GridConfig { default_div: cfg.default_div * 2, ..cfg };
        let mut other = uniform(1.0, &fine);
        assert!(other.restore(&snap).is_err());
        let before = other.temps().to_vec();
        assert_eq!(other.temps(), &before[..], "failed restore leaves the model unchanged");
    }

    #[test]
    fn restore_rejects_corrupt_stream() {
        let m = uniform(1.0, &GridConfig::default());
        let mut snap = m.snapshot();
        snap.truncate(snap.len() - 3);
        let mut r = uniform(1.0, &GridConfig::default());
        assert!(r.restore(&snap).is_err());
    }

    #[test]
    fn starts_at_ambient() {
        let m = uniform(0.0, &GridConfig::default());
        assert_eq!(m.max_temp(), 300.0);
        assert_eq!(m.min_temp(), 300.0);
        assert_eq!(m.time(), 0.0);
    }

    #[test]
    fn no_power_stays_at_ambient() {
        let mut m = uniform(0.0, &GridConfig::default());
        m.step(0.5);
        assert!((m.max_temp() - 300.0).abs() < 1e-9);
        assert!((m.min_temp() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn heating_is_monotone_and_bottom_is_hottest() {
        let mut m = uniform(2.0, &GridConfig::default());
        let mut prev = 300.0;
        for _ in 0..5 {
            m.step(0.05);
            let t = m.max_temp();
            assert!(t > prev, "temperature rises under constant power");
            prev = t;
        }
        // Heat is injected at the bottom: the bottom silicon layer must be
        // the hottest region.
        let n_tiles = m.grid().n_tiles();
        let bottom_max = m.temps()[..n_tiles].iter().copied().fold(f64::MIN, f64::max);
        assert!((bottom_max - m.max_temp()).abs() < 1e-9);
    }

    #[test]
    fn energy_conservation_adiabatic() {
        // Forward Euler injects exactly P*dt per substep, so stored energy
        // must match injected energy to rounding.
        let cfg = GridConfig {
            package_to_air: f64::INFINITY,
            integrator: Integrator::Explicit,
            ..GridConfig::default()
        };
        let mut m = uniform(3.0, &cfg);
        m.step(0.2);
        let injected = m.energy_in();
        let stored = m.stored_energy();
        assert!((injected - 3.0 * 0.2).abs() < 1e-9);
        assert!(
            ((stored - injected) / injected).abs() < 1e-6,
            "stored {stored} J vs injected {injected} J"
        );
    }

    #[test]
    fn steady_state_energy_balance() {
        let mut m = uniform(2.0, &GridConfig::default());
        m.run_to_steady(50.0, 0.01);
        // At steady state, the convected flow equals the injected power:
        // check via a short window's energy deltas.
        let in0 = m.energy_in();
        let out0 = m.energy_out();
        m.step(0.1);
        let din = m.energy_in() - in0;
        let dout = m.energy_out() - out0;
        assert!((din - dout).abs() / din < 0.01, "in {din} J vs out {dout} J over the window");
    }

    #[test]
    fn uniform_steady_state_matches_analytic_stack() {
        // Linear silicon so the 1-D closed form is exact.
        let cfg = GridConfig {
            silicon_k_override: Some(120.0),
            default_div: 2,
            ..GridConfig::default()
        };
        let mut m = uniform(2.0, &cfg);
        m.run_to_steady(200.0, 1e-3);
        let die_area = 2e-3 * 2e-3;
        let expect = analytic_stack_temp(2.0, die_area, &cfg, 120.0);
        let got = m.component_temp(0);
        assert!(
            (got - expect).abs() < 0.05,
            "bottom temperature {got:.3} K vs analytic {expect:.3} K"
        );
    }

    #[test]
    fn nonlinear_silicon_runs_hotter_than_linear_at_high_power() {
        // k(T) drops as T rises, so the non-linear die must end up hotter
        // than a linear one evaluated at the 300 K conductivity.
        let linear = GridConfig { silicon_k_override: Some(150.0), ..GridConfig::default() };
        let nonlinear = GridConfig::default();
        let mut a = uniform(8.0, &linear);
        let mut b = uniform(8.0, &nonlinear);
        a.run_to_steady(100.0, 0.01);
        b.run_to_steady(100.0, 0.01);
        assert!(b.max_temp() > a.max_temp());
    }

    #[test]
    fn symmetric_floorplan_heats_symmetrically() {
        let mut fp = Floorplan::new("sym", 4000.0, 2000.0);
        let l = fp.add_component("left", 0.0, 0.0, 1000.0, 2000.0, true);
        let r = fp.add_component("right", 3000.0, 0.0, 1000.0, 2000.0, true);
        let mut m = ThermalModel::new(&fp, &GridConfig::default()).unwrap();
        m.set_component_power(l, 1.0);
        m.set_component_power(r, 1.0);
        m.step(0.5);
        // Gauss-Seidel sweep order breaks exactness at the solver tolerance;
        // anything below a micro-kelvin is symmetric for every physical
        // purpose.
        assert!((m.component_temp(l) - m.component_temp(r)).abs() < 1e-5);
    }

    #[test]
    fn hotter_component_reads_hotter_sensor() {
        let mut fp = Floorplan::new("two", 4000.0, 2000.0);
        let busy = fp.add_component("busy", 0.0, 0.0, 1000.0, 2000.0, true);
        let idle = fp.add_component("idle", 3000.0, 0.0, 1000.0, 2000.0, true);
        let mut m = ThermalModel::new(&fp, &GridConfig::default()).unwrap();
        m.set_component_power(busy, 2.0);
        m.set_component_power(idle, 0.1);
        m.step(1.0);
        assert!(m.component_temp(busy) > m.component_temp(idle) + 1.0);
        let temps = m.component_temps();
        assert!((temps[busy] - m.component_temp(busy)).abs() < 1e-12);
    }

    #[test]
    fn refinement_insensitivity() {
        // The component sensor reading must be stable under mesh refinement:
        // every coarser mesh stays within a degree of the finest one on a
        // ~50 K rise (the role the paper's FE calibration played).
        let mut fp = Floorplan::new("c", 3000.0, 3000.0);
        fp.add_component("cpu", 1000.0, 1000.0, 1000.0, 1000.0, true);
        let mut temps = Vec::new();
        for div in [1usize, 2, 4, 6] {
            let cfg = GridConfig { hot_div: div, filler_pitch_um: 750.0, ..GridConfig::default() };
            let mut m = ThermalModel::new(&fp, &cfg).unwrap();
            m.set_component_power(0, 1.5);
            m.run_to_steady(100.0, 0.01);
            temps.push(m.component_temp(0));
        }
        let finest = *temps.last().unwrap();
        assert!(finest > 320.0, "the component heated up: {finest:.1} K");
        for (i, t) in temps.iter().enumerate() {
            assert!((t - finest).abs() < 1.0, "mesh {i}: {t:.3} K vs finest {finest:.3} K");
        }
    }

    #[test]
    fn semi_implicit_matches_explicit_trajectory() {
        // The two integrators must agree on a heating transient to within a
        // small fraction of the temperature rise.
        let explicit = GridConfig { integrator: Integrator::Explicit, ..GridConfig::default() };
        let implicit = GridConfig { integrator: Integrator::SemiImplicit { dt: 2e-4 }, ..GridConfig::default() };
        let mut a = uniform(3.0, &explicit);
        let mut b = uniform(3.0, &implicit);
        for _ in 0..10 {
            a.step(0.01);
            b.step(0.01);
            let rise = a.max_temp() - 300.0;
            let diff = (a.max_temp() - b.max_temp()).abs();
            assert!(diff < 0.02 + 0.02 * rise, "explicit {:.4} K vs implicit {:.4} K", a.max_temp(), b.max_temp());
        }
    }

    #[test]
    fn semi_implicit_energy_balance_approximate() {
        // Backward Euler + Gauss-Seidel conserves energy to solver tolerance.
        let cfg = GridConfig { package_to_air: f64::INFINITY, ..GridConfig::default() };
        let mut m = uniform(3.0, &cfg);
        m.step(0.2);
        let injected = m.energy_in();
        let stored = m.stored_energy();
        assert!(((stored - injected) / injected).abs() < 1e-3, "stored {stored} J vs injected {injected} J");
    }

    #[test]
    fn semi_implicit_is_stable_with_huge_steps() {
        let cfg = GridConfig { integrator: Integrator::SemiImplicit { dt: 0.05 }, ..GridConfig::default() };
        let mut m = uniform(5.0, &cfg);
        m.step(5.0);
        assert!(m.max_temp().is_finite());
        assert!(m.max_temp() > 300.0 && m.max_temp() < 600.0, "no blow-up: {}", m.max_temp());
    }

    #[test]
    fn solve_steady_state_matches_transient_limit() {
        let cfg = GridConfig { silicon_k_override: Some(120.0), ..GridConfig::default() };
        let mut direct = uniform(2.0, &cfg);
        direct.solve_steady_state();
        assert_eq!(direct.time(), 0.0, "no simulated time consumed");
        let mut transient = uniform(2.0, &cfg);
        transient.run_to_steady(200.0, 1e-3);
        assert!(
            (direct.component_temp(0) - transient.component_temp(0)).abs() < 0.05,
            "direct {:.3} K vs transient {:.3} K",
            direct.component_temp(0),
            transient.component_temp(0)
        );
        let die_area = 2e-3 * 2e-3;
        let analytic = analytic_stack_temp(2.0, die_area, &cfg, 120.0);
        assert!((direct.component_temp(0) - analytic).abs() < 0.05);
    }

    #[test]
    fn power_update_replaces_previous_injection() {
        let mut m = uniform(5.0, &GridConfig::default());
        m.set_component_power(0, 1.0);
        assert!((m.total_power() - 1.0).abs() < 1e-12, "power is replaced, not accumulated");
    }

    #[test]
    fn cooling_after_power_off() {
        let mut m = uniform(4.0, &GridConfig::default());
        m.step(1.0);
        let hot = m.max_temp();
        m.set_component_power(0, 0.0);
        m.step(5.0);
        assert!(m.max_temp() < hot, "die cools once power is removed");
        assert!(m.max_temp() >= 300.0 - 1e-6, "never below ambient");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn negative_power_panics() {
        let mut m = uniform(0.0, &GridConfig::default());
        m.set_component_power(0, -1.0);
    }

    #[test]
    #[should_panic(expected = "one power value per floorplan component")]
    fn wrong_power_vector_length_panics() {
        let mut m = uniform(0.0, &GridConfig::default());
        m.set_powers(&[1.0, 2.0]);
    }

    /// Max |ΔT| between two models' cell temperatures.
    fn max_abs_diff(a: &ThermalModel, b: &ThermalModel) -> f64 {
        a.temps()
            .iter()
            .zip(b.temps())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f64::max)
    }

    #[test]
    fn optimized_modes_match_reference_trajectory() {
        // Every optimized sweep mode must track the seed-faithful reference
        // within 1e-4 K over a transient, for both integrators.
        for integrator in [Integrator::SemiImplicit { dt: 5e-4 }, Integrator::Explicit] {
            let base = GridConfig { integrator, hot_div: 4, ..GridConfig::default() };
            let mut fp = Floorplan::new("eq", 4000.0, 2000.0);
            let l = fp.add_component("left", 0.0, 0.0, 1000.0, 2000.0, true);
            let r = fp.add_component("right", 3000.0, 0.0, 1000.0, 2000.0, true);
            let build = |sweep| {
                let cfg = GridConfig { sweep, ..base };
                let mut m = ThermalModel::new(&fp, &cfg).unwrap();
                m.set_component_power(l, 2.0);
                m.set_component_power(r, 0.5);
                m
            };
            let mut reference = build(SweepMode::Reference);
            let mut serial = build(SweepMode::Serial);
            let mut parallel = build(SweepMode::Parallel);
            assert!(!serial.uses_parallel_sweeps());
            assert!(parallel.uses_parallel_sweeps());
            for _ in 0..20 {
                reference.step(0.01);
                serial.step(0.01);
                parallel.step(0.01);
            }
            let ds = max_abs_diff(&reference, &serial);
            let dp = max_abs_diff(&reference, &parallel);
            assert!(ds < 1e-4, "serial drift {ds:.2e} K ({integrator:?})");
            assert!(dp < 1e-4, "parallel drift {dp:.2e} K ({integrator:?})");
        }
    }

    #[test]
    fn parallel_sweeps_are_deterministic() {
        let cfg = GridConfig { sweep: SweepMode::Parallel, ..GridConfig::default() };
        let mut a = uniform(3.0, &cfg);
        let mut b = uniform(3.0, &cfg);
        for _ in 0..10 {
            a.step(0.01);
            b.step(0.01);
        }
        assert_eq!(a.temps(), b.temps(), "identical trajectories run-to-run");
    }

    #[test]
    fn auto_mode_resolves_by_threshold_and_pool_width() {
        let small = uniform(1.0, &GridConfig { parallel_threshold: 1_000_000, ..GridConfig::default() });
        assert!(!small.uses_parallel_sweeps());
        // Above threshold, Auto engages exactly when the pool is really
        // parallel (on a single-core host it stays serial).
        let big = uniform(1.0, &GridConfig { parallel_threshold: 1, ..GridConfig::default() });
        assert_eq!(big.uses_parallel_sweeps(), crate::pool::global().n_workers() > 1);
        // Forced Parallel ignores both gates.
        let forced = uniform(1.0, &GridConfig { sweep: SweepMode::Parallel, ..GridConfig::default() });
        assert!(forced.uses_parallel_sweeps());
    }

    #[test]
    fn adaptive_probe_still_reaches_steady_state() {
        // Same steady state as a fixed-probe run, with the probe growth
        // engaged (long max_seconds budget, tight tolerance).
        let cfg = GridConfig { silicon_k_override: Some(120.0), ..GridConfig::default() };
        let mut m = uniform(2.0, &cfg);
        m.run_to_steady(200.0, 1e-3);
        let die_area = 2e-3 * 2e-3;
        let expect = analytic_stack_temp(2.0, die_area, &cfg, 120.0);
        assert!((m.component_temp(0) - expect).abs() < 0.05);
    }

    #[test]
    fn stable_dt_reuses_scratch_and_is_positive() {
        let mut m = uniform(2.0, &GridConfig::default());
        let a = m.stable_dt();
        let b = m.stable_dt();
        assert!(a > 0.0 && a.is_finite());
        assert!((a - b).abs() < 1e-18, "same state, same dt");
    }

    #[test]
    fn with_artifacts_shares_one_mesh_and_matches_fresh_build() {
        let mut fp = Floorplan::new("art", 4000.0, 2000.0);
        let l = fp.add_component("left", 0.0, 0.0, 1000.0, 2000.0, true);
        let cfg = GridConfig::default();
        let fresh = ThermalModel::new(&fp, &cfg).unwrap();
        let grid = fresh.grid_arc();
        let mut a = ThermalModel::with_artifacts(grid.clone(), None, &cfg).unwrap();
        let mut b = ThermalModel::with_artifacts(grid.clone(), None, &cfg).unwrap();
        assert!(Arc::ptr_eq(&a.grid, &b.grid), "one mesh, two models");
        // A model on a shared mesh follows the exact fresh-build trajectory.
        let mut fresh = fresh;
        fresh.set_component_power(l, 2.0);
        a.set_component_power(l, 2.0);
        b.set_component_power(l, 0.5);
        for _ in 0..5 {
            fresh.step(0.01);
            a.step(0.01);
            b.step(0.01);
        }
        assert_eq!(fresh.temps(), a.temps(), "shared mesh changes nothing");
        assert!(b.max_temp() < a.max_temp(), "sibling state stays independent");
    }

    #[test]
    fn shared_mg_topology_matches_lazy_build() {
        // A model handed the topology artifact must integrate bit-for-bit
        // like one that lazily coarsens its own hierarchy.
        let mut fp = Floorplan::new("mgshare", 4000.0, 4000.0);
        let c = fp.add_component("hot", 500.0, 500.0, 2000.0, 2000.0, true);
        let cfg = GridConfig {
            hot_div: 12,
            implicit_solve: ImplicitSolve::Multigrid,
            ..GridConfig::default()
        };
        let mut lazy = ThermalModel::new(&fp, &cfg).unwrap();
        let topo = Arc::new(MgTopology::for_grid(lazy.grid(), &cfg));
        let mut shared =
            ThermalModel::with_artifacts(lazy.grid_arc(), Some(topo), &cfg).unwrap();
        lazy.set_component_power(c, 3.0);
        shared.set_component_power(c, 3.0);
        for _ in 0..5 {
            lazy.step(0.01);
            shared.step(0.01);
        }
        assert!(lazy.uses_multigrid() && lazy.multigrid_levels().unwrap() >= 2);
        assert_eq!(lazy.multigrid_levels(), shared.multigrid_levels());
        assert_eq!(lazy.temps(), shared.temps(), "identical trajectories");
    }

    #[test]
    fn batched_step_is_bitwise_equal_to_sequential() {
        // The fused many-RHS kernel must reproduce the serial per-model
        // path exactly — same sweeps, same ω schedule, same floats.
        let mut fp = Floorplan::new("batch", 4000.0, 2000.0);
        let l = fp.add_component("left", 0.0, 0.0, 1000.0, 2000.0, true);
        let r = fp.add_component("right", 3000.0, 0.0, 1000.0, 2000.0, true);
        let cfg = GridConfig { hot_div: 4, ..GridConfig::default() };
        let seed = ThermalModel::new(&fp, &cfg).unwrap();
        let grid = seed.grid_arc();
        let powers = [(2.0, 0.5), (0.3, 1.7), (1.0, 1.0), (0.0, 4.0)];
        let mut batched: Vec<ThermalModel> = powers
            .iter()
            .map(|&(pl, pr)| {
                let mut m = ThermalModel::with_artifacts(grid.clone(), None, &cfg).unwrap();
                m.set_component_power(l, pl);
                m.set_component_power(r, pr);
                m
            })
            .collect();
        let mut sequential: Vec<ThermalModel> = batched.clone();
        for _ in 0..8 {
            let mut refs: Vec<&mut ThermalModel> = batched.iter_mut().collect();
            ThermalModel::try_step_batch(&mut refs, 0.01).unwrap();
            for m in &mut sequential {
                m.try_step(0.01).unwrap();
            }
        }
        for (bm, sm) in batched.iter().zip(&sequential) {
            assert_eq!(bm.temps(), sm.temps(), "bitwise-equal trajectories");
            assert_eq!(bm.solver_stats(), sm.solver_stats(), "identical solver effort");
            assert!(bm.time() > 0.0);
        }
        // And the batch really heated the scenarios differently.
        assert!(batched[3].component_temp(r) > batched[0].component_temp(r));
    }

    #[test]
    fn batched_step_falls_back_for_unfusable_mixes() {
        // Different grids → sequential fallback, still correct.
        let cfg = GridConfig::default();
        let mut a = uniform(2.0, &cfg);
        let mut b = uniform(2.0, &cfg);
        let mut golden = uniform(2.0, &cfg);
        {
            let mut refs: Vec<&mut ThermalModel> = vec![&mut a, &mut b];
            ThermalModel::try_step_batch(&mut refs, 0.02).unwrap();
        }
        golden.try_step(0.02).unwrap();
        assert_eq!(a.temps(), golden.temps());
        assert_eq!(b.temps(), golden.temps());
    }

    #[test]
    fn batched_step_runs_clean_under_strict_convergence() {
        // The batched kernel goes through the same check_strict gate as
        // the serial path: a healthy strict-mode batch steps cleanly and
        // records zero unconverged substeps.
        let cfg = GridConfig { strict_convergence: true, ..GridConfig::default() };
        let base = uniform(2.0, &cfg);
        let grid = base.grid_arc();
        let mut ms: Vec<ThermalModel> = (0..3)
            .map(|i| {
                let mut m = ThermalModel::with_artifacts(grid.clone(), None, &cfg).unwrap();
                m.set_component_power(0, 1.0 + i as f64);
                m
            })
            .collect();
        let mut refs: Vec<&mut ThermalModel> = ms.iter_mut().collect();
        ThermalModel::try_step_batch(&mut refs, 0.05).unwrap();
        for m in &ms {
            assert_eq!(m.solver_stats().unconverged_substeps, 0);
            assert!(m.solver_stats().substeps > 0);
        }
    }
}
