use std::fmt;

/// A TE32 general-purpose register, `r0`–`r31`.
///
/// `r0` reads as zero and ignores writes. By software convention `r31` is the
/// link register (`ra`) and `r30` the stack pointer (`sp`).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired zero register.
    pub const ZERO: Reg = Reg(0);
    /// Link register written by `jal`/`jalr` (alias `ra`).
    pub const RA: Reg = Reg(31);
    /// Stack pointer by software convention (alias `sp`).
    pub const SP: Reg = Reg(30);

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `index >= 32`.
    pub fn new(index: u8) -> Reg {
        assert!(index < 32, "register index {index} out of range 0..32");
        Reg(index)
    }

    /// Creates a register from its index, returning `None` if out of range.
    pub fn try_new(index: u8) -> Option<Reg> {
        (index < 32).then_some(Reg(index))
    }

    /// The register index, `0..32`.
    pub fn index(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Register-register ALU operation selector (R-type `funct` field).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Nor,
    /// Logical shift left by `rs2 & 31`.
    Sll,
    /// Logical shift right by `rs2 & 31`.
    Srl,
    /// Arithmetic shift right by `rs2 & 31`.
    Sra,
    /// Signed set-less-than.
    Slt,
    /// Unsigned set-less-than.
    Sltu,
    /// Low 32 bits of the signed product.
    Mul,
    /// High 32 bits of the signed product.
    Mulh,
    /// Signed division (`i32::MIN / -1` wraps; division by zero yields `-1`).
    Div,
    /// Signed remainder (remainder of division by zero is the dividend).
    Rem,
}

impl AluOp {
    pub(crate) const ALL: [AluOp; 15] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Nor,
        AluOp::Sll,
        AluOp::Srl,
        AluOp::Sra,
        AluOp::Slt,
        AluOp::Sltu,
        AluOp::Mul,
        AluOp::Mulh,
        AluOp::Div,
        AluOp::Rem,
    ];

    /// Evaluates the operation on two operand values.
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Nor => !(a | b),
            AluOp::Sll => a.wrapping_shl(b & 31),
            AluOp::Srl => a.wrapping_shr(b & 31),
            AluOp::Sra => (a as i32).wrapping_shr(b & 31) as u32,
            AluOp::Slt => ((a as i32) < (b as i32)) as u32,
            AluOp::Sltu => (a < b) as u32,
            AluOp::Mul => (a as i32).wrapping_mul(b as i32) as u32,
            AluOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
            AluOp::Div => {
                if b == 0 {
                    u32::MAX
                } else {
                    (a as i32).wrapping_div(b as i32) as u32
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    (a as i32).wrapping_rem(b as i32) as u32
                }
            }
        }
    }

    /// Whether this operation uses the multiplier (extra issue latency).
    pub fn is_mul(self) -> bool {
        matches!(self, AluOp::Mul | AluOp::Mulh)
    }

    /// Whether this operation uses the iterative divider (extra issue latency).
    pub fn is_div(self) -> bool {
        matches!(self, AluOp::Div | AluOp::Rem)
    }
}

/// Immediate ALU operation selector (I-type opcodes).
///
/// `Add`/`Slt`/`Sltu` sign-extend the 16-bit immediate; the bitwise operations
/// `And`/`Or`/`Xor` zero-extend it (so `lui` + `ori` materializes any 32-bit
/// constant in two instructions).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AluImmOp {
    Add,
    And,
    Or,
    Xor,
    Slt,
    Sltu,
}

impl AluImmOp {
    #[cfg_attr(not(test), allow(dead_code))] // proptest strategies only
    pub(crate) const ALL: [AluImmOp; 6] = [
        AluImmOp::Add,
        AluImmOp::And,
        AluImmOp::Or,
        AluImmOp::Xor,
        AluImmOp::Slt,
        AluImmOp::Sltu,
    ];

    /// Expands the immediate to its 32-bit operand value.
    pub fn expand_imm(self, imm: i16) -> u32 {
        match self {
            AluImmOp::Add | AluImmOp::Slt | AluImmOp::Sltu => imm as i32 as u32,
            AluImmOp::And | AluImmOp::Or | AluImmOp::Xor => imm as u16 as u32,
        }
    }

    /// Evaluates `a <op> expand(imm)`.
    pub fn eval(self, a: u32, imm: i16) -> u32 {
        let b = self.expand_imm(imm);
        match self {
            AluImmOp::Add => a.wrapping_add(b),
            AluImmOp::And => a & b,
            AluImmOp::Or => a | b,
            AluImmOp::Xor => a ^ b,
            AluImmOp::Slt => ((a as i32) < (b as i32)) as u32,
            AluImmOp::Sltu => (a < b) as u32,
        }
    }
}

/// Shift-immediate operation selector.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ShiftOp {
    Sll,
    Srl,
    Sra,
}

impl ShiftOp {
    #[cfg_attr(not(test), allow(dead_code))] // proptest strategies only
    pub(crate) const ALL: [ShiftOp; 3] = [ShiftOp::Sll, ShiftOp::Srl, ShiftOp::Sra];

    /// Evaluates `a <op> sh`.
    pub fn eval(self, a: u32, sh: u8) -> u32 {
        let sh = u32::from(sh & 31);
        match self {
            ShiftOp::Sll => a.wrapping_shl(sh),
            ShiftOp::Srl => a.wrapping_shr(sh),
            ShiftOp::Sra => (a as i32).wrapping_shr(sh) as u32,
        }
    }
}

/// Memory access width for loads and stores.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Width {
    Byte,
    Half,
    Word,
}

impl Width {
    /// Number of bytes transferred.
    pub fn bytes(self) -> u32 {
        match self {
            Width::Byte => 1,
            Width::Half => 2,
            Width::Word => 4,
        }
    }
}

/// Branch comparison condition.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Cond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

impl Cond {
    #[cfg_attr(not(test), allow(dead_code))] // proptest strategies only
    pub(crate) const ALL: [Cond; 6] = [Cond::Eq, Cond::Ne, Cond::Lt, Cond::Ge, Cond::Ltu, Cond::Geu];

    /// Evaluates the condition on two register values.
    pub fn eval(self, a: u32, b: u32) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i32) < (b as i32),
            Cond::Ge => (a as i32) >= (b as i32),
            Cond::Ltu => a < b,
            Cond::Geu => a >= b,
        }
    }
}

/// One decoded TE32 instruction.
///
/// Branch and jump offsets are in *instructions*, relative to the address of
/// the following instruction (`pc + 4`), as produced by the assembler.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Instr {
    /// `rd <- rs1 <op> rs2`
    Alu { op: AluOp, rd: Reg, rs1: Reg, rs2: Reg },
    /// `rd <- rs1 <op> imm`
    AluImm { op: AluImmOp, rd: Reg, rs1: Reg, imm: i16 },
    /// `rd <- rs1 <op> sh` (shift by constant, `sh < 32`)
    ShiftImm { op: ShiftOp, rd: Reg, rs1: Reg, sh: u8 },
    /// `rd <- imm << 16`
    Lui { rd: Reg, imm: u16 },
    /// `rd <- sign/zero-extended mem[rs1 + off]`
    Load { width: Width, signed: bool, rd: Reg, rs1: Reg, off: i16 },
    /// `mem[rs1 + off] <- rs2` (low `width` bytes)
    Store { width: Width, rs2: Reg, rs1: Reg, off: i16 },
    /// Atomic test-and-set: `rd <- mem32[rs1 + off]; mem32[rs1 + off] <- 1`.
    Tas { rd: Reg, rs1: Reg, off: i16 },
    /// `if rs1 <cond> rs2 then pc <- pc + 4 + off*4`
    Branch { cond: Cond, rs1: Reg, rs2: Reg, off: i16 },
    /// `r31 <- pc + 4; pc <- pc + 4 + off*4` (off is a signed 26-bit value)
    Jal { off: i32 },
    /// `rd <- pc + 4; pc <- (rs1 + off) & !3`
    Jalr { rd: Reg, rs1: Reg, off: i16 },
    /// Stop the issuing core.
    Halt,
}

impl Instr {
    /// Canonical `nop` encoding (`addi r0, r0, 0`).
    pub const NOP: Instr = Instr::AluImm { op: AluImmOp::Add, rd: Reg(0), rs1: Reg(0), imm: 0 };

    /// Whether this instruction reads or writes data memory.
    pub fn is_mem(self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. } | Instr::Tas { .. })
    }

    /// Whether this instruction may redirect the program counter.
    pub fn is_control(self) -> bool {
        matches!(self, Instr::Branch { .. } | Instr::Jal { .. } | Instr::Jalr { .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::disasm::disassemble(*self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_new_and_index_round_trip() {
        for i in 0..32 {
            assert_eq!(Reg::new(i).index(), i);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn reg_new_rejects_32() {
        let _ = Reg::new(32);
    }

    #[test]
    fn reg_try_new_bounds() {
        assert_eq!(Reg::try_new(31), Some(Reg::new(31)));
        assert_eq!(Reg::try_new(32), None);
    }

    #[test]
    fn alu_eval_basics() {
        assert_eq!(AluOp::Add.eval(2, 3), 5);
        assert_eq!(AluOp::Sub.eval(2, 3), u32::MAX);
        assert_eq!(AluOp::And.eval(0b1100, 0b1010), 0b1000);
        assert_eq!(AluOp::Or.eval(0b1100, 0b1010), 0b1110);
        assert_eq!(AluOp::Xor.eval(0b1100, 0b1010), 0b0110);
        assert_eq!(AluOp::Nor.eval(0, 0), u32::MAX);
        assert_eq!(AluOp::Sll.eval(1, 4), 16);
        assert_eq!(AluOp::Srl.eval(0x8000_0000, 31), 1);
        assert_eq!(AluOp::Sra.eval(0x8000_0000, 31), u32::MAX);
        assert_eq!(AluOp::Slt.eval(u32::MAX, 0), 1, "-1 < 0 signed");
        assert_eq!(AluOp::Sltu.eval(u32::MAX, 0), 0);
        assert_eq!(AluOp::Mul.eval(7, 6), 42);
        assert_eq!(AluOp::Mulh.eval(0x8000_0000, 2), u32::MAX, "high word of -2^32");
        assert_eq!(AluOp::Div.eval(42, 7), 6);
        assert_eq!(AluOp::Rem.eval(43, 7), 1);
    }

    #[test]
    fn alu_div_rem_edge_cases() {
        // Division by zero: quotient -1, remainder = dividend.
        assert_eq!(AluOp::Div.eval(5, 0), u32::MAX);
        assert_eq!(AluOp::Rem.eval(5, 0), 5);
        // i32::MIN / -1 wraps rather than trapping.
        assert_eq!(AluOp::Div.eval(i32::MIN as u32, u32::MAX), i32::MIN as u32);
        assert_eq!(AluOp::Rem.eval(i32::MIN as u32, u32::MAX), 0);
        // Signed semantics.
        assert_eq!(AluOp::Div.eval((-7i32) as u32, 2), (-3i32) as u32);
        assert_eq!(AluOp::Rem.eval((-7i32) as u32, 2), (-1i32) as u32);
    }

    #[test]
    fn shift_amounts_are_masked() {
        assert_eq!(AluOp::Sll.eval(1, 33), 2, "shift amount masked to 5 bits");
        assert_eq!(ShiftOp::Srl.eval(4, 1), 2);
    }

    #[test]
    fn imm_expansion_matches_signedness_rules() {
        assert_eq!(AluImmOp::Add.expand_imm(-1), u32::MAX);
        assert_eq!(AluImmOp::Or.expand_imm(-1), 0xFFFF);
        assert_eq!(AluImmOp::And.eval(0xFFFF_FFFF, -1), 0xFFFF);
        assert_eq!(AluImmOp::Add.eval(1, -2), u32::MAX);
        assert_eq!(AluImmOp::Slt.eval(0, -1), 0);
        assert_eq!(AluImmOp::Sltu.eval(0, -1), 1, "sltiu compares against sign-extended imm");
    }

    #[test]
    fn cond_eval_signedness() {
        assert!(Cond::Lt.eval(u32::MAX, 0));
        assert!(!Cond::Ltu.eval(u32::MAX, 0));
        assert!(Cond::Geu.eval(u32::MAX, 0));
        assert!(Cond::Eq.eval(3, 3));
        assert!(Cond::Ne.eval(3, 4));
        assert!(Cond::Ge.eval(0, 0));
    }

    #[test]
    fn width_bytes() {
        assert_eq!(Width::Byte.bytes(), 1);
        assert_eq!(Width::Half.bytes(), 2);
        assert_eq!(Width::Word.bytes(), 4);
    }

    #[test]
    fn nop_is_addi_zero() {
        match Instr::NOP {
            Instr::AluImm { op: AluImmOp::Add, rd, rs1, imm: 0 } => {
                assert_eq!(rd, Reg::ZERO);
                assert_eq!(rs1, Reg::ZERO);
            }
            other => panic!("unexpected NOP encoding: {other:?}"),
        }
    }

    #[test]
    fn classification_helpers() {
        assert!(Instr::Load { width: Width::Word, signed: false, rd: Reg::ZERO, rs1: Reg::ZERO, off: 0 }.is_mem());
        assert!(Instr::Jal { off: 0 }.is_control());
        assert!(!Instr::Halt.is_mem());
        assert!(!Instr::NOP.is_control());
    }
}
