//! Typed errors of the platform configuration and machine construction.

use std::error::Error;
use std::fmt;
use temu_interconnect::IcError;
use temu_mem::{CacheKind, MemConfigError, MemError};

/// Why a [`PlatformConfig`](crate::PlatformConfig) was rejected or a
/// [`Machine`](crate::Machine) operation failed.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub enum PlatformError {
    /// The platform has zero cores.
    NoCores,
    /// An L1 cache configuration is invalid.
    Cache {
        /// Which cache (instruction or data).
        kind: CacheKind,
        /// The underlying geometry violation.
        source: MemConfigError,
    },
    /// A main-memory size is not a word multiple (private memories must
    /// also be at least 1 KB).
    MemorySize {
        /// `"private"` or `"shared"`.
        which: &'static str,
        /// The offending size in bytes.
        size: u32,
    },
    /// The bus or NoC configuration is invalid.
    Interconnect(IcError),
    /// The interconnect's port/attachment count does not match the core
    /// count.
    PortMismatch {
        /// Initiator ports (bus) or core attachments (NoC).
        ports: usize,
        /// Cores the platform has.
        cores: usize,
    },
    /// The FPGA or virtual clock frequency is zero.
    ZeroClock,
    /// A DFS frequency ladder is malformed (too few levels, non-descending
    /// frequencies, wrong band count, or empty/inverted/overlapping
    /// hysteresis bands).
    DfsLadder {
        /// What the ladder violated.
        reason: String,
    },
    /// A program image does not fit in a core's private memory.
    ProgramLoad {
        /// The core the image was loaded into.
        core: usize,
        /// The underlying memory fault.
        source: MemError,
    },
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::NoCores => write!(f, "platform needs at least one core"),
            PlatformError::Cache { kind, source } => {
                let name = match kind {
                    CacheKind::Instruction => "icache",
                    CacheKind::Data => "dcache",
                };
                write!(f, "{name}: {source}")
            }
            PlatformError::MemorySize { which, size } => {
                write!(f, "{which} memory size {size} must be a word multiple (private: >= 1 KB)")
            }
            PlatformError::Interconnect(e) => write!(f, "interconnect: {e}"),
            PlatformError::PortMismatch { ports, cores } => {
                write!(f, "interconnect attaches {ports} core port(s) but the platform has {cores} cores")
            }
            PlatformError::ZeroClock => write!(f, "clock frequencies must be nonzero"),
            PlatformError::DfsLadder { reason } => write!(f, "DFS ladder: {reason}"),
            PlatformError::ProgramLoad { core, source } => {
                write!(f, "loading program into core {core}: {source}")
            }
        }
    }
}

impl Error for PlatformError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PlatformError::Cache { source, .. } => Some(source),
            PlatformError::Interconnect(e) => Some(e),
            PlatformError::ProgramLoad { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<IcError> for PlatformError {
    fn from(e: IcError) -> PlatformError {
        PlatformError::Interconnect(e)
    }
}
