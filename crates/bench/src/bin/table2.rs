//! Regenerates **Table 2**: thermal properties of the RC model.

use temu_thermal::{silicon_conductivity, ThermalProps};

fn main() {
    let p = ThermalProps::default();
    println!("Table 2: thermal properties");
    println!("{:<34} {:>18} {:>18}", "property", "model", "paper");
    let rows = [
        ("silicon thermal conductivity", "150*(300/T)^4/3 W/mK".to_string(), "150*(300/T)^4/3".to_string()),
        ("silicon specific heat", format!("{:.3e} J/um3K", p.silicon_c), "1.628e-12".to_string()),
        ("silicon thickness", format!("{} um", p.silicon_thickness_um), "350um".to_string()),
        ("copper thermal conductivity", format!("{} W/mK", p.copper_k), "400W/mK".to_string()),
        ("copper specific heat", format!("{:.3e} J/um3K", p.copper_c), "3.55e-12".to_string()),
        ("copper thickness", format!("{} um", p.copper_thickness_um), "1000um".to_string()),
        ("package-to-air conductivity", format!("{} K/W", p.package_to_air), "20K/W (low power)".to_string()),
    ];
    for (name, model, paper) in rows {
        println!("{name:<34} {model:>18} {paper:>18}");
    }
    println!("\nNon-linear silicon conductivity at sample temperatures:");
    for t in [300.0, 320.0, 340.0, 350.0, 380.0, 400.0] {
        println!("  k({t:.0} K) = {:>7.2} W/mK", silicon_conductivity(t));
    }
}
