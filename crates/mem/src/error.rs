//! Typed configuration errors of the memory hierarchy.
//!
//! Runtime access faults keep their own type ([`MemError`](crate::MemError));
//! this module covers *construction-time* validation: cache geometry and
//! address-map consistency.

use crate::map::MappedRange;
use std::error::Error;
use std::fmt;

/// Why a [`CacheConfig`](crate::CacheConfig) or
/// [`AddressMap`](crate::AddressMap) failed validation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum MemConfigError {
    /// Cache capacity is not a power of two.
    CacheSizeNotPowerOfTwo {
        /// The offending capacity in bytes.
        size_bytes: u32,
    },
    /// Cache line size is not a power of two of at least 4 bytes.
    CacheLineInvalid {
        /// The offending line size in bytes.
        line_bytes: u32,
    },
    /// The capacity cannot hold even one set of the requested geometry.
    CacheGeometry {
        /// Capacity in bytes.
        size_bytes: u32,
        /// Associativity.
        ways: u32,
        /// Line size in bytes.
        line_bytes: u32,
    },
    /// Cache hit latency of zero cycles.
    CacheZeroHitLatency,
    /// An address-map range with zero bytes.
    ZeroSizedRange {
        /// Base address of the offending range.
        base: u32,
    },
    /// An address-map range that wraps past the end of the address space.
    WrappingRange {
        /// Base address of the offending range.
        base: u32,
    },
    /// Two address-map ranges overlap.
    OverlappingRanges {
        /// The two offending ranges.
        a: MappedRange,
        /// The two offending ranges.
        b: MappedRange,
    },
}

impl fmt::Display for MemConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemConfigError::CacheSizeNotPowerOfTwo { size_bytes } => {
                write!(f, "cache size {size_bytes} is not a power of two")
            }
            MemConfigError::CacheLineInvalid { line_bytes } => {
                write!(f, "line size {line_bytes} must be a power of two >= 4")
            }
            MemConfigError::CacheGeometry { size_bytes, ways, line_bytes } => {
                write!(f, "capacity {size_bytes} cannot hold {ways} way(s) of {line_bytes}-byte lines")
            }
            MemConfigError::CacheZeroHitLatency => write!(f, "hit latency must be at least 1 cycle"),
            MemConfigError::ZeroSizedRange { base } => write!(f, "range at {base:#010x} has zero size"),
            MemConfigError::WrappingRange { base } => {
                write!(f, "range at {base:#010x} wraps the address space")
            }
            MemConfigError::OverlappingRanges { a, b } => write!(f, "ranges {a} and {b} overlap"),
        }
    }
}

impl Error for MemConfigError {}
