//! The sequential co-emulation loop (Fig. 5).

use crate::error::TemuError;
use crate::scenario::RunBudget;
use crate::trace::{ThermalTrace, TraceSample};
use std::time::{Duration, Instant};
use temu_link::{EthernetConfig, EthernetLink, LinkStats, StatsPacket, TempPacket};
use temu_platform::{DfsPolicy, Machine, WindowStats, EVENT_BYTES};
use temu_power::{FloorplanMap, PowerModel};
use temu_state::{StateError, StateReader, StateWriter};
use temu_thermal::{GridConfig, SolverStats, ThermalModel};

/// Envelope magic of [`EmulationState::to_bytes`].
pub const STATE_MAGIC: [u8; 4] = *b"EMUS";
/// Highest [`EmulationState`] stream version this build reads and writes.
pub const STATE_VERSION: u32 = 1;
/// Inner envelope of the platform section (machine + statistics link)
/// embedded in an [`EmulationState`].
const PLATFORM_MAGIC: [u8; 4] = *b"TPLT";
const PLATFORM_VERSION: u32 = 1;

/// A mid-run window observer: `(every, hook)` — the hook sees the
/// emulation at a checkpointable window boundary after every `every`-th
/// window of the logical run (see
/// [`ThermalEmulation::run_budget_observed`]).
pub(crate) type WindowObserver<'a> =
    Option<(u64, &'a mut dyn FnMut(&ThermalEmulation) -> Result<(), TemuError>)>;

/// Configuration of the co-emulation loop.
#[derive(Clone, Debug)]
pub struct EmulationConfig {
    /// Virtual seconds per statistics sampling window (the paper uses 10 ms).
    pub sampling_window_s: f64,
    /// Run-time thermal-management policy; `None` disables DFS (the paper's
    /// "without thermal management" curve).
    pub policy: Option<DfsPolicy>,
    /// Statistics-link parameters.
    pub link: EthernetConfig,
    /// Activity-to-power conversion.
    pub power: PowerModel,
    /// Thermal meshing, boundary conditions and solver execution strategy.
    ///
    /// The default [`temu_thermal::SweepMode::Auto`] resolves per mesh:
    /// paper-scale floorplans solve single-threaded, meshes at or above
    /// `grid.parallel_threshold` cells run colored parallel sweeps on the
    /// solver's worker pool — the co-emulation loop inherits whichever the
    /// mesh warrants (see [`ThermalEmulation::solver_parallel`]).
    pub grid: GridConfig,
}

impl Default for EmulationConfig {
    fn default() -> EmulationConfig {
        EmulationConfig {
            sampling_window_s: 0.010,
            policy: None,
            link: EthernetConfig::default(),
            power: PowerModel::default(),
            grid: GridConfig::default(),
        }
    }
}

/// Summary of one finished co-emulation run call.
///
/// Every field is a **per-call delta**: a second `run_windows` /
/// `run_to_halt` call on the same emulation reports only the windows,
/// time, cycles, statistics and link traffic of *that* call, so throughput
/// derived from a report (windows per wall second, virtual-to-FPGA ratio)
/// is always internally consistent. Lifetime totals across every call stay
/// available on the emulation itself via [`ThermalEmulation::totals`].
#[derive(Clone, Debug)]
#[must_use]
pub struct EmulationReport {
    /// Sampling windows executed by this call.
    pub windows: u64,
    /// Virtual seconds emulated by this call.
    pub virtual_seconds: f64,
    /// Virtual cycles executed by this call (varies with DFS).
    pub virtual_cycles: u64,
    /// Modeled FPGA (physical) time of this call, including VPCM freezes —
    /// the Table 3 "HW Emulator" quantity, now with the thermal loop
    /// attached.
    pub fpga_seconds: f64,
    /// Host wall-clock time of this call (platform + thermal + link).
    pub wall: Duration,
    /// Whether every core halted.
    pub all_halted: bool,
    /// Aggregate platform statistics of this call's windows.
    pub aggregate: WindowStats,
    /// Statistics-link traffic of this call.
    pub link: LinkStats,
    /// Convergence accounting of the thermal solver over this call. A non-zero
    /// `unconverged_substeps` means the temperature trace was produced by
    /// an implicit solver that silently stopped converging — configure
    /// `GridConfig::strict_convergence` (or
    /// `Scenario::strict_convergence`) to turn that into a hard
    /// [`TemuError::Thermal`] instead.
    pub solver: SolverStats,
}

/// Lifetime totals of a [`ThermalEmulation`], accumulated across every
/// `run_*` call (the cumulative view that [`EmulationReport`]'s per-call
/// deltas deliberately exclude).
#[derive(Clone, Debug)]
#[must_use]
pub struct EmulationTotals {
    /// Sampling windows executed since construction.
    pub windows: u64,
    /// Virtual seconds emulated since construction.
    pub virtual_seconds: f64,
    /// Virtual cycles executed since construction.
    pub virtual_cycles: u64,
    /// Modeled FPGA (physical) time since construction.
    pub fpga_seconds: f64,
    /// Aggregate platform statistics since construction.
    pub aggregate: WindowStats,
    /// Statistics-link traffic since construction.
    pub link: LinkStats,
    /// Thermal-solver convergence accounting since construction.
    pub solver: SolverStats,
}

/// Per-call baseline captured at the start of each `run_*` call so the
/// report can subtract everything that happened before it.
#[derive(Clone, Debug, Default)]
struct CallBase {
    windows: u64,
    virtual_seconds: f64,
    virtual_cycles: u64,
    fpga_seconds: f64,
    link: LinkStats,
    solver: SolverStats,
}

/// The in-process sequential HW/SW co-emulation.
///
/// Feedback is pipelined exactly like the physical system: the temperatures
/// computed from window *k* reach the sensor registers (and the DFS policy)
/// before window *k+1* starts.
#[derive(Debug)]
pub struct ThermalEmulation {
    machine: Machine,
    map: FloorplanMap,
    model: ThermalModel,
    link: EthernetLink,
    cfg: EmulationConfig,
    policy: Option<DfsPolicy>,
    trace: ThermalTrace,
    seq: u32,
    windows: u64,
    virtual_seconds: f64,
    virtual_cycles: u64,
    fpga_seconds: f64,
    aggregate: WindowStats,
    call_aggregate: WindowStats,
    call_base: CallBase,
    /// Residual watermarks of *previous* calls (the model's own watermark
    /// is re-armed per call), folded into [`ThermalEmulation::totals`].
    past_worst_residual_k: f64,
    /// Content key of the [`crate::Scenario`] that built this emulation
    /// (0 for hand-wired emulations), embedded in every checkpoint so
    /// [`crate::Scenario::resume_from`] can refuse state from a different
    /// experiment.
    scenario_key: u64,
    /// Between [`ThermalEmulation::window_begin`] and
    /// [`ThermalEmulation::window_finish`]: the platform half of the
    /// window, waiting for the thermal step (possibly batched across
    /// emulations) to land.
    pending: Option<PendingWindow>,
}

/// The platform-side outcome of one sampling window, carried across the
/// thermal step so lockstep drivers can batch the step between
/// [`ThermalEmulation::window_begin`] and
/// [`ThermalEmulation::window_finish`].
#[derive(Clone, Debug)]
struct PendingWindow {
    stats: WindowStats,
    hz: u64,
    physical_window_s: f64,
    link_freeze_s: f64,
    total_power_w: f64,
}

impl ThermalEmulation {
    /// Wires a machine to a floorplan and thermal model.
    ///
    /// # Errors
    ///
    /// Returns [`TemuError::Thermal`] if the thermal grid cannot be built,
    /// or [`TemuError::Power`] if the floorplan has fewer core tiles than
    /// the machine has cores.
    pub fn new(machine: Machine, map: FloorplanMap, cfg: EmulationConfig) -> Result<ThermalEmulation, TemuError> {
        map.check_cores(machine.num_cores())?;
        let model = ThermalModel::new(&map.floorplan, &cfg.grid)?;
        ThermalEmulation::with_model(machine, map, model, cfg)
    }

    /// Wires a machine to a floorplan and a **pre-built** thermal model —
    /// the artifact-cached build path ([`crate::Scenario::build_with`]),
    /// where the model was constructed on a shared meshed grid instead of
    /// re-meshing per emulation.
    pub(crate) fn with_model(
        machine: Machine,
        map: FloorplanMap,
        model: ThermalModel,
        cfg: EmulationConfig,
    ) -> Result<ThermalEmulation, TemuError> {
        map.check_cores(machine.num_cores())?;
        let names = map.floorplan.components().iter().map(|c| c.name.clone()).collect();
        Ok(ThermalEmulation {
            machine,
            map,
            model,
            link: EthernetLink::new(cfg.link),
            policy: cfg.policy.clone(),
            cfg,
            trace: ThermalTrace::new(names),
            seq: 0,
            windows: 0,
            virtual_seconds: 0.0,
            virtual_cycles: 0,
            fpga_seconds: 0.0,
            aggregate: WindowStats::default(),
            call_aggregate: WindowStats::default(),
            call_base: CallBase::default(),
            past_worst_residual_k: 0.0,
            scenario_key: 0,
            pending: None,
        })
    }

    /// Binds the emulation to the content key of the scenario that built
    /// it (embedded in checkpoints for resume validation).
    pub(crate) fn set_scenario_key(&mut self, key: u64) {
        self.scenario_key = key;
    }

    /// The emulated machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutable machine access (program loading, shared-data setup).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// Mutable model access for the lockstep driver's batched stepping.
    pub(crate) fn model_mut(&mut self) -> &mut ThermalModel {
        &mut self.model
    }

    /// Virtual seconds per sampling window.
    pub(crate) fn window_seconds(&self) -> f64 {
        self.cfg.sampling_window_s
    }

    /// The thermal model.
    pub fn model(&self) -> &ThermalModel {
        &self.model
    }

    /// Whether the thermal solver runs parallel colored sweeps for this
    /// emulation's mesh (threshold-based resolution of the configured
    /// sweep mode).
    pub fn solver_parallel(&self) -> bool {
        self.model.uses_parallel_sweeps()
    }

    /// The temperature trace recorded so far.
    pub fn trace(&self) -> &ThermalTrace {
        &self.trace
    }

    /// Consumes the emulation, returning the recorded trace (the artifact
    /// scenario runs keep after the machine is dropped).
    #[must_use]
    pub fn into_trace(self) -> ThermalTrace {
        self.trace
    }

    /// The statistics link.
    pub fn link(&self) -> &EthernetLink {
        &self.link
    }

    /// Executes one sampling window: platform → statistics → power → link →
    /// thermal step → temperature feedback → policy.
    ///
    /// # Errors
    ///
    /// Propagates platform faults as [`TemuError::Cpu`]; under
    /// `GridConfig::strict_convergence`, a thermal substep that fails to
    /// converge is [`TemuError::Thermal`].
    pub fn run_window(&mut self) -> Result<(), TemuError> {
        temu_obs::time!("core.window_ns", {
            self.window_begin()?;
            self.model.try_step(self.cfg.sampling_window_s)?;
            self.window_finish()
        })
    }

    /// The platform half of one sampling window: run the machine, convert
    /// sniffer statistics to power, ship them over the link and leave the
    /// powers set on the thermal model — everything *up to* the thermal
    /// step. A lockstep driver steps many emulations' models in one
    /// batched call between this and [`ThermalEmulation::window_finish`];
    /// [`ThermalEmulation::run_window`] is exactly the two halves around a
    /// plain `try_step`.
    ///
    /// # Errors
    ///
    /// [`TemuError::WindowPending`] if the previous window never saw its
    /// [`ThermalEmulation::window_finish`] — enforced in release builds
    /// too, because a begin/begin sequence silently drops a half-run
    /// window from every aggregate.
    pub(crate) fn window_begin(&mut self) -> Result<(), TemuError> {
        if self.pending.is_some() {
            return Err(TemuError::WindowPending);
        }
        let window_s = self.cfg.sampling_window_s;
        let hz = self.machine.vpcm().virtual_hz();
        let cycles = (window_s * hz as f64).round() as u64;
        let stats = self.machine.run_window(cycles)?;

        // Convert sniffer statistics to per-component power.
        let powers = self.cfg.power.window_powers(&self.map, &stats, hz);

        // Ship statistics (and any event-log backlog) over the link within
        // the window's physical-time budget.
        let packet = StatsPacket {
            seq: self.seq,
            window_start: stats.start_cycle,
            window_cycles: stats.cycles(),
            virtual_hz: hz,
            power_mw: powers.iter().map(|&p| (p * 1000.0).round() as u32).collect(),
        };
        let mut payload = packet.encode().to_vec();
        if let Some(events) = self.machine.uncore_mut().events_mut() {
            // Every event must cross the link: the buffered ones and the ones
            // that found the BRAM buffer full (already counted into
            // `stats.events_overflowed` by the window collection) — on the
            // real platform the VPCM would have frozen the virtual clock
            // mid-window instead of dropping them, so their transmission time
            // is charged the same way (congestion accounted at window
            // granularity, DESIGN.md §2).
            let drained = events.drain(usize::MAX >> 1).len() as u64 + stats.events_overflowed;
            payload.extend(std::iter::repeat_n(0u8, (drained as usize) * EVENT_BYTES));
        }
        let frames = self.link.packetize(&payload.into(), true);
        let fpga_hz = self.machine.vpcm().fpga_hz;
        let physical_window_s = (stats.cycles() + stats.freeze_mem) as f64 / fpga_hz as f64;
        let link_freeze_s = self.link.send_window(&frames, physical_window_s);
        // Surface the congestion freeze through the VPCM so the next window's
        // statistics carry it (the report below accounts it directly).
        self.machine
            .vpcm_mut()
            .record_link_freeze((link_freeze_s * fpga_hz as f64).round() as u64);

        self.model.set_powers(&powers);
        self.pending = Some(PendingWindow {
            stats,
            hz,
            physical_window_s,
            link_freeze_s,
            total_power_w: powers.iter().sum(),
        });
        Ok(())
    }

    /// The feedback half of one sampling window, after the thermal model
    /// stepped: temperatures back into the sensor registers, the DFS
    /// policy, and all per-window bookkeeping.
    ///
    /// # Errors
    ///
    /// [`TemuError::WindowNotBegun`] if no window is pending — enforced in
    /// release builds too, because an unpaired finish would feed stale
    /// temperatures into the sensors and double-count the window.
    pub(crate) fn window_finish(&mut self) -> Result<(), TemuError> {
        let Some(pending) = self.pending.take() else {
            return Err(TemuError::WindowNotBegun);
        };
        let PendingWindow { stats, hz, physical_window_s, link_freeze_s, total_power_w } = pending;
        let window_s = self.cfg.sampling_window_s;

        // Temperature feedback.
        let temps = self.model.component_temps();
        let reply = TempPacket {
            seq: self.seq,
            temps_centi_k: temps.iter().map(|&t| (t * 100.0).round() as u32).collect(),
        };
        let reply_frames = self.link.packetize(&reply.encode().to_vec().into(), false);
        let _ = self.link.tx_seconds(&reply_frames); // downlink is never the bottleneck
        for (i, &t) in temps.iter().enumerate() {
            self.machine.set_sensor_kelvin(i, t);
        }

        // Run-time thermal management (the §7 DFS state machine).
        if let Some(policy) = &mut self.policy {
            let hottest = temps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
            let new_hz = policy.update(hottest);
            if new_hz != hz {
                self.machine.set_virtual_hz(new_hz);
            }
        }

        // Bookkeeping.
        self.seq = self.seq.wrapping_add(1);
        self.windows += 1;
        self.virtual_seconds += window_s;
        self.virtual_cycles += stats.cycles();
        self.fpga_seconds += physical_window_s + link_freeze_s;
        self.aggregate.merge(&stats);
        self.call_aggregate.merge(&stats);
        let hottest = temps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        self.trace.push(TraceSample {
            t_virtual_s: self.virtual_seconds,
            temps_k: temps,
            max_temp_k: hottest,
            virtual_hz: hz,
            total_power_w,
            fpga_seconds: self.fpga_seconds,
        });
        Ok(())
    }

    /// Runs windows until every core halts or `max_windows` elapse.
    ///
    /// # Errors
    ///
    /// Propagates platform faults and (strict mode) thermal
    /// non-convergence.
    pub fn run_to_halt(&mut self, max_windows: u64) -> Result<EmulationReport, TemuError> {
        let t0 = Instant::now();
        self.begin_call();
        for _ in 0..max_windows {
            self.run_window()?;
            if self.machine.all_halted() {
                break;
            }
        }
        Ok(self.report(t0))
    }

    /// Runs a fixed number of windows regardless of halting (long thermal
    /// observations over repeating workloads).
    ///
    /// # Errors
    ///
    /// Propagates platform faults and (strict mode) thermal
    /// non-convergence.
    pub fn run_windows(&mut self, n: u64) -> Result<EmulationReport, TemuError> {
        let t0 = Instant::now();
        self.begin_call();
        for _ in 0..n {
            self.run_window()?;
        }
        Ok(self.report(t0))
    }

    /// Runs a [`RunBudget`] with optional mid-run observation — the
    /// execution spine behind [`crate::Scenario::run`], the sweep's
    /// within-point window checkpoints, and checkpoint resume.
    ///
    /// `resumed` marks a call that continues a run restored by
    /// [`ThermalEmulation::restore_state`]: the per-call baseline captured
    /// by the *original* call (carried through the checkpoint) is kept
    /// instead of re-arming it, so the returned report covers the whole
    /// logical run — identical to an uninterrupted one except for wall
    /// time. The budget is counted against that same baseline, so a
    /// resumed `Windows(n)` call executes only the windows the original
    /// call had left.
    ///
    /// `observer` is `(every, hook)`: after every `every`-th window of the
    /// logical run the hook sees the emulation at a window boundary
    /// (checkpointable); it never fires on the final window or after the
    /// workload halts, where a checkpoint could buy nothing. A hook error
    /// aborts the run.
    ///
    /// # Errors
    ///
    /// Propagates platform faults, (strict mode) thermal non-convergence,
    /// and observer errors.
    pub(crate) fn run_budget_observed(
        &mut self,
        budget: RunBudget,
        resumed: bool,
        mut observer: WindowObserver<'_>,
    ) -> Result<EmulationReport, TemuError> {
        let t0 = Instant::now();
        if !resumed {
            self.begin_call();
        }
        let (cap, to_halt) = match budget {
            RunBudget::ToHalt { max_windows } => (max_windows, true),
            RunBudget::Windows(n) => (n, false),
        };
        let mut executed = self.windows - self.call_base.windows;
        while executed < cap {
            if to_halt && executed > 0 && self.machine.all_halted() {
                break;
            }
            self.run_window()?;
            executed += 1;
            if let Some((every, hook)) = observer.as_mut() {
                if *every > 0
                    && executed.is_multiple_of(*every)
                    && executed < cap
                    && !(to_halt && self.machine.all_halted())
                {
                    hook(self)?;
                }
            }
        }
        Ok(self.report(t0))
    }

    /// Captures the complete run state at a window boundary as a
    /// serializable [`EmulationState`] — machine (cores, caches, memories,
    /// interconnect, sniffers, VPCM), thermal model (temperature field,
    /// warm-start history, convergence accounting), statistics link, DFS
    /// ladder position, trace and every cumulative counter. Restoring it
    /// into a freshly built identical emulation
    /// ([`crate::Scenario::resume_from`]) continues the run
    /// bitwise-identically.
    ///
    /// # Errors
    ///
    /// [`TemuError::WindowPending`] if called between
    /// [`ThermalEmulation::window_begin`] and
    /// [`ThermalEmulation::window_finish`] — mid-window state (the
    /// platform half's in-flight statistics) is deliberately not
    /// serializable; checkpoints live at window boundaries only.
    pub fn checkpoint(&self) -> Result<EmulationState, TemuError> {
        temu_obs::time!("core.checkpoint_capture_ns", self.checkpoint_inner())
    }

    fn checkpoint_inner(&self) -> Result<EmulationState, TemuError> {
        if self.pending.is_some() {
            return Err(TemuError::WindowPending);
        }
        let mut w = StateWriter::new(PLATFORM_MAGIC, PLATFORM_VERSION);
        self.machine.save_state(&mut w);
        self.link.save_state(&mut w);
        Ok(EmulationState {
            scenario_key: self.scenario_key,
            seq: self.seq,
            windows: self.windows,
            virtual_seconds: self.virtual_seconds,
            virtual_cycles: self.virtual_cycles,
            fpga_seconds: self.fpga_seconds,
            aggregate: self.aggregate.clone(),
            call_aggregate: self.call_aggregate.clone(),
            call_base: self.call_base.clone(),
            past_worst_residual_k: self.past_worst_residual_k,
            trace: self.trace.clone(),
            dfs_level: self.policy.as_ref().map(DfsPolicy::level),
            platform: w.into_bytes(),
            model: self.model.snapshot(),
        })
    }

    /// Installs a checkpoint into this (freshly built, identically
    /// configured) emulation. The caller — [`crate::Scenario::resume_from`]
    /// — is responsible for the configuration match; this method validates
    /// only structural shape (core count, cache presence, mesh geometry,
    /// DFS ladder depth). On error the emulation may be partially
    /// overwritten and must not be reused.
    ///
    /// # Errors
    ///
    /// [`TemuError::State`] if the embedded platform or thermal streams
    /// are corrupt or shaped for a different configuration.
    pub(crate) fn restore_state(&mut self, state: &EmulationState) -> Result<(), TemuError> {
        let (mut r, _) = StateReader::new(&state.platform, PLATFORM_MAGIC, PLATFORM_VERSION)?;
        self.machine.load_state(&mut r)?;
        self.link.load_state(&mut r)?;
        r.finish()?;
        self.model.restore(&state.model)?;
        match (state.dfs_level, self.policy.as_mut()) {
            (Some(level), Some(policy)) => {
                if !policy.restore_level(level) {
                    return Err(StateError::BadValue {
                        what: "DFS ladder level",
                        value: level as u64,
                    }
                    .into());
                }
            }
            (None, None) => {}
            (dfs_level, _) => {
                return Err(StateError::BadValue {
                    what: "DFS policy presence",
                    value: u64::from(dfs_level.is_some()),
                }
                .into());
            }
        }
        self.seq = state.seq;
        self.windows = state.windows;
        self.virtual_seconds = state.virtual_seconds;
        self.virtual_cycles = state.virtual_cycles;
        self.fpga_seconds = state.fpga_seconds;
        self.aggregate = state.aggregate.clone();
        self.call_aggregate = state.call_aggregate.clone();
        self.call_base = state.call_base.clone();
        self.past_worst_residual_k = state.past_worst_residual_k;
        self.trace = state.trace.clone();
        self.pending = None;
        Ok(())
    }

    /// Lifetime totals across every `run_*` call (and any direct
    /// [`ThermalEmulation::run_window`] calls) on this emulation — the
    /// cumulative counterpart of the per-call [`EmulationReport`].
    pub fn totals(&self) -> EmulationTotals {
        let mut solver = self.model.solver_stats();
        solver.worst_residual_k = solver.worst_residual_k.max(self.past_worst_residual_k);
        EmulationTotals {
            windows: self.windows,
            virtual_seconds: self.virtual_seconds,
            virtual_cycles: self.virtual_cycles,
            fpga_seconds: self.fpga_seconds,
            aggregate: self.aggregate.clone(),
            link: *self.link.stats(),
            solver,
        }
    }

    /// Marks the start of a `run_*` call: snapshots every cumulative
    /// counter so [`ThermalEmulation::report`] can subtract it, resets the
    /// per-call aggregate, and re-arms the solver's residual watermark
    /// (banking the old one for [`ThermalEmulation::totals`]).
    pub(crate) fn begin_call(&mut self) {
        self.call_aggregate = WindowStats::default();
        self.past_worst_residual_k = self.past_worst_residual_k.max(self.model.solver_stats().worst_residual_k);
        self.model.reset_residual_watermark();
        self.call_base = CallBase {
            windows: self.windows,
            virtual_seconds: self.virtual_seconds,
            virtual_cycles: self.virtual_cycles,
            fpga_seconds: self.fpga_seconds,
            link: *self.link.stats(),
            solver: self.model.solver_stats(),
        };
    }

    pub(crate) fn report(&self, t0: Instant) -> EmulationReport {
        let base = &self.call_base;
        let link = *self.link.stats();
        EmulationReport {
            windows: self.windows - base.windows,
            virtual_seconds: self.virtual_seconds - base.virtual_seconds,
            virtual_cycles: self.virtual_cycles - base.virtual_cycles,
            fpga_seconds: self.fpga_seconds - base.fpga_seconds,
            wall: t0.elapsed(),
            all_halted: self.machine.all_halted(),
            aggregate: self.call_aggregate.clone(),
            link: LinkStats {
                frames: link.frames - base.link.frames,
                wire_bytes: link.wire_bytes - base.link.wire_bytes,
                busy_seconds: link.busy_seconds - base.link.busy_seconds,
                freeze_seconds: link.freeze_seconds - base.link.freeze_seconds,
            },
            solver: self.model.solver_stats().delta_since(&base.solver),
        }
    }
}

/// The complete run state of a [`ThermalEmulation`] at a sampling-window
/// boundary, detached from the emulation and serializable
/// ([`EmulationState::to_bytes`] / [`EmulationState::from_bytes`]).
///
/// A checkpoint holds everything the next window's execution depends on:
///
/// * the **platform** — every core's registers and in-flight memory
///   operation, caches, private and shared memories, interconnect
///   arbitration, sniffer counters and event backlog, VPCM clock state;
/// * the **thermal model** — temperature field, lazily refreshed
///   coefficient anchors, second-order warm-start history, SOR/convergence
///   accounting ([`ThermalModel::snapshot`]);
/// * the **statistics link** counters, the **DFS ladder** position, the
///   recorded temperature **trace**, and every cumulative counter and
///   per-call baseline of the emulation.
///
/// # Invariants
///
/// * A state restored into an emulation built from the **same scenario
///   configuration** continues the run **bitwise-identically**: every
///   subsequent window executes the same cycles and produces the same
///   temperature bits as the uninterrupted run, and the final report and
///   trace are equal (wall-clock time excepted).
/// * `scenario_key` names the [`crate::Scenario`] (by
///   [`crate::Scenario::content_key`]) the state belongs to;
///   [`crate::Scenario::resume_from`] refuses a key mismatch, so a
///   checkpoint can never silently continue a different experiment.
/// * Checkpoints exist only at window boundaries — never between
///   [`ThermalEmulation::window_begin`] and
///   [`ThermalEmulation::window_finish`].
/// * The byte stream is versioned (`EMUS`, version 1) and fails closed:
///   corrupt, truncated, or differently-shaped streams return
///   [`TemuError::State`] instead of partially applying.
#[derive(Clone, Debug)]
pub struct EmulationState {
    scenario_key: u64,
    seq: u32,
    windows: u64,
    virtual_seconds: f64,
    virtual_cycles: u64,
    fpga_seconds: f64,
    aggregate: WindowStats,
    call_aggregate: WindowStats,
    call_base: CallBase,
    past_worst_residual_k: f64,
    trace: ThermalTrace,
    dfs_level: Option<usize>,
    /// Machine + statistics-link sections under the `TPLT` envelope.
    platform: Vec<u8>,
    /// [`ThermalModel::snapshot`] stream (its own `TSNP` envelope).
    model: Vec<u8>,
}

impl EmulationState {
    /// Content key of the scenario this state was checkpointed under
    /// (0 for hand-wired emulations).
    pub fn scenario_key(&self) -> u64 {
        self.scenario_key
    }

    /// Sampling windows the run had executed when this state was taken.
    pub fn windows(&self) -> u64 {
        self.windows
    }

    /// Serializes the state into a self-describing versioned byte stream.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = StateWriter::new(STATE_MAGIC, STATE_VERSION);
        w.u64(self.scenario_key);
        w.u32(self.seq);
        w.u64(self.windows);
        w.f64(self.virtual_seconds);
        w.u64(self.virtual_cycles);
        w.f64(self.fpga_seconds);
        self.aggregate.save_state(&mut w);
        self.call_aggregate.save_state(&mut w);
        w.u64(self.call_base.windows);
        w.f64(self.call_base.virtual_seconds);
        w.u64(self.call_base.virtual_cycles);
        w.f64(self.call_base.fpga_seconds);
        self.call_base.link.save_state(&mut w);
        save_solver_stats(&self.call_base.solver, &mut w);
        w.f64(self.past_worst_residual_k);
        w.usize(self.trace.component_names.len());
        for name in &self.trace.component_names {
            w.bytes(name.as_bytes());
        }
        w.usize(self.trace.samples.len());
        for s in &self.trace.samples {
            w.f64(s.t_virtual_s);
            w.f64_slice(&s.temps_k);
            w.f64(s.max_temp_k);
            w.u64(s.virtual_hz);
            w.f64(s.total_power_w);
            w.f64(s.fpga_seconds);
        }
        w.bool(self.dfs_level.is_some());
        if let Some(level) = self.dfs_level {
            w.usize(level);
        }
        w.bytes(&self.platform);
        w.bytes(&self.model);
        w.into_bytes()
    }

    /// Decodes a stream written by [`EmulationState::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`TemuError::State`] on a corrupt, truncated, or
    /// unsupported-version stream. The embedded platform and thermal
    /// sections are validated later, on restore.
    pub fn from_bytes(buf: &[u8]) -> Result<EmulationState, TemuError> {
        let (mut r, _) = StateReader::new(buf, STATE_MAGIC, STATE_VERSION)?;
        let scenario_key = r.u64()?;
        let seq = r.u32()?;
        let windows = r.u64()?;
        let virtual_seconds = r.f64()?;
        let virtual_cycles = r.u64()?;
        let fpga_seconds = r.f64()?;
        let mut aggregate = WindowStats::default();
        aggregate.load_state(&mut r)?;
        let mut call_aggregate = WindowStats::default();
        call_aggregate.load_state(&mut r)?;
        let mut call_base = CallBase {
            windows: r.u64()?,
            virtual_seconds: r.f64()?,
            virtual_cycles: r.u64()?,
            fpga_seconds: r.f64()?,
            ..CallBase::default()
        };
        call_base.link.load_state(&mut r)?;
        call_base.solver = load_solver_stats(&mut r)?;
        let past_worst_residual_k = r.f64()?;
        let n_names = r.usize()?;
        let mut component_names = Vec::new();
        for _ in 0..n_names {
            let raw = r.bytes()?;
            component_names.push(String::from_utf8(raw).map_err(|_| StateError::BadValue {
                what: "component name (not UTF-8)",
                value: 0,
            })?);
        }
        let n_samples = r.usize()?;
        let mut samples = Vec::new();
        for _ in 0..n_samples {
            samples.push(TraceSample {
                t_virtual_s: r.f64()?,
                temps_k: r.f64_vec()?,
                max_temp_k: r.f64()?,
                virtual_hz: r.u64()?,
                total_power_w: r.f64()?,
                fpga_seconds: r.f64()?,
            });
        }
        let dfs_level = if r.bool()? { Some(r.usize()?) } else { None };
        let platform = r.bytes()?;
        let model = r.bytes()?;
        r.finish()?;
        let mut trace = ThermalTrace::new(component_names);
        trace.samples = samples;
        Ok(EmulationState {
            scenario_key,
            seq,
            windows,
            virtual_seconds,
            virtual_cycles,
            fpga_seconds,
            aggregate,
            call_aggregate,
            call_base,
            past_worst_residual_k,
            trace,
            dfs_level,
            platform,
            model,
        })
    }
}

/// [`SolverStats`] is `#[non_exhaustive]`, so it is serialized here next
/// to its only cross-crate consumer instead of in `temu-thermal`.
fn save_solver_stats(s: &SolverStats, w: &mut StateWriter) {
    w.u64(s.substeps);
    w.u64(s.unconverged_substeps);
    w.f64(s.worst_residual_k);
    w.u64(s.total_sweeps);
    w.u64(s.total_cycles);
}

fn load_solver_stats(r: &mut StateReader<'_>) -> Result<SolverStats, StateError> {
    let mut s = SolverStats::default();
    s.substeps = r.u64()?;
    s.unconverged_substeps = r.u64()?;
    s.worst_residual_k = r.f64()?;
    s.total_sweeps = r.u64()?;
    s.total_cycles = r.u64()?;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use temu_platform::PlatformConfig;
    use temu_power::floorplans::fig4b_arm11;
    use temu_workloads::matrix::{self, MatrixConfig};

    fn emulation(policy: Option<DfsPolicy>, iters: u32) -> ThermalEmulation {
        let mut machine = Machine::new(PlatformConfig::paper_thermal(4)).unwrap();
        let cfg = MatrixConfig { n: 8, iters, cores: 4 };
        machine.load_program_all(&matrix::program(&cfg).unwrap()).unwrap();
        let mut ecfg = EmulationConfig { policy, ..EmulationConfig::default() };
        ecfg.sampling_window_s = 0.001; // 1 ms windows keep the tests fast
        ThermalEmulation::new(machine, fig4b_arm11(), ecfg).unwrap()
    }

    #[test]
    fn workload_completes_and_heats_the_die() {
        let mut emu = emulation(None, 50);
        let report = emu.run_to_halt(400).unwrap();
        assert!(report.all_halted, "matrix workload finished");
        assert!(report.windows > 1);
        let peak = emu.trace().peak_temp().unwrap();
        assert!(peak > 300.5, "the die warmed up: {peak}");
        assert!(report.fpga_seconds > 0.0);
        assert_eq!(report.virtual_cycles, report.aggregate.cycles());
    }

    #[test]
    fn second_call_reports_only_its_own_windows() {
        // Regression: the report used to mix lifetime-cumulative counters
        // with a per-call wall clock, so a second `run_windows` call
        // charged this call's wall time against all-time window counts and
        // corrupted any derived throughput.
        let mut emu = emulation(None, 100_000);
        let first = emu.run_windows(3).unwrap();
        assert_eq!(first.windows, 3);
        let second = emu.run_windows(2).unwrap();
        assert_eq!(second.windows, 2, "second call reports its own windows only");
        assert!((second.virtual_seconds - 0.002).abs() < 1e-9, "2 × 1 ms windows");
        assert!(second.virtual_cycles < first.virtual_cycles);
        assert_eq!(
            second.virtual_cycles,
            second.aggregate.cycles(),
            "per-call aggregate matches per-call cycles"
        );
        assert!(second.fpga_seconds > 0.0 && second.fpga_seconds < first.fpga_seconds);
        assert!(second.link.frames >= 2 && second.link.frames < first.link.frames);
        assert!(second.solver.substeps > 0 && second.solver.substeps < first.solver.substeps);
        // The cumulative view lives on the emulation itself.
        let totals = emu.totals();
        assert_eq!(totals.windows, 5);
        assert!((totals.virtual_seconds - 0.005).abs() < 1e-9);
        assert_eq!(totals.virtual_cycles, first.virtual_cycles + second.virtual_cycles);
        assert_eq!(totals.aggregate.cycles(), totals.virtual_cycles);
        assert_eq!(totals.link.frames, first.link.frames + second.link.frames);
        assert_eq!(totals.solver.substeps, first.solver.substeps + second.solver.substeps);
    }

    #[test]
    fn trace_grows_one_sample_per_window() {
        let mut emu = emulation(None, 10_000);
        let _ = emu.run_windows(5).unwrap();
        assert_eq!(emu.trace().len(), 5);
        let t = emu.trace().samples.last().unwrap().t_virtual_s;
        assert!((t - 0.005).abs() < 1e-9);
    }

    #[test]
    fn dfs_policy_throttles_when_forced_hot() {
        // An aggressive policy (hot threshold just above ambient) must kick
        // in within a few windows and halve the cycle budget of later windows.
        let policy = DfsPolicy::new(300.6, 300.3, 500_000_000, 100_000_000).unwrap();
        let mut emu = emulation(Some(policy), 100_000);
        let _ = emu.run_windows(40).unwrap();
        let hzs: Vec<u64> = emu.trace().samples.iter().map(|s| s.virtual_hz).collect();
        assert!(hzs.contains(&500_000_000), "starts fast");
        assert!(hzs.contains(&100_000_000), "throttles when hot: {hzs:?}");
        assert!(emu.trace().throttled_fraction() > 0.0);
    }

    #[test]
    fn sensors_reflect_model_temperatures() {
        let mut emu = emulation(None, 100_000);
        let _ = emu.run_windows(3).unwrap();
        let model_t = emu.model().component_temp(emu.map.cores[0].0);
        let sensor_t = emu.machine().uncore().mmio.sensor_kelvin(emu.map.cores[0].0);
        assert!((model_t - sensor_t).abs() < 0.01, "sensor {sensor_t} vs model {model_t}");
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = emulation(Some(DfsPolicy::paper()), 2000);
        let mut b = emulation(Some(DfsPolicy::paper()), 2000);
        let _ = a.run_windows(10).unwrap();
        let _ = b.run_windows(10).unwrap();
        assert_eq!(a.trace().samples.len(), b.trace().samples.len());
        for (x, y) in a.trace().samples.iter().zip(b.trace().samples.iter()) {
            assert_eq!(x.virtual_hz, y.virtual_hz);
            assert!((x.max_temp_k - y.max_temp_k).abs() < 1e-12);
        }
    }

    #[test]
    fn mismatched_floorplan_rejected() {
        let machine = Machine::new(PlatformConfig::paper_bus(8)).unwrap();
        let e = ThermalEmulation::new(machine, fig4b_arm11(), EmulationConfig::default());
        assert!(e.is_err(), "4-core floorplan cannot host 8 cores");
    }

    #[test]
    fn sweep_mode_flows_through_emulation_config() {
        use temu_thermal::SweepMode;
        // Paper-scale mesh under the default Auto mode: serial.
        let auto = emulation(None, 10);
        assert!(!auto.solver_parallel(), "paper-scale mesh stays single-threaded");
        // Forcing the threshold down (or the mode to Parallel) switches the
        // loop's solver to colored parallel sweeps.
        let machine = Machine::new(PlatformConfig::paper_thermal(4)).unwrap();
        let mut ecfg = EmulationConfig::default();
        ecfg.grid.sweep = SweepMode::Parallel;
        let forced = ThermalEmulation::new(machine, fig4b_arm11(), ecfg).unwrap();
        assert!(forced.solver_parallel());
    }

    #[test]
    fn forced_parallel_solver_matches_serial_loop() {
        use temu_thermal::SweepMode;
        let run = |sweep| {
            let mut machine = Machine::new(PlatformConfig::paper_thermal(4)).unwrap();
            let cfg = MatrixConfig { n: 8, iters: 50_000, cores: 4 };
            machine.load_program_all(&matrix::program(&cfg).unwrap()).unwrap();
            let mut ecfg = EmulationConfig { sampling_window_s: 0.001, ..EmulationConfig::default() };
            ecfg.grid.sweep = sweep;
            let mut emu = ThermalEmulation::new(machine, fig4b_arm11(), ecfg).unwrap();
            let _ = emu.run_windows(10).unwrap();
            emu.trace().samples.last().unwrap().max_temp_k
        };
        let serial = run(SweepMode::Serial);
        let parallel = run(SweepMode::Parallel);
        assert!((serial - parallel).abs() < 1e-3, "serial {serial} K vs parallel {parallel} K");
    }

    #[test]
    fn link_carries_stats_every_window() {
        let mut emu = emulation(None, 10_000);
        let _ = emu.run_windows(4).unwrap();
        assert!(emu.link().stats().frames >= 4, "at least one frame per window");
        assert_eq!(emu.link().stats().freeze_seconds, 0.0, "count-logging never congests");
    }

    #[test]
    fn window_protocol_violations_are_typed_errors() {
        let mut emu = emulation(None, 10_000);
        assert!(matches!(emu.window_finish(), Err(TemuError::WindowNotBegun)));
        emu.window_begin().unwrap();
        assert!(matches!(emu.window_begin(), Err(TemuError::WindowPending)));
        assert!(matches!(emu.checkpoint(), Err(TemuError::WindowPending)));
        emu.model_mut().try_step(0.001).unwrap();
        emu.window_finish().unwrap();
        // The recovered emulation keeps running normally.
        let report = emu.run_windows(2).unwrap();
        assert_eq!(report.windows, 2);
    }

    #[test]
    fn checkpoint_resume_continues_bitwise_identically() {
        // An aggressive DFS band so the ladder moves before the split
        // point — the checkpoint must carry the mid-ladder position.
        let policy = || Some(DfsPolicy::new(300.6, 300.3, 500_000_000, 100_000_000).unwrap());
        let mut uninterrupted = emulation(policy(), 100_000);
        let full = uninterrupted.run_windows(20).unwrap();

        let mut first_half = emulation(policy(), 100_000);
        let _ = first_half.run_budget_observed(RunBudget::Windows(12), false, None).unwrap();
        let state = first_half.checkpoint().unwrap();
        assert_eq!(state.scenario_key(), 0, "hand-wired emulations carry the null key");
        assert_eq!(state.windows(), 12);
        // Round-trip through the serialized form.
        let state = EmulationState::from_bytes(&state.to_bytes()).unwrap();

        let mut resumed = emulation(policy(), 100_000);
        resumed.restore_state(&state).unwrap();
        let report = resumed.run_budget_observed(RunBudget::Windows(20), true, None).unwrap();

        // The resumed report covers the whole logical run.
        assert_eq!(report.windows, full.windows);
        assert_eq!(report.virtual_cycles, full.virtual_cycles);
        assert_eq!(report.virtual_seconds.to_bits(), full.virtual_seconds.to_bits());
        assert_eq!(report.fpga_seconds.to_bits(), full.fpga_seconds.to_bits());
        assert_eq!(report.aggregate, full.aggregate);
        assert_eq!(report.link, full.link);
        assert_eq!(report.solver, full.solver);
        // And the trace is bitwise-identical, DFS ladder moves included.
        let (a, b) = (uninterrupted.trace(), resumed.trace());
        assert_eq!(a.samples.len(), b.samples.len());
        let mut throttled = false;
        for (x, y) in a.samples.iter().zip(b.samples.iter()) {
            assert_eq!(x.virtual_hz, y.virtual_hz);
            throttled |= x.virtual_hz < 500_000_000;
            assert_eq!(x.max_temp_k.to_bits(), y.max_temp_k.to_bits());
            for (tx, ty) in x.temps_k.iter().zip(&y.temps_k) {
                assert_eq!(tx.to_bits(), ty.to_bits());
            }
        }
        assert!(throttled, "the DFS ladder actually moved across the split");
    }

    #[test]
    fn corrupt_state_stream_is_rejected() {
        let mut emu = emulation(None, 10_000);
        let _ = emu.run_windows(3).unwrap();
        let bytes = emu.checkpoint().unwrap().to_bytes();
        let truncated = &bytes[..bytes.len() - 4];
        assert!(matches!(EmulationState::from_bytes(truncated), Err(TemuError::State(_))));
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] ^= 0xFF;
        assert!(matches!(EmulationState::from_bytes(&wrong_magic), Err(TemuError::State(_))));
    }
}
