//! Serve smoke under tier-1: an in-process `temu-serve` server driven by
//! the protocol client, exercising the full loop the release gate scripts
//! run through the real bins — submit the strict-convergence smoke
//! preset, assert every point converges, resubmit and assert the job is
//! answered entirely from the shared cache.

use temu_framework::{JsonValue, SweepSpec};
use temu_serve::{Client, RetryPolicy, ServeConfig, Server};

#[test]
fn smoke_preset_runs_clean_and_reruns_fully_cached() {
    let handle = Server::spawn(ServeConfig {
        addr: String::from("127.0.0.1:0"),
        ..ServeConfig::default()
    })
    .expect("spawn in-process server");
    let mut client = Client::connect_with_retry(&handle.addr().to_string(), &RetryPolicy::default())
        .expect("connect");

    let spec = SweepSpec::named("smoke").expect("the smoke preset exists");
    let first = client.submit(&spec, true, |_| {}).unwrap().done.unwrap();
    assert!(first.ok, "smoke preset converges strictly: {first:?}");
    assert_eq!(first.points, 8, "the 8-point strict-convergence grid");
    assert_eq!((first.executed, first.cache_hits, first.failed), (8, 0, 0));

    let rerun = client.submit(&spec, true, |_| {}).unwrap().done.unwrap();
    assert_eq!(
        (rerun.executed, rerun.cache_hits),
        (0, 8),
        "resubmission is served from the shared cache without executing"
    );

    let stats = client.stats().unwrap();
    assert_eq!(stats.get("jobs_completed").and_then(JsonValue::as_u64), Some(2));
    assert!(stats.get("cache_hit_rate").and_then(JsonValue::as_f64).unwrap() > 0.49);
    // An in-memory server journals nothing and recovers nothing.
    assert_eq!(stats.get("jobs_recovered").and_then(JsonValue::as_u64), Some(0));
    assert_eq!(stats.get("journal"), Some(&JsonValue::Null));
    client.close();
    handle.shutdown();
}
