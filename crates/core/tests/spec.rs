//! Wire-format round-trip coverage: every `Scenario` preset and every
//! `Sweep` axis must survive `Spec → JSON → Spec → Scenario` with an
//! unchanged `content_key()` — the contract that pins the wire format to
//! the result cache's key space. A spec that drifted through
//! serialization would silently miss (or worse, falsely hit) cached
//! results.

use temu_framework::{
    AxisSpec, DfsSpec, ImplicitSolve, MeshSpec, PlatformSpec, Scenario, ScenarioSpec, SweepSpec,
    WorkloadSpec,
};
use temu_platform::DfsBand;

/// Lowers a scenario spec before and after a JSON round trip and asserts
/// the content keys (and labels) match.
fn assert_scenario_roundtrip(spec: &ScenarioSpec) -> Scenario {
    let direct = spec.lower().expect("spec lowers");
    let json = spec.to_json();
    let reparsed = ScenarioSpec::from_json(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
    assert_eq!(&reparsed, spec, "struct equality after the round trip: {json}");
    let rehydrated = reparsed.lower().expect("reparsed spec lowers");
    assert_eq!(
        rehydrated.content_key(),
        direct.content_key(),
        "content key drifted through JSON: {json}"
    );
    assert_eq!(rehydrated.label(), direct.label());
    direct
}

/// Expands a sweep spec before and after a JSON round trip and asserts
/// every grid point's content key (and label) matches.
fn assert_sweep_roundtrip(spec: &SweepSpec) {
    let direct = spec.lower().expect("sweep spec lowers").expand();
    let json = spec.to_json();
    let reparsed = SweepSpec::from_json(&json).unwrap_or_else(|e| panic!("{json}: {e}"));
    assert_eq!(&reparsed, spec, "struct equality after the round trip: {json}");
    let rehydrated = reparsed.lower().expect("reparsed sweep lowers").expand();
    assert_eq!(rehydrated.len(), direct.len());
    for (a, b) in direct.iter().zip(&rehydrated) {
        assert_eq!(a.label, b.label, "{json}");
        assert_eq!(a.key, b.key, "point {} changed content key through JSON", a.label);
    }
}

#[test]
fn every_scenario_preset_round_trips_with_its_builder_key() {
    // (spec, the fluent-builder scenario it must be indistinguishable
    // from — same content key, hence same cache entries.)
    let presets: Vec<(ScenarioSpec, Scenario)> = vec![
        (ScenarioSpec::default(), Scenario::new()),
        (ScenarioSpec::preset("new"), Scenario::new()),
        (ScenarioSpec::preset("paper_fig6"), Scenario::paper_fig6()),
        (ScenarioSpec::preset("paper_fig6_unmanaged"), Scenario::paper_fig6_unmanaged()),
        (ScenarioSpec::preset_with("thermal_stress", 123), Scenario::thermal_stress(123)),
        (ScenarioSpec::preset_with("exploration_bus", 2), Scenario::exploration_bus(2)),
        (ScenarioSpec::preset_with("exploration_noc", 4), Scenario::exploration_noc(4)),
    ];
    for (spec, builder) in presets {
        let lowered = assert_scenario_roundtrip(&spec);
        assert_eq!(
            lowered.content_key(),
            builder.content_key(),
            "spec {:?} must hit the same cache entries as the fluent preset",
            spec.preset
        );
    }
}

#[test]
fn fully_overridden_scenario_spec_round_trips() {
    let spec = ScenarioSpec {
        preset: Some(String::from("exploration_bus")),
        preset_arg: Some(4),
        name: Some(String::from("überride \"quoted\"\n")),
        cores: Some(2),
        workload: Some(WorkloadSpec::Dithering { width: 32, height: 32, images: 1, cores: 2, seed: 11 }),
        dfs: Some(DfsSpec::Ladder {
            levels_hz: vec![500_000_000, 250_000_000, 100_000_000],
            bands: vec![DfsBand { hot_k: 345.5, cool_k: 335.25 }, DfsBand { hot_k: 355.0, cool_k: 345.75 }],
        }),
        sampling_window_s: Some(0.00125),
        mesh: Some(MeshSpec {
            ambient_k: Some(301.5),
            si_layers: Some(1),
            cu_layers: Some(1),
            default_div: Some(3),
            hot_div: Some(4),
            filler_pitch_um: Some(750.0),
            package_to_air: Some(4.5),
            dt_s: Some(0.00025),
        }),
        solver: Some(ImplicitSolve::Multigrid),
        strict_convergence: Some(true),
        windows: Some(7),
        to_halt: None,
        check_fit_v2vp30: true,
    };
    let lowered = assert_scenario_roundtrip(&spec);
    assert_eq!(lowered.label(), spec.name.clone().unwrap(), "explicit names survive");

    // The unmanaged marker and the to_halt budget round-trip too.
    let spec = ScenarioSpec {
        dfs: Some(DfsSpec::Unmanaged),
        to_halt: Some(50),
        ..ScenarioSpec::default()
    };
    assert_scenario_roundtrip(&spec);
}

#[test]
fn every_sweep_axis_round_trips_point_keys() {
    let base = ScenarioSpec {
        cores: Some(1),
        workload: Some(WorkloadSpec::Matrix { n: 4, iters: 1, cores: 1 }),
        sampling_window_s: Some(0.0005),
        windows: Some(1),
        ..ScenarioSpec::default()
    };
    // One sweep per axis kind, so a failure names the axis that drifted.
    let axes: Vec<(&str, AxisSpec)> = vec![
        ("cores", AxisSpec::Cores(vec![1, 2, 4])),
        ("windows", AxisSpec::Windows(vec![1, 2, 3])),
        (
            "dfs_bands",
            AxisSpec::DfsBands {
                bands: vec![(350.0, 340.0), (345.5, 335.25)],
                high_hz: 500_000_000,
                low_hz: 100_000_000,
            },
        ),
        (
            "dfs_ladders",
            AxisSpec::DfsLadders {
                levels_hz: vec![500_000_000, 250_000_000, 100_000_000],
                band_sets: vec![
                    vec![DfsBand { hot_k: 345.0, cool_k: 335.0 }, DfsBand { hot_k: 355.0, cool_k: 345.0 }],
                    vec![DfsBand { hot_k: 342.0, cool_k: 332.0 }, DfsBand { hot_k: 352.0, cool_k: 342.0 }],
                ],
            },
        ),
        (
            "dfs_policies",
            AxisSpec::DfsPolicies(vec![DfsSpec::Unmanaged, DfsSpec::paper()]),
        ),
        (
            "platforms",
            AxisSpec::Platforms(vec![
                PlatformSpec { kind: String::from("bus"), cores: 2 },
                PlatformSpec { kind: String::from("noc"), cores: 2 },
                PlatformSpec { kind: String::from("thermal"), cores: 2 },
            ]),
        ),
        (
            "meshes",
            AxisSpec::Meshes(vec![
                (String::from("paper"), MeshSpec::default()),
                (
                    String::from("fine"),
                    MeshSpec { default_div: Some(3), hot_div: Some(5), ..MeshSpec::default() },
                ),
            ]),
        ),
        (
            "workloads",
            AxisSpec::Workloads(vec![
                WorkloadSpec::Matrix { n: 4, iters: 2, cores: 1 },
                WorkloadSpec::Dithering { width: 32, height: 32, images: 1, cores: 1, seed: 3 },
            ]),
        ),
        (
            "solvers",
            AxisSpec::Solvers(vec![ImplicitSolve::GaussSeidel, ImplicitSolve::Multigrid, ImplicitSolve::Auto]),
        ),
    ];
    for (name, axis) in axes {
        let spec = SweepSpec {
            name: format!("axis-{name}"),
            base: base.clone(),
            axes: vec![axis],
            threads: None,
        };
        assert_sweep_roundtrip(&spec);
    }
}

#[test]
fn multi_axis_sweep_and_named_presets_round_trip() {
    // A grid combining several axes (including per-point errors: the
    // second band is inverted, so that point's key is None on both sides).
    let spec = SweepSpec {
        name: String::from("multi"),
        base: ScenarioSpec::default(),
        axes: vec![
            AxisSpec::Cores(vec![2, 4]),
            AxisSpec::DfsBands {
                bands: vec![(350.0, 340.0), (340.0, 350.0)],
                high_hz: 500_000_000,
                low_hz: 100_000_000,
            },
            AxisSpec::Solvers(vec![ImplicitSolve::Auto]),
        ],
        threads: Some(2),
    };
    assert_sweep_roundtrip(&spec);
    let expanded = spec.lower().unwrap().expand();
    assert_eq!(expanded.len(), 4);
    assert!(expanded.iter().any(|p| p.key.is_none()), "the inverted band stays a per-point error");

    for (name, _) in temu_framework::NAMED_SWEEPS {
        assert_sweep_roundtrip(&SweepSpec::named(name).expect("named preset"));
    }
}

#[test]
fn spec_content_keys_match_the_equivalent_builder_chain() {
    // A spec-described sweep point must land on the same cache key as the
    // hand-built builder chain an API user would write.
    let spec = SweepSpec {
        name: String::from("parity"),
        base: ScenarioSpec::preset_with("exploration_bus", 2),
        axes: vec![AxisSpec::Cores(vec![1, 2])],
        threads: None,
    };
    let from_spec = spec.lower().unwrap().expand();
    let by_hand =
        temu_framework::Sweep::new("parity", Scenario::exploration_bus(2)).cores(&[1, 2]).expand();
    assert_eq!(from_spec.len(), by_hand.len());
    for (a, b) in from_spec.iter().zip(&by_hand) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.key, b.key, "wire-described grids share the builder's cache keys");
    }
}

#[test]
fn layered_keys_compose_to_the_content_key_for_every_named_preset() {
    // The staged fingerprint (floorplan → mesh → operator → platform) must
    // fold to the exact legacy content key for every point of every wire
    // preset — on-disk result caches and fleet shard routing both hash
    // this key, so the layered decomposition cannot move it by one bit.
    for (name, _) in temu_framework::NAMED_SWEEPS {
        let spec = SweepSpec::named(name).expect("named preset");
        let points = spec.lower().expect("preset lowers").expand();
        assert!(!points.is_empty(), "{name}: presets expand to at least one point");
        for p in &points {
            let scenario = p.scenario.as_ref().expect("preset points are valid");
            let keys = scenario.layered_keys();
            assert_eq!(
                keys.platform_key,
                scenario.content_key(),
                "{name}/{}: layered keys must compose to the legacy content key",
                p.label
            );
            assert_eq!(p.key, Some(keys.platform_key));
        }
    }
}
