//! Timing/traffic model of the private HW-controlled L1 caches (§3.2).
//!
//! Direct-mapped and set-associative organizations are supported, with
//! independently configurable total size, line size and hit latency — exactly
//! the knobs the paper exposes. Replacement is LRU within a set. Write policy
//! is configurable (the platform default is write-back/write-allocate).

use crate::error::MemConfigError;
use crate::stats::{AccessKind, CacheStats};
use temu_state::{StateError, StateReader, StateWriter};

/// Write-handling policy.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WritePolicy {
    /// Dirty lines written back on eviction; write misses allocate.
    WriteBack,
    /// Every write is forwarded to memory; write misses do not allocate.
    WriteThrough,
}

/// Whether a cache serves instruction fetches or data accesses (statistics
/// and sniffers report them separately).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheKind {
    Instruction,
    Data,
}

/// Cache geometry and timing configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CacheConfig {
    /// Total capacity in bytes (power of two).
    pub size_bytes: u32,
    /// Line size in bytes (power of two, ≥ 4).
    pub line_bytes: u32,
    /// Associativity; 1 = direct-mapped.
    pub ways: u32,
    /// Cycles a hit occupies the core (≥ 1).
    pub hit_latency: u32,
    /// Write policy.
    pub write_policy: WritePolicy,
}

impl CacheConfig {
    /// The paper's §7 exploration configuration: 4 KB direct-mapped, 16-byte
    /// lines, single-cycle hits, write-back.
    pub fn paper_l1_4k() -> CacheConfig {
        CacheConfig { size_bytes: 4 * 1024, line_bytes: 16, ways: 1, hit_latency: 1, write_policy: WritePolicy::WriteBack }
    }

    /// The paper's §7 thermal configuration: 8 KB direct-mapped.
    pub fn paper_l1_8k() -> CacheConfig {
        CacheConfig { size_bytes: 8 * 1024, line_bytes: 16, ways: 1, hit_latency: 1, write_policy: WritePolicy::WriteBack }
    }

    /// Number of sets implied by the geometry.
    pub fn sets(&self) -> u32 {
        self.size_bytes / (self.line_bytes * self.ways)
    }

    /// Words per line.
    pub fn line_words(&self) -> u32 {
        self.line_bytes / 4
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: sizes must be powers of two,
    /// the line must be ≥ 4 bytes, the capacity must hold at least one set,
    /// and `hit_latency` must be ≥ 1.
    pub fn validate(&self) -> Result<(), MemConfigError> {
        if !self.size_bytes.is_power_of_two() {
            return Err(MemConfigError::CacheSizeNotPowerOfTwo { size_bytes: self.size_bytes });
        }
        if !self.line_bytes.is_power_of_two() || self.line_bytes < 4 {
            return Err(MemConfigError::CacheLineInvalid { line_bytes: self.line_bytes });
        }
        if self.ways == 0 || self.size_bytes < self.line_bytes * self.ways {
            return Err(MemConfigError::CacheGeometry {
                size_bytes: self.size_bytes,
                ways: self.ways,
                line_bytes: self.line_bytes,
            });
        }
        if self.hit_latency == 0 {
            return Err(MemConfigError::CacheZeroHitLatency);
        }
        Ok(())
    }
}

impl Default for CacheConfig {
    fn default() -> CacheConfig {
        CacheConfig::paper_l1_4k()
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct Line {
    tag: u32,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// Outcome of one cache access, telling the memory controller what traffic
/// the access generates.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheResponse {
    /// Line present; no memory traffic.
    Hit,
    /// Line fill required; `writeback_addr` is the base address of the dirty
    /// victim that must be written back first (write-back policy only).
    Miss { writeback_addr: Option<u32> },
    /// Write-through / non-allocating write: the word goes straight to
    /// memory; no fill happens. (`hit` tells whether the line was present and
    /// updated in place.)
    WriteThrough { hit: bool },
}

/// One L1 cache instance (tags + LRU state + statistics; data lives in the
/// functional memory image, keeping the cache transparent as in the paper).
#[derive(Clone, Debug)]
pub struct Cache {
    cfg: CacheConfig,
    kind: CacheKind,
    lines: Vec<Line>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Builds a cache from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.validate()` fails — configurations are user input and
    /// must be validated at platform-build time.
    pub fn new(cfg: CacheConfig, kind: CacheKind) -> Cache {
        if let Err(e) = cfg.validate() {
            panic!("invalid cache configuration: {e}");
        }
        let lines = vec![Line::default(); (cfg.sets() * cfg.ways) as usize];
        Cache { cfg, kind, lines, tick: 0, stats: CacheStats::default() }
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> &CacheConfig {
        &self.cfg
    }

    /// Whether this is an instruction or data cache.
    pub fn kind(&self) -> CacheKind {
        self.kind
    }

    /// Statistics accumulated since construction or the last [`Cache::take_stats`].
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Returns and resets the statistics (sampling-window collection).
    pub fn take_stats(&mut self) -> CacheStats {
        std::mem::take(&mut self.stats)
    }

    /// Base address of the line containing `addr`.
    pub fn line_base(&self, addr: u32) -> u32 {
        addr & !(self.cfg.line_bytes - 1)
    }

    fn set_of(&self, addr: u32) -> u32 {
        (addr / self.cfg.line_bytes) % self.cfg.sets()
    }

    fn tag_of(&self, addr: u32) -> u32 {
        addr / self.cfg.line_bytes / self.cfg.sets()
    }

    /// Performs one access, updating tags, LRU and statistics, and reports
    /// the generated memory traffic.
    pub fn access(&mut self, addr: u32, kind: AccessKind) -> CacheResponse {
        self.tick += 1;
        let is_write = kind == AccessKind::Write;
        if is_write {
            self.stats.writes += 1;
        } else {
            self.stats.reads += 1;
        }

        let set = self.set_of(addr);
        let tag = self.tag_of(addr);
        let ways = self.cfg.ways as usize;
        let base = set as usize * ways;
        let set_lines = &mut self.lines[base..base + ways];

        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.tick;
            self.stats.hits += 1;
            if is_write {
                match self.cfg.write_policy {
                    WritePolicy::WriteBack => {
                        line.dirty = true;
                        CacheResponse::Hit
                    }
                    WritePolicy::WriteThrough => {
                        self.stats.write_throughs += 1;
                        CacheResponse::WriteThrough { hit: true }
                    }
                }
            } else {
                CacheResponse::Hit
            }
        } else {
            self.stats.misses += 1;
            if is_write && self.cfg.write_policy == WritePolicy::WriteThrough {
                // No-allocate write miss: single word to memory.
                self.stats.write_throughs += 1;
                return CacheResponse::WriteThrough { hit: false };
            }
            // Choose the LRU victim (invalid lines first).
            let victim = set_lines
                .iter_mut()
                .min_by_key(|l| if l.valid { l.lru + 1 } else { 0 })
                .expect("sets are never empty");
            let writeback_addr = if victim.valid && victim.dirty {
                self.stats.writebacks += 1;
                let victim_addr = (victim.tag * self.cfg.sets() + set) * self.cfg.line_bytes;
                Some(victim_addr)
            } else {
                None
            };
            victim.valid = true;
            victim.dirty = is_write;
            victim.tag = tag;
            victim.lru = self.tick;
            CacheResponse::Miss { writeback_addr }
        }
    }

    /// Invalidates all lines (losing dirtiness — used on reset only).
    pub fn invalidate_all(&mut self) {
        for l in &mut self.lines {
            *l = Line::default();
        }
    }

    /// Serializes tags, LRU state, the access tick and statistics.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.lines.len());
        for l in &self.lines {
            w.u32(l.tag);
            w.bool(l.valid);
            w.bool(l.dirty);
            w.u64(l.lru);
        }
        w.u64(self.tick);
        self.stats.save_state(w);
    }

    /// Restores tags, LRU state, the access tick and statistics.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::BadLength`] if the recorded geometry differs
    /// from this cache's, or a decode error on a corrupt stream.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let n = r.usize()?;
        if n != self.lines.len() {
            return Err(StateError::BadLength { found: n as u64, max: self.lines.len() as u64 });
        }
        for l in &mut self.lines {
            l.tag = r.u32()?;
            l.valid = r.bool()?;
            l.dirty = r.bool()?;
            l.lru = r.u64()?;
        }
        self.tick = r.u64()?;
        self.stats.load_state(r)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dm_cache() -> Cache {
        // 4 sets of 16-byte lines, direct-mapped.
        Cache::new(
            CacheConfig { size_bytes: 64, line_bytes: 16, ways: 1, hit_latency: 1, write_policy: WritePolicy::WriteBack },
            CacheKind::Data,
        )
    }

    #[test]
    fn geometry_helpers() {
        let c = CacheConfig::paper_l1_4k();
        assert_eq!(c.sets(), 256);
        assert_eq!(c.line_words(), 4);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let mut c = CacheConfig::paper_l1_4k();
        c.size_bytes = 3000;
        assert!(c.validate().is_err());
        c = CacheConfig::paper_l1_4k();
        c.line_bytes = 2;
        assert!(c.validate().is_err());
        c = CacheConfig::paper_l1_4k();
        c.ways = 0;
        assert!(c.validate().is_err());
        c = CacheConfig::paper_l1_4k();
        c.hit_latency = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid cache configuration")]
    fn construction_panics_on_invalid() {
        let mut c = CacheConfig::paper_l1_4k();
        c.ways = 3;
        c.size_bytes = 4096; // 4096 / (16*3) is not integral but also not power-of-two-clean
        c.line_bytes = 24;
        let _ = Cache::new(c, CacheKind::Data);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = dm_cache();
        assert_eq!(c.access(0x00, AccessKind::Read), CacheResponse::Miss { writeback_addr: None });
        assert_eq!(c.access(0x04, AccessKind::Read), CacheResponse::Hit, "same line");
        assert_eq!(c.access(0x10, AccessKind::Read), CacheResponse::Miss { writeback_addr: None });
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 2);
    }

    #[test]
    fn conflict_eviction_direct_mapped() {
        let mut c = dm_cache();
        // 4 sets * 16B = 64B; addresses 0x00 and 0x40 conflict in set 0.
        c.access(0x00, AccessKind::Read);
        assert_eq!(c.access(0x40, AccessKind::Read), CacheResponse::Miss { writeback_addr: None }, "clean victim");
        assert_eq!(c.access(0x00, AccessKind::Read), CacheResponse::Miss { writeback_addr: None }, "evicted");
    }

    #[test]
    fn dirty_victim_writeback() {
        let mut c = dm_cache();
        c.access(0x00, AccessKind::Write); // allocate + dirty
        match c.access(0x40, AccessKind::Read) {
            CacheResponse::Miss { writeback_addr: Some(a) } => assert_eq!(a, 0x00),
            other => panic!("expected dirty writeback, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn set_associative_lru() {
        // 2 ways, 2 sets, 16-byte lines → 64 bytes.
        let cfg = CacheConfig { size_bytes: 64, line_bytes: 16, ways: 2, hit_latency: 1, write_policy: WritePolicy::WriteBack };
        let mut c = Cache::new(cfg, CacheKind::Data);
        // Set 0 holds lines at 0x00, 0x20, 0x40, ... (line/sets interleave).
        c.access(0x00, AccessKind::Read);
        c.access(0x20, AccessKind::Read);
        c.access(0x00, AccessKind::Read); // touch 0x00 so 0x20 is LRU
        c.access(0x40, AccessKind::Read); // evicts 0x20
        assert_eq!(c.access(0x00, AccessKind::Read), CacheResponse::Hit);
        assert_eq!(c.access(0x20, AccessKind::Read), CacheResponse::Miss { writeback_addr: None });
    }

    #[test]
    fn write_through_never_writes_back() {
        let cfg = CacheConfig { size_bytes: 64, line_bytes: 16, ways: 1, hit_latency: 1, write_policy: WritePolicy::WriteThrough };
        let mut c = Cache::new(cfg, CacheKind::Data);
        assert_eq!(c.access(0x00, AccessKind::Write), CacheResponse::WriteThrough { hit: false }, "no allocate");
        c.access(0x00, AccessKind::Read); // fill
        assert_eq!(c.access(0x00, AccessKind::Write), CacheResponse::WriteThrough { hit: true });
        c.access(0x40, AccessKind::Read); // evict — must not write back
        assert_eq!(c.stats().writebacks, 0);
        assert_eq!(c.stats().write_throughs, 2);
    }

    #[test]
    fn line_base_masks_offset() {
        let c = dm_cache();
        assert_eq!(c.line_base(0x1237), 0x1230);
    }

    #[test]
    fn take_stats_resets() {
        let mut c = dm_cache();
        c.access(0, AccessKind::Read);
        let s = c.take_stats();
        assert_eq!(s.misses, 1);
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn invalidate_all_clears() {
        let mut c = dm_cache();
        c.access(0, AccessKind::Read);
        c.invalidate_all();
        assert_eq!(c.access(0, AccessKind::Read), CacheResponse::Miss { writeback_addr: None });
    }
}
