//! Closed-loop thermal emulation with run-time DFS — the paper's headline
//! use case (Fig. 6): run Matrix-TM on the 4×ARM11 floorplan at 500 MHz,
//! watch the die heat past 350 K, then enable the dual-threshold policy and
//! watch it saw-tooth inside the 340–350 K band.
//!
//! ```sh
//! cargo run --release --example thermal_management
//! ```

use temu::framework::{EmulationConfig, ThermalEmulation};
use temu::platform::{DfsPolicy, Machine, PlatformConfig};
use temu::power::floorplans::fig4b_arm11;
use temu::workloads::matrix::{self, MatrixConfig};

fn emulation(policy: Option<DfsPolicy>) -> ThermalEmulation {
    // 4 RISC-32 cores, 8 KB caches, 4-switch NoC, 500 MHz virtual clock.
    let mut machine = Machine::new(PlatformConfig::paper_thermal(4)).expect("valid configuration");
    let workload = MatrixConfig { n: 16, iters: 20_000, cores: 4 };
    machine
        .load_program_all(&matrix::program(&workload).expect("assembles"))
        .expect("fits");
    let cfg = EmulationConfig { policy, ..EmulationConfig::default() };
    ThermalEmulation::new(machine, fig4b_arm11(), cfg).expect("floorplan matches the machine")
}

fn main() {
    let windows = 120; // 120 x 10 ms = 1.2 virtual seconds

    let mut unmanaged = emulation(None);
    unmanaged.run_windows(windows).expect("runs");

    let mut managed = emulation(Some(DfsPolicy::paper()));
    managed.run_windows(windows).expect("runs");

    println!("=== without thermal management (500 MHz throughout) ===");
    println!("{}", unmanaged.trace().ascii_plot(70, 14, &[350.0, 340.0]));
    println!("=== with the paper's DFS policy (>350 K -> 100 MHz, <340 K -> 500 MHz) ===");
    println!("{}", managed.trace().ascii_plot(70, 14, &[350.0, 340.0]));

    println!("peak temperature : {:.2} K vs {:.2} K", unmanaged.trace().peak_temp(), managed.trace().peak_temp());
    println!(
        "time above 350 K : {:.3} s vs {:.3} s",
        unmanaged.trace().time_above(350.0),
        managed.trace().time_above(350.0)
    );
    println!("throttled windows: {:.0}%", 100.0 * managed.trace().throttled_fraction());
    println!(
        "work done        : {} vs {} instructions",
        unmanaged.trace().len(),
        managed.trace().len()
    );
    println!("\nCSV of the managed run:\n{}", &managed.trace().to_csv()[..400.min(managed.trace().to_csv().len())]);
}
