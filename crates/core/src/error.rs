//! The workspace-wide error type of the co-emulation framework.
//!
//! Every crate in the stack reports its own typed error
//! ([`PlatformError`], [`ThermalError`], [`WorkloadError`], [`PowerError`],
//! [`MemConfigError`], [`IcError`], [`CpuError`], [`MemError`]); this module
//! folds them into one [`TemuError`] so a whole experiment — scenario
//! construction, program generation, machine assembly, emulation — can run
//! behind a single `?`.

use std::error::Error;
use std::fmt;
use temu_cpu::CpuError;
use temu_fpga::UtilizationReport;
use temu_interconnect::IcError;
use temu_mem::{MemConfigError, MemError};
use temu_platform::PlatformError;
use temu_power::PowerError;
use temu_state::StateError;
use temu_thermal::ThermalError;
use temu_workloads::WorkloadError;

/// Any failure of the co-emulation framework, from configuration to run
/// time.
#[derive(Debug)]
#[non_exhaustive]
pub enum TemuError {
    /// The platform configuration or machine construction failed.
    Platform(PlatformError),
    /// The thermal grid or solver configuration failed.
    Thermal(ThermalError),
    /// The workload configuration or program generation failed.
    Workload(WorkloadError),
    /// The floorplan cannot serve the platform.
    Power(PowerError),
    /// A memory-system configuration failed outside a platform build.
    MemConfig(MemConfigError),
    /// An interconnect configuration failed outside a platform build.
    Interconnect(IcError),
    /// Workload input data did not fit in the shared memory.
    SharedData(MemError),
    /// A core faulted during emulation.
    Cpu(CpuError),
    /// The scenario requested an FPGA-fit check and the platform does not
    /// fit the device (the paper's pre-synthesis gate, §6).
    DoesNotFit(Box<UtilizationReport>),
    /// A scenario panicked inside a campaign worker; the payload is the
    /// panic message.
    ScenarioPanicked(String),
    /// The sweep was cancelled at a checkpoint before this point ran
    /// (see [`crate::Sweep::on_checkpoint`]); already-completed points
    /// keep their results.
    Cancelled,
    /// The sweep was cancelled *inside* this point at a window-checkpoint
    /// boundary (see [`crate::Sweep::on_window_checkpoint`]); the payload
    /// records how far the point got, and the hook saw (and could
    /// persist) the [`crate::EmulationState`] of that boundary.
    CancelledMidPoint {
        /// Sampling windows the point had executed when it was stopped.
        windows: u64,
    },
    /// A wire-format experiment spec ([`crate::ScenarioSpec`] /
    /// [`crate::SweepSpec`]) failed to parse or lower onto the builders.
    Spec(crate::SpecError),
    /// The sampling-window protocol was violated: `window_begin` (or a
    /// checkpoint) while the previous window still awaited its
    /// `window_finish` — the platform half ran but the thermal step and
    /// feedback half did not.
    WindowPending,
    /// The sampling-window protocol was violated: `window_finish` with no
    /// window begun.
    WindowNotBegun,
    /// A checkpoint byte stream failed to decode, or decoded state did not
    /// fit the emulation it was restored into.
    State(StateError),
    /// A checkpoint was taken under a different scenario configuration
    /// than the one trying to resume from it (content keys differ), so
    /// restoring it would continue the *wrong* experiment.
    CheckpointMismatch {
        /// Content key of the scenario attempting the resume.
        expected: u64,
        /// Scenario content key embedded in the checkpoint.
        found: u64,
    },
}

impl fmt::Display for TemuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TemuError::Platform(e) => write!(f, "platform: {e}"),
            TemuError::Thermal(e) => write!(f, "thermal: {e}"),
            TemuError::Workload(e) => write!(f, "workload: {e}"),
            TemuError::Power(e) => write!(f, "power: {e}"),
            TemuError::MemConfig(e) => write!(f, "memory config: {e}"),
            TemuError::Interconnect(e) => write!(f, "interconnect: {e}"),
            TemuError::SharedData(e) => write!(f, "loading workload data: {e}"),
            TemuError::Cpu(e) => write!(f, "platform fault: {e}"),
            TemuError::DoesNotFit(report) => write!(
                f,
                "design does not fit the FPGA: {}/{} slices, {}/{} BRAM18",
                report.slices(),
                report.device.slices,
                report.bram18,
                report.device.bram18
            ),
            TemuError::ScenarioPanicked(msg) => write!(f, "scenario panicked: {msg}"),
            TemuError::Cancelled => write!(f, "cancelled before execution"),
            TemuError::CancelledMidPoint { windows } => {
                write!(f, "cancelled mid-point after {windows} windows")
            }
            TemuError::Spec(e) => write!(f, "spec: {e}"),
            TemuError::WindowPending => {
                write!(f, "window protocol: a sampling window is still awaiting its thermal step")
            }
            TemuError::WindowNotBegun => {
                write!(f, "window protocol: window_finish without a begun window")
            }
            TemuError::State(e) => write!(f, "checkpoint state: {e}"),
            TemuError::CheckpointMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to a different scenario: content key {found:#018x}, expected {expected:#018x}"
            ),
        }
    }
}

impl Error for TemuError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TemuError::Platform(e) => Some(e),
            TemuError::Thermal(e) => Some(e),
            TemuError::Workload(e) => Some(e),
            TemuError::Power(e) => Some(e),
            TemuError::MemConfig(e) => Some(e),
            TemuError::Interconnect(e) => Some(e),
            TemuError::SharedData(e) => Some(e),
            TemuError::Cpu(e) => Some(e),
            TemuError::Spec(e) => Some(e),
            TemuError::State(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::SpecError> for TemuError {
    fn from(e: crate::SpecError) -> TemuError {
        TemuError::Spec(e)
    }
}

impl From<PlatformError> for TemuError {
    fn from(e: PlatformError) -> TemuError {
        TemuError::Platform(e)
    }
}

impl From<ThermalError> for TemuError {
    fn from(e: ThermalError) -> TemuError {
        TemuError::Thermal(e)
    }
}

impl From<WorkloadError> for TemuError {
    fn from(e: WorkloadError) -> TemuError {
        TemuError::Workload(e)
    }
}

impl From<PowerError> for TemuError {
    fn from(e: PowerError) -> TemuError {
        TemuError::Power(e)
    }
}

impl From<MemConfigError> for TemuError {
    fn from(e: MemConfigError) -> TemuError {
        TemuError::MemConfig(e)
    }
}

impl From<IcError> for TemuError {
    fn from(e: IcError) -> TemuError {
        TemuError::Interconnect(e)
    }
}

impl From<MemError> for TemuError {
    fn from(e: MemError) -> TemuError {
        TemuError::SharedData(e)
    }
}

impl From<CpuError> for TemuError {
    fn from(e: CpuError) -> TemuError {
        TemuError::Cpu(e)
    }
}

impl From<StateError> for TemuError {
    fn from(e: StateError) -> TemuError {
        TemuError::State(e)
    }
}
