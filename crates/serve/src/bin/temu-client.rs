//! The emulation job client.
//!
//! ```sh
//! temu-client [--addr HOST:PORT] [--retries N | --no-retry]
//!             submit (--spec FILE.json | --preset NAME)
//!             [--threads N] [--priority N] [--no-watch] [--require-cached]
//! temu-client [--addr HOST:PORT] status JOB | result JOB | cancel JOB |
//!             watch JOB | stats | shutdown
//! temu-client presets
//! ```
//!
//! `submit` sends a sweep spec (a JSON file — a full sweep, or a bare
//! scenario spec that becomes a one-point sweep — or a named preset) and,
//! unless `--no-watch`, pretty-prints the streamed per-point progress.
//!
//! Transient failures (refused connect, dropped connection, deadline) are
//! retried with exponential backoff and jitter — `--retries N` sizes the
//! budget, `--no-retry` fails fast. Retried submissions are safe: the
//! server memoizes results by content key, so a resubmitted sweep's
//! completed points are cache hits.
//!
//! Exit codes: 0 success; 1 failed points or a failed/cancelled job;
//! 2 usage, connection or server-refusal errors (including an unreachable
//! server after all attempts); 3 `--require-cached` was passed and the
//! job executed any scenario instead of hitting the cache.

use std::process::exit;
use temu_framework::{JsonValue, SweepSpec, NAMED_SWEEPS};
use temu_serve::client::{request_with_retry, submit_with_retry};
use temu_serve::{spec_from_document, Client, ClientError, RetryPolicy, ADDR_ENV, DEFAULT_ADDR};

const USAGE: &str = "usage: temu-client [--addr HOST:PORT] [--retries N | --no-retry] <submit|status|result|cancel|watch|stats|shutdown|presets> [args]
  submit (--spec FILE.json | --preset NAME) [--threads N] [--priority N] [--no-watch] [--require-cached]
  status|result|cancel|watch JOB
  presets    list the named sweep presets";

fn fail(message: impl std::fmt::Display, code: i32) -> ! {
    eprintln!("temu-client: {message}");
    exit(code);
}

fn fail_client(e: &ClientError) -> ! {
    match e {
        ClientError::Unreachable { addr, attempts, .. } => {
            fail(format!("server unreachable at {addr} after {attempts} attempt(s)"), 2)
        }
        other => fail(other, 2),
    }
}

/// One idempotent request with full retry (fresh connection per attempt).
fn retrying<T>(
    addr: &str,
    policy: &RetryPolicy,
    call: impl FnMut(&mut Client) -> Result<T, ClientError>,
) -> T {
    request_with_retry(addr, policy, call).unwrap_or_else(|e| fail_client(&e))
}

fn print_event(event: &JsonValue) {
    match event.get("event").and_then(JsonValue::as_str) {
        Some("start") => {
            let total = event.get("total").and_then(JsonValue::as_u64).unwrap_or(0);
            println!("running {total} point(s)");
        }
        Some("point") => {
            let field = |k: &str| event.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
            let label = event.get("label").and_then(JsonValue::as_str).unwrap_or("?");
            // A mid-point window-checkpoint update (servers running with
            // --window-checkpoint); finished-point events never carry it.
            if let Some(progress) = event.get("progress") {
                let at = |k: &str| progress.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
                println!(
                    "  [  ...  ] {label:<60} running {}/{} windows",
                    at("windows"),
                    at("total_windows")
                );
                return;
            }
            let status = if event.get("ok").and_then(JsonValue::as_bool) == Some(true) {
                let peak = event
                    .get("peak_temp_k")
                    .and_then(JsonValue::as_f64)
                    .map_or_else(|| String::from("-"), |t| format!("{t:.2}K"));
                let cached = if event.get("cache_hit").and_then(JsonValue::as_bool) == Some(true) {
                    "  [cached]"
                } else {
                    ""
                };
                format!("peak {peak} windows {}{cached}", field("windows"))
            } else {
                format!("FAILED: {}", event.get("error").and_then(JsonValue::as_str).unwrap_or("?"))
            };
            println!("  [{:>3}/{}] {:<60} {status}", field("completed"), field("total"), label);
        }
        Some("done") => {}
        _ => println!("{event}"),
    }
}

fn summarize(done: &temu_serve::DoneSummary) {
    println!(
        "job finished: {} point(s), {} executed, {} cache hit(s), {} failed, {:.2} s server wall",
        done.points, done.executed, done.cache_hits, done.failed, done.wall_s
    );
    if let Some(e) = &done.error {
        println!("job error: {e}");
    }
}

fn submit(addr: &str, policy: &RetryPolicy, args: &[String]) -> ! {
    let mut spec: Option<SweepSpec> = None;
    let mut watch = true;
    let mut require_cached = false;
    let mut threads: Option<usize> = None;
    let mut priority: i64 = 0;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--spec" => {
                let path = it.next().unwrap_or_else(|| fail("--spec takes a path", 2));
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| fail(format!("reading {path}: {e}"), 2));
                let doc = JsonValue::parse(&text)
                    .unwrap_or_else(|e| fail(format!("{path}: invalid JSON: {e}"), 2));
                spec = Some(
                    spec_from_document(&doc).unwrap_or_else(|e| fail(format!("{path}: {e}"), 2)),
                );
            }
            "--preset" => {
                let name = it.next().unwrap_or_else(|| fail("--preset takes a name", 2));
                spec = Some(SweepSpec::named(name).unwrap_or_else(|| {
                    fail(format!("unknown preset {name:?} (see: temu-client presets)"), 2)
                }));
            }
            "--threads" => {
                threads = Some(
                    it.next()
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| fail("--threads takes a positive integer", 2)),
                );
            }
            "--priority" => {
                priority = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| fail("--priority takes an integer (higher runs first)", 2));
            }
            "--no-watch" => watch = false,
            "--require-cached" => require_cached = true,
            other => fail(format!("unknown submit argument {other:?}\n{USAGE}"), 2),
        }
    }
    let mut spec = spec.unwrap_or_else(|| fail(format!("submit needs --spec or --preset\n{USAGE}"), 2));
    if require_cached && !watch {
        // The cache gate needs the job's done summary, which only a
        // watched submission delivers.
        fail("--require-cached needs the watched submission (drop --no-watch)", 2);
    }
    if threads.is_some() {
        spec.threads = threads;
    }

    println!("submitting \"{}\" to {addr}", spec.name);
    let outcome = submit_with_retry(addr, policy, &spec, watch, priority, print_event)
        .unwrap_or_else(|e| fail_client(&e));
    if !watch {
        println!("queued as job {} ({} point(s))", outcome.job, outcome.total);
        exit(0);
    }
    let done = outcome.done.unwrap_or_else(|| fail("watched submission ended without a done event", 2));
    summarize(&done);
    if require_cached && done.executed != 0 {
        fail(format!("--require-cached: {} point(s) executed instead of hitting the cache", done.executed), 3);
    }
    exit(i32::from(!(done.ok && done.failed == 0)));
}

/// Human-oriented lines after the raw stats frame. Every field is
/// optional — an older server (no `queue_depth`) or a plain member (no
/// `members` breakdown) just prints fewer lines.
fn print_stats_summary(frame: &JsonValue) {
    if let Some(depth) = frame.get("queue_depth").and_then(JsonValue::as_u64) {
        let running = frame.get("running").and_then(JsonValue::as_u64).unwrap_or(0);
        let workers = frame.get("workers").and_then(JsonValue::as_u64).unwrap_or(0);
        println!("queue: {depth} queued, {running} running, {workers} worker(s)");
    }
    let Some(JsonValue::Arr(members)) = frame.get("members") else { return };
    println!("fleet: {} member(s)", members.len());
    for member in members {
        let addr = member.get("addr").and_then(JsonValue::as_str).unwrap_or("?");
        let state = if member.get("up").and_then(JsonValue::as_bool) == Some(true) {
            "up"
        } else {
            "DOWN"
        };
        let routed = member.get("routed").and_then(JsonValue::as_u64).unwrap_or(0);
        let failures = member.get("failures").and_then(JsonValue::as_u64).unwrap_or(0);
        println!("  {addr:<21} {state:<4} {routed} routed, {failures} failure(s)");
    }
}

fn job_arg(args: &[String]) -> u64 {
    args.first()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fail(format!("expected a job id\n{USAGE}"), 2))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut addr = std::env::var(ADDR_ENV).unwrap_or_else(|_| String::from(DEFAULT_ADDR));
    let mut policy = RetryPolicy::default();
    let mut rest = &args[..];
    loop {
        match rest {
            [flag, value, tail @ ..] if flag == "--addr" => {
                addr = value.clone();
                rest = tail;
            }
            [flag, value, tail @ ..] if flag == "--retries" => {
                policy.retries = value
                    .parse()
                    .unwrap_or_else(|_| fail(format!("--retries takes a count\n{USAGE}"), 2));
                rest = tail;
            }
            [flag, tail @ ..] if flag == "--no-retry" => {
                policy = RetryPolicy::none();
                rest = tail;
            }
            _ => break,
        }
    }
    let Some((cmd, cmd_args)) = rest.split_first() else {
        eprintln!("{USAGE}");
        exit(2);
    };
    match cmd.as_str() {
        "submit" => submit(&addr, &policy, cmd_args),
        "presets" => {
            println!("named sweep presets (submit with: temu-client submit --preset NAME):");
            for (name, what) in NAMED_SWEEPS {
                println!("  {name:<10} {what}");
            }
        }
        "status" => {
            let job = job_arg(cmd_args);
            let frame = retrying(&addr, &policy, |c| c.status(job));
            println!("{frame}");
        }
        "result" => {
            let job = job_arg(cmd_args);
            let frame = retrying(&addr, &policy, |c| c.result(job));
            match frame.get("report") {
                Some(report) => println!("{report}"),
                None => println!("{frame}"),
            }
            let failed = frame.get("failed").and_then(JsonValue::as_u64).unwrap_or(0);
            exit(i32::from(failed != 0));
        }
        "cancel" => {
            let job = job_arg(cmd_args);
            let frame = retrying(&addr, &policy, |c| c.cancel(job));
            println!("{frame}");
        }
        "watch" => {
            // A mid-stream drop reattaches; a job that finished in the
            // gap answers the re-watch with its done summary immediately.
            let job = job_arg(cmd_args);
            let done = retrying(&addr, &policy, |c| c.watch(job, print_event));
            summarize(&done);
            exit(i32::from(!(done.ok && done.failed == 0)));
        }
        "stats" => {
            let frame = retrying(&addr, &policy, |c| c.stats());
            println!("{frame}");
            print_stats_summary(&frame);
        }
        "shutdown" => {
            retrying(&addr, &policy, |c| c.shutdown());
            println!("server at {addr} shutting down");
        }
        other => fail(format!("unknown command {other:?}\n{USAGE}"), 2),
    }
}
