//! # temu-mem — memory hierarchy of the emulated MPSoC
//!
//! Reproduces the paper's §3.2: every processing core owns a **memory
//! controller** that routes requests by address range to
//!
//! * a **private main memory** (local to the controller, configurable size and
//!   latency, cacheable),
//! * the **shared main memory** (reached through the platform interconnect,
//!   configurable size/latency, cacheable or not),
//! * private HW-controlled **instruction and data caches** (direct-mapped or
//!   set-associative; total size, line size and latency configurable
//!   independently), and
//! * the memory-mapped I/O window (sniffer control, core id, sensors).
//!
//! Caches model *timing and traffic* (hits, misses, fills, write-backs);
//! program data lives in the functional [`MemArray`] images, so the platform
//! behaves like the paper's — caches are fully transparent to the processors.
//!
//! As in §3.2, every device also carries a *physical* latency next to the
//! configured virtual one; when the physical device is slower than the
//! emulated latency target, the difference is reported so the Virtual
//! Platform Clock Manager can freeze the virtual clock for the excess cycles.

mod array;
mod cache;
mod error;
mod map;
mod stats;

pub use array::{MemArray, MemError};
pub use cache::{Cache, CacheConfig, CacheKind, CacheResponse, WritePolicy};
pub use error::MemConfigError;
pub use map::{AddressMap, MappedRange, RangeTarget, MMIO_BASE, MMIO_SIZE, SHARED_BASE};
pub use stats::{AccessKind, CacheStats, MemStats};

/// Configuration of one memory device (private or shared main memory).
///
/// `latency` is the user-defined latency of the *emulated* memory in core
/// cycles; `physical_latency` is the latency of the device actually backing
/// it (BRAM vs DDR in the paper). When `physical_latency > latency`, each
/// access forces the VPCM to inhibit the virtual clock for the difference.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemoryConfig {
    /// Device size in bytes (word multiple).
    pub size: u32,
    /// Emulated access latency in cycles (first word).
    pub latency: u32,
    /// Latency of the physical backing device in cycles.
    pub physical_latency: u32,
}

impl MemoryConfig {
    /// A BRAM-like device: the physical device meets the emulated latency.
    pub fn bram(size: u32, latency: u32) -> MemoryConfig {
        MemoryConfig { size, latency, physical_latency: latency }
    }

    /// A DDR-like device: physically slower than the emulated target, so the
    /// VPCM must hide `physical_latency - latency` cycles per access.
    pub fn ddr(size: u32, latency: u32, physical_latency: u32) -> MemoryConfig {
        MemoryConfig { size, latency, physical_latency }
    }

    /// Virtual-clock inhibition cycles one access of this device costs.
    pub fn freeze_cycles(&self) -> u64 {
        u64::from(self.physical_latency.saturating_sub(self.latency))
    }
}

impl Default for MemoryConfig {
    fn default() -> MemoryConfig {
        MemoryConfig::bram(64 * 1024, 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_config_freeze_cycles() {
        assert_eq!(MemoryConfig::bram(1024, 2).freeze_cycles(), 0);
        assert_eq!(MemoryConfig::ddr(1024, 10, 18).freeze_cycles(), 8);
        assert_eq!(MemoryConfig::ddr(1024, 10, 4).freeze_cycles(), 0, "faster device never freezes");
    }
}
