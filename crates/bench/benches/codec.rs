//! Criterion benchmarks of the statistics-link codec (MAC framing + CRC-32 +
//! packet serialization) — the per-window cost of the Ethernet dispatcher.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use temu_link::{EthernetLink, MacFrame, StatsPacket};

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("link_codec");

    let packet = StatsPacket {
        seq: 42,
        window_start: 5_000_000,
        window_cycles: 5_000_000,
        virtual_hz: 500_000_000,
        power_mw: (0..21).map(|i| 100 + i).collect(),
    };
    group.bench_function("stats_packet_round_trip", |b| {
        b.iter(|| {
            let raw = packet.encode();
            StatsPacket::decode(raw).unwrap()
        })
    });

    let payload = Bytes::from(vec![0xA5u8; 1400]);
    group.throughput(Throughput::Bytes(1400 + 18));
    group.bench_function("mac_frame_round_trip_1400B", |b| {
        b.iter(|| {
            let frame = MacFrame::to_host(payload.clone());
            let wire = frame.encode().unwrap();
            MacFrame::decode(wire).unwrap()
        })
    });

    let link = EthernetLink::default();
    let big = Bytes::from(vec![0u8; 64 * 1024]);
    group.bench_function("packetize_64KiB", |b| b.iter(|| link.packetize(&big, true).len()));

    group.finish();
}

criterion_group!(benches, bench_codec);
criterion_main!(benches);
