//! Named design-space sweeps over the `temu::Sweep` engine, with JSON/CSV
//! export and an optional persistent result cache.
//!
//! ```sh
//! cargo run --release -p temu-bench --bin sweep -- --list
//! cargo run --release -p temu-bench --bin sweep -- ladder --out ladder.json
//! cargo run --release -p temu-bench --bin sweep -- grid100 --cache target/sweep_cache.jsonl
//! cargo run --release -p temu-bench --bin sweep -- explore --batch
//! cargo run --release -p temu-bench --bin sweep -- --smoke
//! ```
//!
//! The named sweeps are the workspace's shared [`SweepSpec::named`]
//! presets — the same grids `temu-client submit --preset` sends to a
//! `temu-serve` server; this bin runs them in-process. Every run streams
//! per-point progress and reports the sweep's build-artifact cache
//! (floorplans, meshes, multigrid hierarchies, workload programs shared
//! across points); with `--cache <store.jsonl>` a re-run (same process or
//! not) skips every already-solved point. `--batch` fuses points that
//! share a thermal operator into lockstep groups solved by the many-RHS
//! kernel (bitwise-identical results); `--no-batch` forces the per-point
//! campaign path.
//!
//! `--smoke` runs the check.sh gate: the strict-convergence `smoke`
//! preset (8 points, multigrid included) on one thread — asserting the
//! artifact cache built the shared mesh exactly once — then an in-process
//! re-run that must be 100% cache hits, then the same grid again through
//! the batched lockstep path, which must match the campaign run
//! peak-for-peak. Any failed point, unconverged substep, missed cache
//! hit, artifact rebuild, or batched-vs-sequential mismatch exits
//! non-zero.

use temu_framework::{ResultCache, Sweep, SweepReport, SweepSpec, NAMED_SWEEPS};

/// Resolves a named preset and lowers it onto the sweep engine.
fn build(name: &str) -> Option<Sweep> {
    let spec = SweepSpec::named(name)?;
    Some(spec.lower().unwrap_or_else(|e| panic!("preset {name} must lower: {e}")))
}

fn with_progress(sweep: Sweep) -> Sweep {
    sweep.on_progress(|p| {
        let status = match p.outcome {
            Ok(s) => format!(
                "peak {} windows {}{}",
                s.peak_temp_k.map_or_else(|| String::from("-"), |t| format!("{t:.2}K")),
                s.windows,
                if p.cache_hit { "  [cached]" } else { "" }
            ),
            Err(e) => format!("FAILED: {e}"),
        };
        println!("  [{:>3}/{}] {:<60} {status}", p.completed, p.total, p.label);
    })
}

fn summarize(report: &SweepReport) {
    println!(
        "\n{}: {} point(s), {} executed, {} cache hit(s), {} failed, {:.2} s wall on {} thread(s)",
        report.name,
        report.points.len(),
        report.executed,
        report.cache_hits,
        report.n_failed(),
        report.wall.as_secs_f64(),
        report.threads
    );
    let a = report.artifacts;
    if a.hits() + a.misses() > 0 {
        println!(
            "  artifacts: floorplan {}/{}, mesh {}/{}, operator {}/{}, program {}/{} (hits/builds)",
            a.floorplan_hits,
            a.floorplan_misses,
            a.mesh_hits,
            a.mesh_misses,
            a.operator_hits,
            a.operator_misses,
            a.program_hits,
            a.program_misses,
        );
    }
}

/// The check.sh gate (see the module docs).
fn smoke() -> i32 {
    let cache = ResultCache::in_memory();
    // One worker so the per-layer artifact counts are deterministic
    // (racing campaign workers may each build the first miss).
    let build = || build("smoke").expect("the smoke preset exists").threads(1);
    println!("sweep smoke: 8-point strict-convergence grid");
    let first = with_progress(build()).run_cached(&cache);
    summarize(&first);
    if !first.all_ok() || first.points.len() < 6 {
        eprintln!("sweep smoke FAILED: {} failed point(s)\n{}", first.n_failed(), first.to_json());
        return 1;
    }
    for p in &first.points {
        let s = p.outcome.as_ref().expect("all_ok checked");
        if s.unconverged_substeps != 0 {
            eprintln!("sweep smoke FAILED: {} accepted unconverged substeps", p.label);
            return 1;
        }
    }
    // Eight points, one floorplan geometry: the sweep's artifact cache
    // must have built the mesh once and served the other seven points.
    let a = first.artifacts;
    if a.mesh_misses != 1 || a.mesh_hits != 7 {
        eprintln!(
            "sweep smoke FAILED: expected 1 mesh build + 7 cache hits, got {}/{}",
            a.mesh_misses, a.mesh_hits
        );
        return 1;
    }
    if a.operator_hits == 0 {
        eprintln!("sweep smoke FAILED: the multigrid points never shared their hierarchy");
        return 1;
    }

    println!("\nsweep smoke: identical re-run must be 100% cache hits");
    let rerun = with_progress(build()).run_cached(&cache);
    summarize(&rerun);
    if rerun.executed != 0 || rerun.cache_hits != rerun.points.len() {
        eprintln!(
            "sweep smoke FAILED: re-run executed {} scenario(s), {} cache hit(s)",
            rerun.executed, rerun.cache_hits
        );
        return 1;
    }

    println!("\nsweep smoke: batched lockstep run must match the campaign run");
    let batched = with_progress(build().batch(true)).run_cached(&ResultCache::in_memory());
    summarize(&batched);
    if !batched.all_ok() {
        eprintln!("sweep smoke FAILED: {} batched point(s) failed", batched.n_failed());
        return 1;
    }
    for (a, b) in first.points.iter().zip(&batched.points) {
        let (x, y) = (a.outcome.as_ref().unwrap(), b.outcome.as_ref().unwrap());
        let same = x.windows == y.windows
            && x.instructions == y.instructions
            && x.peak_temp_k.map(f64::to_bits) == y.peak_temp_k.map(f64::to_bits)
            && x.final_temp_k.map(f64::to_bits) == y.final_temp_k.map(f64::to_bits)
            && x.unconverged_substeps == y.unconverged_substeps;
        if a.key != b.key || !same {
            eprintln!(
                "sweep smoke FAILED: batched {} diverged from the sequential run ({:?} vs {:?})",
                a.label, y.peak_temp_k, x.peak_temp_k
            );
            return 1;
        }
    }
    if batched.artifacts.mesh_misses != 1 {
        eprintln!(
            "sweep smoke FAILED: the batched path built {} meshes",
            batched.artifacts.mesh_misses
        );
        return 1;
    }

    println!("\nsweep smoke OK");
    0
}

/// The instrumentation-overhead guard (`--obs-ab`): the smoke grid runs
/// twice from a cold cache, once with the metrics registry disabled and
/// once enabled, and the enabled run must stay within noise of the
/// disabled one. Counters always record (they are one relaxed atomic
/// add); what this gates is the histogram/timer layer behind
/// `temu_obs::enabled()` — the solver substep timers sit on the hottest
/// loop in the workspace, so a regression here is a real perf bug, not a
/// bookkeeping nit.
fn obs_ab() -> i32 {
    let build = || build("smoke").expect("the smoke preset exists").threads(1);
    let timed = |enabled: bool| {
        temu_obs::global().set_enabled(enabled);
        let report = build().run_cached(&ResultCache::in_memory());
        temu_obs::global().set_enabled(true);
        assert!(report.all_ok(), "obs A/B smoke grid must pass");
        report.wall.as_secs_f64()
    };
    // Warm-up run: fault in artifacts-layer code paths and the page
    // cache so neither timed run pays first-touch costs.
    let _ = timed(true);
    let off = timed(false);
    let on = timed(true);
    let overhead = if off > 0.0 { (on - off) / off * 100.0 } else { 0.0 };
    println!("obs A/B: disabled {off:.3} s, enabled {on:.3} s ({overhead:+.1}% overhead)");
    // Generous bound: CI hosts are noisy and the smoke grid is short, so
    // single-digit-percent jitter is routine. What this catches is the
    // order-of-magnitude mistake — a syscall or lock on the substep path.
    if on > off * 1.5 + 0.05 {
        eprintln!("obs A/B FAILED: instrumentation overhead {overhead:.1}% exceeds the 50% noise bound");
        return 1;
    }
    println!("obs A/B OK");
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    if args.iter().any(|a| a == "--obs-ab") {
        std::process::exit(obs_ab());
    }
    if args.iter().any(|a| a == "--list") || args.is_empty() {
        println!("named sweeps (run with: sweep <name> [--out x.json] [--csv x.csv] [--cache store.jsonl] [--threads N] [--batch|--no-batch]):");
        for (name, what) in NAMED_SWEEPS {
            println!("  {name:<10} {what}");
        }
        return;
    }

    let mut name: Option<String> = None;
    let mut out: Option<String> = None;
    let mut csv: Option<String> = None;
    let mut cache_path: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut batch = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = Some(it.next().expect("--out takes a path").clone()),
            "--csv" => csv = Some(it.next().expect("--csv takes a path").clone()),
            "--cache" => cache_path = Some(it.next().expect("--cache takes a path").clone()),
            "--threads" => {
                threads = Some(
                    it.next().and_then(|v| v.parse().ok()).expect("--threads takes a positive integer"),
                );
            }
            "--batch" => batch = true,
            "--no-batch" => batch = false,
            flag if flag.starts_with("--") => {
                panic!("unknown flag {flag} (supported: --out, --csv, --cache, --threads, --batch, --no-batch, --smoke, --list)")
            }
            positional => name = Some(String::from(positional)),
        }
    }

    let name = name.expect("pass a sweep name (or --list)");
    let mut sweep = build(&name)
        .unwrap_or_else(|| panic!("unknown sweep {name:?} — run with --list to see the named sweeps"));
    if let Some(t) = threads {
        sweep = sweep.threads(t);
    }
    sweep = with_progress(sweep.batch(batch));

    println!(
        "sweep {name}: {} point(s){}",
        sweep.n_points(),
        if batch { " [batched lockstep]" } else { "" }
    );
    let report = match &cache_path {
        Some(path) => {
            let cache = ResultCache::with_store(path).expect("open cache store");
            println!("cache store {path}: {} entr(ies) preloaded", cache.len());
            sweep.run_cached(&cache)
        }
        None => sweep.run(),
    };
    summarize(&report);

    if let Some(path) = out {
        std::fs::write(&path, report.to_json()).expect("write JSON report");
        println!("wrote {path}");
    }
    if let Some(path) = csv {
        std::fs::write(&path, report.to_csv()).expect("write CSV report");
        println!("wrote {path}");
    }
    if !report.all_ok() {
        std::process::exit(1);
    }
}
