//! Concurrent HW/SW co-execution: the thermal tool on its own host thread.
//!
//! The paper's system runs the platform (FPGA) and the thermal library (host
//! PC) concurrently, exchanging MAC packets over Ethernet. This module
//! reproduces that execution style: the platform thread emulates sampling
//! windows and sends [`StatsPacket`]s through a bounded channel (the link);
//! the thermal thread integrates the RC network and answers with
//! [`TempPacket`]s. The feedback is pipelined by one window in both the
//! sequential and the threaded transport, so the two produce **identical
//! traces** — which the tests assert.

use crate::emulation::EmulationConfig;
use crate::error::TemuError;
use crate::trace::{ThermalTrace, TraceSample};
use crossbeam::channel;
use std::error::Error;
use std::fmt;
use temu_cpu::CpuError;
use temu_link::{StatsPacket, TempPacket};
use temu_platform::Machine;
use temu_power::FloorplanMap;
use temu_thermal::ThermalModel;

/// Failure of a threaded co-emulation run.
#[derive(Debug)]
pub enum ThreadedError {
    /// The platform faulted.
    Platform(CpuError),
    /// Setup failed (thermal grid, floorplan mismatch).
    Setup(TemuError),
    /// The thermal thread disappeared (channel closed early).
    LinkClosed,
}

impl fmt::Display for ThreadedError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ThreadedError::Platform(e) => write!(f, "platform fault: {e}"),
            ThreadedError::Setup(m) => write!(f, "setup failed: {m}"),
            ThreadedError::LinkClosed => write!(f, "thermal thread closed the link"),
        }
    }
}

impl Error for ThreadedError {}

/// Runs `windows` sampling windows with the thermal model on a separate
/// thread, returning the recorded trace.
///
/// # Errors
///
/// Returns [`ThreadedError`] on setup failure, platform fault, or a broken
/// channel.
pub fn run_threaded(
    mut machine: Machine,
    map: FloorplanMap,
    cfg: EmulationConfig,
    windows: u64,
) -> Result<(Machine, ThermalTrace), ThreadedError> {
    map.check_cores(machine.num_cores()).map_err(|e| ThreadedError::Setup(e.into()))?;
    let mut model =
        ThermalModel::new(&map.floorplan, &cfg.grid).map_err(|e| ThreadedError::Setup(e.into()))?;
    let names: Vec<String> = map.floorplan.components().iter().map(|c| c.name.clone()).collect();
    let window_s = cfg.sampling_window_s;

    // Bounded channels model the link's one-window pipelining.
    let (stats_tx, stats_rx) = channel::bounded::<StatsPacket>(2);
    let (temp_tx, temp_rx) = channel::bounded::<TempPacket>(2);

    // The "host PC": receive stats, integrate, answer with temperatures.
    let thermal_thread = std::thread::spawn(move || {
        while let Ok(packet) = stats_rx.recv() {
            let powers: Vec<f64> = packet.power_mw.iter().map(|&mw| f64::from(mw) / 1000.0).collect();
            model.set_powers(&powers);
            model.step(packet.window_cycles as f64 / packet.virtual_hz as f64);
            let temps = model.component_temps();
            let reply = TempPacket {
                seq: packet.seq,
                temps_centi_k: temps.iter().map(|&t| (t * 100.0).round() as u32).collect(),
            };
            if temp_tx.send(reply).is_err() {
                break;
            }
        }
    });

    // The "FPGA": emulate windows, ship statistics, apply feedback.
    let mut trace = ThermalTrace::new(names);
    let mut policy = cfg.policy;
    let mut virtual_seconds = 0.0;
    let mut fpga_seconds = 0.0;
    let mut result = Ok(());
    for seq in 0..windows {
        let hz = machine.vpcm().virtual_hz();
        let cycles = (window_s * hz as f64).round() as u64;
        let stats = match machine.run_window(cycles) {
            Ok(s) => s,
            Err(e) => {
                result = Err(ThreadedError::Platform(e));
                break;
            }
        };
        let powers = cfg.power.window_powers(&map, &stats, hz);
        let packet = StatsPacket {
            seq: seq as u32,
            window_start: stats.start_cycle,
            window_cycles: stats.cycles(),
            virtual_hz: hz,
            power_mw: powers.iter().map(|&p| (p * 1000.0).round() as u32).collect(),
        };
        // Round-trip over the "Ethernet": codec exercised byte-for-byte.
        let packet = StatsPacket::decode(packet.encode()).expect("self-coded packet");
        if stats_tx.send(packet).is_err() {
            result = Err(ThreadedError::LinkClosed);
            break;
        }
        let reply = match temp_rx.recv() {
            Ok(r) => r,
            Err(_) => {
                result = Err(ThreadedError::LinkClosed);
                break;
            }
        };
        let temps: Vec<f64> = reply.temps_centi_k.iter().map(|&t| f64::from(t) / 100.0).collect();
        for (i, &t) in temps.iter().enumerate() {
            machine.set_sensor_kelvin(i, t);
        }
        let hottest = temps.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if let Some(p) = &mut policy {
            let new_hz = p.update(hottest);
            if new_hz != hz {
                machine.set_virtual_hz(new_hz);
            }
        }
        virtual_seconds += window_s;
        fpga_seconds += (stats.cycles() + stats.freeze_mem) as f64 / machine.vpcm().fpga_hz as f64;
        trace.push(TraceSample {
            t_virtual_s: virtual_seconds,
            temps_k: temps,
            max_temp_k: hottest,
            virtual_hz: hz,
            total_power_w: powers.iter().sum(),
            fpga_seconds,
        });
        if machine.all_halted() {
            break;
        }
    }
    drop(stats_tx);
    thermal_thread.join().expect("thermal thread never panics");
    result.map(|()| (machine, trace))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::emulation::ThermalEmulation;
    use temu_platform::{DfsPolicy, PlatformConfig};
    use temu_power::floorplans::fig4b_arm11;
    use temu_workloads::matrix::{self, MatrixConfig};

    fn machine_with_matrix(iters: u32) -> Machine {
        let mut machine = Machine::new(PlatformConfig::paper_thermal(4)).unwrap();
        let cfg = MatrixConfig { n: 8, iters, cores: 4 };
        machine.load_program_all(&matrix::program(&cfg).unwrap()).unwrap();
        machine
    }

    fn config() -> EmulationConfig {
        EmulationConfig {
            sampling_window_s: 0.001,
            policy: Some(DfsPolicy::new(300.6, 300.3, 500_000_000, 100_000_000).unwrap()),
            ..EmulationConfig::default()
        }
    }

    #[test]
    fn threaded_runs_and_heats() {
        let (machine, trace) = run_threaded(machine_with_matrix(50_000), fig4b_arm11(), config(), 12).unwrap();
        assert_eq!(trace.len(), 12);
        assert!(trace.peak_temp().unwrap() > 300.1);
        assert!(!machine.all_halted(), "long workload still running");
    }

    #[test]
    fn threaded_matches_sequential_exactly() {
        // Same machine, same windows: the threaded transport must produce
        // the same temperature/frequency trajectory as the in-process loop
        // (temperatures quantized to centi-kelvin by the packet format).
        let windows = 10;
        let (_, threaded) = run_threaded(machine_with_matrix(50_000), fig4b_arm11(), config(), windows).unwrap();

        let mut seq = ThermalEmulation::new(machine_with_matrix(50_000), fig4b_arm11(), config()).unwrap();
        let _ = seq.run_windows(windows).unwrap();

        assert_eq!(threaded.len(), seq.trace().len());
        for (a, b) in threaded.samples.iter().zip(seq.trace().samples.iter()) {
            assert_eq!(a.virtual_hz, b.virtual_hz, "same DFS decisions");
            assert!((a.max_temp_k - b.max_temp_k).abs() <= 0.011, "{} vs {}", a.max_temp_k, b.max_temp_k);
        }
    }

    #[test]
    fn stops_at_halt() {
        let (machine, trace) = run_threaded(machine_with_matrix(1), fig4b_arm11(), config(), 1000).unwrap();
        assert!(machine.all_halted());
        assert!(trace.len() < 1000, "stopped after the workload halted");
    }

    #[test]
    fn floorplan_mismatch_is_setup_error() {
        let machine = Machine::new(PlatformConfig::paper_bus(8)).unwrap();
        let e = run_threaded(machine, fig4b_arm11(), config(), 1);
        assert!(matches!(e, Err(ThreadedError::Setup(_))));
    }
}
