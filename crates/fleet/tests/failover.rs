//! Fleet failover e2e: two real `temu-member` processes behind an
//! in-process router; the rendezvous owner of the sweep is SIGKILLed
//! mid-run. The in-flight submission must fail over to the survivor and
//! complete (points the dead member synced replay from the shared store
//! as cache hits), and a resubmission through the router must be served
//! 100% from cache.
//!
//! The members share one `--store` (content-keyed records append
//! concurrently and merge on refresh) but use *distinct* `--journal`s —
//! a shared journal would collide job ids across processes.

use std::cell::RefCell;
use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;
use temu_fleet::{MemberTable, Router, RouterConfig};
use temu_framework::{
    AxisSpec, ImplicitSolve, JsonValue, ScenarioSpec, SweepSpec, WorkloadSpec,
};
use temu_serve::Client;

/// A 6-point sweep whose points are slow enough (~tens of ms each) that
/// a kill lands mid-run; one campaign thread so store syncs fall between
/// every point.
fn slow_sweep() -> SweepSpec {
    let tiny = |iters: u32| WorkloadSpec::Matrix { n: 4, iters, cores: 1 };
    SweepSpec {
        name: String::from("failover"),
        base: ScenarioSpec {
            cores: Some(1),
            workload: Some(tiny(1)),
            sampling_window_s: Some(0.0005),
            windows: Some(40),
            strict_convergence: Some(true),
            ..ScenarioSpec::default()
        },
        axes: vec![
            AxisSpec::Workloads(vec![tiny(1), tiny(2), tiny(3)]),
            AxisSpec::Solvers(vec![ImplicitSolve::GaussSeidel, ImplicitSolve::Multigrid]),
        ],
        threads: Some(1),
    }
}

/// Spawns a real `temu-member` process on an ephemeral port and parses
/// the bound address from its banner.
fn spawn_member(store: &Path, journal: &Path, name: &str) -> (Child, String) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_temu-member"))
        .args(["--addr", "127.0.0.1:0", "--member", name, "--store"])
        .arg(store)
        .arg("--journal")
        .arg(journal)
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn temu-member");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let addr = read_banner_addr(&mut stdout);
    (child, addr)
}

fn read_banner_addr(stdout: &mut BufReader<ChildStdout>) -> String {
    let mut addr = None;
    let mut line = String::new();
    loop {
        line.clear();
        if stdout.read_line(&mut line).expect("read banner") == 0 {
            panic!("temu-member exited before printing its banner");
        }
        if let Some(rest) = line.trim().strip_prefix("temu-serve listening on ") {
            addr = Some(rest.to_string());
        }
        if line.contains("worker(s)") {
            break;
        }
    }
    addr.expect("member printed its address")
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("temu_fleet_failover_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn killing_the_owner_mid_sweep_fails_over_and_the_resubmission_is_cached() {
    let dir = temp_dir();
    let store = dir.join("cache.jsonl");
    let spec = slow_sweep();

    let (child_a, addr_a) = spawn_member(&store, &dir.join("jobs-a.jsonl"), "a");
    let (child_b, addr_b) = spawn_member(&store, &dir.join("jobs-b.jsonl"), "b");
    let router = Router::spawn(RouterConfig {
        addr: String::from("127.0.0.1:0"),
        members: vec![addr_a.clone(), addr_b.clone()],
        probe_interval: Duration::from_millis(200),
        ..RouterConfig::default()
    })
    .expect("bind the router");

    // The member the router will pick first — computed with the same
    // rendezvous hash over the same table.
    let table = MemberTable::new([addr_a.clone(), addr_b.clone()]);
    let key = spec.content_key().expect("content key");
    let owner = table.rendezvous(key)[0];
    let mut children = [Some(child_a), Some(child_b)];
    let victim = RefCell::new(children[owner].take());

    // Submit through the router; SIGKILL the owner after its second
    // point event. The router must fail over to the survivor under the
    // same job id and finish the stream.
    let mut client = Client::connect(&router.addr().to_string()).expect("connect to router");
    let mut points = 0u32;
    let outcome = client
        .submit(&spec, true, |event| {
            if event.get("event").and_then(JsonValue::as_str) == Some("point") {
                points += 1;
                if points == 2 {
                    if let Some(mut child) = victim.borrow_mut().take() {
                        child.kill().expect("SIGKILL the owner");
                        let _ = child.wait();
                    }
                }
            }
        })
        .expect("the submission survives the kill via failover");
    let done = outcome.done.expect("the failover stream still ends with done");
    assert!(done.ok, "the sweep completes on the survivor: {done:?}");
    assert_eq!(done.points, 6);
    assert_eq!(done.executed + done.cache_hits, 6, "the whole grid was served: {done:?}");
    assert!(
        done.cache_hits >= 1,
        "points the dead owner synced replay from the shared store: {done:?}"
    );

    // Resubmitting the same sweep through the router is pure cache on
    // the survivor.
    let rerun = client.submit(&spec, true, |_| {}).expect("resubmit after failover");
    let cached = rerun.done.expect("done summary");
    assert!(cached.ok);
    assert_eq!(
        (cached.executed, cached.cache_hits),
        (0, 6),
        "a retried submission is never penalized by a dead member: {cached:?}"
    );

    // The router knows what happened: one member down, failovers counted.
    let stats = client.stats().expect("router stats");
    assert_eq!(stats.get("members_up").and_then(JsonValue::as_u64), Some(1), "stats: {stats}");
    assert!(
        stats.get("failovers").and_then(JsonValue::as_u64).unwrap_or(0) >= 1,
        "the failover was counted: {stats}"
    );

    router.shutdown();
    for child in children.iter_mut().filter_map(Option::take) {
        let mut child = child;
        let _ = child.kill();
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
