//! # temu-cpu — TE32 processor core model
//!
//! A multicycle in-order RISC-32 core (MicroBlaze-class, §3.1 of the paper):
//! each instruction costs its instruction fetch, an execute phase (with extra
//! cycles for taken control transfers, multiplies and divides) and, for
//! memory instructions, the data access. All memory timing comes from the
//! [`MemoryPort`] the platform attaches the core to (memory controller +
//! caches + interconnect), so the same core model drives both the fast
//! emulation engine and the signal-level baseline.
//!
//! The core tracks the statistics the paper's HW sniffers export for the
//! processor level: cycles spent **active**, **stalled** (waiting on the
//! memory hierarchy) and **idle** (halted / frozen), plus instruction mix
//! counters.

mod core;
mod port;
mod regfile;
mod stats;

pub use crate::core::{Cpu, CpuConfig, CpuError, StepOutcome};
pub use port::{MemReply, MemoryPort};
pub use regfile::RegFile;
pub use stats::CoreStats;
