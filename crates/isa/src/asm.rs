//! Two-pass TE32 assembler.
//!
//! ## Syntax
//!
//! ```text
//! ; comment            # comment            // comment
//! .org   0x100         ; move the location counter (byte address, word aligned)
//! .align 8             ; pad with zeros to an 8-byte boundary
//! .word  1, 0x2, sym   ; emit literal words (labels allowed)
//! .space 64            ; emit 64 zero bytes (word multiple)
//! .equ   NAME, 0x123   ; define an assembler constant
//! label:  add r1, r2, r3
//!         lw  r4, 8(r2)
//!         beq r1, r0, label
//! ```
//!
//! Registers are written `r0`–`r31` or with the aliases `zero` (r0),
//! `ra` (r31), `sp` (r30), `fp` (r29), `gp` (r28), `a0`–`a7` (r4–r11),
//! `t0`–`t7` (r12–r19), and `s0`–`s7` (r20–r27).
//!
//! ## Pseudo-instructions
//!
//! | pseudo | expansion |
//! |---|---|
//! | `nop` | `addi r0, r0, 0` |
//! | `mv rd, rs` | `addi rd, rs, 0` |
//! | `not rd, rs` | `nor rd, rs, r0` |
//! | `neg rd, rs` | `sub rd, r0, rs` |
//! | `li rd, imm` | `addi` (fits i16) or `lui`+`ori` |
//! | `la rd, label` | `lui`+`ori` (always two words) |
//! | `j label` / `b label` | `beq r0, r0, label` |
//! | `call label` | `jal label` (links `ra`) |
//! | `ret` | `jalr r0, ra, 0` |
//! | `bgt/ble/bgtu/bleu a, b, l` | `blt/bge/bltu/bgeu b, a, l` |
//! | `beqz/bnez rs, l` | `beq/bne rs, r0, l` |
//!
//! If a label named `start` exists it becomes the program entry point.

use crate::instr::{AluImmOp, AluOp, Cond, Instr, Reg, ShiftOp, Width};
use crate::program::Program;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Error produced by [`assemble`], carrying the 1-based source line.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description of the problem.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError { line, msg: msg.into() })
}

/// Parses a register name (`r7`, `sp`, `a0`, ...).
fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let t = tok.trim();
    let named = match t {
        "zero" => Some(0),
        "ra" => Some(31),
        "sp" => Some(30),
        "fp" => Some(29),
        "gp" => Some(28),
        _ => None,
    };
    if let Some(i) = named {
        return Ok(Reg::new(i));
    }
    let (prefix, base) = match t.as_bytes().first() {
        Some(b'r') => ("r", 0u8),
        Some(b'a') => ("a", 4),
        Some(b't') => ("t", 12),
        Some(b's') => ("s", 20),
        _ => return err(line, format!("expected register, found `{t}`")),
    };
    let idx: u8 = t[prefix.len()..]
        .parse()
        .map_err(|_| AsmError { line, msg: format!("expected register, found `{t}`") })?;
    let abs = if prefix == "r" {
        idx
    } else {
        if idx > 7 {
            return err(line, format!("register alias `{t}` out of range (0-7)"));
        }
        base + idx
    };
    Reg::try_new(abs).ok_or_else(|| AsmError { line, msg: format!("register `{t}` out of range") })
}

/// Parses a numeric literal: decimal, `0x` hex, `0b` binary, optional sign.
fn parse_num(tok: &str) -> Option<i64> {
    let t = tok.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t.strip_prefix('+').unwrap_or(t)),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(&hex.replace('_', ""), 16).ok()?
    } else if let Some(bin) = t.strip_prefix("0b").or_else(|| t.strip_prefix("0B")) {
        i64::from_str_radix(&bin.replace('_', ""), 2).ok()?
    } else {
        t.replace('_', "").parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

/// An operand value: either resolved now or a symbol resolved in pass 2.
#[derive(Clone, Debug)]
enum Value {
    Num(i64),
    Sym(String),
}

fn parse_value(tok: &str, line: usize) -> Result<Value, AsmError> {
    let t = tok.trim();
    if let Some(n) = parse_num(t) {
        return Ok(Value::Num(n));
    }
    if t.is_empty() || !t.chars().next().is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == '.') {
        return err(line, format!("expected number or symbol, found `{t}`"));
    }
    Ok(Value::Sym(t.to_string()))
}

fn resolve(v: &Value, symbols: &BTreeMap<String, u32>, equs: &BTreeMap<String, i64>, line: usize) -> Result<i64, AsmError> {
    match v {
        Value::Num(n) => Ok(*n),
        Value::Sym(s) => equs
            .get(s)
            .copied()
            .or_else(|| symbols.get(s).map(|&a| i64::from(a)))
            .ok_or_else(|| AsmError { line, msg: format!("undefined symbol `{s}`") }),
    }
}

fn check_i16(v: i64, line: usize, what: &str) -> Result<i16, AsmError> {
    i16::try_from(v).map_err(|_| AsmError { line, msg: format!("{what} {v} does not fit in 16 signed bits") })
}

/// `off(base)` memory operand.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(Value, Reg), AsmError> {
    let t = tok.trim();
    let open = t.find('(').ok_or_else(|| AsmError { line, msg: format!("expected `off(base)`, found `{t}`") })?;
    if !t.ends_with(')') {
        return err(line, format!("expected `off(base)`, found `{t}`"));
    }
    let off_txt = &t[..open];
    let base = parse_reg(&t[open + 1..t.len() - 1], line)?;
    let off = if off_txt.trim().is_empty() { Value::Num(0) } else { parse_value(off_txt, line)? };
    Ok((off, base))
}

/// One source statement after parsing (pass 1 representation).
#[derive(Clone, Debug)]
enum Stmt {
    /// A single machine instruction, with unresolved values where needed.
    Instr(PendingInstr),
    /// Emit literal words.
    Words(Vec<Value>),
    /// Emit `n` zero bytes.
    Space(u32),
}

/// Machine instruction with possibly-symbolic operands.
#[derive(Clone, Debug)]
enum PendingInstr {
    Ready(Instr),
    AluImm { op: AluImmOp, rd: Reg, rs1: Reg, imm: Value },
    Load { width: Width, signed: bool, rd: Reg, rs1: Reg, off: Value },
    Store { width: Width, rs2: Reg, rs1: Reg, off: Value },
    Tas { rd: Reg, rs1: Reg, off: Value },
    Branch { cond: Cond, rs1: Reg, rs2: Reg, target: Value },
    Jal { target: Value },
    Jalr { rd: Reg, rs1: Reg, off: Value },
    /// `lui`+`ori` pair materializing a 32-bit value (second word follows).
    LuiHi { rd: Reg, value: Value },
    OriLo { rd: Reg, value: Value },
}

struct Assembler {
    pc: u32,
    base: Option<u32>,
    items: Vec<(usize, u32, Stmt)>, // (line, address, statement)
    symbols: BTreeMap<String, u32>,
    equs: BTreeMap<String, i64>,
}

impl Assembler {
    fn new() -> Assembler {
        Assembler { pc: 0, base: None, items: Vec::new(), symbols: BTreeMap::new(), equs: BTreeMap::new() }
    }

    fn push(&mut self, line: usize, stmt: Stmt) {
        if self.base.is_none() {
            self.base = Some(self.pc);
        }
        let size = match &stmt {
            Stmt::Instr(_) => 4,
            Stmt::Words(ws) => 4 * ws.len() as u32,
            Stmt::Space(n) => *n,
        };
        self.items.push((line, self.pc, stmt));
        self.pc += size;
    }

    fn define_label(&mut self, name: &str, line: usize) -> Result<(), AsmError> {
        if self.symbols.insert(name.to_string(), self.pc).is_some() {
            return err(line, format!("duplicate label `{name}`"));
        }
        Ok(())
    }
}

fn split_operands(rest: &str) -> Vec<String> {
    if rest.trim().is_empty() {
        Vec::new()
    } else {
        rest.split(',').map(|s| s.trim().to_string()).collect()
    }
}

fn expect_n(ops: &[String], n: usize, mnemonic: &str, line: usize) -> Result<(), AsmError> {
    if ops.len() == n {
        Ok(())
    } else {
        err(line, format!("`{mnemonic}` expects {n} operand(s), found {}", ops.len()))
    }
}

fn alu_op_of(m: &str) -> Option<AluOp> {
    Some(match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "nor" => AluOp::Nor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "sra" => AluOp::Sra,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        "mul" => AluOp::Mul,
        "mulh" => AluOp::Mulh,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        _ => return None,
    })
}

fn alu_imm_op_of(m: &str) -> Option<AluImmOp> {
    Some(match m {
        "addi" => AluImmOp::Add,
        "andi" => AluImmOp::And,
        "ori" => AluImmOp::Or,
        "xori" => AluImmOp::Xor,
        "slti" => AluImmOp::Slt,
        "sltiu" => AluImmOp::Sltu,
        _ => return None,
    })
}

fn shift_op_of(m: &str) -> Option<ShiftOp> {
    Some(match m {
        "slli" => ShiftOp::Sll,
        "srli" => ShiftOp::Srl,
        "srai" => ShiftOp::Sra,
        _ => return None,
    })
}

fn load_of(m: &str) -> Option<(Width, bool)> {
    Some(match m {
        "lw" => (Width::Word, true),
        "lh" => (Width::Half, true),
        "lhu" => (Width::Half, false),
        "lb" => (Width::Byte, true),
        "lbu" => (Width::Byte, false),
        _ => return None,
    })
}

fn store_of(m: &str) -> Option<Width> {
    Some(match m {
        "sw" => Width::Word,
        "sh" => Width::Half,
        "sb" => Width::Byte,
        _ => return None,
    })
}

fn cond_of(m: &str) -> Option<(Cond, bool)> {
    // (condition, swap operands?)
    Some(match m {
        "beq" => (Cond::Eq, false),
        "bne" => (Cond::Ne, false),
        "blt" => (Cond::Lt, false),
        "bge" => (Cond::Ge, false),
        "bltu" => (Cond::Ltu, false),
        "bgeu" => (Cond::Geu, false),
        "bgt" => (Cond::Lt, true),
        "ble" => (Cond::Ge, true),
        "bgtu" => (Cond::Ltu, true),
        "bleu" => (Cond::Geu, true),
        _ => return None,
    })
}

/// Assembles TE32 source text into a [`Program`].
///
/// # Errors
///
/// Returns an [`AsmError`] naming the offending line for syntax errors,
/// unknown mnemonics or registers, duplicate labels, undefined symbols and
/// out-of-range immediates or branch offsets.
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    let mut a = Assembler::new();

    // Pass 1: parse lines, lay out addresses, collect labels.
    for (idx, raw) in source.lines().enumerate() {
        let line = idx + 1;
        let mut text = raw;
        for marker in [";", "#", "//"] {
            if let Some(pos) = text.find(marker) {
                text = &text[..pos];
            }
        }
        let mut text = text.trim();
        // Labels (possibly several) at line start.
        while let Some(colon) = text.find(':') {
            let (label, rest) = text.split_at(colon);
            let label = label.trim();
            if label.is_empty()
                || !label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
                || label.chars().next().is_some_and(|c| c.is_ascii_digit())
            {
                break;
            }
            a.define_label(label, line)?;
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(pos) => (&text[..pos], text[pos..].trim()),
            None => (text, ""),
        };
        let m = mnemonic.to_ascii_lowercase();
        let ops = split_operands(rest);

        // Directives.
        match m.as_str() {
            ".org" => {
                expect_n(&ops, 1, ".org", line)?;
                let v = resolve(&parse_value(&ops[0], line)?, &a.symbols, &a.equs, line)?;
                if v < 0 || v % 4 != 0 {
                    return err(line, format!(".org address {v} must be a non-negative multiple of 4"));
                }
                let v = v as u32;
                if v < a.pc {
                    return err(line, format!(".org {v:#x} moves backwards past {:#x}", a.pc));
                }
                if a.base.is_none() {
                    a.base = Some(v);
                } else if v > a.pc {
                    let gap = v - a.pc;
                    a.push(line, Stmt::Space(gap));
                }
                a.pc = v;
                continue;
            }
            ".align" => {
                expect_n(&ops, 1, ".align", line)?;
                let v = resolve(&parse_value(&ops[0], line)?, &a.symbols, &a.equs, line)?;
                if v <= 0 || v % 4 != 0 {
                    return err(line, format!(".align {v} must be a positive multiple of 4"));
                }
                let v = v as u32;
                let pad = (v - a.pc % v) % v;
                if pad > 0 {
                    a.push(line, Stmt::Space(pad));
                }
                continue;
            }
            ".word" => {
                if ops.is_empty() {
                    return err(line, ".word expects at least one value");
                }
                let values = ops.iter().map(|o| parse_value(o, line)).collect::<Result<Vec<_>, _>>()?;
                a.push(line, Stmt::Words(values));
                continue;
            }
            ".space" => {
                expect_n(&ops, 1, ".space", line)?;
                let v = resolve(&parse_value(&ops[0], line)?, &a.symbols, &a.equs, line)?;
                if v < 0 || v % 4 != 0 {
                    return err(line, format!(".space size {v} must be a non-negative multiple of 4"));
                }
                a.push(line, Stmt::Space(v as u32));
                continue;
            }
            ".equ" => {
                expect_n(&ops, 2, ".equ", line)?;
                let v = resolve(&parse_value(&ops[1], line)?, &a.symbols, &a.equs, line)?;
                if a.equs.insert(ops[0].clone(), v).is_some() {
                    return err(line, format!("duplicate .equ `{}`", ops[0]));
                }
                continue;
            }
            _ if m.starts_with('.') => return err(line, format!("unknown directive `{m}`")),
            _ => {}
        }

        // Instructions and pseudo-instructions.
        let stmt = if let Some(op) = alu_op_of(&m) {
            expect_n(&ops, 3, &m, line)?;
            PendingInstr::Ready(Instr::Alu {
                op,
                rd: parse_reg(&ops[0], line)?,
                rs1: parse_reg(&ops[1], line)?,
                rs2: parse_reg(&ops[2], line)?,
            })
        } else if let Some(op) = alu_imm_op_of(&m) {
            expect_n(&ops, 3, &m, line)?;
            PendingInstr::AluImm {
                op,
                rd: parse_reg(&ops[0], line)?,
                rs1: parse_reg(&ops[1], line)?,
                imm: parse_value(&ops[2], line)?,
            }
        } else if let Some(op) = shift_op_of(&m) {
            expect_n(&ops, 3, &m, line)?;
            let sh = resolve(&parse_value(&ops[2], line)?, &a.symbols, &a.equs, line)?;
            if !(0..32).contains(&sh) {
                return err(line, format!("shift amount {sh} out of range 0..32"));
            }
            PendingInstr::Ready(Instr::ShiftImm {
                op,
                rd: parse_reg(&ops[0], line)?,
                rs1: parse_reg(&ops[1], line)?,
                sh: sh as u8,
            })
        } else if let Some((width, signed)) = load_of(&m) {
            expect_n(&ops, 2, &m, line)?;
            let (off, rs1) = parse_mem_operand(&ops[1], line)?;
            PendingInstr::Load { width, signed, rd: parse_reg(&ops[0], line)?, rs1, off }
        } else if let Some(width) = store_of(&m) {
            expect_n(&ops, 2, &m, line)?;
            let (off, rs1) = parse_mem_operand(&ops[1], line)?;
            PendingInstr::Store { width, rs2: parse_reg(&ops[0], line)?, rs1, off }
        } else if let Some((cond, swap)) = cond_of(&m) {
            expect_n(&ops, 3, &m, line)?;
            let (mut rs1, mut rs2) = (parse_reg(&ops[0], line)?, parse_reg(&ops[1], line)?);
            if swap {
                std::mem::swap(&mut rs1, &mut rs2);
            }
            PendingInstr::Branch { cond, rs1, rs2, target: parse_value(&ops[2], line)? }
        } else {
            match m.as_str() {
                "lui" => {
                    expect_n(&ops, 2, "lui", line)?;
                    let v = resolve(&parse_value(&ops[1], line)?, &a.symbols, &a.equs, line)?;
                    if !(0..=0xFFFF).contains(&v) {
                        return err(line, format!("lui immediate {v} out of range 0..=0xffff"));
                    }
                    PendingInstr::Ready(Instr::Lui { rd: parse_reg(&ops[0], line)?, imm: v as u16 })
                }
                "tas" => {
                    expect_n(&ops, 2, "tas", line)?;
                    let (off, rs1) = parse_mem_operand(&ops[1], line)?;
                    PendingInstr::Tas { rd: parse_reg(&ops[0], line)?, rs1, off }
                }
                "jal" | "call" => {
                    expect_n(&ops, 1, &m, line)?;
                    PendingInstr::Jal { target: parse_value(&ops[0], line)? }
                }
                "jalr" => {
                    expect_n(&ops, 3, "jalr", line)?;
                    PendingInstr::Jalr {
                        rd: parse_reg(&ops[0], line)?,
                        rs1: parse_reg(&ops[1], line)?,
                        off: parse_value(&ops[2], line)?,
                    }
                }
                "ret" => {
                    expect_n(&ops, 0, "ret", line)?;
                    PendingInstr::Ready(Instr::Jalr { rd: Reg::ZERO, rs1: Reg::RA, off: 0 })
                }
                "halt" => {
                    expect_n(&ops, 0, "halt", line)?;
                    PendingInstr::Ready(Instr::Halt)
                }
                "nop" => {
                    expect_n(&ops, 0, "nop", line)?;
                    PendingInstr::Ready(Instr::NOP)
                }
                "mv" => {
                    expect_n(&ops, 2, "mv", line)?;
                    PendingInstr::Ready(Instr::AluImm {
                        op: AluImmOp::Add,
                        rd: parse_reg(&ops[0], line)?,
                        rs1: parse_reg(&ops[1], line)?,
                        imm: 0,
                    })
                }
                "not" => {
                    expect_n(&ops, 2, "not", line)?;
                    PendingInstr::Ready(Instr::Alu {
                        op: AluOp::Nor,
                        rd: parse_reg(&ops[0], line)?,
                        rs1: parse_reg(&ops[1], line)?,
                        rs2: Reg::ZERO,
                    })
                }
                "neg" => {
                    expect_n(&ops, 2, "neg", line)?;
                    PendingInstr::Ready(Instr::Alu {
                        op: AluOp::Sub,
                        rd: parse_reg(&ops[0], line)?,
                        rs1: Reg::ZERO,
                        rs2: parse_reg(&ops[1], line)?,
                    })
                }
                "j" | "b" => {
                    expect_n(&ops, 1, &m, line)?;
                    PendingInstr::Branch {
                        cond: Cond::Eq,
                        rs1: Reg::ZERO,
                        rs2: Reg::ZERO,
                        target: parse_value(&ops[0], line)?,
                    }
                }
                "beqz" | "bnez" => {
                    expect_n(&ops, 2, &m, line)?;
                    PendingInstr::Branch {
                        cond: if m == "beqz" { Cond::Eq } else { Cond::Ne },
                        rs1: parse_reg(&ops[0], line)?,
                        rs2: Reg::ZERO,
                        target: parse_value(&ops[1], line)?,
                    }
                }
                "li" => {
                    expect_n(&ops, 2, "li", line)?;
                    let rd = parse_reg(&ops[0], line)?;
                    let v = parse_value(&ops[1], line)?;
                    match &v {
                        Value::Num(n) if i16::try_from(*n).is_ok() => {
                            PendingInstr::Ready(Instr::AluImm { op: AluImmOp::Add, rd, rs1: Reg::ZERO, imm: *n as i16 })
                        }
                        Value::Num(n) if *n >= i64::from(i32::MIN) && *n <= i64::from(u32::MAX) => {
                            a.push(line, Stmt::Instr(PendingInstr::LuiHi { rd, value: v.clone() }));
                            PendingInstr::OriLo { rd, value: v }
                        }
                        Value::Num(n) => return err(line, format!("li immediate {n} does not fit in 32 bits")),
                        Value::Sym(_) => {
                            a.push(line, Stmt::Instr(PendingInstr::LuiHi { rd, value: v.clone() }));
                            PendingInstr::OriLo { rd, value: v }
                        }
                    }
                }
                "la" => {
                    expect_n(&ops, 2, "la", line)?;
                    let rd = parse_reg(&ops[0], line)?;
                    let v = parse_value(&ops[1], line)?;
                    a.push(line, Stmt::Instr(PendingInstr::LuiHi { rd, value: v.clone() }));
                    PendingInstr::OriLo { rd, value: v }
                }
                other => return err(line, format!("unknown mnemonic `{other}`")),
            }
        };
        a.push(line, Stmt::Instr(stmt));
    }

    // Pass 2: resolve symbols and emit words.
    let base = a.base.unwrap_or(0);
    let total = a.pc - base;
    let mut words = vec![0u32; (total / 4) as usize];
    for (line, addr, stmt) in &a.items {
        let line = *line;
        let word_idx = ((*addr - base) / 4) as usize;
        match stmt {
            Stmt::Space(_) => {}
            Stmt::Words(values) => {
                for (i, v) in values.iter().enumerate() {
                    let n = resolve(v, &a.symbols, &a.equs, line)?;
                    if n < i64::from(i32::MIN) || n > i64::from(u32::MAX) {
                        return err(line, format!(".word value {n} does not fit in 32 bits"));
                    }
                    words[word_idx + i] = n as u32;
                }
            }
            Stmt::Instr(p) => {
                let instr = lower(p, *addr, &a.symbols, &a.equs, line)?;
                words[word_idx] = instr.encode();
            }
        }
    }

    let entry = a.symbols.get("start").copied().unwrap_or(base);
    Ok(Program { base, words, symbols: a.symbols, entry })
}

fn lower(
    p: &PendingInstr,
    addr: u32,
    symbols: &BTreeMap<String, u32>,
    equs: &BTreeMap<String, i64>,
    line: usize,
) -> Result<Instr, AsmError> {
    let res = |v: &Value| resolve(v, symbols, equs, line);
    Ok(match p {
        PendingInstr::Ready(i) => *i,
        PendingInstr::AluImm { op, rd, rs1, imm } => {
            let v = res(imm)?;
            // Bitwise immediates are zero-extended, so accept 0..=0xFFFF too.
            let imm = match op {
                AluImmOp::And | AluImmOp::Or | AluImmOp::Xor if (0..=0xFFFF).contains(&v) => v as u16 as i16,
                _ => check_i16(v, line, "immediate")?,
            };
            Instr::AluImm { op: *op, rd: *rd, rs1: *rs1, imm }
        }
        PendingInstr::Load { width, signed, rd, rs1, off } => {
            Instr::Load { width: *width, signed: *signed, rd: *rd, rs1: *rs1, off: check_i16(res(off)?, line, "offset")? }
        }
        PendingInstr::Store { width, rs2, rs1, off } => {
            Instr::Store { width: *width, rs2: *rs2, rs1: *rs1, off: check_i16(res(off)?, line, "offset")? }
        }
        PendingInstr::Tas { rd, rs1, off } => {
            Instr::Tas { rd: *rd, rs1: *rs1, off: check_i16(res(off)?, line, "offset")? }
        }
        PendingInstr::Branch { cond, rs1, rs2, target } => {
            let off = branch_offset(target, addr, symbols, equs, line)?;
            let off = i16::try_from(off)
                .map_err(|_| AsmError { line, msg: format!("branch offset {off} out of 16-bit range") })?;
            Instr::Branch { cond: *cond, rs1: *rs1, rs2: *rs2, off }
        }
        PendingInstr::Jal { target } => {
            let off = branch_offset(target, addr, symbols, equs, line)?;
            if !(-(1 << 25)..(1 << 25)).contains(&off) {
                return err(line, format!("jal offset {off} out of 26-bit range"));
            }
            Instr::Jal { off: off as i32 }
        }
        PendingInstr::Jalr { rd, rs1, off } => {
            Instr::Jalr { rd: *rd, rs1: *rs1, off: check_i16(res(off)?, line, "offset")? }
        }
        PendingInstr::LuiHi { rd, value } => {
            let v = res(value)? as u32;
            Instr::Lui { rd: *rd, imm: (v >> 16) as u16 }
        }
        PendingInstr::OriLo { rd, value } => {
            let v = res(value)? as u32;
            Instr::AluImm { op: AluImmOp::Or, rd: *rd, rs1: *rd, imm: (v & 0xFFFF) as u16 as i16 }
        }
    })
}

/// Branch/jump displacement in instructions relative to `pc + 4`.
///
/// Symbolic targets are absolute label addresses; numeric targets are taken
/// as raw instruction offsets (the disassembler's format).
fn branch_offset(
    target: &Value,
    addr: u32,
    symbols: &BTreeMap<String, u32>,
    equs: &BTreeMap<String, i64>,
    line: usize,
) -> Result<i64, AsmError> {
    match target {
        Value::Num(n) => Ok(*n),
        Value::Sym(_) => {
            let abs = resolve(target, symbols, equs, line)?;
            if abs % 4 != 0 {
                return err(line, format!("branch target {abs:#x} is not word aligned"));
            }
            Ok((abs - i64::from(addr) - 4) / 4)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;

    fn asm(src: &str) -> Program {
        assemble(src).expect("assembly should succeed")
    }

    fn decode_all(p: &Program) -> Vec<Instr> {
        p.words.iter().map(|&w| Instr::decode(w).expect("valid words")).collect()
    }

    #[test]
    fn basic_program() {
        let p = asm("start: addi r1, r0, 5\n add r2, r1, r1\n halt\n");
        assert_eq!(p.entry, 0);
        let is = decode_all(&p);
        assert_eq!(is.len(), 3);
        assert_eq!(is[2], Instr::Halt);
    }

    #[test]
    fn labels_and_branches_resolve() {
        let p = asm("loop: addi r1, r1, 1\n bne r1, r2, loop\n halt\n");
        match decode_all(&p)[1] {
            Instr::Branch { off, .. } => assert_eq!(off, -2, "back to loop over two instructions"),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn forward_references_resolve() {
        let p = asm("  beq r0, r0, end\n nop\n nop\nend: halt\n");
        match decode_all(&p)[0] {
            Instr::Branch { off, .. } => assert_eq!(off, 2),
            other => panic!("expected branch, got {other:?}"),
        }
    }

    #[test]
    fn li_small_is_one_instruction() {
        let p = asm("li r1, -7\n");
        assert_eq!(decode_all(&p), vec![Instr::AluImm { op: AluImmOp::Add, rd: Reg::new(1), rs1: Reg::ZERO, imm: -7 }]);
    }

    #[test]
    fn li_large_is_lui_ori() {
        let p = asm("li r1, 0x12345678\n");
        let is = decode_all(&p);
        assert_eq!(is[0], Instr::Lui { rd: Reg::new(1), imm: 0x1234 });
        assert_eq!(is[1], Instr::AluImm { op: AluImmOp::Or, rd: Reg::new(1), rs1: Reg::new(1), imm: 0x5678 });
    }

    #[test]
    fn la_resolves_label_address() {
        let p = asm(".org 0x100\nstart: la r2, data\n halt\ndata: .word 42\n");
        let is: Vec<Instr> = p.words[..3].iter().map(|&w| Instr::decode(w).unwrap()).collect();
        let data = p.symbol("data");
        assert_eq!(is[0], Instr::Lui { rd: Reg::new(2), imm: (data >> 16) as u16 });
        match is[1] {
            Instr::AluImm { op: AluImmOp::Or, imm, .. } => assert_eq!(imm as u16 as u32, data & 0xFFFF),
            other => panic!("expected ori, got {other:?}"),
        }
        assert_eq!(p.base, 0x100);
        assert_eq!(p.entry, 0x100);
    }

    #[test]
    fn equ_constants() {
        let p = asm(".equ MMIO, 0xFFFF0000\n li r1, MMIO\n lw r2, 0(r1)\n halt\n");
        let is = decode_all(&p);
        assert_eq!(is[0], Instr::Lui { rd: Reg::new(1), imm: 0xFFFF });
    }

    #[test]
    fn word_and_space_layout() {
        let p = asm("a: .word 1, 2, 3\nb: .space 8\nc: .word a\n");
        assert_eq!(p.symbol("a"), 0);
        assert_eq!(p.symbol("b"), 12);
        assert_eq!(p.symbol("c"), 20);
        assert_eq!(p.words[0..3], [1, 2, 3]);
        assert_eq!(p.words[3..5], [0, 0]);
        assert_eq!(p.words[5], 0, ".word a resolves to address 0");
    }

    #[test]
    fn align_pads() {
        let p = asm(" .word 1\n .align 16\n .word 2\n");
        assert_eq!(p.words.len(), 5);
        assert_eq!(p.words[4], 2);
    }

    #[test]
    fn register_aliases() {
        let p = asm("mv sp, zero\n add a0, t1, s2\n");
        match decode_all(&p)[1] {
            Instr::Alu { rd, rs1, rs2, .. } => {
                assert_eq!(rd, Reg::new(4));
                assert_eq!(rs1, Reg::new(13));
                assert_eq!(rs2, Reg::new(22));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn pseudo_expansions() {
        let p = asm("ret\n j 0\n not r1, r2\n neg r3, r4\n beqz r5, 0\n bnez r6, 0\n nop\n");
        let is = decode_all(&p);
        assert_eq!(is[0], Instr::Jalr { rd: Reg::ZERO, rs1: Reg::RA, off: 0 });
        assert!(matches!(is[1], Instr::Branch { cond: Cond::Eq, .. }));
        assert!(matches!(is[2], Instr::Alu { op: AluOp::Nor, .. }));
        assert!(matches!(is[3], Instr::Alu { op: AluOp::Sub, .. }));
        assert!(matches!(is[4], Instr::Branch { cond: Cond::Eq, .. }));
        assert!(matches!(is[5], Instr::Branch { cond: Cond::Ne, .. }));
        assert_eq!(is[6], Instr::NOP);
    }

    #[test]
    fn swapped_comparisons() {
        let p = asm("bgt r1, r2, 0\n");
        match decode_all(&p)[0] {
            Instr::Branch { cond: Cond::Lt, rs1, rs2, .. } => {
                assert_eq!(rs1, Reg::new(2), "bgt swaps operands");
                assert_eq!(rs2, Reg::new(1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn comments_and_blank_lines() {
        let p = asm("; full comment\n  # another\n nop // trailing\n\n halt ; done\n");
        assert_eq!(decode_all(&p), vec![Instr::NOP, Instr::Halt]);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\n bogus r1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble("x: nop\nx: nop\n").unwrap_err();
        assert!(e.msg.contains("duplicate label"));
    }

    #[test]
    fn undefined_symbol_rejected() {
        let e = assemble("beq r0, r0, nowhere\n").unwrap_err();
        assert!(e.msg.contains("undefined symbol"));
    }

    #[test]
    fn immediate_range_checked() {
        assert!(assemble("addi r1, r0, 40000\n").is_err());
        assert!(assemble("andi r1, r0, 0xFFFF\n").is_ok(), "bitwise imm zero-extends");
        assert!(assemble("slli r1, r0, 32\n").is_err());
        assert!(assemble("lui r1, 0x10000\n").is_err());
    }

    #[test]
    fn org_backwards_rejected() {
        let e = assemble(".org 8\n nop\n .org 0\n").unwrap_err();
        assert!(e.msg.contains("backwards"));
    }

    #[test]
    fn disassemble_reassemble_round_trip() {
        let src = "start: li r1, 0x12345678\n lw r2, 4(r1)\n add r3, r2, r1\n bne r3, r0, -3\n halt\n";
        let p1 = asm(src);
        let text: String = p1.words.iter().map(|&w| {
            disassemble(Instr::decode(w).unwrap()) + "\n"
        }).collect();
        let p2 = asm(&text);
        assert_eq!(p1.words, p2.words);
    }

    #[test]
    fn mem_operand_without_offset() {
        let p = asm("lw r1, (r2)\n");
        assert!(matches!(decode_all(&p)[0], Instr::Load { off: 0, .. }));
    }
}
