//! # temu-fpga — Virtex-2 Pro VP30 resource model
//!
//! The paper quotes FPGA utilization throughout §3–§4: a MicroBlaze costs
//! 574 of the V2VP30's 13,696 slices (4 %), a memory controller 2 %, the
//! custom bus and a private-memory interface 1 % each, sniffers 0.2–0.3 %,
//! the 4-processor exploration design 66 %, the two-switch NoC design 80 %
//! and a six-switch NoC system 70 %. This crate reproduces those numbers as
//! a per-component cost model so that platform configurations can be checked
//! for *fit* before "synthesis" — the role the EDK flow plays in Fig. 5.
//!
//! Slice costs for components the paper does not price individually (cache
//! controllers, the Ethernet dispatcher, VPCM, NoC switches) are calibrated
//! so the published design totals come out right; EXPERIMENTS.md records
//! model-vs-paper for every figure.

use temu_interconnect::BusKind;
use temu_platform::{IcChoice, PlatformConfig, SnifferMode};

/// The Xilinx Virtex-2 Pro VP30 device (the paper's board).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Device {
    /// Logic slices available.
    pub slices: u32,
    /// 18 kbit block RAMs available.
    pub bram18: u32,
    /// Hard PowerPC 405 cores available.
    pub ppc405: u32,
}

/// The V2VP30: 13,696 slices, 136 BRAMs, 2 hard PowerPC 405s.
pub const V2VP30: Device = Device { slices: 13_696, bram18: 136, ppc405: 2 };

/// Per-component slice costs (calibrated; see crate docs).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CostModel {
    /// MicroBlaze-class soft core (paper: 574 slices).
    pub soft_core: u32,
    /// Memory controller per core (paper: 2 %).
    pub mem_controller: u32,
    /// Private-memory interface per core (paper: 1 %, plus BRAM).
    pub private_mem_if: u32,
    /// One L1 cache controller (calibrated against the 66 % design total).
    pub cache: u32,
    /// OPB/PLB or custom bus (paper: 1 %).
    pub bus: u32,
    /// One NoC switch, 4 I/O, 3-flit buffers (calibrated against the 80 %
    /// NoC design and 70 % six-switch system).
    pub noc_switch: u32,
    /// OCP network-interface bridge per attached core/memory.
    pub ocp_bridge: u32,
    /// Count-logging sniffer (paper: 0.3 %).
    pub sniffer_count: u32,
    /// Event-logging sniffer (paper: 0.2 %).
    pub sniffer_event: u32,
    /// VPCM clock manager.
    pub vpcm: u32,
    /// Ethernet MAC + statistics dispatcher.
    pub ethernet: u32,
}

impl Default for CostModel {
    fn default() -> CostModel {
        CostModel {
            soft_core: 574,
            mem_controller: 274,
            private_mem_if: 137,
            cache: 520,
            bus: 137,
            noc_switch: 550,
            ocp_bridge: 110,
            sniffer_count: 41,
            sniffer_event: 27,
            vpcm: 250,
            ethernet: 800,
        }
    }
}

/// One line of a utilization report.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct UtilizationItem {
    /// Component name.
    pub name: String,
    /// Instances.
    pub count: u32,
    /// Slices for all instances.
    pub slices: u32,
}

/// A synthesized-design estimate.
#[derive(Clone, PartialEq, Debug)]
pub struct UtilizationReport {
    /// Target device.
    pub device: Device,
    /// Per-component breakdown.
    pub items: Vec<UtilizationItem>,
    /// Hard PPC405s used (cost no slices).
    pub hard_cores: u32,
    /// 18 kbit BRAMs needed for memories and buffers.
    pub bram18: u32,
}

impl UtilizationReport {
    /// Total slices.
    pub fn slices(&self) -> u32 {
        self.items.iter().map(|i| i.slices).sum()
    }

    /// Utilization as a fraction of the device's slices.
    pub fn utilization(&self) -> f64 {
        f64::from(self.slices()) / f64::from(self.device.slices)
    }

    /// Whether the design fits the device (slices, BRAM and hard cores).
    pub fn fits(&self) -> bool {
        self.slices() <= self.device.slices && self.bram18 <= self.device.bram18 && self.hard_cores <= self.device.ppc405
    }

    /// Renders the report as a table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("{:<28} {:>5} {:>8} {:>7}\n", "component", "count", "slices", "%"));
        for i in &self.items {
            out.push_str(&format!(
                "{:<28} {:>5} {:>8} {:>6.1}%\n",
                i.name,
                i.count,
                i.slices,
                100.0 * f64::from(i.slices) / f64::from(self.device.slices)
            ));
        }
        out.push_str(&format!(
            "{:<28} {:>5} {:>8} {:>6.1}%   (BRAM18: {}/{}, PPC405: {}/{})\n",
            "TOTAL",
            "",
            self.slices(),
            100.0 * self.utilization(),
            self.bram18,
            self.device.bram18,
            self.hard_cores,
            self.device.ppc405
        ));
        out
    }
}

/// Estimates the synthesis footprint of a platform on a device.
///
/// `hard_cores` of the platform's processors map to the device's PPC405s
/// (zero slices), the rest become soft cores — the paper's 4-processor
/// design uses "1 hard-core PowerPC and 3 soft-core Microblazes".
pub fn estimate(cfg: &PlatformConfig, costs: &CostModel, device: Device, hard_cores: u32) -> UtilizationReport {
    let cores = cfg.cores as u32;
    let hard = hard_cores.min(cores).min(device.ppc405);
    let soft = cores - hard;
    let mut items = Vec::new();
    let mut push = |name: &str, count: u32, per: u32| {
        if count > 0 {
            items.push(UtilizationItem { name: name.to_string(), count, slices: count * per });
        }
    };
    push("soft core (MicroBlaze)", soft, costs.soft_core);
    push("memory controller", cores, costs.mem_controller);
    push("private memory i/f", cores, costs.private_mem_if);
    let n_caches = cores * (u32::from(cfg.icache.is_some()) + u32::from(cfg.dcache.is_some()));
    push("L1 cache controller", n_caches, costs.cache);
    match &cfg.interconnect {
        IcChoice::Bus(b) => {
            let name = match b.kind {
                BusKind::Opb => "OPB bus",
                BusKind::Plb => "PLB bus",
                BusKind::Custom => "custom 32-bit bus",
            };
            push(name, 1, costs.bus);
        }
        IcChoice::Noc(n) => {
            push("NoC switch (4io/3buf)", n.topology.switches() as u32, costs.noc_switch);
            push("OCP NI bridge", cores + n.mem_switch.len() as u32, costs.ocp_bridge);
        }
    }
    let (per_sniffer, sniffer_name) = match cfg.sniffer_mode {
        SnifferMode::CountLogging => (costs.sniffer_count, "count-logging sniffer"),
        SnifferMode::EventLogging { .. } => (costs.sniffer_event, "event-logging sniffer"),
    };
    // One sniffer per monitored component: cores, caches, memories, interconnect.
    let sniffers = cores + n_caches + cores + 1 + 1;
    push(sniffer_name, sniffers, per_sniffer);
    push("VPCM", 1, costs.vpcm);
    push("Ethernet MAC + dispatcher", 1, costs.ethernet);

    // BRAM: private memories + event buffer, 2 KiB data per BRAM18. The
    // shared main memory "uses real memories (e.g. DDR) available on the
    // board" (§3.2), so it never consumes BRAM.
    let mem_bytes = cores * cfg.private_mem.size;
    let event_bytes = match cfg.sniffer_mode {
        SnifferMode::EventLogging { capacity } => (capacity * temu_platform::EVENT_BYTES) as u32,
        SnifferMode::CountLogging => 0,
    };
    let bram18 = (mem_bytes + event_bytes).div_ceil(2048);

    UtilizationReport { device, items, hard_cores: hard, bram18 }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pct(r: &UtilizationReport) -> f64 {
        100.0 * r.utilization()
    }

    #[test]
    fn microblaze_is_574_slices_4_percent() {
        let c = CostModel::default();
        assert_eq!(c.soft_core, 574);
        let frac: f64 = 100.0 * 574.0 / 13_696.0;
        assert!((frac - 4.2).abs() < 0.1, "paper: ~4% ({frac:.1}%)");
    }

    #[test]
    fn memory_controller_is_two_percent() {
        let c = CostModel::default();
        let frac = 100.0 * f64::from(c.mem_controller) / 13_696.0;
        assert!((frac - 2.0).abs() < 0.25);
    }

    #[test]
    fn sniffer_costs_match_paper_fractions() {
        let c = CostModel::default();
        assert!((100.0 * f64::from(c.sniffer_count) / 13_696.0 - 0.3).abs() < 0.05);
        assert!((100.0 * f64::from(c.sniffer_event) / 13_696.0 - 0.2).abs() < 0.05);
    }

    #[test]
    fn paper_four_core_design_is_about_66_percent() {
        // "the MPSoC design with HW sniffers and 4 processors (1 hard-core
        // PowerPC and 3 soft-core Microblazes) consumes 66% of the V2VP30".
        let cfg = PlatformConfig::paper_bus(4);
        let r = estimate(&cfg, &CostModel::default(), V2VP30, 1);
        let u = pct(&r);
        assert!((u - 66.0).abs() < 5.0, "model says {u:.1}%, paper says 66%");
        assert!(r.fits());
        assert_eq!(r.hard_cores, 1);
    }

    #[test]
    fn paper_noc_design_is_about_80_percent() {
        // "This NoC-based MPSoC required 80% of our FPGA."
        let cfg = PlatformConfig::paper_noc(4);
        let r = estimate(&cfg, &CostModel::default(), V2VP30, 1);
        let u = pct(&r);
        assert!((u - 80.0).abs() < 6.0, "model says {u:.1}%, paper says 80%");
    }

    #[test]
    fn six_switch_system_is_about_70_percent() {
        // "a complex NoC-based system with 6 switches of 4 input/output
        // channels and 3 output buffers uses 70% of the V2VP30" — with the
        // smaller per-core configuration such a system carries.
        let mut cfg = PlatformConfig::paper_noc(4);
        cfg.interconnect = IcChoice::Noc(temu_interconnect::NocConfig::paper_six_switch(4));
        cfg.dcache = None; // IP-validation style system: leaner cores
        let r = estimate(&cfg, &CostModel::default(), V2VP30, 2);
        let u = pct(&r);
        assert!((u - 70.0).abs() < 8.0, "model says {u:.1}%, paper says 70%");
    }

    #[test]
    fn eight_core_design_exceeds_the_device() {
        // Scalability check: 8 soft cores with full caches cannot fit — the
        // paper runs 8-core explorations with reduced per-core resources.
        let cfg = PlatformConfig::paper_bus(8);
        let r = estimate(&cfg, &CostModel::default(), V2VP30, 2);
        assert!(r.slices() > 10_000);
    }

    #[test]
    fn bram_accounting() {
        let cfg = PlatformConfig::paper_bus(1);
        let r = estimate(&cfg, &CostModel::default(), V2VP30, 1);
        // 64 KiB of private memory → 32 BRAM18; the 1 MiB shared memory
        // lives in on-board DDR, not BRAM (§3.2).
        assert_eq!(r.bram18, 64 * 1024 / 2048);
        assert!(r.fits());
    }

    #[test]
    fn hard_cores_cost_no_slices() {
        let cfg = PlatformConfig::paper_bus(2);
        let all_hard = estimate(&cfg, &CostModel::default(), V2VP30, 2);
        let all_soft = estimate(&cfg, &CostModel::default(), V2VP30, 0);
        assert_eq!(all_soft.slices() - all_hard.slices(), 2 * 574);
    }

    #[test]
    fn report_renders() {
        let cfg = PlatformConfig::paper_bus(4);
        let r = estimate(&cfg, &CostModel::default(), V2VP30, 1);
        let text = r.render();
        assert!(text.contains("TOTAL"));
        assert!(text.contains("soft core"));
        assert!(text.contains("VPCM"));
    }
}
