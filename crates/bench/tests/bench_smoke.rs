//! The tier-1 bench-smoke gate: the two smallest scaling rungs must run
//! without panic or NaN, and the committed `BENCH_thermal.json` format must
//! serialize. (The release-mode equivalent is
//! `cargo run --release -p temu-bench --bin thermal_scaling -- --smoke`.)

use temu_bench::thermal_scaling;
use temu_framework::{Campaign, ImplicitSolve, ResultCache, Scenario, Sweep, Workload};
use temu_workloads::matrix::MatrixConfig;

#[test]
fn thermal_scaling_smoke() {
    // Tiny budget: this runs in debug mode under `cargo test`. `run`
    // itself asserts that no multigrid case accepted an unconverged
    // substep — that non-convergence gate is part of this smoke test.
    let report = thermal_scaling::run(true, 0.02);
    assert!(report.smoke);
    // 2 rungs × (semi-implicit: 3 gs sweeps + 1 mg; explicit: 3 sweeps).
    assert_eq!(report.cases.len(), 14);
    let mut mg_cases = 0;
    for c in &report.cases {
        assert!(c.substeps > 0, "{}/{}/{} did no work", c.mesh, c.integrator, c.sweep);
        assert!(c.substeps_per_s.is_finite() && c.substeps_per_s > 0.0);
        assert!(c.max_temp_k.is_finite() && c.max_temp_k >= 300.0, "{}: bad max temp", c.mesh);
        if c.solver == "mg" {
            mg_cases += 1;
            assert_eq!(c.unconverged, 0, "{}: multigrid must converge every substep", c.mesh);
        }
    }
    assert_eq!(mg_cases, 2, "one multigrid case per smoke rung");
    assert_eq!(report.builds.len(), 2);
    let json = report.to_json();
    assert!(json.contains("\"cases\""));
    assert!(json.contains("\"speedup_vs_reference\""));
    assert!(json.contains("\"unconverged_substeps\""));
    assert!(json.contains("\"solver\": \"mg\""));
}

/// A three-scenario mini campaign must run end to end (debug mode, tiny
/// workloads) and export a well-formed report — the batch-runner smoke
/// gate. The third scenario runs the multigrid implicit solver in strict
/// mode, so any substep-level non-convergence fails the gate loudly.
#[test]
fn mini_campaign_smoke() {
    let report = Campaign::new()
        .scenario(Scenario::exploration_bus(1).sampling_window_s(0.002))
        .scenario(Scenario::exploration_noc(1).sampling_window_s(0.002))
        .scenario(
            Scenario::exploration_bus(1)
                .sampling_window_s(0.002)
                .implicit_solve(ImplicitSolve::Multigrid)
                .strict_convergence(true)
                .name("strict-multigrid"),
        )
        .threads(2)
        .run();
    assert_eq!(report.results.len(), 3);
    assert!(report.all_ok(), "{}", report.to_json());
    let json = report.to_json();
    assert!(json.contains("1core-bus-dither-64x64x2"));
    assert!(json.contains("1core-noc-dither-64x64x2"));
    assert!(json.contains("strict-multigrid"));
    assert!(json.contains("\"ok\": true"));
    assert!(json.contains("\"unconverged_substeps\": 0"));
    let mg = report.results[2].outcome.as_ref().unwrap();
    assert_eq!(mg.report.solver.unconverged_substeps, 0);
    assert!(mg.report.solver.total_cycles > 0, "multigrid cycles were spent");
    assert_eq!(report.to_csv().lines().count(), 4, "header + 3 rows");
}

/// The debug-mode twin of `sweep -- --smoke` (the release gate in
/// check.sh): a strict-convergence mini sweep over workload × solver must
/// run clean through `Campaign`, and its identical re-run must be 100%
/// cache hits with zero scenario executions.
#[test]
fn mini_sweep_smoke() {
    let tiny = |iters: u32| Workload::Matrix(MatrixConfig { n: 4, iters, cores: 1 });
    let base = Scenario::new().cores(1).workload(tiny(1)).sampling_window_s(0.0005).windows(2);
    let base = base.strict_convergence(true);
    let build = || {
        Sweep::new("smoke", base.clone())
            .workloads((1..=3).map(tiny).collect())
            .implicit_solves(&[ImplicitSolve::GaussSeidel, ImplicitSolve::Multigrid])
            .threads(2)
    };
    let cache = ResultCache::in_memory();
    let first = build().run_cached(&cache);
    assert_eq!(first.points.len(), 6);
    assert!(first.all_ok(), "{}", first.to_json());
    assert_eq!(first.executed, 6);
    for p in &first.points {
        assert_eq!(p.outcome.as_ref().unwrap().unconverged_substeps, 0, "{} converged", p.label);
    }
    let rerun = build().run_cached(&cache);
    assert_eq!(rerun.executed, 0, "identical re-run executes nothing");
    assert_eq!(rerun.cache_hits, 6);
    assert!(rerun.to_json().contains("\"cache_hit\": true"));
}
