//! Fault injection for the chaos tests and the `chaos-smoke` CI gate.
//!
//! A [`FaultPlan`] names the faults the server should inject into itself:
//! worker panics mid-sweep, torn journal appends, dropped connections.
//! The plan comes from the `TEMU_FAULT` environment variable (parsed once,
//! on first use) or from [`install`] in tests; when neither sets one, every
//! injection point is a single relaxed atomic load — the production path
//! pays nothing else.
//!
//! ```text
//! TEMU_FAULT=worker_panic:0.2,torn_write,drop_conn:0.1
//! ```
//!
//! Each element is `name` (probability 1.0) or `name:p` with `0 < p <= 1`.
//! Unknown names are rejected loudly at parse time — a typo silently
//! injecting nothing would invalidate the chaos run it was meant to drive.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

/// Environment variable naming the faults to inject.
pub const FAULT_ENV: &str = "TEMU_FAULT";

/// Which faults to inject, each with an independent per-event probability
/// (`0.0` disables the fault).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct FaultPlan {
    /// Probability that a worker panics at a sweep checkpoint.
    pub worker_panic: f64,
    /// Probability that a journal append is torn mid-record.
    pub torn_write: f64,
    /// Probability that an accepted connection is dropped before serving.
    pub drop_conn: f64,
}

impl FaultPlan {
    /// Whether any fault is armed.
    #[must_use]
    pub fn active(&self) -> bool {
        self.worker_panic > 0.0 || self.torn_write > 0.0 || self.drop_conn > 0.0
    }

    /// Parses the `TEMU_FAULT` syntax
    /// (`worker_panic:0.2,torn_write,drop_conn:0.1`).
    ///
    /// # Errors
    ///
    /// A description of the first unknown fault name or unparsable
    /// probability.
    pub fn parse(text: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for part in text.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            let (name, prob) = match part.split_once(':') {
                Some((name, p)) => {
                    let p: f64 = p
                        .trim()
                        .parse()
                        .map_err(|_| format!("{FAULT_ENV}: bad probability in {part:?}"))?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("{FAULT_ENV}: probability out of [0, 1] in {part:?}"));
                    }
                    (name.trim(), p)
                }
                None => (part, 1.0),
            };
            match name {
                "worker_panic" => plan.worker_panic = prob,
                "torn_write" => plan.torn_write = prob,
                "drop_conn" => plan.drop_conn = prob,
                other => return Err(format!("{FAULT_ENV}: unknown fault {other:?}")),
            }
        }
        Ok(plan)
    }
}

struct FaultState {
    plan: FaultPlan,
    rng: Mutex<StdRng>,
}

static STATE: OnceLock<FaultState> = OnceLock::new();
/// Fast-path flag mirroring `STATE.plan.active()`: injection points check
/// this single load before touching the lock.
static ARMED: AtomicBool = AtomicBool::new(false);

fn seed() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    u64::from(nanos) ^ (u64::from(std::process::id()) << 32)
}

fn state() -> &'static FaultState {
    STATE.get_or_init(|| {
        let plan = std::env::var(FAULT_ENV)
            .ok()
            .map(|text| match FaultPlan::parse(&text) {
                Ok(plan) => plan,
                // Refusing to start beats silently running a chaos gate
                // with no chaos in it.
                Err(e) => panic!("{e}"),
            })
            .unwrap_or_default();
        ARMED.store(plan.active(), Ordering::Release);
        FaultState { plan, rng: Mutex::new(StdRng::seed_from_u64(seed())) }
    })
}

/// Installs a plan programmatically (tests), bypassing the environment.
/// First caller wins against the env parse; a plan installed after faults
/// already fired is ignored (returns `false`).
pub fn install(plan: FaultPlan) -> bool {
    let mut installed = false;
    STATE.get_or_init(|| {
        installed = true;
        ARMED.store(plan.active(), Ordering::Release);
        FaultState { plan, rng: Mutex::new(StdRng::seed_from_u64(seed())) }
    });
    installed
}

/// Whether any fault is armed (one atomic load — safe to call on every
/// connection and checkpoint).
#[must_use]
pub fn armed() -> bool {
    if STATE.get().is_none() {
        // First touch: resolve the environment exactly once.
        state();
    }
    ARMED.load(Ordering::Acquire)
}

fn roll(prob: f64) -> bool {
    if !armed() || prob <= 0.0 {
        return false;
    }
    let s = state();
    let mut rng = s.rng.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    rng.gen_bool(prob)
}

/// Panics (the `worker_panic` fault) with probability from the plan.
/// Call sites sit under the worker's `catch_unwind`, so an injected panic
/// fails exactly one job.
pub fn worker_panic_point() {
    if roll(state_plan().worker_panic) {
        panic!("injected fault: worker_panic");
    }
}

/// Whether to drop the current connection (the `drop_conn` fault).
#[must_use]
pub fn drop_connection() -> bool {
    roll(state_plan().drop_conn)
}

/// Tears a record (the `torn_write` fault): returns a strict prefix of
/// `record` to write in place of the whole line, or `None` to write it
/// intact.
#[must_use]
pub fn torn_write(record: &str) -> Option<String> {
    if !roll(state_plan().torn_write) || record.len() < 2 {
        return None;
    }
    let s = state();
    let mut rng = s.rng.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    let cut = rng.gen_range(1..record.len());
    let cut = (1..=cut).rev().find(|&i| record.is_char_boundary(i)).unwrap_or(1);
    Some(record[..cut].to_string())
}

fn state_plan() -> FaultPlan {
    if !armed() {
        return FaultPlan::default();
    }
    state().plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_syntax() {
        let plan = FaultPlan::parse("worker_panic:0.2,torn_write,drop_conn:0.1").unwrap();
        assert_eq!(plan, FaultPlan { worker_panic: 0.2, torn_write: 1.0, drop_conn: 0.1 });
        assert!(plan.active());
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        assert!(!FaultPlan::parse("").unwrap().active());
    }

    #[test]
    fn parse_rejects_typos_and_bad_probabilities() {
        assert!(FaultPlan::parse("worker_panics").unwrap_err().contains("unknown fault"));
        assert!(FaultPlan::parse("torn_write:x").unwrap_err().contains("bad probability"));
        assert!(FaultPlan::parse("drop_conn:1.5").unwrap_err().contains("out of [0, 1]"));
    }
}
