//! Regenerates **Figure 4**: the two evaluation floorplans —
//! (a) four ARM7 cores at 100 MHz, (b) four ARM11 cores at 500 MHz.

use temu_power::floorplans::{fig4a_arm7, fig4b_arm11};

fn main() {
    for map in [fig4a_arm7(), fig4b_arm11()] {
        println!("=== {} ===", map.floorplan.name);
        println!("{}", map.floorplan);
        println!("{}", map.floorplan.ascii_map(76));
        println!(
            "core tiles: {}, NoC switches: {}, total components: {}\n",
            map.cores.len(),
            map.switches.len(),
            map.n_components()
        );
    }
    println!("Component areas are implied by Table 1 (max power / power density);");
    println!("NoC switch dimensions come from the documented estimate in temu-power.");
}
