//! Exercises the multi-worker sweep machinery regardless of host core
//! count: forces a 4-worker pool (integration tests get their own process,
//! so the env var is set before the pool's first use) and checks the
//! parallel paths against the reference trajectory.

use temu_thermal::{Floorplan, GridConfig, Integrator, SweepMode, ThermalModel};

fn model(sweep: SweepMode, integrator: Integrator) -> ThermalModel {
    let mut fp = Floorplan::new("fp", 4000.0, 4000.0);
    fp.add_component("hot", 500.0, 500.0, 1500.0, 1500.0, true);
    fp.add_component("cool", 2500.0, 2500.0, 1000.0, 1000.0, false);
    let cfg = GridConfig { sweep, integrator, ..GridConfig::default() };
    let mut m = ThermalModel::new(&fp, &cfg).unwrap();
    m.set_powers(&[3.0, 0.5]);
    m
}

#[test]
fn forced_four_worker_pool_matches_reference() {
    std::env::set_var("TEMU_THERMAL_THREADS", "4");
    for integrator in [Integrator::SemiImplicit { dt: 5e-4 }, Integrator::Explicit] {
        let mut reference = model(SweepMode::Reference, integrator);
        let mut parallel = model(SweepMode::Parallel, integrator);
        assert!(parallel.uses_parallel_sweeps());
        for _ in 0..10 {
            reference.step(0.01);
            parallel.step(0.01);
        }
        let drift = reference
            .temps()
            .iter()
            .zip(parallel.temps())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(drift < 1e-4, "4-worker drift {drift:.2e} K ({integrator:?})");
        // Determinism under forced threading: same inputs, same trajectory.
        let mut again = model(SweepMode::Parallel, integrator);
        for _ in 0..10 {
            again.step(0.01);
        }
        assert_eq!(again.temps(), parallel.temps());
    }
}
