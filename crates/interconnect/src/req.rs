//! Transaction requests, grants and interconnect statistics.

use temu_state::{StateError, StateReader, StateWriter};

/// One memory transaction as seen by the interconnect.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Request {
    /// Index of the issuing core (initiator port).
    pub initiator: usize,
    /// Index of the target memory port (0 = shared main memory).
    pub target: usize,
    /// Whether this is a write (data travels with the request).
    pub is_write: bool,
    /// Number of 32-bit words transferred (1 for single accesses,
    /// line words for cache fills).
    pub words: u32,
    /// Dirty-victim words carried along a fill as a combined
    /// eviction+fill burst (0 for everything but write-back misses whose
    /// victim lives behind the interconnect). The memory controller issues
    /// the pair as one transaction so that arbitration order stays identical
    /// between the transaction-level and signal-level engines.
    pub wb_words: u32,
    /// Byte address (used for switching-activity accounting and routing).
    pub addr: u32,
    /// Cycle at which the initiator presents the request.
    pub issue_cycle: u64,
}

impl Request {
    /// A single-word read request (convenience constructor).
    pub fn word_read(initiator: usize, addr: u32, issue_cycle: u64) -> Request {
        Request { initiator, target: 0, is_write: false, words: 1, wb_words: 0, addr, issue_cycle }
    }

    /// A single-word write request (convenience constructor).
    pub fn word_write(initiator: usize, addr: u32, issue_cycle: u64) -> Request {
        Request { initiator, target: 0, is_write: true, words: 1, wb_words: 0, addr, issue_cycle }
    }
}

/// Timing outcome of a scheduled transaction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Grant {
    /// Cycle the transaction started occupying the interconnect.
    pub start: u64,
    /// Cycle at which the initiator has its data (read) or acknowledgment
    /// (write) and may resume.
    pub complete: u64,
}

impl Grant {
    /// Cycles the initiator waited beyond the unloaded service time.
    pub fn wait(&self, unloaded: u64) -> u64 {
        (self.complete - self.start).saturating_sub(unloaded)
    }
}

/// Aggregated interconnect statistics (what the paper's count-logging
/// sniffers report for the interconnection level).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct IcStats {
    /// Transactions carried.
    pub transactions: u64,
    /// Words transferred (both directions).
    pub words: u64,
    /// Estimated wire toggles (address + data lines).
    pub transitions: u64,
    /// Cycles initiators spent waiting for arbitration/contention beyond the
    /// unloaded latency of their transaction.
    pub contention_cycles: u64,
    /// Cycles the medium was occupied (bus) or summed link-busy cycles (NoC).
    pub busy_cycles: u64,
}

impl IcStats {
    /// Accumulates another stats block.
    pub fn merge(&mut self, other: &IcStats) {
        self.transactions += other.transactions;
        self.words += other.words;
        self.transitions += other.transitions;
        self.contention_cycles += other.contention_cycles;
        self.busy_cycles += other.busy_cycles;
    }

    /// Serializes the counters into a checkpoint stream.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.u64(self.transactions);
        w.u64(self.words);
        w.u64(self.transitions);
        w.u64(self.contention_cycles);
        w.u64(self.busy_cycles);
    }

    /// Restores the counters from a checkpoint stream.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from a corrupt stream.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.transactions = r.u64()?;
        self.words = r.u64()?;
        self.transitions = r.u64()?;
        self.contention_cycles = r.u64()?;
        self.busy_cycles = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_wait() {
        let g = Grant { start: 10, complete: 25 };
        assert_eq!(g.wait(10), 5);
        assert_eq!(g.wait(20), 0, "saturates at zero");
    }

    #[test]
    fn stats_merge() {
        let mut a = IcStats { transactions: 1, words: 2, transitions: 3, contention_cycles: 4, busy_cycles: 5 };
        a.merge(&a.clone());
        assert_eq!(a.transactions, 2);
        assert_eq!(a.busy_cycles, 10);
    }
}
