//! Ablation for the §3.3 design choice: the custom 32-bit bus's configurable
//! arbitration policies, measured on the shared-memory-heavy Dithering
//! workload.

use temu_bench::Workload;
use temu_interconnect::Arbitration;
use temu_platform::{Machine, PlatformConfig};
use temu_workloads::dithering::DitherConfig;

fn main() {
    let cores = 4;
    let workload = Workload::Dither(DitherConfig { width: 64, height: 64, images: 2, cores }, 99);
    println!("Bus-arbitration ablation: Dithering, {cores} cores, shared-memory images\n");
    println!("{:<28} {:>12} {:>16} {:>18}", "policy", "cycles", "bus contention", "per-core balance");

    for (name, arb) in [
        ("fixed priority", Arbitration::FixedPriority),
        ("round robin", Arbitration::RoundRobin),
        ("TDMA (16-cycle slots)", Arbitration::Tdma { slot_cycles: 16 }),
    ] {
        let platform = PlatformConfig::paper_custom_bus(cores as usize, arb);
        let mut machine = Machine::new(platform).expect("valid platform");
        workload.load_fast(&mut machine);
        let s = machine.run_to_halt(u64::MAX).expect("runs");
        assert!(s.all_halted);
        let times: Vec<u64> = s.stats.cores.iter().map(|c| c.active_cycles + c.stall_cycles).collect();
        let max = *times.iter().max().expect("cores") as f64;
        let min = *times.iter().min().expect("cores") as f64;
        println!(
            "{:<28} {:>12} {:>16} {:>17.3}",
            name,
            s.cycles,
            s.stats.interconnect.contention_cycles,
            min / max,
        );
    }
    println!(
        "\nReading the table: the platform's bus queues requests in arrival order\n\
         (DESIGN.md section 4 — what keeps the two engines cycle-exact), so the\n\
         priority policies differ only when requests collide in the same cycle,\n\
         which is rare for blocking single-outstanding cores. The policy knob that\n\
         reshapes timing is TDMA: its slot discipline bounds any core's worst-case\n\
         wait at the price of idle slots (more total cycles, more contention wait)."
    );
}
