//! Typed errors of the workload generators.

use std::error::Error;
use std::fmt;
use temu_isa::asm::AsmError;

/// Why a workload configuration was rejected or its program failed to
/// generate.
#[derive(Clone, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum WorkloadError {
    /// A workload dimension (image size, matrix order, image count,
    /// iteration count or core count) is zero.
    ZeroDimension,
    /// The image height does not divide evenly across the cores.
    IndivisibleHeight {
        /// Image height in pixels.
        height: u32,
        /// Cores the rows were to be split across.
        cores: u32,
    },
    /// The workload is parameterized for a different number of cores than
    /// the platform has (an SPMD program sized for N cores deadlocks its
    /// barrier on any other count).
    CoreMismatch {
        /// Cores the workload was generated for.
        workload_cores: u32,
        /// Cores the platform has.
        platform_cores: usize,
    },
    /// The generated TE32 source failed to assemble (a generator bug —
    /// every supported configuration is exercised by tests).
    Assembly(AsmError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::ZeroDimension => write!(f, "workload dimensions must be nonzero"),
            WorkloadError::IndivisibleHeight { height, cores } => {
                write!(f, "height {height} does not divide across {cores} cores")
            }
            WorkloadError::CoreMismatch { workload_cores, platform_cores } => {
                write!(f, "workload is sized for {workload_cores} cores but the platform has {platform_cores}")
            }
            WorkloadError::Assembly(e) => write!(f, "generated program does not assemble: {e}"),
        }
    }
}

impl Error for WorkloadError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            WorkloadError::Assembly(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AsmError> for WorkloadError {
    fn from(e: AsmError) -> WorkloadError {
        WorkloadError::Assembly(e)
    }
}
