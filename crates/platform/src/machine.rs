//! The emulated MPSoC machine and its execution engine.

use crate::config::PlatformConfig;
use crate::error::PlatformError;
use crate::stats::WindowStats;
use crate::uncore::Uncore;
use crate::vpcm::Vpcm;
use std::time::{Duration, Instant};
use temu_cpu::{Cpu, CpuError};
use temu_isa::{Program, Reg};
use temu_mem::MemArray;
use temu_state::{StateError, StateReader, StateWriter};

/// Outcome of a [`Machine::run_to_halt`] call.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Virtual cycles elapsed (the slowest core's local time).
    pub cycles: u64,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Whether every core reached `halt` (false: the cycle budget ran out).
    pub all_halted: bool,
    /// Host wall-clock time the emulation took.
    pub wall: Duration,
    /// Modeled FPGA execution time (`(cycles + freezes) / fpga_hz`) — the
    /// quantity Table 3 reports for the HW emulator.
    pub fpga_seconds: f64,
    /// Aggregate sniffer statistics for the whole run.
    pub stats: WindowStats,
}

impl RunSummary {
    /// Effective emulation throughput of the Rust engine in virtual
    /// cycles per host second.
    pub fn emulated_hz(&self) -> f64 {
        self.cycles as f64 / self.wall.as_secs_f64().max(1e-12)
    }
}

/// One emulated MPSoC: cores + memory system + interconnect + VPCM.
#[derive(Clone, Debug)]
pub struct Machine {
    cfg: PlatformConfig,
    cores: Vec<Cpu>,
    uncore: Uncore,
    vpcm: Vpcm,
    window_start: u64,
}

impl Machine {
    /// Builds a machine from a platform configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError`] if the configuration is inconsistent.
    pub fn new(cfg: PlatformConfig) -> Result<Machine, PlatformError> {
        cfg.validate()?;
        let cores = (0..cfg.cores).map(|i| Cpu::new(i, cfg.cpu)).collect();
        let uncore = Uncore::new(&cfg);
        let vpcm = Vpcm::new(cfg.fpga_hz, cfg.virtual_hz);
        Ok(Machine { cfg, cores, uncore, vpcm, window_start: 0 })
    }

    /// The configuration the machine was built from.
    pub fn config(&self) -> &PlatformConfig {
        &self.cfg
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cores.len()
    }

    /// Core `i`.
    pub fn core(&self, i: usize) -> &Cpu {
        &self.cores[i]
    }

    /// The memory system (functional views, MMIO, event buffer).
    pub fn uncore(&self) -> &Uncore {
        &self.uncore
    }

    /// Mutable memory system (shared-data initialization, event draining).
    pub fn uncore_mut(&mut self) -> &mut Uncore {
        &mut self.uncore
    }

    /// The VPCM.
    pub fn vpcm(&self) -> &Vpcm {
        &self.vpcm
    }

    /// Mutable VPCM (the framework records link-congestion freezes here).
    pub fn vpcm_mut(&mut self) -> &mut Vpcm {
        &mut self.vpcm
    }

    /// Retunes the virtual clock (DFS actuator) and publishes the new
    /// frequency in the MMIO window.
    pub fn set_virtual_hz(&mut self, hz: u64) {
        self.vpcm.set_virtual_hz(hz);
        self.uncore.mmio.set_freq_mhz((hz / 1_000_000) as u32);
    }

    /// Writes a temperature sample into sensor register `i`.
    pub fn set_sensor_kelvin(&mut self, i: usize, kelvin: f64) {
        self.uncore.mmio.set_sensor_kelvin(i, kelvin);
    }

    /// Bytes core `i` wrote to its debug console.
    pub fn console(&self, i: usize) -> &[u8] {
        self.uncore.mmio.console(i)
    }

    /// Functional view of the shared memory.
    pub fn shared(&self) -> &MemArray {
        self.uncore.shared()
    }

    /// Mutable functional view of the shared memory.
    pub fn shared_mut(&mut self) -> &mut MemArray {
        self.uncore.shared_mut()
    }

    /// Loads a program image into core `core`'s private memory, resets the
    /// core to the program entry and points its stack pointer at the top of
    /// private memory.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::ProgramLoad`] if the image does not fit in
    /// private memory.
    pub fn load_program(&mut self, core: usize, program: &Program) -> Result<(), PlatformError> {
        self.uncore
            .load_private(core, program.base, &program.to_bytes())
            .map_err(|e| PlatformError::ProgramLoad { core, source: e })?;
        self.cores[core].reset(program.entry);
        let sp = self.cfg.private_mem.size - 16;
        self.cores[core].regs_mut().write(Reg::SP, sp);
        Ok(())
    }

    /// Loads the same image on every core (SPMD workloads; cores branch on
    /// the MMIO core-id register).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::ProgramLoad`] if the image does not fit in
    /// private memory.
    pub fn load_program_all(&mut self, program: &Program) -> Result<(), PlatformError> {
        for core in 0..self.cores.len() {
            self.load_program(core, program)?;
        }
        Ok(())
    }

    /// Whether every core has halted.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(Cpu::is_halted)
    }

    /// Platform time: the maximum core local time.
    pub fn time(&self) -> u64 {
        self.cores.iter().map(Cpu::time).max().unwrap_or(0)
    }

    /// Runs the platform until every core is halted or has a local time of
    /// at least `limit`. Cores are interleaved in exact global-time order
    /// (smallest local time first, interconnect tie-break), which is the
    /// invariant that keeps the transaction-level engine cycle-exact against
    /// the signal-level baseline.
    ///
    /// # Errors
    ///
    /// Propagates the first core fault (decode error or unmapped access).
    pub fn run_until(&mut self, limit: u64) -> Result<(), CpuError> {
        if self.cores.len() == 1 {
            // Fast path: no interleaving needed.
            let core = &mut self.cores[0];
            while !core.is_halted() && core.time() < limit {
                core.step(&mut self.uncore)?;
            }
            return Ok(());
        }
        loop {
            let mut best: Option<usize> = None;
            let mut best_key = (u64::MAX, usize::MAX);
            for (i, c) in self.cores.iter().enumerate() {
                if c.is_halted() {
                    continue;
                }
                let t = c.time();
                if t >= limit {
                    continue;
                }
                let key = (t, self.uncore.tie_key(i));
                if key < best_key {
                    best_key = key;
                    best = Some(i);
                }
            }
            let Some(i) = best else { break };
            self.cores[i].step(&mut self.uncore)?;
        }
        Ok(())
    }

    /// Runs for one sampling window of `cycles` virtual cycles and collects
    /// the window's sniffer statistics. Halted cores accumulate idle time up
    /// to the window boundary.
    ///
    /// # Errors
    ///
    /// Propagates the first core fault.
    pub fn run_window(&mut self, cycles: u64) -> Result<WindowStats, CpuError> {
        let end = self.window_start + cycles;
        self.run_until(end)?;
        for c in &mut self.cores {
            if c.is_halted() && c.time() < end {
                let gap = end - c.time();
                c.add_idle(gap);
            }
        }
        let stats = self.collect_stats(self.window_start, end);
        self.window_start = end;
        Ok(stats)
    }

    /// Runs until every core halts (or `max_cycles` elapse), returning the
    /// run summary with aggregate statistics and the modeled FPGA time.
    ///
    /// # Errors
    ///
    /// Propagates the first core fault.
    pub fn run_to_halt(&mut self, max_cycles: u64) -> Result<RunSummary, CpuError> {
        let t0 = Instant::now();
        let chunk = 4_000_000u64;
        loop {
            let limit = self.time().saturating_add(chunk).min(max_cycles);
            self.run_until(limit)?;
            if self.all_halted() || limit >= max_cycles {
                break;
            }
        }
        let wall = t0.elapsed();
        let cycles = self.time();
        let stats = self.collect_stats(self.window_start, cycles);
        self.window_start = cycles;
        Ok(RunSummary {
            cycles,
            instructions: stats.total_instructions(),
            all_halted: self.all_halted(),
            wall,
            fpga_seconds: (cycles + stats.freeze_mem + stats.freeze_link) as f64 / self.cfg.fpga_hz as f64,
            stats,
        })
    }

    /// Serializes the whole machine's mutable state — every core (registers,
    /// pipeline, pending data access), the memory system, the VPCM and the
    /// window cursor. The configuration is *not* recorded: a restore target
    /// is rebuilt from the same [`PlatformConfig`] first.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.cores.len());
        for c in &self.cores {
            c.save_state(w);
        }
        self.uncore.save_state(w);
        self.vpcm.save_state(w);
        w.u64(self.window_start);
    }

    /// Restores state saved by [`Machine::save_state`] into a machine built
    /// from the *same* configuration. After a successful restore the machine
    /// continues bitwise-identically to the one that was saved.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] if the recorded shape disagrees with this
    /// machine's configuration or the stream is corrupt. The machine may be
    /// partially overwritten on error and must not be reused.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let ncores = r.usize()?;
        if ncores != self.cores.len() {
            return Err(StateError::BadLength { found: ncores as u64, max: self.cores.len() as u64 });
        }
        for c in &mut self.cores {
            c.load_state(r)?;
        }
        self.uncore.load_state(r)?;
        self.vpcm.load_state(r)?;
        self.window_start = r.u64()?;
        Ok(())
    }

    fn collect_stats(&mut self, start: u64, end: u64) -> WindowStats {
        let cores = self.cores.iter_mut().map(Cpu::take_stats).collect();
        let (icaches, dcaches) = self.uncore.collect_cache_stats();
        let (private_mems, shared_mem) = self.uncore.collect_mem_stats();
        let interconnect = self.uncore.collect_ic_stats();
        self.vpcm.record_mem_freeze(self.uncore.take_freeze());
        let (freeze_mem, freeze_link) = self.vpcm.take_freezes();
        let (events_pending, events_overflowed) = match self.uncore.events_mut() {
            Some(b) => (b.len(), b.take_overflowed()),
            None => (0, 0),
        };
        WindowStats {
            start_cycle: start,
            end_cycle: end,
            cores,
            icaches,
            dcaches,
            private_mems,
            shared_mem,
            interconnect,
            freeze_mem,
            freeze_link,
            events_pending,
            events_overflowed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temu_isa::asm::assemble;

    fn machine(cores: usize, src: &str) -> Machine {
        let mut m = Machine::new(PlatformConfig::paper_bus(cores)).unwrap();
        let p = assemble(src).unwrap();
        m.load_program_all(&p).unwrap();
        m
    }

    #[test]
    fn single_core_program_runs_to_halt() {
        let mut m = machine(1, "li r1, 21\n add r1, r1, r1\n halt\n");
        let s = m.run_to_halt(1_000_000).unwrap();
        assert!(s.all_halted);
        assert_eq!(m.core(0).regs().read(Reg::new(1)), 42);
        assert!(s.cycles > 0);
        assert!(s.instructions >= 3);
        assert!(s.fpga_seconds > 0.0);
    }

    #[test]
    fn spmd_cores_diverge_on_core_id() {
        // Each core writes (core_id + 1) * 10 into shared memory slot id.
        let src = "
            .equ MMIO, 0xFFFF0000
            .equ SHARED, 0x10000000
            start:  li   r1, MMIO
                    lw   r2, 0(r1)      ; core id
                    addi r3, r2, 1
                    li   r4, 10
                    mul  r5, r3, r4
                    li   r6, SHARED
                    slli r7, r2, 2
                    add  r6, r6, r7
                    sw   r5, 0(r6)
                    halt
        ";
        let mut m = machine(4, src);
        let s = m.run_to_halt(1_000_000).unwrap();
        assert!(s.all_halted);
        for core in 0..4 {
            let v = m.shared().read(core as u32 * 4, temu_isa::Width::Word).unwrap();
            assert_eq!(v, (core as u32 + 1) * 10);
        }
        assert!(s.stats.interconnect.transactions >= 4);
    }

    #[test]
    fn console_output_via_mmio() {
        let src = "
            .equ CONSOLE, 0xFFFF0004
            start: li r1, CONSOLE
                   li r2, 72        ; 'H'
                   sw r2, 0(r1)
                   li r2, 105       ; 'i'
                   sw r2, 0(r1)
                   halt
        ";
        let mut m = machine(1, src);
        m.run_to_halt(100_000).unwrap();
        assert_eq!(m.console(0), b"Hi");
    }

    #[test]
    fn windows_partition_time_exactly() {
        let mut m = machine(2, "li r1, 1000\nloop: addi r1, r1, -1\n bnez r1, loop\n halt\n");
        let w1 = m.run_window(500).unwrap();
        assert_eq!(w1.start_cycle, 0);
        assert_eq!(w1.end_cycle, 500);
        let w2 = m.run_window(500).unwrap();
        assert_eq!(w2.start_cycle, 500);
        assert_eq!(w2.end_cycle, 1000);
        assert!(w1.total_instructions() > 0);
    }

    #[test]
    fn halted_cores_accumulate_idle_in_windows() {
        let mut m = machine(1, "halt\n");
        let w = m.run_window(1000).unwrap();
        assert!(m.all_halted());
        let c = &w.cores[0];
        assert_eq!(c.idle_cycles + c.active_cycles + c.stall_cycles, 1000);
        // Everything after the halt instruction (whose cold fetch misses) is idle.
        assert!(c.idle_cycles >= 990, "idle = {}", c.idle_cycles);
    }

    #[test]
    fn run_budget_stops_runaway_programs() {
        let mut m = machine(1, "loop: j loop\n");
        let s = m.run_to_halt(10_000).unwrap();
        assert!(!s.all_halted);
        assert!(s.cycles >= 10_000);
    }

    #[test]
    fn deterministic_across_runs() {
        let src = "
            .equ SHARED, 0x10000000
            start: li r1, SHARED
                   li r2, 200
            loop:  lw r3, 0(r1)
                   addi r3, r3, 1
                   sw r3, 0(r1)
                   addi r2, r2, -1
                   bnez r2, loop
                   halt
        ";
        let mut a = machine(4, src);
        let mut b = machine(4, src);
        let sa = a.run_to_halt(10_000_000).unwrap();
        let sb = b.run_to_halt(10_000_000).unwrap();
        assert_eq!(sa.cycles, sb.cycles, "the engine is deterministic");
        assert_eq!(sa.instructions, sb.instructions);
        // The increment is a non-atomic read-modify-write, so updates may be
        // lost — but deterministically: both runs end with the same value.
        let va = a.shared().read(0, temu_isa::Width::Word).unwrap();
        let vb = b.shared().read(0, temu_isa::Width::Word).unwrap();
        assert_eq!(va, vb);
        assert!((200..=800).contains(&va), "final counter {va}");
    }

    #[test]
    fn stack_pointer_initialized_at_private_top() {
        let m = machine(1, "halt\n");
        let sp = m.core(0).regs().read(Reg::SP);
        assert_eq!(sp, m.config().private_mem.size - 16);
    }

    #[test]
    fn save_restore_continues_bitwise_identically() {
        let src = "
            .equ SHARED, 0x10000000
            start: li r1, SHARED
                   li r2, 300
            loop:  lw r3, 0(r1)
                   addi r3, r3, 1
                   sw r3, 0(r1)
                   addi r2, r2, -1
                   bnez r2, loop
                   halt
        ";
        let mut a = machine(4, src);
        let mut b = machine(4, src);
        a.run_window(400).unwrap();
        b.run_window(400).unwrap();

        // Snapshot `a` mid-run and restore it into a fresh machine.
        let mut w = temu_state::StateWriter::new(*b"MACH", 1);
        a.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut c = machine(4, src);
        let (mut r, _) = temu_state::StateReader::new(&bytes, *b"MACH", 1).unwrap();
        c.load_state(&mut r).unwrap();
        r.finish().unwrap();

        // The restored machine and the uninterrupted one must stay in
        // lockstep for the rest of the run.
        let wb = b.run_window(400).unwrap();
        let wc = c.run_window(400).unwrap();
        assert_eq!(wb, wc);
        assert_eq!(b.time(), c.time());
        let vb = b.shared().read(0, temu_isa::Width::Word).unwrap();
        let vc = c.shared().read(0, temu_isa::Width::Word).unwrap();
        assert_eq!(vb, vc);
        for i in 0..4 {
            assert_eq!(b.core(i).regs().read(Reg::new(1)), c.core(i).regs().read(Reg::new(1)));
        }
    }

    #[test]
    fn restore_rejects_wrong_shape() {
        let mut a = machine(2, "halt\n");
        let mut w = temu_state::StateWriter::new(*b"MACH", 1);
        a.save_state(&mut w);
        let bytes = w.into_bytes();
        let mut wrong = machine(4, "halt\n");
        let (mut r, _) = temu_state::StateReader::new(&bytes, *b"MACH", 1).unwrap();
        assert!(wrong.load_state(&mut r).is_err());
        let _ = &mut a;
    }

    #[test]
    fn dfs_actuator_updates_mmio() {
        let mut m = machine(1, "halt\n");
        m.set_virtual_hz(500_000_000);
        assert_eq!(m.vpcm().virtual_hz(), 500_000_000);
        assert_eq!(m.uncore().mmio.read(0, crate::mmio::MMIO_FREQ_MHZ, 0), 500);
    }
}
