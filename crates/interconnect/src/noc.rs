//! Packet-switched NoC timing model (§3.3).
//!
//! The paper instantiates Xpipes-generated NoCs ("custom-made NoCs — number
//! of switches and links — can be generated using XpipesCompiler"; the memory
//! controller and main-memory bridges speak OCP transactions to the network
//! interfaces). This model reproduces that class of network at packet
//! granularity:
//!
//! * switches connected by point-to-point 32-bit links (one flit per cycle),
//! * deterministic shortest-path routing (precomputed, lowest-index tie-break),
//! * store-and-forward per hop: a packet leaves a switch `router_latency`
//!   cycles after its tail arrived, subject to the output link being free,
//! * read requests are `header + addr` flits, write requests carry their
//!   payload; responses carry the read data back.
//!
//! Output-buffer depth is carried in the configuration for the FPGA resource
//! and power models; queueing beyond the buffer is modeled by the link
//! busy-until window (the cycle-level baseline implements the identical
//! discipline, keeping the two engines cycle-exact).

use crate::req::{Grant, IcStats, Request};
use crate::{addr_transitions, data_transitions, IcError, Interconnect};
use temu_state::{StateError, StateReader, StateWriter};

/// NoC topology.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Topology {
    /// `cols x rows` mesh; switch `(x, y)` has index `y * cols + x`.
    Mesh {
        /// Number of columns.
        cols: usize,
        /// Number of rows.
        rows: usize,
    },
    /// Ring of `n` switches.
    Ring(usize),
    /// Arbitrary undirected links over `switches` nodes.
    Custom {
        /// Number of switches.
        switches: usize,
        /// Undirected switch-to-switch links.
        links: Vec<(usize, usize)>,
    },
}

impl Topology {
    /// Number of switches in the topology.
    pub fn switches(&self) -> usize {
        match self {
            Topology::Mesh { cols, rows } => cols * rows,
            Topology::Ring(n) => *n,
            Topology::Custom { switches, .. } => *switches,
        }
    }

    /// Undirected link list.
    pub fn links(&self) -> Vec<(usize, usize)> {
        match self {
            Topology::Mesh { cols, rows } => {
                let mut l = Vec::new();
                for y in 0..*rows {
                    for x in 0..*cols {
                        let s = y * cols + x;
                        if x + 1 < *cols {
                            l.push((s, s + 1));
                        }
                        if y + 1 < *rows {
                            l.push((s, s + cols));
                        }
                    }
                }
                l
            }
            Topology::Ring(n) => match n {
                0 | 1 => Vec::new(),
                2 => vec![(0, 1)],
                n => (0..*n).map(|i| (i, (i + 1) % n)).collect(),
            },
            Topology::Custom { links, .. } => links.clone(),
        }
    }
}

/// NoC configuration.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NocConfig {
    /// Switch topology.
    pub topology: Topology,
    /// Cycles a packet spends in each switch (arbitration + crossbar).
    pub router_latency: u32,
    /// Output-buffer depth in flits (resource/power model input).
    pub buffer_flits: u32,
    /// Switch index each core's network interface attaches to.
    pub core_switch: Vec<usize>,
    /// Switch index each memory port's network interface attaches to.
    pub mem_switch: Vec<usize>,
}

impl NocConfig {
    /// The Dithering NoC of §7: 2 switches with 4 in/out ports and 3-flit
    /// output buffers; two cores per switch, shared memory on switch 1.
    pub fn paper_two_switch(cores: usize) -> NocConfig {
        NocConfig {
            topology: Topology::Ring(2),
            router_latency: 2,
            buffer_flits: 3,
            core_switch: (0..cores).map(|c| if c < cores.div_ceil(2) { 0 } else { 1 }).collect(),
            mem_switch: vec![1],
        }
    }

    /// The Matrix-TM NoC of §7: 4 six-by-six switches (2x2 mesh), one core
    /// per switch, shared memory on switch 0.
    pub fn paper_four_switch(cores: usize) -> NocConfig {
        NocConfig {
            topology: Topology::Mesh { cols: 2, rows: 2 },
            router_latency: 2,
            buffer_flits: 3,
            core_switch: (0..cores).map(|c| c % 4).collect(),
            mem_switch: vec![0],
        }
    }

    /// The six-switch NoC whose synthesis the paper reports at 70 % of the
    /// V2VP30 (6 switches, 4 I/O channels, 3 output buffers).
    pub fn paper_six_switch(cores: usize) -> NocConfig {
        NocConfig {
            topology: Topology::Mesh { cols: 3, rows: 2 },
            router_latency: 2,
            buffer_flits: 3,
            core_switch: (0..cores).map(|c| c % 6).collect(),
            mem_switch: vec![5],
        }
    }

    /// Validates connectivity and attachment indices.
    ///
    /// # Errors
    ///
    /// Returns a description if the graph is disconnected, an attachment
    /// names a nonexistent switch, there are no cores or memories, or
    /// `router_latency` is zero.
    pub fn validate(&self) -> Result<(), IcError> {
        let n = self.topology.switches();
        if n == 0 {
            return Err(IcError::NoSwitches);
        }
        if self.router_latency == 0 {
            return Err(IcError::ZeroRouterLatency);
        }
        if self.core_switch.is_empty() {
            return Err(IcError::NoCoresAttached);
        }
        if self.mem_switch.is_empty() {
            return Err(IcError::NoMemoriesAttached);
        }
        for (i, &s) in self.core_switch.iter().chain(self.mem_switch.iter()).enumerate() {
            if s >= n {
                return Err(IcError::AttachmentOutOfRange { index: i, switch: s, switches: n });
            }
        }
        for &(a, b) in &self.topology.links() {
            if a >= n || b >= n {
                return Err(IcError::LinkOutOfRange { a, b, switches: n });
            }
        }
        // Connectivity via BFS from switch 0.
        let adj = adjacency(&self.topology);
        let mut seen = vec![false; n];
        let mut queue = vec![0usize];
        seen[0] = true;
        while let Some(u) = queue.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    queue.push(v);
                }
            }
        }
        if seen.iter().any(|s| !s) {
            return Err(IcError::Disconnected);
        }
        Ok(())
    }
}

fn adjacency(t: &Topology) -> Vec<Vec<usize>> {
    let mut adj = vec![Vec::new(); t.switches()];
    for (a, b) in t.links() {
        adj[a].push(b);
        adj[b].push(a);
    }
    for l in &mut adj {
        l.sort_unstable();
        l.dedup();
    }
    adj
}

/// A NoC instance with precomputed routes and per-link occupancy state.
#[derive(Clone, Debug)]
pub struct Noc {
    cfg: NocConfig,
    /// `next[s][d]`: neighbour to forward to when heading from `s` to `d`.
    next: Vec<Vec<usize>>,
    /// Busy-until per directed link, keyed `(from, to)` densely: `from * n + to`.
    link_busy: Vec<u64>,
    switches: usize,
    last_addr: u32,
    stats: IcStats,
}

impl Noc {
    /// Builds a NoC from a validated configuration, precomputing routes.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.validate()` fails.
    pub fn new(cfg: NocConfig) -> Noc {
        if let Err(e) = cfg.validate() {
            panic!("invalid NoC configuration: {e}");
        }
        let n = cfg.topology.switches();
        let adj = adjacency(&cfg.topology);
        // BFS from every destination; `next[s][d]` = first hop of a shortest
        // path with lowest-index tie-break (deterministic routing tables, as
        // Xpipes uses static routing).
        let mut next = vec![vec![usize::MAX; n]; n];
        for d in 0..n {
            let mut dist = vec![usize::MAX; n];
            dist[d] = 0;
            let mut frontier = std::collections::VecDeque::from([d]);
            while let Some(u) = frontier.pop_front() {
                for &v in &adj[u] {
                    if dist[v] == usize::MAX {
                        dist[v] = dist[u] + 1;
                        frontier.push_back(v);
                    }
                }
            }
            for s in 0..n {
                if s == d {
                    continue;
                }
                next[s][d] = *adj[s]
                    .iter()
                    .filter(|&&v| dist[v] + 1 == dist[s])
                    .min()
                    .expect("graph is connected");
            }
        }
        Noc { cfg, next, link_busy: vec![0; n * n], switches: n, last_addr: 0, stats: IcStats::default() }
    }

    /// The configuration the NoC was built with.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// The switch sequence from `src` to `dst` (inclusive).
    pub fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        let mut path = vec![src];
        let mut cur = src;
        while cur != dst {
            cur = self.next[cur][dst];
            path.push(cur);
        }
        path
    }

    /// Number of hops (links traversed) between two switches.
    pub fn hops(&self, src: usize, dst: usize) -> usize {
        self.route(src, dst).len() - 1
    }

    /// Sends one packet of `flits` flits from switch `src` to `dst`, entering
    /// the first switch at cycle `t`. Returns the arrival cycle of the tail
    /// at the destination's local port.
    fn send_packet(&mut self, src: usize, dst: usize, flits: u32, t: u64) -> u64 {
        let rl = u64::from(self.cfg.router_latency);
        let fl = u64::from(flits);
        let mut t = t;
        let path = self.route(src, dst);
        if path.len() == 1 {
            // Same switch: cross it once.
            return t + rl;
        }
        for w in path.windows(2) {
            let (u, v) = (w[0], w[1]);
            let key = u * self.switches + v;
            let depart = (t + rl).max(self.link_busy[key]);
            self.stats.contention_cycles += depart - (t + rl);
            self.link_busy[key] = depart + fl;
            self.stats.busy_cycles += fl;
            t = depart + fl;
        }
        self.stats.transitions += data_transitions(flits);
        t
    }

    /// Serializes the per-link occupancy state (routes are recomputed from
    /// the configuration on rebuild, so only mutable state is recorded).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.u64_slice(&self.link_busy);
        w.u32(self.last_addr);
        self.stats.save_state(w);
    }

    /// Restores state saved by [`Noc::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`StateError::BadLength`] if the recorded topology size
    /// differs from this NoC's.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let busy = r.u64_vec()?;
        if busy.len() != self.link_busy.len() {
            return Err(StateError::BadLength { found: busy.len() as u64, max: self.link_busy.len() as u64 });
        }
        self.link_busy = busy;
        self.last_addr = r.u32()?;
        self.stats.load_state(r)?;
        Ok(())
    }
}

impl Interconnect for Noc {
    fn transact(&mut self, req: &Request, mem_latency: u32) -> Grant {
        debug_assert!(req.initiator < self.cfg.core_switch.len());
        debug_assert!(req.target < self.cfg.mem_switch.len());
        let src = self.cfg.core_switch[req.initiator];
        let dst = self.cfg.mem_switch[req.target];
        // NI injection takes one cycle after issue.
        let start = req.issue_cycle + 1;
        let req_flits = 1 + 1 + req.wb_words + if req.is_write { req.words } else { 0 };
        let rsp_flits = 1 + if req.is_write { 0 } else { req.words };

        let at_mem = self.send_packet(src, dst, req_flits, start);
        let served = at_mem + u64::from(mem_latency);
        let at_core = self.send_packet(dst, src, rsp_flits, served);
        // NI ejection takes one cycle.
        let complete = at_core + 1;

        self.stats.transactions += 1;
        self.stats.words += u64::from(req.words + req.wb_words);
        self.stats.transitions += addr_transitions(self.last_addr, req.addr);
        self.last_addr = req.addr;

        Grant { start, complete }
    }

    fn stats(&self) -> &IcStats {
        &self.stats
    }

    fn take_stats(&mut self) -> IcStats {
        std::mem::take(&mut self.stats)
    }

    fn initiators(&self) -> usize {
        self.cfg.core_switch.len()
    }

    fn describe(&self) -> String {
        format!(
            "NoC: {} switches, {} links, router latency {}, {}-flit buffers",
            self.switches,
            self.cfg.topology.links().len(),
            self.cfg.router_latency,
            self.cfg.buffer_flits
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_req(initiator: usize, issue: u64) -> Request {
        Request { initiator, target: 0, is_write: false, words: 4, wb_words: 0, addr: 0x1000_0040, issue_cycle: issue }
    }

    #[test]
    fn topology_links() {
        assert_eq!(Topology::Mesh { cols: 2, rows: 2 }.links().len(), 4);
        assert_eq!(Topology::Mesh { cols: 3, rows: 2 }.links().len(), 7);
        assert_eq!(Topology::Ring(2).links(), vec![(0, 1)]);
        assert_eq!(Topology::Ring(4).links().len(), 4);
        assert_eq!(Topology::Ring(1).links().len(), 0);
    }

    #[test]
    fn paper_configs_validate() {
        assert!(NocConfig::paper_two_switch(4).validate().is_ok());
        assert!(NocConfig::paper_four_switch(4).validate().is_ok());
        assert!(NocConfig::paper_six_switch(6).validate().is_ok());
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = NocConfig::paper_two_switch(4);
        c.core_switch[0] = 7;
        assert!(c.validate().is_err());
        let disconnected = NocConfig {
            topology: Topology::Custom { switches: 2, links: vec![] },
            router_latency: 2,
            buffer_flits: 3,
            core_switch: vec![0],
            mem_switch: vec![1],
        };
        assert!(disconnected.validate().is_err());
        let mut c = NocConfig::paper_two_switch(4);
        c.router_latency = 0;
        assert!(c.validate().is_err());
        let mut c = NocConfig::paper_two_switch(4);
        c.mem_switch.clear();
        assert!(c.validate().is_err());
    }

    #[test]
    fn routes_are_shortest_and_deterministic() {
        let noc = Noc::new(NocConfig::paper_four_switch(4));
        // 2x2 mesh: 0-1, 0-2, 1-3, 2-3.
        assert_eq!(noc.route(0, 3).len(), 3, "two hops across the mesh");
        assert_eq!(noc.route(0, 3), vec![0, 1, 3], "lowest-index tie-break");
        assert_eq!(noc.hops(1, 2), 2);
        assert_eq!(noc.hops(0, 0), 0);
    }

    #[test]
    fn single_switch_transaction_timing() {
        // Core and memory on the same switch of the 2-switch NoC? Use custom.
        let cfg = NocConfig {
            topology: Topology::Ring(1),
            router_latency: 2,
            buffer_flits: 3,
            core_switch: vec![0],
            mem_switch: vec![0],
        };
        let mut noc = Noc::new(cfg);
        // start = 1; request crosses switch (2) -> at_mem = 3; +lat 5 -> 8;
        // response crosses switch (2) -> 10; +eject 1 -> 11.
        let g = noc.transact(&read_req(0, 0), 5);
        assert_eq!(g, Grant { start: 1, complete: 11 });
    }

    #[test]
    fn two_switch_read_timing() {
        let mut noc = Noc::new(NocConfig::paper_two_switch(2)); // core 0 on sw0, mem on sw1
        // start=1; depart sw0 at 1+2=3, req flits=2 -> tail at sw1 at 5;
        // mem served at 5+5=10; response flits=5: depart sw1 at 12, tail at sw0 at 17;
        // eject -> 18.
        let g = noc.transact(&read_req(0, 0), 5);
        assert_eq!(g, Grant { start: 1, complete: 18 });
    }

    #[test]
    fn link_contention_delays_second_packet() {
        // paper_two_switch(4) puts cores 0 and 1 on switch 0: they share the
        // sw0 -> sw1 link towards the memory.
        let mut noc = Noc::new(NocConfig::paper_two_switch(4));
        let g0 = noc.transact(&read_req(0, 0), 5);
        let g1 = noc.transact(&read_req(1, 0), 5);
        assert!(g1.complete > g0.complete, "second request is delayed by the shared link");
        assert!(noc.stats().contention_cycles > 0);
    }

    #[test]
    fn writes_carry_payload_in_request() {
        let mut noc = Noc::new(NocConfig::paper_two_switch(1));
        let w = Request { is_write: true, ..read_req(0, 0) };
        // req flits = 2 + 4 = 6: depart 3, tail at sw1 at 9; served 9+5=14;
        // rsp flits = 1: depart 16, tail 17; eject 18.
        let g = noc.transact(&w, 5);
        assert_eq!(g.complete, 18);
    }

    #[test]
    fn stats_accumulate_and_reset() {
        let mut noc = Noc::new(NocConfig::paper_two_switch(2));
        noc.transact(&read_req(0, 0), 5);
        assert_eq!(noc.stats().transactions, 1);
        assert!(noc.stats().transitions > 0);
        let s = noc.take_stats();
        assert_eq!(s.transactions, 1);
        assert_eq!(noc.stats().transactions, 0);
    }

    #[test]
    fn describe_mentions_switches() {
        let noc = Noc::new(NocConfig::paper_four_switch(4));
        assert!(noc.describe().contains("4 switches"));
    }

    #[test]
    #[should_panic(expected = "invalid NoC configuration")]
    fn new_panics_on_invalid() {
        let cfg = NocConfig {
            topology: Topology::Custom { switches: 0, links: vec![] },
            router_latency: 1,
            buffer_flits: 1,
            core_switch: vec![0],
            mem_switch: vec![0],
        };
        let _ = Noc::new(cfg);
    }
}
