//! temu-obs: a std-only, allocation-light metrics registry.
//!
//! The workspace's observability spine: atomic [`Counter`]s, [`Gauge`]s,
//! and fixed-bucket log2 [`Histogram`]s (p50/p90/p99 + max recovered by
//! linear interpolation inside the matching bucket), grouped in a
//! [`Registry`] that renders versioned JSON snapshots. A process-wide
//! [`global()`] registry plus the [`time!`] span-timer macro let deep
//! layers (the thermal solver, the sweep runner) record latencies without
//! threading a handle through every constructor; servers that need
//! isolation (several instances in one test process) hold their own
//! `Registry` and merge the global one into their snapshot.
//!
//! Recording is lock-free — one `fetch_add` per counter hit, three relaxed
//! atomics per histogram sample — and hot paths are expected to gate on
//! [`enabled()`] (one relaxed load) so the whole layer costs nothing when
//! nobody is looking. Set `TEMU_OBS=0` to start disabled.
//!
//! Like the `crates/compat/` shims, this crate exists because the build
//! environment has no crates.io access; it is a minimal stand-in for a
//! metrics facade, not a general-purpose library.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Version tag carried by every snapshot (`"temu_metrics"` field).
pub const SNAPSHOT_VERSION: u64 = 1;

/// Bucket count: one bucket per bit length of the recorded `u64`, so the
/// full range is covered with relative error bounded by the bucket width
/// (a factor of two before interpolation).
pub const N_BUCKETS: usize = 64;

/// Environment variable consulted once when [`global()`] initializes:
/// `TEMU_OBS=0` starts the process-wide registry disabled.
pub const OBS_ENV: &str = "TEMU_OBS";

/// Monotone event counter.
#[derive(Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    pub fn inc(&self) {
        self.add(1);
    }

    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value (queue depths, pool sizes).
#[derive(Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raise-only update, for high-watermark gauges.
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket log2 histogram over `u64` samples (typically nanoseconds).
///
/// Bucket `0` holds exactly the value `0`; bucket `i ≥ 1` holds values of
/// bit length `i`, i.e. the range `[2^(i-1), 2^i - 1]`; the top bucket
/// saturates, absorbing everything from `2^62` up. Recording is three
/// relaxed atomic RMWs and never allocates; quantiles are computed on a
/// [`HistogramView`] taken with [`Histogram::view`].
pub struct Histogram {
    buckets: [AtomicU64; N_BUCKETS],
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// The bucket a value lands in: its bit length, capped at the top.
    pub fn bucket_index(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            (64 - v.leading_zeros() as usize).min(N_BUCKETS - 1)
        }
    }

    /// Inclusive `[lo, hi]` range of values bucket `i` covers.
    pub fn bucket_bounds(i: usize) -> (u64, u64) {
        assert!(i < N_BUCKETS, "bucket index out of range");
        if i == 0 {
            (0, 0)
        } else if i == N_BUCKETS - 1 {
            (1 << (i - 1), u64::MAX)
        } else {
            (1 << (i - 1), (1 << i) - 1)
        }
    }

    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration in nanoseconds (saturating past ~584 years).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy for quantile math and serialization. Taken
    /// with relaxed loads: concurrent writers may land between bucket
    /// reads, so the view is a consistent *lower bound* per bucket, never
    /// torn within one (count is derived from the bucket array itself).
    pub fn view(&self) -> HistogramView {
        let counts: [u64; N_BUCKETS] =
            std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed));
        HistogramView {
            counts,
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Immutable snapshot of a [`Histogram`]; all derived statistics
/// (quantiles, mean, merge) live here so they are deterministic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramView {
    pub counts: [u64; N_BUCKETS],
    pub sum: u64,
    pub max: u64,
}

impl Default for HistogramView {
    fn default() -> Self {
        Self { counts: [0; N_BUCKETS], sum: 0, max: 0 }
    }
}

impl HistogramView {
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) by walking the
    /// cumulative bucket counts and interpolating linearly inside the
    /// matching bucket; the top of the highest non-empty bucket is
    /// tightened to the observed max so saturated tails stay honest.
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * total as f64).max(1.0);
        let mut cum = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let c = c as f64;
            if cum + c >= target {
                let (lo, hi) = Histogram::bucket_bounds(i);
                let hi = hi.min(self.max).max(lo);
                let frac = ((target - cum) / c).clamp(0.0, 1.0);
                return lo + (frac * (hi - lo) as f64).round() as u64;
            }
            cum += c;
        }
        self.max
    }

    /// Accumulates another view into this one (sums saturate).
    pub fn merge(&mut self, other: &HistogramView) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a = a.saturating_add(*b);
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Renders the summary object used by snapshots:
    /// `{"count":..,"sum":..,"max":..,"mean":..,"p50":..,"p90":..,"p99":..}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{:.1},\"p50\":{},\"p90\":{},\"p99\":{}}}",
            self.count(),
            self.sum,
            self.max,
            self.mean(),
            self.quantile(0.50),
            self.quantile(0.90),
            self.quantile(0.99),
        )
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A named collection of metrics. Lookup-or-create takes one mutex; hot
/// sites hold the returned `Arc` (or cache it in a `OnceLock`, as the
/// [`time!`] macro does) so steady-state recording never touches the lock.
#[derive(Default)]
pub struct Registry {
    enabled: AtomicBool,
    inner: Mutex<Inner>,
}

impl Registry {
    pub fn new() -> Self {
        Self { enabled: AtomicBool::new(true), inner: Mutex::new(Inner::default()) }
    }

    /// The process-wide registry ([`global()`]).
    pub fn global() -> &'static Registry {
        global()
    }

    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        // Metric registration can't deadlock through this lock (no
        // callbacks run under it), so a poisoned lock just means a writer
        // panicked mid-insert; the map is still structurally sound.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.lock();
        match inner.counters.get(name) {
            Some(c) => c.clone(),
            None => {
                let c = Arc::new(Counter::default());
                inner.counters.insert(name.to_string(), c.clone());
                c
            }
        }
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.lock();
        match inner.gauges.get(name) {
            Some(g) => g.clone(),
            None => {
                let g = Arc::new(Gauge::default());
                inner.gauges.insert(name.to_string(), g.clone());
                g
            }
        }
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.lock();
        match inner.histograms.get(name) {
            Some(h) => h.clone(),
            None => {
                let h = Arc::new(Histogram::default());
                inner.histograms.insert(name.to_string(), h.clone());
                h
            }
        }
    }

    /// A name-prefixing handle for one subsystem: metrics created through
    /// `registry.scope("serve")` are named `serve.<name>`.
    pub fn scope(&self, prefix: &str) -> Scope<'_> {
        Scope { registry: self, prefix: prefix.to_string() }
    }

    /// A point-in-time copy of every metric, with deterministic (sorted)
    /// iteration order.
    pub fn snapshot(&self) -> Snapshot {
        let inner = self.lock();
        Snapshot {
            counters: inner.counters.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (k.clone(), v.get())).collect(),
            histograms: inner.histograms.iter().map(|(k, v)| (k.clone(), v.view())).collect(),
        }
    }
}

/// See [`Registry::scope`].
pub struct Scope<'a> {
    registry: &'a Registry,
    prefix: String,
}

impl Scope<'_> {
    fn name(&self, name: &str) -> String {
        format!("{}.{name}", self.prefix)
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(&self.name(name))
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(&self.name(name))
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(&self.name(name))
    }
}

/// A point-in-time copy of a [`Registry`] (or a merge of several), ready
/// for quantile math and JSON rendering.
#[derive(Clone, Debug, Default)]
pub struct Snapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, u64>,
    pub histograms: BTreeMap<String, HistogramView>,
}

impl Snapshot {
    /// Folds another snapshot in: counters and histogram buckets add,
    /// gauges keep the *other* side on collision (merge the more-specific
    /// registry last if its gauges should win).
    pub fn merge(&mut self, other: &Snapshot) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// The comma-separated body fields of the versioned snapshot object —
    /// `"temu_metrics":1,"counters":{..},"gauges":{..},"histograms":{..}`
    /// — without enclosing braces, so callers can splice in their own
    /// leading fields (`"ok":true`, `"seq":N`, `"unix_ms":T`).
    pub fn to_json_fields(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str(&format!("\"temu_metrics\":{SNAPSHOT_VERSION},\"counters\":{{"));
        let mut first = true;
        for (k, v) in &self.counters {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{}:{v}", json_string(k)));
        }
        out.push_str("},\"gauges\":{");
        first = true;
        for (k, v) in &self.gauges {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{}:{v}", json_string(k)));
        }
        out.push_str("},\"histograms\":{");
        first = true;
        for (k, v) in &self.histograms {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("{}:{}", json_string(k), v.to_json()));
        }
        out.push('}');
        out
    }

    /// The full versioned snapshot object.
    pub fn to_json(&self) -> String {
        format!("{{{}}}", self.to_json_fields())
    }
}

/// Minimal JSON string rendering for metric names (which are plain
/// dotted identifiers in practice, but addresses with `:` and arbitrary
/// labels pass through correctly too).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry. Initialized on first use; starts disabled
/// when `TEMU_OBS=0` is set in the environment.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(|| {
        let registry = Registry::new();
        if std::env::var(OBS_ENV).as_deref() == Ok("0") {
            registry.set_enabled(false);
        }
        registry
    })
}

/// Whether the process-wide registry is recording. Hot paths check this
/// (one relaxed load after initialization) before touching any metric.
pub fn enabled() -> bool {
    global().enabled()
}

/// Times an expression into a named histogram on the [`global()`]
/// registry, in nanoseconds:
///
/// ```
/// let sum = temu_obs::time!("example.sum", (0..100u64).sum::<u64>());
/// ```
///
/// The histogram handle is resolved once per call site (cached in a
/// `OnceLock`), and when the registry is disabled the expression runs
/// with zero instrumentation cost beyond one relaxed load.
#[macro_export]
macro_rules! time {
    ($name:expr, $e:expr) => {{
        if $crate::enabled() {
            static __TEMU_OBS_HIST: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
                ::std::sync::OnceLock::new();
            let __h = __TEMU_OBS_HIST.get_or_init(|| $crate::global().histogram($name));
            let __t = ::std::time::Instant::now();
            let __r = $e;
            __h.record_duration(__t.elapsed());
            __r
        } else {
            $e
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_partition_the_u64_range() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), N_BUCKETS - 1);
        // Every bucket's bounds round-trip through bucket_index, and
        // adjacent buckets tile the range with no gap or overlap.
        for i in 0..N_BUCKETS {
            let (lo, hi) = Histogram::bucket_bounds(i);
            assert_eq!(Histogram::bucket_index(lo), i, "lo of bucket {i}");
            assert_eq!(Histogram::bucket_index(hi), i, "hi of bucket {i}");
            if i + 1 < N_BUCKETS {
                let (next_lo, _) = Histogram::bucket_bounds(i + 1);
                assert_eq!(hi + 1, next_lo, "buckets {i} and {} must abut", i + 1);
            }
        }
    }

    #[test]
    fn saturation_at_max_bucket() {
        let h = Histogram::default();
        h.record(u64::MAX);
        h.record(1 << 62);
        h.record(u64::MAX - 1);
        let v = h.view();
        assert_eq!(v.counts[N_BUCKETS - 1], 3);
        assert_eq!(v.count(), 3);
        assert_eq!(v.max, u64::MAX);
        // The saturated bucket's quantiles are clamped by the observed
        // max, not the theoretical bucket top.
        assert!(v.quantile(0.99) <= u64::MAX);
        assert!(v.quantile(0.50) >= 1 << 62);
    }

    #[test]
    fn quantile_interpolation_within_one_bucket() {
        // 100 samples spread across bucket 7 ([64, 127]): interpolation
        // should place p50 near the middle of the bucket, p99 near the
        // top, rather than snapping to a bucket edge.
        let h = Histogram::default();
        for i in 0..100u64 {
            h.record(64 + (i * 63) / 99);
        }
        let v = h.view();
        let p50 = v.quantile(0.50);
        let p99 = v.quantile(0.99);
        assert!((90..=105).contains(&p50), "p50 = {p50}");
        assert!(p99 > p50 && p99 <= 127, "p99 = {p99}");
        assert_eq!(v.quantile(1.0), 127);
    }

    #[test]
    fn quantiles_across_buckets_respect_cumulative_order() {
        let h = Histogram::default();
        for _ in 0..90 {
            h.record(100); // bucket 7
        }
        for _ in 0..10 {
            h.record(10_000); // bucket 14
        }
        let v = h.view();
        assert!(v.quantile(0.50) <= 127, "p50 must sit in the low bucket");
        assert!(v.quantile(0.99) >= 8192, "p99 must reach the tail bucket");
        assert_eq!(v.count(), 100);
        assert_eq!(v.max, 10_000);
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let v = Histogram::default().view();
        assert_eq!(v.count(), 0);
        assert_eq!(v.quantile(0.5), 0);
        assert_eq!(v.mean(), 0.0);
    }

    #[test]
    fn merge_sums_buckets_and_keeps_max() {
        let a = Histogram::default();
        let b = Histogram::default();
        for i in 1..=50u64 {
            a.record(i);
        }
        for i in 51..=100u64 {
            b.record(i);
        }
        let mut m = a.view();
        m.merge(&b.view());
        let all = Histogram::default();
        for i in 1..=100u64 {
            all.record(i);
        }
        assert_eq!(m, all.view());
    }

    #[test]
    fn registry_interns_and_snapshots() {
        let r = Registry::new();
        let c = r.counter("a.hits");
        c.add(3);
        r.counter("a.hits").inc(); // same underlying counter
        r.gauge("a.depth").set(7);
        r.scope("b").histogram("lat").record(1000);
        let snap = r.snapshot();
        assert_eq!(snap.counters.get("a.hits"), Some(&4));
        assert_eq!(snap.gauges.get("a.depth"), Some(&7));
        assert_eq!(snap.histograms.get("b.lat").map(HistogramView::count), Some(1));
        let json = snap.to_json();
        assert!(json.starts_with(&format!("{{\"temu_metrics\":{SNAPSHOT_VERSION},")));
        assert!(json.contains("\"a.hits\":4"));
        assert!(json.contains("\"b.lat\":{\"count\":1"));
    }

    #[test]
    fn snapshot_merge_adds_counters_and_buckets() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("x").add(2);
        b.counter("x").add(3);
        b.counter("y").add(1);
        a.histogram("h").record(10);
        b.histogram("h").record(20);
        let mut snap = a.snapshot();
        snap.merge(&b.snapshot());
        assert_eq!(snap.counters.get("x"), Some(&5));
        assert_eq!(snap.counters.get("y"), Some(&1));
        assert_eq!(snap.histograms.get("h").map(HistogramView::count), Some(2));
    }

    #[test]
    fn snapshots_stay_consistent_and_monotone_under_concurrent_writers() {
        use std::sync::atomic::AtomicBool;
        let r = Arc::new(Registry::new());
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..4)
            .map(|t| {
                let r = r.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let c = r.counter("w.events");
                    let h = r.histogram("w.lat");
                    let mut n = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        c.inc();
                        h.record(t * 1000 + n % 97);
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        let mut last_count = 0u64;
        let mut last_hist = 0u64;
        for _ in 0..200 {
            let snap = r.snapshot();
            let count = snap.counters.get("w.events").copied().unwrap_or(0);
            let view = snap.histograms.get("w.lat").cloned().unwrap_or_default();
            assert!(count >= last_count, "counter went backwards");
            assert!(view.count() >= last_hist, "histogram count went backwards");
            // The view is internally consistent: derived count comes from
            // the bucket array itself, and quantiles never panic.
            let _ = (view.quantile(0.5), view.quantile(0.99), view.mean());
            last_count = count;
            last_hist = view.count();
        }
        stop.store(true, Ordering::Relaxed);
        let total: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        let snap = r.snapshot();
        assert_eq!(snap.counters.get("w.events"), Some(&total));
        assert_eq!(snap.histograms.get("w.lat").map(HistogramView::count), Some(total));
    }

    #[test]
    fn time_macro_records_into_global() {
        global().set_enabled(true);
        let out = crate::time!("obs.selftest.span", 21 * 2);
        assert_eq!(out, 42);
        let h = global().histogram("obs.selftest.span");
        assert_eq!(h.view().count(), 1);
        // Disabled: the expression still runs, nothing is recorded.
        global().set_enabled(false);
        let out = crate::time!("obs.selftest.span", 21 * 3);
        assert_eq!(out, 63);
        assert_eq!(h.view().count(), 1);
        global().set_enabled(true);
    }

    #[test]
    fn json_escaping_handles_odd_names() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
