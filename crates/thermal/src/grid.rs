//! Meshing: floorplan → multi-resolution RC cell network (Fig. 3).
//!
//! The xy plane is tiled with box cells of several sizes: every floorplan
//! component is subdivided locally (`hot` components finer), and the
//! remaining die area is covered by a coarser filler grid — "this way we can
//! place the smallest cells in the crucial points of the studied MPSoC to
//! obtain high resolution and insert larger ones where the conditions are
//! not critical" (§5.2). The same tiling is stacked into silicon layers and
//! copper-spreader layers; every cell couples to its lateral neighbours, the
//! cells above/below, and (top layer) to ambient through the area-weighted
//! package resistance.

use crate::csr::CellCsr;
use crate::error::ThermalError;
use crate::floorplan::Floorplan;
use crate::props::ThermalProps;

/// Time-integration scheme of the RC network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Integrator {
    /// Forward Euler with an automatically chosen stability-bounded substep.
    /// Exact energy bookkeeping; cost grows as the smallest cell shrinks.
    Explicit,
    /// Backward Euler with Gauss–Seidel relaxation and lagged non-linear
    /// conductivities, taking fixed substeps of `dt` seconds.
    /// Unconditionally stable — the fast path for real-time co-emulation
    /// (the §5.2 "660 cells in real time" operating point).
    SemiImplicit {
        /// Substep length, seconds.
        dt: f64,
    },
}

/// Linear-system strategy of the semi-implicit (backward-Euler) substep.
///
/// Every substep solves `(C/h + G) T' = C/h·T + P + G_conv·T_amb`. The
/// warm-started SOR Gauss–Seidel iteration is unbeatable on paper-scale
/// meshes, but its contraction degrades with refinement — on ~46k-cell
/// meshes it exhausts the sweep budget without converging. The geometric
/// multigrid option wraps the same sweeps as the smoother of a W-cycle over
/// a hierarchy of aggregated coarse RC networks (see [`crate`] docs), which
/// keeps the per-substep cost mesh-size-robust.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ImplicitSolve {
    /// Warm-started SOR Gauss–Seidel sweeps only (the PR 1 solver).
    GaussSeidel,
    /// Geometric multigrid W-cycles with Gauss–Seidel smoothing and a dense
    /// Cholesky solve at the coarsest level.
    Multigrid,
    /// [`ImplicitSolve::GaussSeidel`] below
    /// [`GridConfig::multigrid_threshold`] cells,
    /// [`ImplicitSolve::Multigrid`] at or above it.
    Auto,
}

/// Gauss–Seidel sweep ordering and execution strategy of the solver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SweepMode {
    /// Seed-faithful reference path: natural-order serial sweeps with
    /// conductivities refreshed every substep. Kept as the golden baseline
    /// for equivalence tests and perf comparisons; do not use for
    /// production runs.
    Reference,
    /// Optimized serial path: CSR linear sweeps, lagged coefficient
    /// refresh, single-threaded.
    Serial,
    /// Colored (red-black generalized) sweeps executed on the worker pool
    /// regardless of mesh size.
    Parallel,
    /// [`SweepMode::Serial`] below
    /// [`GridConfig::parallel_threshold`] cells, [`SweepMode::Parallel`] at
    /// or above it — small meshes stay single-threaded to avoid fork-join
    /// overhead.
    Auto,
}

/// Meshing and boundary-condition configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GridConfig {
    /// Ambient temperature, K.
    pub ambient_k: f64,
    /// Number of silicon layers in z.
    pub si_layers: usize,
    /// Number of copper-spreader layers in z.
    pub cu_layers: usize,
    /// Subdivision of a normal component (n×n cells).
    pub default_div: usize,
    /// Subdivision of a `hot` component (n×n cells).
    pub hot_div: usize,
    /// Target pitch of the filler tiling outside components, µm.
    pub filler_pitch_um: f64,
    /// Package-to-air resistance, K/W (`f64::INFINITY` = adiabatic top,
    /// used by conservation tests).
    pub package_to_air: f64,
    /// Force a constant silicon conductivity (W/mK) instead of the
    /// non-linear Table 2 law — used for validation against closed-form
    /// solutions.
    pub silicon_k_override: Option<f64>,
    /// Time-integration scheme.
    pub integrator: Integrator,
    /// Sweep ordering/execution strategy.
    pub sweep: SweepMode,
    /// Cell count at which [`SweepMode::Auto`] switches to parallel
    /// colored sweeps.
    pub parallel_threshold: usize,
    /// Linear-system strategy of the semi-implicit substep (ignored by the
    /// explicit integrator and by [`SweepMode::Reference`], which stays
    /// seed-faithful).
    pub implicit_solve: ImplicitSolve,
    /// Cell count at which [`ImplicitSolve::Auto`] switches from plain
    /// Gauss–Seidel to multigrid cycles.
    pub multigrid_threshold: usize,
    /// When set, an implicit substep that exhausts its iteration budget
    /// without meeting the convergence tolerance aborts
    /// [`crate::ThermalModel::try_step`] with
    /// [`ThermalError::NotConverged`] instead of silently accepting the
    /// unconverged temperature field. Off by default: the non-strict paths
    /// still *record* every such substep in
    /// [`crate::SolverStats`].
    pub strict_convergence: bool,
    /// Material constants (Table 2 by default).
    pub props: ThermalProps,
}

impl Default for GridConfig {
    fn default() -> GridConfig {
        GridConfig {
            ambient_k: 300.0,
            si_layers: 2,
            cu_layers: 2,
            default_div: 2,
            hot_div: 3,
            filler_pitch_um: 1000.0,
            package_to_air: crate::props::PACKAGE_TO_AIR_K_PER_W,
            silicon_k_override: None,
            integrator: Integrator::SemiImplicit { dt: 5e-4 },
            sweep: SweepMode::Auto,
            parallel_threshold: 6144,
            implicit_solve: ImplicitSolve::Auto,
            multigrid_threshold: 12288,
            strict_convergence: false,
            props: ThermalProps::default(),
        }
    }
}

impl GridConfig {
    /// Fingerprint of every field that shapes the meshed [`ThermalGrid`]
    /// geometry (tiling, layers, capacities, edge topology, convection
    /// paths). Two configs with equal mesh fingerprints produce identical
    /// grids for the same floorplan, whatever their solver knobs say — the
    /// mesh layer of the artifact cache keys on this, so a sweep that only
    /// varies integrator/sweep/threshold settings shares one mesh.
    ///
    /// Listed field by field (not `{:?}` of the whole struct) so adding a
    /// solver-only knob to [`GridConfig`] cannot silently fragment the
    /// cache, and adding a geometry knob forces a conscious choice here.
    #[must_use]
    pub fn mesh_fingerprint(&self) -> String {
        format!(
            "si={};cu={};div={}/{};pitch={:?};pkg={:?};props={:?};",
            self.si_layers,
            self.cu_layers,
            self.default_div,
            self.hot_div,
            self.filler_pitch_um,
            self.package_to_air,
            self.props,
        )
    }

    /// Fingerprint of the fields that additionally shape the assembled
    /// thermal *operator* on a given mesh: the conductances (and with them
    /// the multigrid hierarchy, whose aggregation weights are the
    /// ambient-temperature conductances). Per-substep quantities (the
    /// `C/h` diagonal) are per-run state and deliberately excluded.
    #[must_use]
    pub fn operator_fingerprint(&self) -> String {
        format!("amb={:?};k_si={:?};", self.ambient_k, self.silicon_k_override)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), ThermalError> {
        if self.si_layers == 0 {
            return Err(ThermalError::NoSiliconLayers);
        }
        if self.cu_layers == 0 {
            return Err(ThermalError::NoCopperLayers);
        }
        if self.default_div == 0 || self.hot_div == 0 {
            return Err(ThermalError::ZeroSubdivision);
        }
        // NaN must fail these checks too, so compare on the accepting side.
        if self.filler_pitch_um <= 0.0 || self.filler_pitch_um.is_nan() {
            return Err(ThermalError::NonPositiveFillerPitch { pitch_um: self.filler_pitch_um });
        }
        if self.ambient_k <= 0.0 || self.ambient_k.is_nan() {
            return Err(ThermalError::NonPositiveAmbient { ambient_k: self.ambient_k });
        }
        if self.package_to_air <= 0.0 {
            return Err(ThermalError::NonPositivePackageResistance { k_per_w: self.package_to_air });
        }
        if let Integrator::SemiImplicit { dt } = self.integrator {
            if dt <= 0.0 || dt.is_nan() {
                return Err(ThermalError::NonPositiveSubstep { dt_s: dt });
            }
        }
        if self.parallel_threshold == 0 {
            return Err(ThermalError::ZeroParallelThreshold);
        }
        if self.multigrid_threshold == 0 {
            return Err(ThermalError::ZeroMultigridThreshold);
        }
        Ok(())
    }
}

/// One xy tile (shared by all layers). SI units (meters).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Tile {
    pub x: f64,
    pub y: f64,
    pub w: f64,
    pub h: f64,
    /// Component owning the tile (bottom-layer power injection), if any.
    pub component: Option<usize>,
}

impl Tile {
    pub(crate) fn area(&self) -> f64 {
        self.w * self.h
    }
}

/// One resistive edge: `R = g_a / k(a) + g_b / k(b)` with `g` purely
/// geometric (half-length over cross-section).
#[derive(Clone, Copy, Debug)]
pub(crate) struct Edge {
    pub a: usize,
    pub b: usize,
    pub g_a: f64,
    pub g_b: f64,
}

/// The assembled cell network.
#[derive(Clone, Debug)]
pub struct ThermalGrid {
    pub(crate) cfg: GridConfig,
    pub(crate) tiles: Vec<Tile>,
    pub(crate) n_layers: usize,
    /// Layer thicknesses, m (bottom silicon first, top copper last).
    pub(crate) layer_h: Vec<f64>,
    /// Whether each layer is silicon.
    pub(crate) layer_is_si: Vec<bool>,
    /// Heat capacity per cell, J/K.
    pub(crate) capacity: Vec<f64>,
    pub(crate) edges: Vec<Edge>,
    /// Top-layer convection: (cell, package resistance scaled by area,
    /// geometric half-resistance of the cell itself).
    pub(crate) convection: Vec<(usize, f64, f64)>,
    /// Per component: bottom-layer cells and their fraction of the
    /// component's power.
    pub(crate) comp_cells: Vec<Vec<(usize, f64)>>,
    /// Flat CSR adjacency (edges + convection) with sweep coloring.
    pub(crate) csr: CellCsr,
}

const UM: f64 = 1e-6;

impl ThermalGrid {
    /// Meshes a floorplan.
    ///
    /// # Errors
    ///
    /// Returns [`ThermalError`] if the configuration is invalid or the
    /// tiling fails to cover the die (which would indicate an inconsistent
    /// floorplan).
    pub fn build(fp: &Floorplan, cfg: &GridConfig) -> Result<ThermalGrid, ThermalError> {
        cfg.validate()?;
        let mut tiles = Vec::new();

        // 1. Component tiles: local div×div subdivision.
        for (ci, c) in fp.components().iter().enumerate() {
            let div = if c.hot { cfg.hot_div } else { cfg.default_div };
            let (dw, dh) = (c.w_um / div as f64, c.h_um / div as f64);
            for iy in 0..div {
                for ix in 0..div {
                    tiles.push(Tile {
                        x: (c.x_um + ix as f64 * dw) * UM,
                        y: (c.y_um + iy as f64 * dh) * UM,
                        w: dw * UM,
                        h: dh * UM,
                        component: Some(ci),
                    });
                }
            }
        }

        // 2. Filler tiles: rectilinear cuts from component edges plus a
        //    uniform pitch; keep the tiles whose center lies in no component.
        let mut cuts_x = vec![0.0, fp.width_um];
        let mut cuts_y = vec![0.0, fp.height_um];
        for c in fp.components() {
            cuts_x.extend([c.x_um, c.x_um + c.w_um]);
            cuts_y.extend([c.y_um, c.y_um + c.h_um]);
        }
        let mut p = cfg.filler_pitch_um;
        while p < fp.width_um {
            cuts_x.push(p);
            p += cfg.filler_pitch_um;
        }
        p = cfg.filler_pitch_um;
        while p < fp.height_um {
            cuts_y.push(p);
            p += cfg.filler_pitch_um;
        }
        dedup_sorted(&mut cuts_x);
        dedup_sorted(&mut cuts_y);
        let mut filler = Vec::new();
        for wy in cuts_y.windows(2) {
            for wx in cuts_x.windows(2) {
                let (x0, x1, y0, y1) = (wx[0], wx[1], wy[0], wy[1]);
                let (cx, cy) = ((x0 + x1) / 2.0, (y0 + y1) / 2.0);
                let inside = fp
                    .components()
                    .iter()
                    .any(|c| cx >= c.x_um && cx < c.x_um + c.w_um && cy >= c.y_um && cy < c.y_um + c.h_um);
                if !inside {
                    filler.push((x0, x1, y0, y1));
                }
            }
        }
        // Merge filler fragments (larger cells "where the conditions are not
        // critical"): first runs along x with identical y-extent, then runs
        // along y with identical x-extent, capped at the filler pitch.
        merge_runs(&mut filler, cfg.filler_pitch_um * 2.0, true);
        merge_runs(&mut filler, cfg.filler_pitch_um * 2.0, false);
        for (x0, x1, y0, y1) in filler {
            tiles.push(Tile { x: x0 * UM, y: y0 * UM, w: (x1 - x0) * UM, h: (y1 - y0) * UM, component: None });
        }

        // Coverage check: the tiles must partition the die.
        let covered: f64 = tiles.iter().map(Tile::area).sum();
        let die = fp.width_um * fp.height_um * UM * UM;
        if ((covered - die) / die).abs() > 1e-6 {
            return Err(ThermalError::CoverageGap { covered_m2: covered, die_m2: die });
        }

        // 3. Layers.
        let n_layers = cfg.si_layers + cfg.cu_layers;
        let h_si = cfg.props.silicon_thickness_um * UM / cfg.si_layers as f64;
        let h_cu = cfg.props.copper_thickness_um * UM / cfg.cu_layers as f64;
        let mut layer_h = vec![h_si; cfg.si_layers];
        layer_h.extend(vec![h_cu; cfg.cu_layers]);
        let mut layer_is_si = vec![true; cfg.si_layers];
        layer_is_si.extend(vec![false; cfg.cu_layers]);

        // Capacities (specific heats are J/(µm³K) = 1e18 J/(m³K)).
        let n_tiles = tiles.len();
        let mut capacity = Vec::with_capacity(n_tiles * n_layers);
        for l in 0..n_layers {
            let c_vol = if layer_is_si[l] { cfg.props.silicon_c } else { cfg.props.copper_c } * 1e18;
            for t in &tiles {
                capacity.push(c_vol * t.area() * layer_h[l]);
            }
        }

        // 4. Lateral adjacency from shared tile edges, replicated per layer.
        //    Built by a sorted boundary-line sweep — O(n log n + E) instead
        //    of the all-pairs O(n²) scan, which dominated meshing beyond a
        //    few thousand tiles.
        let lateral = lateral_adjacency(&tiles);
        let mut edges = Vec::new();
        for (l, &h_l) in layer_h.iter().enumerate() {
            let base = l * n_tiles;
            for &(i, j, half_i, half_j, overlap) in &lateral {
                let cross = overlap * h_l;
                edges.push(Edge { a: base + i, b: base + j, g_a: half_i / cross, g_b: half_j / cross });
            }
        }

        // 5. Vertical edges between consecutive layers.
        for l in 0..n_layers - 1 {
            for (t, tile) in tiles.iter().enumerate() {
                let area = tile.area();
                edges.push(Edge {
                    a: l * n_tiles + t,
                    b: (l + 1) * n_tiles + t,
                    g_a: layer_h[l] / 2.0 / area,
                    g_b: layer_h[l + 1] / 2.0 / area,
                });
            }
        }

        // 6. Convection from the top layer: package-to-air resistance
        //    weighted by cell area relative to the spreader, in series with
        //    the cell's own half-resistance.
        let top = n_layers - 1;
        let mut convection = Vec::new();
        if cfg.package_to_air.is_finite() {
            for (t, tile) in tiles.iter().enumerate() {
                let r_pkg = cfg.package_to_air * die / tile.area();
                convection.push((top * n_tiles + t, r_pkg, layer_h[top] / 2.0 / tile.area()));
            }
        }

        // 7. Power distribution: each component's bottom cells by area share.
        let mut comp_cells = vec![Vec::new(); fp.components().len()];
        for (t, tile) in tiles.iter().enumerate() {
            if let Some(ci) = tile.component {
                let comp_area = fp.components()[ci].area_mm2() * 1e-6; // mm² → m²
                comp_cells[ci].push((t, tile.area() / comp_area));
            }
        }

        let csr = CellCsr::build(n_tiles * n_layers, &edges, &convection);
        Ok(ThermalGrid { cfg: *cfg, tiles, n_layers, layer_h, layer_is_si, capacity, edges, convection, comp_cells, csr })
    }

    /// Total number of cells (tiles × layers).
    pub fn n_cells(&self) -> usize {
        self.tiles.len() * self.n_layers
    }

    /// Number of xy tiles per layer.
    pub fn n_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Number of z layers (silicon + copper).
    pub fn layers(&self) -> usize {
        self.n_layers
    }

    /// Number of resistive edges (lateral + vertical).
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of resistances attached to a cell (lateral + vertical +
    /// convection) — Fig. 3b's "five thermal resistances" for an interior
    /// bottom cell of a uniform mesh. Served from the precomputed CSR
    /// offsets in O(1) (the seed scanned every edge per query).
    pub fn degree(&self, cell: usize) -> usize {
        self.csr.degree(cell) + usize::from(self.csr.conv[cell] != crate::csr::NO_CONV)
    }

    /// Number of sweep colors of the cell network (2 for bipartite meshes,
    /// a couple more when multi-resolution T-junctions introduce odd
    /// cycles).
    pub fn sweep_colors(&self) -> usize {
        self.csr.n_colors()
    }

    /// Whether the cell sits in a silicon layer.
    pub fn is_silicon(&self, cell: usize) -> bool {
        self.layer_is_si[cell / self.tiles.len()]
    }

    /// Thickness of layer `l` in meters (bottom silicon first).
    pub fn layer_thickness_m(&self, l: usize) -> f64 {
        self.layer_h[l]
    }
}

/// One tile boundary segment on a candidate adjacency line:
/// `(line coordinate, segment start, segment end, tile index)`.
type Boundary = (f64, f64, f64, usize);

/// All lateral couplings `(i, j, half_i, half_j, overlap)` between tiles
/// sharing a boundary segment, via a sorted boundary-line sweep.
///
/// For the x direction every tile contributes its *right* boundary to one
/// list and its *left* boundary to another; both lists are sorted by line
/// coordinate, lines are matched within the same `eps` the all-pairs scan
/// used, and the segments on a matched line are merged by a two-pointer
/// interval join. The y direction is symmetric. Cost is O(n log n) for the
/// sorts plus O(output) for the joins.
fn lateral_adjacency(tiles: &[Tile]) -> Vec<(usize, usize, f64, f64, f64)> {
    let eps = 1e-12;
    let mut out = Vec::with_capacity(tiles.len() * 2);

    // Heat flows in x: right boundary of `i` meets left boundary of `j`.
    let mut rights: Vec<Boundary> =
        tiles.iter().enumerate().map(|(i, t)| (t.x + t.w, t.y, t.y + t.h, i)).collect();
    let mut lefts: Vec<Boundary> = tiles.iter().enumerate().map(|(i, t)| (t.x, t.y, t.y + t.h, i)).collect();
    join_boundaries(&mut rights, &mut lefts, eps, &mut |i, j, overlap| {
        out.push((i, j, tiles[i].w / 2.0, tiles[j].w / 2.0, overlap));
    });

    // Heat flows in y: top boundary of `i` meets bottom boundary of `j`.
    let mut tops: Vec<Boundary> =
        tiles.iter().enumerate().map(|(i, t)| (t.y + t.h, t.x, t.x + t.w, i)).collect();
    let mut bottoms: Vec<Boundary> = tiles.iter().enumerate().map(|(i, t)| (t.y, t.x, t.x + t.w, i)).collect();
    join_boundaries(&mut tops, &mut bottoms, eps, &mut |i, j, overlap| {
        out.push((i, j, tiles[i].h / 2.0, tiles[j].h / 2.0, overlap));
    });

    out
}

/// Matches boundary lines of `a` against `b` within `eps` and emits every
/// pair of segments overlapping by more than `eps`.
fn join_boundaries(a: &mut [Boundary], b: &mut [Boundary], eps: f64, emit: &mut impl FnMut(usize, usize, f64)) {
    let key = |s: &Boundary| (s.0, s.1);
    a.sort_by(|p, q| key(p).partial_cmp(&key(q)).expect("finite coordinates"));
    b.sort_by(|p, q| key(p).partial_cmp(&key(q)).expect("finite coordinates"));
    let (mut ia, mut ib) = (0, 0);
    while ia < a.len() && ib < b.len() {
        let (xa, xb) = (a[ia].0, b[ib].0);
        if xa < xb - eps {
            ia += 1;
            continue;
        }
        if xb < xa - eps {
            ib += 1;
            continue;
        }
        // Same physical line (distinct lines are separated by orders of
        // magnitude more than eps; same lines differ only by rounding).
        let line = xa.min(xb);
        let ea = a[ia..].iter().take_while(|s| s.0 - line < eps).count() + ia;
        let eb = b[ib..].iter().take_while(|s| s.0 - line < eps).count() + ib;
        // The run was sorted by (line, start); when one physical line
        // appears as two rounding-variant floats, that order is not sorted
        // by start — re-sort each run so the interval join below is sound.
        a[ia..ea].sort_by(|p, q| p.1.partial_cmp(&q.1).expect("finite coordinates"));
        b[ib..eb].sort_by(|p, q| p.1.partial_cmp(&q.1).expect("finite coordinates"));
        // Interval join of the two segment runs, both sorted by start.
        let (mut pa, mut pb) = (ia, ib);
        while pa < ea && pb < eb {
            let s = &a[pa];
            let t = &b[pb];
            let overlap = s.2.min(t.2) - s.1.max(t.1);
            if overlap > eps {
                emit(s.3, t.3, overlap);
            }
            // Advance whichever segment ends first.
            if s.2 < t.2 {
                pa += 1;
            } else {
                pb += 1;
            }
        }
        ia = ea;
        ib = eb;
    }
}

/// Merges rectangles `(x0, x1, y0, y1)` that touch along the merge axis and
/// share the perpendicular extent, without exceeding `max_extent` µm.
fn merge_runs(rects: &mut Vec<(f64, f64, f64, f64)>, max_extent: f64, along_x: bool) {
    let eps = 1e-9;
    if along_x {
        rects.sort_by(|a, b| (a.2, a.3, a.0).partial_cmp(&(b.2, b.3, b.0)).expect("finite"));
    } else {
        rects.sort_by(|a, b| (a.0, a.1, a.2).partial_cmp(&(b.0, b.1, b.2)).expect("finite"));
    }
    let mut out: Vec<(f64, f64, f64, f64)> = Vec::with_capacity(rects.len());
    for r in rects.drain(..) {
        if let Some(last) = out.last_mut() {
            let compatible = if along_x {
                (last.2 - r.2).abs() < eps && (last.3 - r.3).abs() < eps && (last.1 - r.0).abs() < eps
            } else {
                (last.0 - r.0).abs() < eps && (last.1 - r.1).abs() < eps && (last.3 - r.2).abs() < eps
            };
            let merged_extent = if along_x { r.1 - last.0 } else { r.3 - last.2 };
            if compatible && merged_extent <= max_extent + eps {
                if along_x {
                    last.1 = r.1;
                } else {
                    last.3 = r.3;
                }
                continue;
            }
        }
        out.push(r);
    }
    *rects = out;
}

fn dedup_sorted(v: &mut Vec<f64>) {
    v.sort_by(|a, b| a.partial_cmp(b).expect("cut coordinates are finite"));
    v.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplan::Floorplan;

    fn uniform_die() -> Floorplan {
        // One component covering the whole 2x2 mm die.
        let mut fp = Floorplan::new("uniform", 2000.0, 2000.0);
        fp.add_component("all", 0.0, 0.0, 2000.0, 2000.0, false);
        fp
    }

    #[test]
    fn uniform_die_cell_counts() {
        let cfg = GridConfig { default_div: 4, ..GridConfig::default() };
        let g = ThermalGrid::build(&uniform_die(), &cfg).unwrap();
        assert_eq!(g.n_tiles(), 16);
        assert_eq!(g.layers(), 4);
        assert_eq!(g.n_cells(), 64);
    }

    #[test]
    fn interior_bottom_cell_has_five_resistances() {
        // Fig. 3b: four lateral + one vertical for an interior bottom cell.
        let cfg = GridConfig { default_div: 4, si_layers: 1, cu_layers: 1, ..GridConfig::default() };
        let g = ThermalGrid::build(&uniform_die(), &cfg).unwrap();
        // Tile (1,1) of a 4x4 grid = index 5 (row-major by construction).
        let interior = 5;
        assert_eq!(g.degree(interior), 5);
        // A corner bottom cell: two lateral + one vertical.
        assert_eq!(g.degree(0), 3);
    }

    #[test]
    fn top_cells_convect() {
        let cfg = GridConfig { default_div: 2, si_layers: 1, cu_layers: 1, ..GridConfig::default() };
        let g = ThermalGrid::build(&uniform_die(), &cfg).unwrap();
        assert_eq!(g.convection.len(), 4, "every top tile has a convection path");
        let adiabatic = GridConfig { package_to_air: f64::INFINITY, ..cfg };
        let g2 = ThermalGrid::build(&uniform_die(), &adiabatic).unwrap();
        assert!(g2.convection.is_empty());
    }

    #[test]
    fn hot_components_get_finer_cells() {
        let mut fp = Floorplan::new("mix", 4000.0, 4000.0);
        fp.add_component("hot", 0.0, 0.0, 1000.0, 1000.0, true);
        fp.add_component("cool", 2000.0, 2000.0, 1000.0, 1000.0, false);
        let cfg = GridConfig { default_div: 1, hot_div: 4, ..GridConfig::default() };
        let g = ThermalGrid::build(&fp, &cfg).unwrap();
        assert_eq!(g.comp_cells[0].len(), 16, "hot: 4x4");
        assert_eq!(g.comp_cells[1].len(), 1, "cool: 1x1");
        // Power fractions sum to one per component.
        for cc in &g.comp_cells {
            let sum: f64 = cc.iter().map(|(_, f)| f).sum();
            assert!((sum - 1.0).abs() < 1e-9, "fractions sum to {sum}");
        }
    }

    #[test]
    fn filler_covers_uncovered_area() {
        let mut fp = Floorplan::new("sparse", 3000.0, 3000.0);
        fp.add_component("c", 1000.0, 1000.0, 1000.0, 1000.0, false);
        let g = ThermalGrid::build(&fp, &GridConfig::default()).unwrap();
        let filler_area: f64 = g.tiles.iter().filter(|t| t.component.is_none()).map(Tile::area).sum();
        assert!((filler_area - 8e-6).abs() < 1e-12, "8 of 9 mm² are filler, got {filler_area:e}");
    }

    #[test]
    fn t_junction_adjacency_exists() {
        // A fine component next to coarse filler: the coarse cell must be
        // coupled to each of the fine cells it touches.
        let mut fp = Floorplan::new("tj", 2000.0, 1000.0);
        fp.add_component("fine", 0.0, 0.0, 1000.0, 1000.0, true); // 3x3
        let cfg = GridConfig { hot_div: 3, si_layers: 1, cu_layers: 1, filler_pitch_um: 2000.0, ..GridConfig::default() };
        let g = ThermalGrid::build(&fp, &cfg).unwrap();
        // Filler tile is the right half; it borders 3 fine cells on its left
        // edge, so it owns >= 3 lateral edges + vertical.
        let filler_cell = g.tiles.iter().position(|t| t.component.is_none()).unwrap();
        assert!(g.degree(filler_cell) >= 4);
    }

    #[test]
    fn edge_count_is_linear_in_cells() {
        let cfg = GridConfig { default_div: 8, ..GridConfig::default() };
        let g = ThermalGrid::build(&uniform_die(), &cfg).unwrap();
        assert!(g.n_edges() <= 4 * g.n_cells(), "{} edges for {} cells", g.n_edges(), g.n_cells());
    }

    #[test]
    fn silicon_and_copper_layers_identified() {
        let cfg = GridConfig { default_div: 1, si_layers: 2, cu_layers: 2, ..GridConfig::default() };
        let g = ThermalGrid::build(&uniform_die(), &cfg).unwrap();
        assert!(g.is_silicon(0));
        assert!(!g.is_silicon(g.n_cells() - 1));
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(GridConfig { si_layers: 0, ..GridConfig::default() }.validate().is_err());
        assert!(GridConfig { cu_layers: 0, ..GridConfig::default() }.validate().is_err());
        assert!(GridConfig { default_div: 0, ..GridConfig::default() }.validate().is_err());
        assert!(GridConfig { filler_pitch_um: 0.0, ..GridConfig::default() }.validate().is_err());
        assert!(GridConfig { package_to_air: -1.0, ..GridConfig::default() }.validate().is_err());
        assert!(GridConfig::default().validate().is_ok());
    }

    #[test]
    fn boundary_join_handles_rounding_variant_lines() {
        // One physical line represented by two floats 1 ulp apart (well
        // inside eps): the join must still find every overlapping pair, in
        // particular across the variant values — the (line, start) pre-sort
        // alone would interleave the runs out of start order.
        let line = 2e-3f64;
        let variant = f64::from_bits(line.to_bits() + 1);
        // Right boundaries: segments [3,5] on `line`, [0,2] on `variant`.
        let mut rights = vec![(line, 3e-3, 5e-3, 0usize), (variant, 0.0, 2e-3, 1usize)];
        // Left boundaries: [0,2] and [3,5] both on `line`.
        let mut lefts = vec![(line, 0.0, 2e-3, 2usize), (line, 3e-3, 5e-3, 3usize)];
        let mut pairs = Vec::new();
        super::join_boundaries(&mut rights, &mut lefts, 1e-12, &mut |i, j, _| pairs.push((i, j)));
        pairs.sort_unstable();
        assert_eq!(pairs, vec![(0, 3), (1, 2)], "both cross-variant overlaps found");
    }

    #[test]
    fn capacity_uses_table2_specific_heats() {
        let cfg = GridConfig { default_div: 1, si_layers: 1, cu_layers: 1, ..GridConfig::default() };
        let g = ThermalGrid::build(&uniform_die(), &cfg).unwrap();
        // Bottom cell: 2mm x 2mm x 350µm silicon.
        let vol_si = 2e-3 * 2e-3 * 350e-6;
        let expect = 1.628e-12 * 1e18 * vol_si;
        assert!((g.capacity[0] - expect).abs() / expect < 1e-12);
    }
}
