//! The emulation job server.
//!
//! ```sh
//! temu-serve [--addr 127.0.0.1:7181] [--store cache.jsonl] \
//!            [--journal jobs.jsonl] [--workers N] [--queue-limit N] \
//!            [--member NAME]
//! ```
//!
//! Binds, prints the resolved address (`--addr 127.0.0.1:0` requests an
//! ephemeral port — scripts parse the printed line), and serves until a
//! client sends `shutdown`. With `--store`, results persist across
//! restarts and resubmitted experiments are answered from the cache
//! without executing a single scenario; a job journal (`jobs.jsonl` next
//! to the store, or `--journal`) additionally re-enqueues jobs that were
//! in flight when a previous server process died. `--member NAME` tags
//! the server's `stats` with a fleet member identity (see the
//! `temu-fleet` crate). The whole CLI lives in
//! [`temu_serve::cli::serve_main`] so the fleet crate can ship an
//! identical `temu-member` binary.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    temu_serve::cli::serve_main(&args);
}
