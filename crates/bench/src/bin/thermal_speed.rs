//! Regenerates the §5.2 performance claim: "Currently, we can analyse 2
//! seconds of simulation (in a 660-cell floorplan), in 1.65 seconds on a
//! Pentium 4 at 3 GHz, which is fast enough to interact in real-time with
//! our FPGA-based MPSoC emulation."

use std::time::Instant;
use temu_power::floorplans::fig4b_arm11;
use temu_thermal::{GridConfig, ThermalModel};

fn main() {
    let map = fig4b_arm11();
    // Mesh near the paper's 660-cell operating point, preferring the
    // coarsest subdivision that gets there (largest cells → largest stable
    // explicit step, as the paper's multi-resolution meshing intends).
    let mut chosen = None;
    'search: for hot in 2..12 {
        for div in 1..6 {
            let cfg = GridConfig { default_div: div, hot_div: hot, filler_pitch_um: 900.0, ..GridConfig::default() };
            if let Ok(m) = ThermalModel::new(&map.floorplan, &cfg) {
                let cells = m.grid().n_cells();
                if (560..=760).contains(&cells) {
                    chosen = Some((cfg, cells));
                    break 'search;
                }
            }
        }
    }
    let (cfg, cells) = chosen.expect("a ~660-cell mesh exists");
    let mut model = ThermalModel::new(&map.floorplan, &cfg).expect("meshes");
    for (i, &(p, _, _, _)) in map.cores.iter().enumerate() {
        model.set_component_power(p, 1.0 + 0.1 * i as f64);
    }

    println!("section 5.2 claim: 2 s simulated on a ~660-cell floorplan in 1.65 s (P4 @ 3 GHz)");
    println!("our mesh: {cells} cells, {} edges\n", model.grid().n_edges());
    let sim_seconds = 2.0;
    let t0 = Instant::now();
    // Step in the 10 ms sampling windows the co-emulation uses.
    let mut t = 0.0;
    while t < sim_seconds {
        model.step(0.010);
        t += 0.010;
    }
    let wall = t0.elapsed().as_secs_f64();
    println!("simulated {sim_seconds} s in {wall:.3} s wall  (paper: 1.65 s)");
    println!("real-time factor: {:.1}x (>1 means fast enough for real-time interaction)", sim_seconds / wall);
    println!("final max temperature: {:.2} K", model.max_temp());
    assert!(sim_seconds / wall > 1.0, "must be real-time capable");
}
