//! Criterion micro-benchmarks of the two execution engines: the Table 3
//! contrast in miniature — transaction-level emulation vs signal-level
//! cycle-driven simulation of the identical platform and workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use temu_des::DesMachine;
use temu_platform::{Machine, PlatformConfig};
use temu_workloads::matrix::{self, MatrixConfig};

fn workload(cores: u32) -> temu_isa::Program {
    matrix::program(&MatrixConfig { n: 8, iters: 1, cores }).expect("assembles")
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("engines");
    group.sample_size(10);
    for &cores in &[1usize, 4] {
        let program = workload(cores as u32);

        // Cycle count of the workload (identical on both engines).
        let mut probe = Machine::new(PlatformConfig::paper_bus(cores)).unwrap();
        probe.load_program_all(&program).unwrap();
        let cycles = probe.run_to_halt(u64::MAX).unwrap().cycles;
        group.throughput(Throughput::Elements(cycles));

        group.bench_with_input(BenchmarkId::new("fast_emulator", cores), &cores, |b, &n| {
            b.iter(|| {
                let mut m = Machine::new(PlatformConfig::paper_bus(n)).unwrap();
                m.load_program_all(&program).unwrap();
                m.run_to_halt(u64::MAX).unwrap().cycles
            })
        });
        group.bench_with_input(BenchmarkId::new("cycle_driven_baseline", cores), &cores, |b, &n| {
            b.iter(|| {
                let mut m = DesMachine::new(PlatformConfig::paper_bus(n)).unwrap();
                m.load_program_all(&program).unwrap();
                m.run_to_halt(u64::MAX).unwrap().cycles
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
