//! Typed validation errors of the interconnect configurations.

use std::error::Error;
use std::fmt;

/// Why a [`BusConfig`](crate::BusConfig) or [`NocConfig`](crate::NocConfig)
/// failed validation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[non_exhaustive]
pub enum IcError {
    /// The bus has no initiator ports.
    NoInitiators,
    /// The bus transfers zero words per cycle.
    ZeroCyclesPerWord,
    /// A TDMA slot shorter than one cycle.
    ZeroTdmaSlot,
    /// The NoC topology has no switches.
    NoSwitches,
    /// The NoC routers forward in zero cycles.
    ZeroRouterLatency,
    /// No cores are attached to the NoC.
    NoCoresAttached,
    /// No memories are attached to the NoC.
    NoMemoriesAttached,
    /// A core/memory attachment names a switch outside the topology.
    AttachmentOutOfRange {
        /// Position in the concatenated core/memory attachment list.
        index: usize,
        /// The nonexistent switch the attachment names.
        switch: usize,
        /// Switches the topology actually has.
        switches: usize,
    },
    /// A topology link names a nonexistent switch.
    LinkOutOfRange {
        /// Link endpoints.
        a: usize,
        /// Link endpoints.
        b: usize,
        /// Switches the topology actually has.
        switches: usize,
    },
    /// The switch graph is not connected.
    Disconnected,
}

impl fmt::Display for IcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IcError::NoInitiators => write!(f, "bus needs at least one initiator"),
            IcError::ZeroCyclesPerWord => write!(f, "cycles_per_word must be >= 1"),
            IcError::ZeroTdmaSlot => write!(f, "TDMA slot must be >= 1 cycle"),
            IcError::NoSwitches => write!(f, "topology has no switches"),
            IcError::ZeroRouterLatency => write!(f, "router latency must be >= 1"),
            IcError::NoCoresAttached => write!(f, "no cores attached"),
            IcError::NoMemoriesAttached => write!(f, "no memories attached"),
            IcError::AttachmentOutOfRange { index, switch, switches } => {
                write!(f, "attachment {index} names switch {switch}, but there are only {switches}")
            }
            IcError::LinkOutOfRange { a, b, switches } => {
                write!(f, "link ({a},{b}) names a nonexistent switch (there are {switches})")
            }
            IcError::Disconnected => write!(f, "topology is not connected"),
        }
    }
}

impl Error for IcError {}
