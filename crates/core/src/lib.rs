//! # temu-framework — the HW/SW thermal co-emulation flow
//!
//! The paper's contribution (§6, Fig. 5): run the emulated MPSoC for one
//! statistics sampling window (10 ms of virtual time by default), convert the
//! extracted sniffer statistics into per-floorplan-component power, ship them
//! over the Ethernet statistics link to the SW thermal model, advance the RC
//! network by the same window, feed the resulting temperatures back into the
//! platform's sensor registers, and let the run-time thermal-management
//! policy (the §7 dual-threshold DFS) retune the virtual clock — then repeat,
//! autonomously, until the workload halts.
//!
//! Two transports are provided:
//!
//! * [`ThermalEmulation`] — in-process sequential loop (deterministic,
//!   benchmark-friendly);
//! * [`threaded::run_threaded`] — the thermal tool runs on its own host
//!   thread connected by channels, mirroring the paper's concurrent
//!   FPGA-plus-host-PC execution. Both produce identical traces (the
//!   feedback is pipelined by one window in either case, exactly like the
//!   physical system).

mod emulation;
pub mod threaded;
mod trace;

pub use emulation::{EmulationConfig, EmulationReport, ThermalEmulation};
pub use trace::{ThermalTrace, TraceSample};
