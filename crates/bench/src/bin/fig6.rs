//! Regenerates **Figure 6**: "Temperature evolution of Matrix-TM at 500 MHz"
//! — the closed-loop thermal emulation, with and without the run-time
//! dual-threshold DFS policy (350 K / 340 K, 500 MHz / 100 MHz).
//!
//! Writes `results/fig6_no_tm.csv` and `results/fig6_dfs.csv` and prints an
//! ASCII rendition of the two curves plus the summary statistics recorded in
//! EXPERIMENTS.md.

use temu_bench::scale;
use temu_framework::{EmulationConfig, ThermalEmulation};
use temu_platform::{DfsPolicy, Machine, PlatformConfig};
use temu_power::floorplans::fig4b_arm11;
use temu_workloads::matrix::{self, MatrixConfig};

fn build(policy: Option<DfsPolicy>, iters: u32) -> ThermalEmulation {
    let mut machine = Machine::new(PlatformConfig::paper_thermal(4)).expect("valid platform");
    let cfg = MatrixConfig { n: 16, iters, cores: 4 };
    machine.load_program_all(&matrix::program(&cfg).expect("assembles")).expect("fits");
    let ecfg = EmulationConfig { policy, ..EmulationConfig::default() };
    ThermalEmulation::new(machine, fig4b_arm11(), ecfg).expect("floorplan matches")
}

fn main() {
    // The paper runs 100 K matrix iterations (~26 virtual seconds at
    // 500 MHz). The package heats with a ~4.6 s time constant, so the run
    // must cover at least ~4 virtual seconds for the 350 K crossing to
    // show; the default scale is raised accordingly (full Fig. 6 at
    // TEMU_SCALE=1.0).
    let iters = ((100_000.0 * scale() * 3.2) as u32).max(200);
    let max_windows = 4000;
    std::fs::create_dir_all("results").expect("results dir");

    println!("Figure 6: Matrix-TM at 500 MHz virtual clock, {iters} iterations/core (TEMU_SCALE={})\n", scale());

    let mut free = build(None, iters);
    let report_free = free.run_to_halt(max_windows).expect("runs");
    std::fs::write("results/fig6_no_tm.csv", free.trace().to_csv()).expect("write csv");

    let mut dfs = build(Some(DfsPolicy::paper()), iters);
    let report_dfs = dfs.run_to_halt(max_windows).expect("runs");
    std::fs::write("results/fig6_dfs.csv", dfs.trace().to_csv()).expect("write csv");

    println!("--- without thermal management ---");
    println!("{}", free.trace().ascii_plot(72, 18, &[350.0, 340.0]));
    println!("--- with DFS thermal management (350 K -> 100 MHz, < 340 K -> 500 MHz) ---");
    println!("{}", dfs.trace().ascii_plot(72, 18, &[350.0, 340.0]));

    let t350 = free.trace().crossing_time(350.0);
    println!("summary                         no-TM          DFS");
    println!(
        "peak temperature            {:>8.2} K   {:>8.2} K",
        free.trace().peak_temp().unwrap_or(f64::NAN),
        dfs.trace().peak_temp().unwrap_or(f64::NAN)
    );
    println!(
        "virtual time above 350 K    {:>8.3} s   {:>8.3} s",
        free.trace().time_above(350.0),
        dfs.trace().time_above(350.0)
    );
    println!(
        "first 350 K crossing        {:>10} {:>12}",
        t350.map(|t| format!("{t:.3} s")).unwrap_or_else(|| "never".into()),
        dfs.trace().crossing_time(350.0).map(|t| format!("{t:.3} s")).unwrap_or_else(|| "never".into()),
    );
    println!(
        "throttled window fraction   {:>8.1} %   {:>8.1} %",
        0.0,
        100.0 * dfs.trace().throttled_fraction()
    );
    println!(
        "virtual seconds emulated    {:>8.3} s   {:>8.3} s",
        report_free.virtual_seconds, report_dfs.virtual_seconds
    );
    println!(
        "modeled FPGA time           {:>8.3} s   {:>8.3} s",
        report_free.fpga_seconds, report_dfs.fpga_seconds
    );
    println!(
        "host wall time              {:>8.3} s   {:>8.3} s",
        report_free.wall.as_secs_f64(),
        report_dfs.wall.as_secs_f64()
    );
    println!("\nCSV traces: results/fig6_no_tm.csv, results/fig6_dfs.csv");
    println!(
        "Expected shape (paper): the unmanaged run rises past 350 K; the DFS run saw-tooths\n\
         inside the 340-350 K hysteresis band at the cost of longer execution."
    );
}
