//! Functional byte-addressable memory image.

use std::error::Error;
use std::fmt;
use temu_isa::Width;
use temu_state::{StateError, StateReader, StateWriter};

/// Error for out-of-range, misaligned or unmapped functional accesses.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemError {
    /// Address (plus access width) falls outside the device.
    OutOfRange { addr: u32, size: u32 },
    /// Address is not aligned to the access width.
    Misaligned { addr: u32, width: Width },
    /// Address falls in no mapped range of the memory controller, or the
    /// access kind is not supported there (e.g. fetch or TAS from MMIO).
    Unmapped { addr: u32 },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::OutOfRange { addr, size } => {
                write!(f, "address {addr:#010x} outside device of {size} bytes")
            }
            MemError::Misaligned { addr, width } => {
                write!(f, "address {addr:#010x} misaligned for {}-byte access", width.bytes())
            }
            MemError::Unmapped { addr } => write!(f, "address {addr:#010x} is not mapped"),
        }
    }
}

impl Error for MemError {}

/// A little-endian byte-addressable memory image with bounds and alignment
/// checking. Purely functional — all timing lives in the cache/interconnect
/// models.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct MemArray {
    data: Vec<u8>,
}

impl MemArray {
    /// Creates a zero-filled image of `size` bytes.
    pub fn new(size: u32) -> MemArray {
        MemArray { data: vec![0; size as usize] }
    }

    /// Device size in bytes.
    pub fn size(&self) -> u32 {
        self.data.len() as u32
    }

    fn check(&self, addr: u32, width: Width) -> Result<usize, MemError> {
        let bytes = width.bytes();
        if !addr.is_multiple_of(bytes) {
            return Err(MemError::Misaligned { addr, width });
        }
        let end = addr.checked_add(bytes).ok_or(MemError::OutOfRange { addr, size: self.size() })?;
        if end > self.size() {
            return Err(MemError::OutOfRange { addr, size: self.size() });
        }
        Ok(addr as usize)
    }

    /// Reads `width` bytes at `addr`, zero-extended into a `u32`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on misaligned or out-of-range access.
    pub fn read(&self, addr: u32, width: Width) -> Result<u32, MemError> {
        let i = self.check(addr, width)?;
        Ok(match width {
            Width::Byte => u32::from(self.data[i]),
            Width::Half => u32::from(u16::from_le_bytes([self.data[i], self.data[i + 1]])),
            Width::Word => u32::from_le_bytes([self.data[i], self.data[i + 1], self.data[i + 2], self.data[i + 3]]),
        })
    }

    /// Writes the low `width` bytes of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] on misaligned or out-of-range access.
    pub fn write(&mut self, addr: u32, width: Width, value: u32) -> Result<(), MemError> {
        let i = self.check(addr, width)?;
        match width {
            Width::Byte => self.data[i] = value as u8,
            Width::Half => self.data[i..i + 2].copy_from_slice(&(value as u16).to_le_bytes()),
            Width::Word => self.data[i..i + 4].copy_from_slice(&value.to_le_bytes()),
        }
        Ok(())
    }

    /// Copies a byte slice into the image starting at `addr` (used by the
    /// program loader).
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfRange`] if the slice does not fit.
    pub fn load(&mut self, addr: u32, bytes: &[u8]) -> Result<(), MemError> {
        let end = addr as usize + bytes.len();
        if end > self.data.len() {
            return Err(MemError::OutOfRange { addr, size: self.size() });
        }
        self.data[addr as usize..end].copy_from_slice(bytes);
        Ok(())
    }

    /// Borrow a region of the image (for result verification in tests).
    ///
    /// # Panics
    ///
    /// Panics if the region is out of range.
    pub fn slice(&self, addr: u32, len: u32) -> &[u8] {
        &self.data[addr as usize..(addr + len) as usize]
    }

    /// Serializes the image into a checkpoint stream (zero-run RLE: an idle
    /// memory costs almost nothing on the wire).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.bytes_rle(&self.data);
    }

    /// Restores the image from a checkpoint stream.
    ///
    /// # Errors
    ///
    /// Returns [`StateError::BadLength`] if the recorded image size differs
    /// from this device's size (the checkpoint belongs to another platform).
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let data = r.bytes_rle()?;
        if data.len() != self.data.len() {
            return Err(StateError::BadLength { found: data.len() as u64, max: self.data.len() as u64 });
        }
        self.data = data;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn read_write_word_round_trip() {
        let mut m = MemArray::new(64);
        m.write(8, Width::Word, 0xDEAD_BEEF).unwrap();
        assert_eq!(m.read(8, Width::Word).unwrap(), 0xDEAD_BEEF);
        assert_eq!(m.read(8, Width::Byte).unwrap(), 0xEF, "little endian");
        assert_eq!(m.read(10, Width::Half).unwrap(), 0xDEAD);
    }

    #[test]
    fn misaligned_rejected() {
        let m = MemArray::new(64);
        assert!(matches!(m.read(2, Width::Word), Err(MemError::Misaligned { .. })));
        assert!(matches!(m.read(1, Width::Half), Err(MemError::Misaligned { .. })));
        assert!(m.read(1, Width::Byte).is_ok());
    }

    #[test]
    fn out_of_range_rejected() {
        let mut m = MemArray::new(8);
        assert!(matches!(m.read(8, Width::Word), Err(MemError::OutOfRange { .. })));
        assert!(matches!(m.write(u32::MAX - 2, Width::Byte, 0), Err(MemError::OutOfRange { .. })));
        assert!(m.read(4, Width::Word).is_ok());
    }

    #[test]
    fn load_places_bytes() {
        let mut m = MemArray::new(16);
        m.load(4, &[1, 2, 3, 4]).unwrap();
        assert_eq!(m.read(4, Width::Word).unwrap(), 0x0403_0201);
        assert!(m.load(14, &[0; 4]).is_err());
    }

    #[test]
    fn error_display() {
        assert!(MemError::OutOfRange { addr: 4, size: 2 }.to_string().contains("outside"));
        assert!(MemError::Misaligned { addr: 1, width: Width::Word }.to_string().contains("misaligned"));
    }

    proptest! {
        #[test]
        fn subword_writes_preserve_neighbours(addr in (0u32..60).prop_map(|a| a & !3), val in any::<u32>(), b in any::<u8>()) {
            let mut m = MemArray::new(64);
            m.write(addr, Width::Word, val).unwrap();
            m.write(addr, Width::Byte, u32::from(b)).unwrap();
            let expect = (val & 0xFFFF_FF00) | u32::from(b);
            prop_assert_eq!(m.read(addr, Width::Word).unwrap(), expect);
        }

        #[test]
        fn reads_never_panic(addr in any::<u32>()) {
            let m = MemArray::new(128);
            let _ = m.read(addr, Width::Word);
            let _ = m.read(addr, Width::Half);
            let _ = m.read(addr, Width::Byte);
        }
    }
}
