//! Regenerates **Figure 3**: the multi-resolution cell decomposition (a) and
//! the per-cell RC structure (b), shown as mesh statistics for the Matrix-TM
//! floorplan.

use temu_power::floorplans::fig4b_arm11;
use temu_thermal::{GridConfig, ThermalGrid};

fn main() {
    let map = fig4b_arm11();
    println!("Figure 3: cell decomposition of the {} floorplan\n", map.floorplan.name);
    for (label, cfg) in [
        ("paper-scale mesh (1 cell/component, 2x2 on cores)", GridConfig { default_div: 1, hot_div: 2, filler_pitch_um: 4000.0, ..GridConfig::default() }),
        ("default mesh", GridConfig::default()),
        ("fine mesh (4x4 on hot components)", GridConfig { default_div: 2, hot_div: 4, filler_pitch_um: 500.0, ..GridConfig::default() }),
    ] {
        let g = ThermalGrid::build(&map.floorplan, &cfg).expect("meshes");
        println!("{label}:");
        println!("  xy tiles / layer : {}", g.n_tiles());
        println!("  z layers         : {} (silicon + copper spreader)", g.layers());
        println!("  total cells      : {}", g.n_cells());
        println!("  resistive edges  : {} ({:.2} per cell — linear complexity)", g.n_edges(), g.n_edges() as f64 / g.n_cells() as f64);
        // Fig. 3b: an interior bottom cell carries 4 lateral + 1 vertical
        // resistances plus its capacitance.
        let interior = (0..g.n_tiles()).map(|c| g.degree(c)).max().unwrap_or(0);
        println!("  max bottom-cell degree: {interior} resistances (Fig. 3b: 5 for a uniform interior cell)\n");
    }
}
