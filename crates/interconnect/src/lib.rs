//! # temu-interconnect — buses and NoCs of the emulated MPSoC
//!
//! Reproduces the paper's §3.3: the interconnect between the per-core memory
//! controllers and the shared main memory is configurable and can be
//!
//! * a shared **bus** — the Xilinx OPB/PLB classes or the paper's own
//!   configurable 32-bit data/address bus with selectable arbitration
//!   (fixed-priority, round-robin or TDMA), or
//! * a packet-switched **NoC** (Xpipes-class: switches with output buffers,
//!   point-to-point links, OCP-style request/response transactions).
//!
//! Both are *transaction-timing* models driven by the emulation engine: a
//! [`Request`] issued at a cycle returns a [`Grant`] with the completion
//! cycle, with contention resolved through per-resource busy-until windows.
//! The signal-level FSM equivalents used by the `temu-des` baseline implement
//! the same semantics cycle by cycle; the two are cross-validated.
//!
//! Switching activity ("the signal transitions in the buses or NoC
//! interconnects", §4.1) is counted deterministically: address-line toggles
//! are Hamming distances between successive addresses, data-line toggles use
//! the half-width average-case estimate per transferred word.

mod bus;
mod error;
mod noc;
mod req;

pub use bus::{Arbitration, Bus, BusConfig, BusKind};
pub use error::IcError;
pub use noc::{Noc, NocConfig, Topology};
pub use req::{Grant, IcStats, Request};

/// Common interface of the transaction-timing interconnect models.
pub trait Interconnect {
    /// Schedules one transaction and returns its timing.
    ///
    /// `mem_latency` is the service latency of the target memory (the paper's
    /// platform has no split transactions: the interconnect is held for the
    /// whole access on a bus, while a NoC only occupies links while packets
    /// are in flight).
    fn transact(&mut self, req: &Request, mem_latency: u32) -> Grant;

    /// Statistics since construction or the last [`Interconnect::take_stats`].
    fn stats(&self) -> &IcStats;

    /// Returns and resets the statistics (sampling-window collection).
    fn take_stats(&mut self) -> IcStats;

    /// Number of initiator ports (cores).
    fn initiators(&self) -> usize;

    /// Short human-readable description (for reports).
    fn describe(&self) -> String;
}

/// Average-case data-line toggle estimate: half the 32 data wires switch per
/// transferred word.
pub(crate) fn data_transitions(words: u32) -> u64 {
    u64::from(words) * 16
}

/// Hamming distance between successive values on a 32-bit line group.
pub(crate) fn addr_transitions(prev: u32, next: u32) -> u64 {
    u64::from((prev ^ next).count_ones())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transition_estimates() {
        assert_eq!(data_transitions(4), 64);
        assert_eq!(addr_transitions(0b1010, 0b0110), 2);
        assert_eq!(addr_transitions(7, 7), 0);
    }
}
