//! Thermal traces: the data behind Fig. 6.

use crate::export::csv_field;

/// One sampling window's record.
#[derive(Clone, PartialEq, Debug)]
pub struct TraceSample {
    /// Virtual time at the end of the window, seconds.
    pub t_virtual_s: f64,
    /// Component temperatures, K (floorplan order).
    pub temps_k: Vec<f64>,
    /// Hottest component temperature, K.
    pub max_temp_k: f64,
    /// Virtual clock the window ran at, Hz.
    pub virtual_hz: u64,
    /// Total injected power during the window, W.
    pub total_power_w: f64,
    /// Cumulative modeled FPGA (physical) time, seconds.
    pub fpga_seconds: f64,
}

/// A full temperature-evolution trace (Fig. 6's curves).
#[derive(Clone, PartialEq, Debug, Default)]
pub struct ThermalTrace {
    /// Component names, floorplan order.
    pub component_names: Vec<String>,
    /// One sample per sampling window.
    pub samples: Vec<TraceSample>,
}

impl ThermalTrace {
    /// Creates an empty trace for the given components.
    pub fn new(component_names: Vec<String>) -> ThermalTrace {
        ThermalTrace { component_names, samples: Vec::new() }
    }

    /// Appends a sample.
    pub fn push(&mut self, sample: TraceSample) {
        self.samples.push(sample);
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The hottest temperature ever reached, K; `None` for an empty trace.
    #[must_use]
    pub fn peak_temp(&self) -> Option<f64> {
        self.samples.iter().map(|s| s.max_temp_k).reduce(f64::max)
    }

    /// Final maximum temperature, K; `None` for an empty trace.
    #[must_use]
    pub fn final_temp(&self) -> Option<f64> {
        self.samples.last().map(|s| s.max_temp_k)
    }

    /// First virtual time at which the hottest component crossed
    /// `threshold_k`, if ever.
    #[must_use]
    pub fn crossing_time(&self, threshold_k: f64) -> Option<f64> {
        self.samples.iter().find(|s| s.max_temp_k > threshold_k).map(|s| s.t_virtual_s)
    }

    /// Virtual seconds spent with the hottest component above `threshold_k`.
    #[must_use]
    pub fn time_above(&self, threshold_k: f64) -> f64 {
        let mut total = 0.0;
        let mut prev_t = 0.0;
        for s in &self.samples {
            if s.max_temp_k > threshold_k {
                total += s.t_virtual_s - prev_t;
            }
            prev_t = s.t_virtual_s;
        }
        total
    }

    /// Fraction of windows run *below* the top observed frequency — i.e.
    /// any window the DFS policy held the clock on a lower ladder rung, not
    /// just the lowest one. (A per-minimum-frequency count would undercount
    /// throttling on a 3+-level ladder, or on a run that only briefly
    /// touched its bottom step.)
    #[must_use]
    pub fn throttled_fraction(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let max_hz = self.samples.iter().map(|s| s.virtual_hz).max().expect("nonempty");
        let n = self.samples.iter().filter(|s| s.virtual_hz < max_hz).count();
        n as f64 / self.samples.len() as f64
    }

    /// Per-frequency residency: virtual seconds spent at each observed
    /// clock frequency, fastest first. Window durations are taken from the
    /// sample timestamps, so DFS-stretched runs weigh correctly even though
    /// every window covers the same virtual span.
    #[must_use]
    pub fn time_at_hz(&self) -> Vec<(u64, f64)> {
        let mut residency: Vec<(u64, f64)> = Vec::new();
        let mut prev_t = 0.0;
        for s in &self.samples {
            let dt = s.t_virtual_s - prev_t;
            prev_t = s.t_virtual_s;
            match residency.iter_mut().find(|(hz, _)| *hz == s.virtual_hz) {
                Some((_, t)) => *t += dt,
                None => residency.push((s.virtual_hz, dt)),
            }
        }
        residency.sort_by_key(|&(hz, _)| std::cmp::Reverse(hz));
        residency
    }

    /// Renders the trace as CSV: time, per-component temperatures, frequency,
    /// power. Component names are quoted like every other exported field, so
    /// a floorplan component named with a comma (or quote, or line break)
    /// cannot corrupt the header row.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("t_virtual_s");
        for n in &self.component_names {
            out.push(',');
            out.push_str(&csv_field(&format!("{n}_K")));
        }
        out.push_str(",max_K,virtual_mhz,power_w,fpga_s\n");
        for s in &self.samples {
            out.push_str(&format!("{:.6}", s.t_virtual_s));
            for t in &s.temps_k {
                out.push_str(&format!(",{t:.3}"));
            }
            out.push_str(&format!(
                ",{:.3},{},{:.4},{:.6}\n",
                s.max_temp_k,
                s.virtual_hz / 1_000_000,
                s.total_power_w,
                s.fpga_seconds
            ));
        }
        out
    }

    /// Renders an ASCII plot of the hottest-component curve (Fig. 6 style),
    /// `width`×`height` characters, with threshold guide lines.
    #[must_use]
    pub fn ascii_plot(&self, width: usize, height: usize, thresholds: &[f64]) -> String {
        if self.samples.is_empty() || width < 8 || height < 3 {
            return String::from("(empty trace)\n");
        }
        // A single-sample (or zero-span) trace has no time axis to scale
        // against; plot it against a nominal 1 s span instead of dividing
        // by zero.
        let t_end = match self.samples.last().expect("nonempty").t_virtual_s {
            t if t > 0.0 => t,
            _ => 1.0,
        };
        let mut lo = self.samples.iter().map(|s| s.max_temp_k).fold(f64::INFINITY, f64::min);
        let mut hi = self.peak_temp().expect("nonempty");
        for &th in thresholds {
            lo = lo.min(th);
            hi = hi.max(th);
        }
        let pad = ((hi - lo) * 0.05).max(0.5);
        lo -= pad;
        hi += pad;
        let mut rows = vec![vec![b' '; width]; height];
        for &th in thresholds {
            let r = ((hi - th) / (hi - lo) * (height - 1) as f64).round() as usize;
            if r < height {
                rows[r].fill(b'-');
            }
        }
        for s in &self.samples {
            let c = ((s.t_virtual_s / t_end) * (width - 1) as f64).round() as usize;
            let r = ((hi - s.max_temp_k) / (hi - lo) * (height - 1) as f64).round() as usize;
            if r < height && c < width {
                rows[r][c] = b'*';
            }
        }
        let mut out = String::new();
        for (i, row) in rows.iter().enumerate() {
            let label = hi - (hi - lo) * i as f64 / (height - 1) as f64;
            out.push_str(&format!("{label:7.1}K |"));
            out.push_str(std::str::from_utf8(row).expect("ascii"));
            out.push('\n');
        }
        out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(width)));
        out.push_str(&format!("{:>10}0 s{:>width$.3} s\n", "", t_end, width = width - 6));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64, temp: f64, hz: u64) -> TraceSample {
        TraceSample {
            t_virtual_s: t,
            temps_k: vec![temp],
            max_temp_k: temp,
            virtual_hz: hz,
            total_power_w: 1.0,
            fpga_seconds: t * 5.0,
        }
    }

    fn trace() -> ThermalTrace {
        let mut tr = ThermalTrace::new(vec!["cpu".into()]);
        tr.push(sample(0.01, 310.0, 500_000_000));
        tr.push(sample(0.02, 345.0, 500_000_000));
        tr.push(sample(0.03, 352.0, 100_000_000));
        tr.push(sample(0.04, 341.0, 100_000_000));
        tr
    }

    #[test]
    fn metrics() {
        let tr = trace();
        assert_eq!(tr.len(), 4);
        assert_eq!(tr.peak_temp(), Some(352.0));
        assert_eq!(tr.final_temp(), Some(341.0));
        assert_eq!(tr.crossing_time(350.0), Some(0.03));
        assert_eq!(tr.crossing_time(400.0), None);
        assert!((tr.time_above(350.0) - 0.01).abs() < 1e-12);
        assert!((tr.throttled_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_trace_has_no_temperatures() {
        let tr = ThermalTrace::default();
        assert_eq!(tr.peak_temp(), None);
        assert_eq!(tr.final_temp(), None);
        assert_eq!(tr.crossing_time(0.0), None);
    }

    #[test]
    fn throttled_fraction_zero_without_dfs() {
        let mut tr = ThermalTrace::new(vec!["cpu".into()]);
        tr.push(sample(0.01, 300.0, 500_000_000));
        tr.push(sample(0.02, 301.0, 500_000_000));
        assert_eq!(tr.throttled_fraction(), 0.0);
        assert_eq!(ThermalTrace::default().throttled_fraction(), 0.0);
    }

    #[test]
    fn throttled_fraction_counts_every_rung_below_the_top() {
        // A 3-level ladder trace: one window at 500 MHz, one at the middle
        // 250 MHz rung, one at the bottom. A minimum-frequency count would
        // report 1/3; every window below the top frequency is throttled.
        let mut tr = ThermalTrace::new(vec!["cpu".into()]);
        tr.push(sample(0.01, 310.0, 500_000_000));
        tr.push(sample(0.02, 348.0, 250_000_000));
        tr.push(sample(0.03, 352.0, 100_000_000));
        assert!((tr.throttled_fraction() - 2.0 / 3.0).abs() < 1e-12);
        // A run that never revisits its lowest step still counts the
        // partial throttle.
        let mut tr = ThermalTrace::new(vec!["cpu".into()]);
        tr.push(sample(0.01, 310.0, 500_000_000));
        tr.push(sample(0.02, 348.0, 250_000_000));
        tr.push(sample(0.03, 340.0, 250_000_000));
        tr.push(sample(0.04, 335.0, 500_000_000));
        assert!((tr.throttled_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn time_at_hz_reports_per_frequency_residency() {
        let tr = trace(); // 2 windows at 500 MHz, 2 at 100 MHz, 10 ms each
        let residency = tr.time_at_hz();
        assert_eq!(residency.len(), 2);
        assert_eq!(residency[0].0, 500_000_000, "fastest first");
        assert!((residency[0].1 - 0.02).abs() < 1e-12);
        assert_eq!(residency[1].0, 100_000_000);
        assert!((residency[1].1 - 0.02).abs() < 1e-12);
        assert!(ThermalTrace::default().time_at_hz().is_empty());
    }

    #[test]
    fn csv_quotes_component_names() {
        let mut tr = ThermalTrace::new(vec!["cpu0, shader".into(), "plain".into()]);
        tr.push(TraceSample {
            t_virtual_s: 0.01,
            temps_k: vec![310.0, 305.0],
            max_temp_k: 310.0,
            virtual_hz: 500_000_000,
            total_power_w: 1.0,
            fpga_seconds: 0.05,
        });
        let csv = tr.to_csv();
        let header = csv.lines().next().unwrap();
        assert!(header.contains("\"cpu0, shader_K\""), "comma-bearing name is quoted: {header}");
        assert!(header.contains(",plain_K,"), "plain names stay bare");
        // Header and data rows agree on the field count when parsed with
        // quote-aware splitting; the unquoted header used to gain a column.
        assert_eq!(header.matches("\",\"").count(), 0);
    }

    #[test]
    fn ascii_plot_survives_a_single_sample_at_t_zero() {
        let mut tr = ThermalTrace::new(vec!["cpu".into()]);
        tr.push(sample(0.0, 320.0, 500_000_000));
        let plot = tr.ascii_plot(40, 12, &[350.0]);
        assert!(plot.contains('*'), "the lone sample is plotted: {plot}");
        assert!(!plot.contains("NaN"));
    }

    #[test]
    fn csv_shape() {
        let csv = trace().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 5, "header + 4 samples");
        assert!(lines[0].starts_with("t_virtual_s,cpu_K,max_K"));
        assert!(lines[3].contains(",100,"), "throttled window shows 100 MHz");
    }

    #[test]
    fn ascii_plot_contains_curve_and_thresholds() {
        let plot = trace().ascii_plot(40, 12, &[350.0, 340.0]);
        assert!(plot.contains('*'));
        assert!(plot.contains('-'));
        assert!(plot.lines().count() >= 12);
        assert_eq!(ThermalTrace::default().ascii_plot(40, 12, &[]), "(empty trace)\n");
    }
}
