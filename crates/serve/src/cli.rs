//! The `temu-serve` command-line entry point, as a library function.
//!
//! Living in the library (rather than only in `src/bin/temu-serve.rs`)
//! lets other crates ship an identically-behaved binary under their own
//! name — the fleet crate's `temu-member` bin is exactly this, so the
//! fleet's integration tests always have a member binary via
//! `CARGO_BIN_EXE_temu-member` (cargo only exposes that env var for bins
//! of the crate under test).

use crate::{ServeConfig, Server, ADDR_ENV};
use std::path::PathBuf;
use std::process::exit;

const USAGE: &str = "usage: temu-serve [--addr HOST:PORT] [--store CACHE.jsonl] [--journal JOBS.jsonl] [--workers N] [--queue-limit N] [--member NAME] [--window-checkpoint N] [--metrics-log FILE.ndjson] [--metrics-interval MS]";

/// Parses `args` (without the program name), binds, prints the banner
/// lines scripts grep for (`temu-serve listening on ...`), and serves
/// until a client sends `shutdown`.
///
/// Exits the process with status 2 on a usage error and 1 on a bind
/// failure — this *is* the `main` of `temu-serve` and `temu-member`.
pub fn serve_main(args: &[String]) {
    let mut config = ServeConfig::default();
    if let Ok(addr) = std::env::var(ADDR_ENV) {
        config.addr = addr;
    }
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{arg} takes {what}\n{USAGE}");
                exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("an address"),
            "--store" => config.store = Some(PathBuf::from(value("a path"))),
            "--journal" => config.journal = Some(PathBuf::from(value("a path"))),
            "--member" => config.member = Some(value("a name")),
            "--workers" => {
                config.workers = value("a count").parse().unwrap_or_else(|_| {
                    eprintln!("--workers takes a positive integer\n{USAGE}");
                    exit(2);
                });
            }
            "--queue-limit" => {
                config.queue_limit = value("a count").parse().unwrap_or_else(|_| {
                    eprintln!("--queue-limit takes a positive integer\n{USAGE}");
                    exit(2);
                });
            }
            "--window-checkpoint" => {
                config.window_checkpoint = value("a window count").parse().unwrap_or_else(|_| {
                    eprintln!("--window-checkpoint takes a window count (0 disables)\n{USAGE}");
                    exit(2);
                });
            }
            "--metrics-log" => config.metrics_log = Some(PathBuf::from(value("a path"))),
            "--metrics-interval" => {
                let ms: u64 = value("milliseconds").parse().unwrap_or_else(|_| {
                    eprintln!("--metrics-interval takes milliseconds\n{USAGE}");
                    exit(2);
                });
                config.metrics_interval = std::time::Duration::from_millis(ms.max(1));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                exit(2);
            }
        }
    }

    let server = match Server::bind(config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("temu-serve: cannot bind {}: {e}", config.addr);
            exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("temu-serve listening on {addr}"),
        Err(e) => {
            eprintln!("temu-serve: no local address: {e}");
            exit(1);
        }
    }
    if let Some(name) = &config.member {
        println!("fleet member name: {name}");
    }
    match &config.store {
        Some(path) => {
            println!("cache store {}: {} entr(ies) preloaded", path.display(), server.cache_len());
        }
        None => println!("cache: in-memory only (pass --store to persist results)"),
    }
    match server.journal_path() {
        Some(path) => println!(
            "job journal {}: {} job(s) recovered and re-enqueued",
            path.display(),
            server.recovered_jobs()
        ),
        None => println!("job journal: off (in-memory server; pass --store or --journal)"),
    }
    if let Some(path) = server.checkpoints_path() {
        let cadence = match config.window_checkpoint {
            0 => String::from("capture off"),
            n => format!("every {n} window(s)"),
        };
        println!(
            "window checkpoints {}: {cadence}, {} mid-point state(s) recovered",
            path.display(),
            server.recovered_checkpoints()
        );
    }
    if let Some(path) = &config.metrics_log {
        println!(
            "metrics log {}: one snapshot every {} ms",
            path.display(),
            config.metrics_interval.as_millis().max(1)
        );
    }
    println!("{} worker(s), queue limit {}", config.workers.max(1), config.queue_limit.max(1));
    server.run();
    checkpoint_overhead_summary();
    println!("temu-serve: shut down");
}

/// Prints a one-line window-checkpoint cost summary at shutdown, read
/// from the process-wide metrics registry: capture (state serialization
/// in the emulator) plus the store's hex/write/fsync phases. PR 9
/// measured checkpoints at ~20 ms each; this makes that number visible
/// in every server run instead of requiring a profiler.
fn checkpoint_overhead_summary() {
    let snapshot = temu_obs::global().snapshot();
    let recorded = snapshot.counters.get("serve.checkpoints_recorded").copied().unwrap_or(0);
    if recorded == 0 {
        return;
    }
    let mean_ms = |name: &str| {
        snapshot.histograms.get(name).map_or(0.0, |h| h.mean() / 1e6)
    };
    let capture = mean_ms("core.checkpoint_capture_ns");
    let hex = mean_ms("serve.checkpoint_hex_ns");
    let write = mean_ms("serve.checkpoint_write_ns");
    let fsync = mean_ms("serve.checkpoint_fsync_ns");
    println!(
        "window checkpoints: {recorded} recorded, mean {:.2} ms each (capture {capture:.2} + hex {hex:.2} + write {write:.2} + fsync {fsync:.2})",
        capture + hex + write + fsync
    );
}
