//! The memory port a core issues its accesses through.

use temu_isa::Width;
use temu_mem::MemError;

/// Reply to one memory access.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MemReply {
    /// Value read (zero for writes).
    pub value: u32,
    /// Absolute cycle at which the core may continue (`>= now + 1`).
    pub done_at: u64,
    /// Cycles of the access that count as *stall* for the sniffer's
    /// active/stalled breakdown (time beyond the cache hit latency:
    /// miss service, arbitration, memory waits).
    pub stall: u64,
}

/// Interface between a core and its memory controller.
///
/// `now` is the absolute core cycle at which the access starts; `core` is the
/// issuing core's index (the controller routes private memory per core and
/// attributes statistics). Implementations perform the *functional* access
/// immediately and model all timing in the returned [`MemReply`].
pub trait MemoryPort {
    /// Instruction fetch of the word at `pc`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for unmapped, misaligned or out-of-range fetches.
    fn fetch(&mut self, core: usize, pc: u32, now: u64) -> Result<MemReply, MemError>;

    /// Data read of `width` bytes at `addr` (zero-extended value).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for unmapped, misaligned or out-of-range reads.
    fn read(&mut self, core: usize, addr: u32, width: Width, now: u64) -> Result<MemReply, MemError>;

    /// Data write of the low `width` bytes of `value` at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for unmapped, misaligned or out-of-range writes.
    fn write(&mut self, core: usize, addr: u32, width: Width, value: u32, now: u64) -> Result<MemReply, MemError>;

    /// Atomic test-and-set: reads the word at `addr` and writes 1 to it as a
    /// single indivisible transaction (the platform's spinlock primitive).
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] for unmapped, misaligned or out-of-range access.
    fn tas(&mut self, core: usize, addr: u32, now: u64) -> Result<MemReply, MemError>;
}
