//! Cartesian design-space sweeps over [`Scenario`] axes, with content-keyed
//! result caching — the batching layer the paper's "fast design-space
//! exploration" claim turns into an API.
//!
//! A [`Sweep`] starts from one base scenario and takes any number of
//! **axes** — core counts, DFS frequency ladders or threshold bands, mesh
//! resolutions ([`GridConfig`]), workloads, implicit-solver choices, run
//! budgets, or arbitrary custom knobs — and expands their cartesian product
//! into one [`Campaign`] run. Results come back as a [`SweepReport`] keyed
//! by grid point (one row per parameter combination, labelled
//! `axis=value/axis=value/…`), with JSON/CSV export.
//!
//! ```no_run
//! use temu_framework::{ResultCache, Scenario, Sweep};
//!
//! let cache = ResultCache::in_memory();
//! let sweep = || {
//!     Sweep::new("ladder-study", Scenario::paper_fig6_unmanaged())
//!         .cores(&[2, 4])
//!         .dfs_bands(&[(350.0, 340.0), (345.0, 335.0)], 500_000_000, 100_000_000)
//! };
//! let report = sweep().run_cached(&cache);
//! println!("{}", report.to_csv());
//! // Re-running the identical sweep executes zero scenarios:
//! let rerun = sweep().run_cached(&cache);
//! assert_eq!(rerun.executed, 0);
//! assert_eq!(rerun.cache_hits, 4);
//! ```
//!
//! # Caching
//!
//! Every grid point is identified by [`Scenario::content_key`] — a stable
//! FNV-1a hash of the scenario's canonical configuration (platform,
//! floorplan, workload, grid/solver, power, link, DFS policy, budget, fit
//! gate; *not* its display name). A [`ResultCache`] memoizes the
//! [`PointSummary`] per key in process, and optionally persists it to an
//! on-disk JSON-lines store ([`ResultCache::with_store`]) so re-runs of a
//! sweep — including across processes, or sweeps that merely overlap — are
//! incremental: cached points are reported without executing their
//! scenarios. Failed points are never cached (they re-run until they
//! succeed).
//!
//! # Streaming progress
//!
//! [`Sweep::on_progress`] installs a sink that is called once per grid
//! point — cache hits first, then executed points in completion order off
//! the campaign's worker threads — so a long sweep reports incrementally
//! instead of only at the join (see [`SweepProgress`]).
//!
//! # Error containment
//!
//! A sweep-generated bad grid point (say, an inverted DFS hysteresis band
//! from [`Sweep::dfs_bands`]) surfaces as that point's typed [`TemuError`]
//! in its slot of the report — never as a panic, and without aborting its
//! sibling points.

use crate::artifacts::{ArtifactCache, ArtifactStats};
use crate::campaign::{Campaign, PointRunner};
use crate::emulation::EmulationState;
use crate::error::TemuError;
use crate::export::{csv_f64, csv_field, csv_opt, json_escape, json_f64, json_num_or_null, JsonValue};
use crate::lockstep;
use crate::scenario::{RunBudget, Scenario, ScenarioRun, Workload};
use std::collections::HashMap;
use std::fmt;
use std::fs::OpenOptions;
use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use temu_platform::{DfsBand, DfsPolicy};
use temu_thermal::{default_workers, GridConfig, ImplicitSolve};

/// 64-bit FNV-1a: a small, dependency-free hash whose value is defined by
/// the algorithm alone — unlike `DefaultHasher`, it cannot drift between
/// compiler releases, so on-disk cache keys stay valid. Public because
/// everything content-addressed in the workspace hashes with it: scenario
/// and sweep content keys here, and the fleet router's rendezvous member
/// scoring on top of them.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_fold(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continues a 64-bit FNV-1a hash from a prior state. Because FNV-1a is a
/// plain left-to-right fold, `fnv1a64_fold(fnv1a64(a), b) == fnv1a64(a ++
/// b)` — which is what lets [`Scenario::layered_keys`] decompose the
/// scenario content key into chained per-segment prefix states without
/// changing the final value.
#[must_use]
pub fn fnv1a64_fold(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Point summaries (the cacheable unit)
// ---------------------------------------------------------------------------

/// The scalar outcome of one sweep point: what a design-space comparison
/// actually consumes (and what the cache stores) — run totals, the Fig. 6
/// thermal headline numbers, the per-frequency DFS residency and the
/// solver-convergence accounting. When the full [`ScenarioRun`] (trace
/// included) is needed, run the point through a plain [`Campaign`].
#[derive(Clone, PartialEq, Debug)]
#[non_exhaustive]
pub struct PointSummary {
    /// Sampling windows executed.
    pub windows: u64,
    /// Virtual seconds emulated.
    pub virtual_s: f64,
    /// Modeled FPGA (physical) seconds.
    pub fpga_s: f64,
    /// Host wall seconds of the original execution (a cache hit reports
    /// the time the point took when it actually ran).
    pub wall_s: f64,
    /// Whether every core halted.
    pub all_halted: bool,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Hottest temperature ever reached, K.
    pub peak_temp_k: Option<f64>,
    /// Final maximum temperature, K.
    pub final_temp_k: Option<f64>,
    /// Fraction of windows below the top observed frequency.
    pub throttled_fraction: f64,
    /// Virtual seconds at each observed clock frequency, fastest first
    /// ([`crate::ThermalTrace::time_at_hz`]).
    pub time_at_hz: Vec<(u64, f64)>,
    /// Implicit substeps accepted unconverged (non-zero = suspect data).
    pub unconverged_substeps: u64,
    /// Worst unconverged residual, K.
    pub worst_residual_k: f64,
}

impl PointSummary {
    fn from_run(run: &ScenarioRun, wall: Duration) -> PointSummary {
        PointSummary {
            windows: run.report.windows,
            virtual_s: run.report.virtual_seconds,
            fpga_s: run.report.fpga_seconds,
            wall_s: wall.as_secs_f64(),
            all_halted: run.report.all_halted,
            instructions: run.report.aggregate.total_instructions(),
            peak_temp_k: run.trace.peak_temp(),
            final_temp_k: run.trace.final_temp(),
            throttled_fraction: run.trace.throttled_fraction(),
            time_at_hz: run.trace.time_at_hz(),
            unconverged_substeps: run.report.solver.unconverged_substeps,
            worst_residual_k: run.report.solver.worst_residual_k,
        }
    }

    /// The summary's fields as the inner part of a flat JSON object (no
    /// braces) — shared between the report export and the disk store.
    fn json_fields(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("\"windows\": {}", self.windows));
        out.push_str(&format!(", \"virtual_s\": {}", json_f64(self.virtual_s, 6)));
        out.push_str(&format!(", \"fpga_s\": {}", json_f64(self.fpga_s, 6)));
        out.push_str(&format!(", \"wall_s\": {}", json_f64(self.wall_s, 6)));
        out.push_str(&format!(", \"all_halted\": {}", self.all_halted));
        out.push_str(&format!(", \"instructions\": {}", self.instructions));
        out.push_str(&json_num_or_null(", \"peak_temp_k\": ", self.peak_temp_k));
        out.push_str(&json_num_or_null(", \"final_temp_k\": ", self.final_temp_k));
        out.push_str(&format!(", \"throttled_fraction\": {}", json_f64(self.throttled_fraction, 4)));
        out.push_str(&format!(", \"time_at_hz\": \"{}\"", self.residency_field()));
        out.push_str(&format!(", \"unconverged_substeps\": {}", self.unconverged_substeps));
        out.push_str(&format!(", \"worst_residual_k\": {}", json_f64(self.worst_residual_k, 9)));
        out
    }

    /// The residency encoded as space-separated `hz:seconds` pairs — one
    /// CSV/JSON string field instead of a nested structure.
    fn residency_field(&self) -> String {
        self.time_at_hz.iter().map(|(hz, s)| format!("{hz}:{s:.6}")).collect::<Vec<_>>().join(" ")
    }

    fn parse_residency(s: &str) -> Vec<(u64, f64)> {
        s.split_whitespace()
            .filter_map(|pair| {
                let (hz, secs) = pair.split_once(':')?;
                Some((hz.parse().ok()?, secs.parse().ok()?))
            })
            .collect()
    }
}

// ---------------------------------------------------------------------------
// The result cache
// ---------------------------------------------------------------------------

/// Compaction trigger: minimum record + junk runs decoded at load before
/// the dead-fraction rule applies (tiny stores are never worth rewriting).
const COMPACT_MIN_RECORDS: usize = 64;
/// Compaction trigger: fraction of dead runs (duplicate records + torn
/// junk) above which the store is rewritten deduped at load.
const COMPACT_DEAD_FRACTION: f64 = 0.25;

/// The persistent half of a cache: the `O_APPEND` write handle, plus a
/// separate read handle and the byte offset already decoded into memory,
/// so [`ResultCache::refresh`] can pick up records appended by *other*
/// writers sharing the store file (fleet members behind one store).
struct StoreState {
    append: std::fs::File,
    read: std::fs::File,
    offset: u64,
}

struct CacheInner {
    mem: Mutex<HashMap<u64, PointSummary>>,
    store: Option<Mutex<StoreState>>,
    path: Option<PathBuf>,
}

/// A content-keyed memo of sweep-point results: [`Scenario::content_key`] →
/// [`PointSummary`].
///
/// The cache is a cheaply-cloneable handle (clones share the same state),
/// so one cache can serve many sweeps — overlapping grids skip their
/// shared points. [`ResultCache::with_store`] additionally persists every
/// insert to an append-only JSON-lines file and pre-loads existing
/// entries, making sweep re-runs incremental across processes.
#[derive(Clone)]
pub struct ResultCache {
    inner: Arc<CacheInner>,
}

impl fmt::Debug for ResultCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ResultCache")
            .field("entries", &self.len())
            .field("store", &self.inner.path)
            .finish()
    }
}

impl ResultCache {
    /// An empty in-process cache (no disk store).
    #[must_use]
    pub fn in_memory() -> ResultCache {
        ResultCache {
            inner: Arc::new(CacheInner { mem: Mutex::new(HashMap::new()), store: None, path: None }),
        }
    }

    /// A cache backed by an on-disk JSON-lines store: existing entries at
    /// `path` are loaded, and every new insert is appended.
    ///
    /// The store is safe to share between concurrent writers — worker
    /// threads of one server process or several processes appending to the
    /// same file: the file is opened `O_APPEND` and each record is written
    /// as one complete line in a single write call, so records never
    /// interleave. Loading tolerates a torn record (a writer that died
    /// mid-append): the damaged record is skipped and — because another
    /// process may already have appended past it onto the same line —
    /// any complete records glued after it on that line are still
    /// recovered, instead of being dropped with it.
    ///
    /// # Header and compaction
    ///
    /// Fresh stores open with a version header line
    /// (`{"temu_store": 1, …}`); loaders shipped before the header treat
    /// it as an undecodable run and skip it, so old and new processes can
    /// share one file. When loading finds the file is mostly dead weight —
    /// duplicate records from overlapping sweeps plus torn junk exceeding
    /// [`COMPACT_DEAD_FRACTION`] of at least [`COMPACT_MIN_RECORDS`] runs
    /// — it is rewritten deduped under a fresh header via a tmp file and
    /// atomic rename. A rewrite failure degrades to loading the dirty
    /// store; compaction is an optimization, never a correctness gate.
    /// Note the rename caveat: a *concurrent* writer still holding the old
    /// file keeps appending to the unlinked inode — its records stay
    /// correct in its own memory but become invisible to others, who
    /// simply re-execute those points on miss. Prefer starting the store's
    /// long-lived owners together.
    ///
    /// # Errors
    ///
    /// Any I/O error opening or reading the store file.
    pub fn with_store(path: impl AsRef<Path>) -> std::io::Result<ResultCache> {
        let path = path.as_ref().to_path_buf();
        let mut mem = HashMap::new();
        let mut offset = 0u64;
        if path.exists() {
            let text = std::fs::read_to_string(&path)?;
            offset = text.len() as u64;
            let (mut records, mut junk) = (0usize, 0usize);
            for line in text.lines() {
                ResultCache::decode_recovering(line, &mut mem, &mut records, &mut junk);
            }
            let total = records + junk;
            let dead = junk + records.saturating_sub(mem.len());
            #[allow(clippy::cast_precision_loss)]
            if total >= COMPACT_MIN_RECORDS && dead as f64 > total as f64 * COMPACT_DEAD_FRACTION {
                if let Ok(len) = ResultCache::rewrite_store(&path, &mem) {
                    offset = len;
                }
            }
        } else {
            // Stamp fresh stores with the header line. `create_new`, not a
            // plain write: a racing sibling process that already created
            // (and appended to) the file must not be truncated.
            if let Ok(mut f) = OpenOptions::new().write(true).create_new(true).open(&path) {
                let _ = f.write_all(format!("{}\n", ResultCache::header_line(0)).as_bytes());
            }
        }
        let append = OpenOptions::new().create(true).append(true).open(&path)?;
        let read = std::fs::File::open(&path)?;
        Ok(ResultCache {
            inner: Arc::new(CacheInner {
                mem: Mutex::new(mem),
                store: Some(Mutex::new(StoreState { append, read, offset })),
                path: Some(path),
            }),
        })
    }

    /// The store's version/header line (no trailing newline). Flat like
    /// every record, so the first-`}`-closes-it decode discipline holds.
    fn header_line(entries: usize) -> String {
        format!("{{\"temu_store\": 1, \"entries\": {entries}}}")
    }

    /// Rewrites the store deduped — header plus one record per key, sorted
    /// so the output is deterministic — into a tmp file that atomically
    /// replaces the original. Returns the compacted length in bytes.
    fn rewrite_store(path: &Path, mem: &HashMap<u64, PointSummary>) -> std::io::Result<u64> {
        let tmp = path.with_extension("compact.tmp");
        let mut out = String::with_capacity(mem.len() * 160 + 64);
        out.push_str(&ResultCache::header_line(mem.len()));
        out.push('\n');
        let mut keys: Vec<u64> = mem.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            out.push_str(&format!("{{\"key\": \"{key:016x}\", {}}}\n", mem[&key].json_fields()));
        }
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(out.as_bytes())?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        Ok(out.len() as u64)
    }

    /// Number of cached points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.mem.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    /// Whether the cache holds nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The on-disk store path, when persistent.
    #[must_use]
    pub fn store_path(&self) -> Option<&Path> {
        self.inner.path.as_deref()
    }

    /// Flushes the on-disk store to stable storage (`fdatasync`); a no-op
    /// for in-memory caches. Inserts already reach the OS in one
    /// `O_APPEND` write each, so this only matters for surviving machine
    /// (not process) crashes — the natural call site is a sweep
    /// checkpoint between grid points.
    pub fn sync(&self) {
        if let Some(store) = &self.inner.store {
            let s = store.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let _ = s.append.sync_data();
        }
    }

    /// Looks a content key up. On a persistent cache, a miss first pulls
    /// in anything other writers appended to the store file since the last
    /// read ([`ResultCache::refresh`]) — so processes sharing one store
    /// (fleet members, say) see each other's results without restarting.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<PointSummary> {
        let hit = self
            .inner
            .mem
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
            .cloned();
        if hit.is_some() || self.inner.store.is_none() {
            return hit;
        }
        self.refresh();
        self.inner.mem.lock().unwrap_or_else(std::sync::PoisonError::into_inner).get(&key).cloned()
    }

    /// Decodes any records appended to the store file since the last load
    /// or refresh into memory (existing in-memory entries win). Only
    /// complete lines are consumed — a concurrent writer's half-append is
    /// left for the next refresh, once its newline lands. Returns the
    /// number of keys that were new to this handle; 0 for in-memory
    /// caches (and on any read error, which degrades to a plain miss).
    pub fn refresh(&self) -> usize {
        let Some(store) = &self.inner.store else { return 0 };
        let text = {
            let mut s = store.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let mut buf = String::new();
            let start = s.offset;
            if s.read.seek(SeekFrom::Start(start)).is_err() || s.read.read_to_string(&mut buf).is_err()
            {
                return 0;
            }
            let complete = buf.rfind('\n').map_or(0, |i| i + 1);
            if complete == 0 {
                return 0;
            }
            buf.truncate(complete);
            s.offset = start + complete as u64;
            buf
        };
        let mut fresh = HashMap::new();
        let (mut records, mut junk) = (0usize, 0usize);
        for line in text.lines() {
            ResultCache::decode_recovering(line, &mut fresh, &mut records, &mut junk);
        }
        let mut mem = self.inner.mem.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut new = 0usize;
        for (key, summary) in fresh {
            if let std::collections::hash_map::Entry::Vacant(slot) = mem.entry(key) {
                slot.insert(summary);
                new += 1;
            }
        }
        new
    }

    /// Memoizes one point (and appends it to the disk store, if any; a
    /// store write failure degrades to in-memory caching rather than
    /// failing the sweep). The store append is one complete
    /// newline-terminated line in a single `O_APPEND` write, so concurrent
    /// writers — threads or whole processes — never interleave records.
    pub fn insert(&self, key: u64, summary: PointSummary) {
        let fresh = self
            .inner
            .mem
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert(key, summary.clone())
            .is_none();
        if fresh {
            if let Some(store) = &self.inner.store {
                let line = format!("{{\"key\": \"{key:016x}\", {}}}\n", summary.json_fields());
                let mut s = store.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                let _ = s.append.write_all(line.as_bytes());
            }
        }
    }

    /// Decodes every record on one store line into `mem`. The common case
    /// is one whole line = one record; when the head of the line is a torn
    /// partial (a writer died mid-append and a later `O_APPEND` writer
    /// glued its complete record onto the same line), the torn prefix is
    /// skipped and decoding resumes at each subsequent `{"key"` marker.
    /// `records` counts decoded records and `junk` counts skipped runs —
    /// together they drive the load-time compaction decision.
    fn decode_recovering(
        line: &str,
        mem: &mut HashMap<u64, PointSummary>,
        records: &mut usize,
        junk: &mut usize,
    ) {
        let mut rest = line.trim_start();
        while !rest.is_empty() {
            if let Some((key, summary, consumed)) = ResultCache::decode_prefix(rest) {
                *records += 1;
                mem.insert(key, summary);
                rest = rest[consumed..].trim_start();
            } else if let Some(consumed) = ResultCache::header_prefix(rest) {
                // The version header a compacted (or fresh) store opens
                // with: recognized, not junk.
                rest = rest[consumed..].trim_start();
            } else {
                *junk += 1;
                // Torn or foreign bytes: resync at the next record marker
                // (skipping one whole character — foreign lines may start
                // with multi-byte UTF-8, and a byte-offset slice there
                // would panic on the char boundary).
                let skip = rest.chars().next().map_or(1, char::len_utf8);
                match rest[skip..].find("{\"key\"") {
                    Some(off) => rest = &rest[skip + off..],
                    None => return,
                }
            }
        }
    }

    /// Decodes one record at the head of `text`, returning how many bytes
    /// it consumed. `text` may continue with further records (recovery
    /// path), so this scans for the record's closing `}` instead of
    /// requiring the parse to consume the whole slice.
    fn decode_prefix(text: &str) -> Option<(u64, PointSummary, usize)> {
        // Store records are flat objects whose only strings never contain
        // '}', so the first '}' closes the record.
        let end = text.find('}')? + 1;
        let obj = JsonValue::parse(&text[..end]).ok()?;
        let key = u64::from_str_radix(obj.get("key")?.as_str()?, 16).ok()?;
        let num = |name: &str| obj.get(name).and_then(JsonValue::as_f64);
        let int = |name: &str| obj.get(name).and_then(JsonValue::as_u64);
        let summary = PointSummary {
            windows: int("windows")?,
            virtual_s: num("virtual_s")?,
            fpga_s: num("fpga_s")?,
            wall_s: num("wall_s")?,
            all_halted: obj.get("all_halted")?.as_bool()?,
            instructions: int("instructions")?,
            peak_temp_k: num("peak_temp_k"),
            final_temp_k: num("final_temp_k"),
            throttled_fraction: num("throttled_fraction")?,
            time_at_hz: PointSummary::parse_residency(obj.get("time_at_hz")?.as_str()?),
            unconverged_substeps: int("unconverged_substeps")?,
            worst_residual_k: num("worst_residual_k").unwrap_or(0.0),
        };
        Some((key, summary, end))
    }

    /// Length of a store version header at the head of `text`, `None`
    /// when it is not one. Headers are flat objects like the records, so
    /// the first `}` closes them.
    fn header_prefix(text: &str) -> Option<usize> {
        if !text.starts_with("{\"temu_store\"") {
            return None;
        }
        let end = text.find('}')? + 1;
        JsonValue::parse(&text[..end]).ok()?;
        Some(end)
    }

    #[cfg(test)]
    fn decode_line(line: &str) -> Option<(u64, PointSummary)> {
        ResultCache::decode_prefix(line.trim()).map(|(k, s, _)| (k, s))
    }
}

// ---------------------------------------------------------------------------
// Axes and the sweep builder
// ---------------------------------------------------------------------------

type Applier = Arc<dyn Fn(Scenario) -> Result<Scenario, TemuError> + Send + Sync>;

#[derive(Clone)]
struct AxisValue {
    label: String,
    apply: Applier,
}

#[derive(Clone)]
struct Axis {
    name: String,
    values: Vec<AxisValue>,
}

/// A streaming per-point sink (see [`Sweep::on_progress`]).
pub type SweepSink = dyn Fn(&SweepProgress<'_>) + Send + Sync;

/// What a [`Sweep::on_checkpoint`] hook tells the sweep to do next.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CheckpointDecision {
    /// Keep executing the remaining grid points.
    Continue,
    /// Stop between grid points: no further point starts, points already
    /// dispatched finish (and stay cached), and every never-started point
    /// is reported as [`TemuError::Cancelled`].
    Cancel,
}

/// The sweep's position when a checkpoint hook runs (between grid-point
/// batches, on the thread that called [`Sweep::run_cached`]).
#[derive(Clone, Copy, Debug)]
#[non_exhaustive]
pub struct SweepCheckpoint {
    /// Points finished so far (cache hits and executed points).
    pub completed: usize,
    /// Points executed so far (scenarios actually run).
    pub executed: usize,
    /// Points not yet dispatched.
    pub remaining: usize,
    /// Points in the whole grid.
    pub total: usize,
}

/// A between-grid-point callback (see [`Sweep::on_checkpoint`]).
pub type CheckpointHook = dyn Fn(&SweepCheckpoint) -> CheckpointDecision + Send + Sync;

/// A point's position at a *window* checkpoint — a boundary **inside** a
/// running grid point, delivered every N windows to a
/// [`Sweep::on_window_checkpoint`] hook together with the serializable
/// [`EmulationState`] of that boundary.
#[derive(Debug)]
#[non_exhaustive]
pub struct WindowCheckpoint<'a> {
    /// Grid-point index (the point's slot in [`SweepReport::points`]).
    pub index: usize,
    /// The point's `axis=value/…` label.
    pub label: &'a str,
    /// The point's scenario content key (the cache/journal key).
    pub key: u64,
    /// Sampling windows the point has executed so far.
    pub windows: u64,
    /// The point's window budget (`max_windows` for a to-halt run, which
    /// may halt earlier).
    pub total_windows: u64,
    /// The run state at this window boundary; persist
    /// [`EmulationState::to_bytes`] to make the point resumable from here
    /// (see [`Sweep::resume_point`]).
    pub state: &'a EmulationState,
}

/// A within-point window-checkpoint callback (see
/// [`Sweep::on_window_checkpoint`]). Runs on the campaign worker thread
/// executing the point.
pub type WindowCheckpointHook = dyn Fn(&WindowCheckpoint<'_>) -> CheckpointDecision + Send + Sync;

/// One finished (or cache-served) sweep point, delivered to a
/// [`Sweep::on_progress`] sink while the rest of the grid is still
/// running.
#[derive(Debug)]
pub struct SweepProgress<'a> {
    /// Grid-point index (the point's slot in [`SweepReport::points`]).
    pub index: usize,
    /// Points finished so far, this one included (1, 2, …, `total` across
    /// sink invocations).
    pub completed: usize,
    /// Points in the whole grid.
    pub total: usize,
    /// The point's `axis=value/…` label.
    pub label: &'a str,
    /// Whether the result came from the cache (no scenario executed).
    pub cache_hit: bool,
    /// The point's summary, or the typed error that stopped it.
    pub outcome: Result<&'a PointSummary, &'a TemuError>,
}

/// A cartesian parameter grid over [`Scenario`] axes (see the module
/// docs).
#[derive(Clone)]
pub struct Sweep {
    name: String,
    base: Scenario,
    axes: Vec<Axis>,
    threads: Option<usize>,
    sink: Option<Arc<SweepSink>>,
    checkpoint: Option<Arc<CheckpointHook>>,
    window_checkpoint: Option<(u64, Arc<WindowCheckpointHook>)>,
    resume: HashMap<u64, EmulationState>,
    batch: bool,
    artifacts: Option<Arc<ArtifactCache>>,
}

impl fmt::Debug for Sweep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let axes: Vec<String> = self.axes.iter().map(|a| format!("{}×{}", a.name, a.values.len())).collect();
        f.debug_struct("Sweep")
            .field("name", &self.name)
            .field("axes", &axes)
            .field("points", &self.n_points())
            .finish()
    }
}

impl Sweep {
    /// A sweep of `base` with no axes yet (one grid point: the base
    /// itself).
    pub fn new(name: impl Into<String>, base: Scenario) -> Sweep {
        Sweep {
            name: name.into(),
            base,
            axes: Vec::new(),
            threads: None,
            sink: None,
            checkpoint: None,
            window_checkpoint: None,
            resume: HashMap::new(),
            batch: false,
            artifacts: None,
        }
    }

    /// The sweep's name (prefixed onto every point's scenario name).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of grid points the current axes expand to.
    #[must_use]
    pub fn n_points(&self) -> usize {
        self.axes.iter().map(|a| a.values.len()).product()
    }

    /// Adds a custom axis: one grid dimension named `name`, taking each
    /// value in `params`. `label` renders a parameter for point labels;
    /// `apply` folds it into the point's scenario — returning an error
    /// marks that grid point (and only it) failed with a typed
    /// [`TemuError`].
    pub fn axis<P, L, F>(mut self, name: impl Into<String>, params: Vec<P>, label: L, apply: F) -> Sweep
    where
        P: Send + Sync + 'static,
        L: Fn(&P) -> String,
        F: Fn(Scenario, &P) -> Result<Scenario, TemuError> + Send + Sync + Clone + 'static,
    {
        let values = params
            .into_iter()
            .map(|p| {
                let label = label(&p);
                let apply = apply.clone();
                AxisValue { label, apply: Arc::new(move |s| apply(s, &p)) }
            })
            .collect();
        self.axes.push(Axis { name: name.into(), values });
        self
    }

    /// A `cores` axis: each point is retargeted with [`Scenario::cores`].
    pub fn cores(self, cores: &[usize]) -> Sweep {
        self.axis("cores", cores.to_vec(), ToString::to_string, |s, &n| Ok(s.cores(n)))
    }

    /// A DFS-policy axis over pre-built frequency ladders (`None` =
    /// unmanaged). Labels come from [`DfsPolicy::label`].
    pub fn dfs_policies(self, policies: Vec<Option<DfsPolicy>>) -> Sweep {
        self.axis(
            "dfs",
            policies,
            |p| p.as_ref().map_or_else(|| String::from("none"), DfsPolicy::label),
            |s, p| {
                Ok(match p {
                    Some(p) => s.policy(p.clone()),
                    None => s.no_policy(),
                })
            },
        )
    }

    /// A DFS threshold axis: each `(hot_k, cool_k)` pair becomes the
    /// classic two-level policy between `high_hz` and `low_hz`. The
    /// policy is constructed **per grid point**, so an inverted pair
    /// surfaces as that point's typed [`TemuError::Platform`] instead of
    /// a panic.
    pub fn dfs_bands(self, bands: &[(f64, f64)], high_hz: u64, low_hz: u64) -> Sweep {
        self.axis(
            "dfs",
            bands.to_vec(),
            |(hot, cool)| format!("{hot:.0}/{cool:.0}"),
            move |s, &(hot, cool)| Ok(s.policy(DfsPolicy::new(hot, cool, high_hz, low_hz)?)),
        )
    }

    /// A multi-level DFS ladder axis built per point from shared
    /// frequency levels and per-point hysteresis band sets — a malformed
    /// ladder surfaces as that point's typed error.
    pub fn dfs_ladders(self, levels_hz: Vec<u64>, band_sets: Vec<Vec<DfsBand>>) -> Sweep {
        self.axis(
            "dfs",
            band_sets,
            |bands| {
                bands.iter().map(|b| format!("{:.0}/{:.0}", b.hot_k, b.cool_k)).collect::<Vec<_>>().join("+")
            },
            move |s, bands| Ok(s.policy(DfsPolicy::ladder(&levels_hz, bands)?)),
        )
    }

    /// A mesh-resolution axis: named [`GridConfig`]s (the names label the
    /// points).
    pub fn meshes(self, meshes: Vec<(String, GridConfig)>) -> Sweep {
        self.axis("mesh", meshes, |(name, _)| name.clone(), |s, (_, grid)| Ok(s.grid(*grid)))
    }

    /// A workload axis; labels come from [`Workload::label`].
    pub fn workloads(self, workloads: Vec<Workload>) -> Sweep {
        self.axis("workload", workloads, Workload::label, |s, w| Ok(s.workload(w.clone())))
    }

    /// An implicit-solver axis (`gs`, `mg`, `auto`).
    pub fn implicit_solves(self, solves: &[ImplicitSolve]) -> Sweep {
        self.axis(
            "solver",
            solves.to_vec(),
            |s| {
                String::from(match s {
                    ImplicitSolve::GaussSeidel => "gs",
                    ImplicitSolve::Multigrid => "mg",
                    _ => "auto",
                })
            },
            |s, &solve| Ok(s.implicit_solve(solve)),
        )
    }

    /// A run-budget axis: each point runs exactly `n` sampling windows.
    pub fn windows(self, windows: &[u64]) -> Sweep {
        self.axis("windows", windows.to_vec(), |n| format!("{n}w"), |s, &n| Ok(s.windows(n)))
    }

    /// Sets the campaign worker-thread count for executed points.
    pub fn threads(mut self, threads: usize) -> Sweep {
        self.threads = Some(threads);
        self
    }

    /// Enables batched lockstep execution: executed points are built
    /// through the sweep's [`ArtifactCache`], grouped by shared thermal
    /// operator (same mesh, solver configuration and sampling window),
    /// and each group's thermal substeps run through the fused many-RHS
    /// kernel — k temperature fields swept against one shared matrix per
    /// pass — on the calling thread. Results are bitwise-identical to the
    /// default campaign path; only wall-clock time changes. Off by
    /// default.
    pub fn batch(mut self, batch: bool) -> Sweep {
        self.batch = batch;
        self
    }

    /// Shares a build-artifact cache with this sweep (e.g. a process-wide
    /// cache serving many sweeps). Without this call every run uses its
    /// own fresh [`ArtifactCache`] — artifact reuse *within* a sweep is
    /// always on; this widens it *across* sweeps.
    pub fn artifacts(mut self, artifacts: Arc<ArtifactCache>) -> Sweep {
        self.artifacts = Some(artifacts);
        self
    }

    /// Installs a streaming per-point sink: cache hits and malformed
    /// points are delivered first, then executed points in completion
    /// order. Invocations are serialized, with
    /// [`SweepProgress::completed`] counting 1..=total.
    pub fn on_progress(mut self, sink: impl Fn(&SweepProgress<'_>) + Send + Sync + 'static) -> Sweep {
        self.sink = Some(Arc::new(sink));
        self
    }

    /// Installs a between-grid-point checkpoint hook, called on the thread
    /// running the sweep before each batch of executed points (batch width
    /// = the campaign thread count, so with one thread the hook runs
    /// between every two points). Returning
    /// [`CheckpointDecision::Cancel`] stops the sweep: no further point
    /// starts, and every never-started point lands in the report as
    /// [`TemuError::Cancelled`] with [`SweepReport::cancelled`] set.
    ///
    /// The hook only runs when there is something left to execute — a
    /// fully cache-served sweep never checkpoints. It is the natural
    /// place to flush incremental state (e.g. [`ResultCache::sync`]), so
    /// a sweep killed at point *k* resumes as *k* cache hits.
    pub fn on_checkpoint(
        mut self,
        hook: impl Fn(&SweepCheckpoint) -> CheckpointDecision + Send + Sync + 'static,
    ) -> Sweep {
        self.checkpoint = Some(Arc::new(hook));
        self
    }

    /// Installs a *within-point* window-checkpoint hook, called on the
    /// worker thread executing a point every `every` sampling windows with
    /// that boundary's serializable [`EmulationState`] — persist its
    /// [`EmulationState::to_bytes`] and a killed sweep resumes the point
    /// mid-run via [`Sweep::resume_point`]. Returning
    /// [`CheckpointDecision::Cancel`] stops *that point* at the boundary:
    /// it lands in the report as [`TemuError::CancelledMidPoint`] carrying
    /// how many windows it had executed (the hook saw — and could persist
    /// — the state of exactly that boundary). Other points keep running;
    /// compose with [`Sweep::on_checkpoint`] to also stop the grid.
    ///
    /// Off by default, and when off the execution path is unchanged — no
    /// state is captured, so there is no overhead. `every = 0` disables
    /// the hook. Ignored (with resume) under [`Sweep::batch`]: lockstep
    /// groups interleave many points' windows, so a mid-point boundary is
    /// not a consistent cut there; results are identical, resumed points
    /// simply re-run from scratch.
    pub fn on_window_checkpoint(
        mut self,
        every: u64,
        hook: impl Fn(&WindowCheckpoint<'_>) -> CheckpointDecision + Send + Sync + 'static,
    ) -> Sweep {
        self.window_checkpoint = Some((every, Arc::new(hook)));
        self
    }

    /// Seeds the sweep with a mid-run checkpoint: the grid point whose
    /// scenario content key matches `state` (captured by an
    /// [`Sweep::on_window_checkpoint`] hook of an earlier, interrupted
    /// run) resumes from that window boundary instead of starting over,
    /// and its report is bitwise-identical to an uninterrupted run. Points
    /// with no seeded state build fresh as usual; a state whose key
    /// matches no grid point is ignored.
    pub fn resume_point(mut self, state: EmulationState) -> Sweep {
        self.resume.insert(state.scenario_key(), state);
        self
    }

    /// Expands the cartesian grid without running anything: one
    /// [`SweepPoint`] per combination, first axis slowest-varying (the
    /// order [`SweepReport::points`] uses). Useful for inspecting point
    /// counts, labels and content keys up front.
    #[must_use]
    pub fn expand(&self) -> Vec<SweepPoint> {
        let total = self.n_points();
        let mut points = Vec::with_capacity(total);
        for i in 0..total {
            let mut label = String::new();
            let mut scenario: Result<Scenario, TemuError> = Ok(self.base.clone());
            let mut stride = total;
            for axis in &self.axes {
                stride /= axis.values.len();
                let value = &axis.values[(i / stride) % axis.values.len()];
                if !label.is_empty() {
                    label.push('/');
                }
                label.push_str(&axis.name);
                label.push('=');
                label.push_str(&value.label);
                scenario = scenario.and_then(|s| (value.apply)(s));
            }
            let scenario = scenario.map(|s| s.name(format!("{}/{label}", self.name)));
            let key = scenario.as_ref().ok().map(Scenario::content_key);
            points.push(SweepPoint { index: i, label, key, scenario });
        }
        points
    }

    /// Runs the sweep without caching (every point executes).
    pub fn run(&self) -> SweepReport {
        self.run_with(None)
    }

    /// Runs the sweep against a [`ResultCache`]: points whose content key
    /// is already cached are reported (and streamed) without executing
    /// their scenario; fresh points run through one [`Campaign`] and are
    /// inserted into the cache as they finish.
    pub fn run_cached(&self, cache: &ResultCache) -> SweepReport {
        self.run_with(Some(cache))
    }

    fn run_with(&self, cache: Option<&ResultCache>) -> SweepReport {
        let t0 = Instant::now();
        // Build-artifact reuse is always on within a sweep; an injected
        // cache ([`Sweep::artifacts`]) widens it across sweeps, and the
        // report's stats are the delta this run contributed.
        let artifacts = self.artifacts.clone().unwrap_or_else(|| Arc::new(ArtifactCache::new()));
        let artifact_base = artifacts.stats();
        let expanded = self.expand();
        let total = expanded.len();
        // Finished points in arbitrary order; sorted back into grid order
        // at the end. (No pre-sized Option slots: report assembly must be
        // panic-free — a long-running server survives any malformed point.)
        let mut filled: Vec<(usize, SweepPointResult)> = Vec::with_capacity(total);
        let mut queue: Vec<Scenario> = Vec::new();
        // Per campaign slot: which grid point it is, its label and key.
        let mut queued: Vec<(usize, String, u64)> = Vec::new();
        let mut completed = 0usize;
        let mut cache_hits = 0usize;

        // Resolve every point that needs no execution — cache hits and
        // malformed grid points — streaming them to the sink up front.
        for point in expanded {
            match point.scenario {
                Err(e) => {
                    completed += 1;
                    self.emit(&point.label, point.index, completed, total, false, Err(&e));
                    filled.push((
                        point.index,
                        SweepPointResult {
                            label: point.label,
                            key: point.key,
                            cache_hit: false,
                            outcome: Err(e),
                        },
                    ));
                }
                Ok(scenario) => {
                    let key = point.key.unwrap_or_else(|| scenario.content_key());
                    if let Some(summary) = cache.and_then(|c| c.get(key)) {
                        completed += 1;
                        cache_hits += 1;
                        self.emit(&point.label, point.index, completed, total, true, Ok(&summary));
                        filled.push((
                            point.index,
                            SweepPointResult {
                                label: point.label,
                                key: Some(key),
                                cache_hit: true,
                                outcome: Ok(summary),
                            },
                        ));
                    } else {
                        queued.push((point.index, point.label, key));
                        queue.push(scenario);
                    }
                }
            }
        }

        let n_queued = queue.len();
        let mut executed = 0usize;
        let mut cancelled = false;
        let mut threads = 1;
        if n_queued > 0 && self.batch {
            // Batched lockstep path: build every fresh point through the
            // shared artifact cache, group points that share a thermal
            // operator (mesh + solver configuration + sampling window),
            // and advance each group window-by-window with the fused
            // many-RHS kernel on this thread. Bitwise-identical results to
            // the campaign path.
            let mut groups: Vec<Vec<(usize, Scenario, crate::ThermalEmulation)>> = Vec::new();
            let mut group_keys: Vec<u64> = Vec::new();
            for (slot, scenario) in queue.into_iter().enumerate() {
                match scenario.build_with(Some(&artifacts)) {
                    Ok(emu) => {
                        let gk = scenario.lockstep_group_key();
                        match group_keys.iter().position(|&k| k == gk) {
                            Some(g) => groups[g].push((slot, scenario, emu)),
                            None => {
                                group_keys.push(gk);
                                groups.push(vec![(slot, scenario, emu)]);
                            }
                        }
                    }
                    Err(e) => {
                        let (point, label, key) = &queued[slot];
                        executed += 1;
                        completed += 1;
                        self.emit(label, *point, completed, total, false, Err(&e));
                        filled.push((
                            *point,
                            SweepPointResult {
                                label: label.clone(),
                                key: Some(*key),
                                cache_hit: false,
                                outcome: Err(e),
                            },
                        ));
                    }
                }
            }
            if temu_obs::enabled() {
                let sizes = temu_obs::global().histogram("core.lockstep_group_size");
                for group in &groups {
                    sizes.record(group.len() as u64);
                }
            }
            let mut remaining: std::collections::VecDeque<_> = groups.into();
            while let Some(group) = remaining.pop_front() {
                if let Some(hook) = &self.checkpoint {
                    let decision = hook(&SweepCheckpoint {
                        completed,
                        executed,
                        remaining: n_queued - executed,
                        total,
                    });
                    if decision == CheckpointDecision::Cancel {
                        cancelled = true;
                        for (slot, _, _) in group.into_iter().chain(remaining.into_iter().flatten()) {
                            let (point, label, key) = &queued[slot];
                            filled.push((
                                *point,
                                SweepPointResult {
                                    label: label.clone(),
                                    key: Some(*key),
                                    cache_hit: false,
                                    outcome: Err(TemuError::Cancelled),
                                },
                            ));
                        }
                        break;
                    }
                }
                for r in lockstep::run_group(group) {
                    let (point, label, key) = &queued[r.slot];
                    executed += 1;
                    completed += 1;
                    let outcome = match r.outcome {
                        Ok(run) => {
                            let summary = PointSummary::from_run(&run, r.wall);
                            if let Some(c) = cache {
                                c.insert(*key, summary.clone());
                            }
                            self.emit(label, *point, completed, total, false, Ok(&summary));
                            Ok(summary)
                        }
                        Err(e) => {
                            self.emit(label, *point, completed, total, false, Err(&e));
                            Err(e)
                        }
                    };
                    filled.push((
                        *point,
                        SweepPointResult {
                            label: label.clone(),
                            key: Some(*key),
                            cache_hit: false,
                            outcome,
                        },
                    ));
                }
            }
        } else if n_queued > 0 {
            // Stream executed points through the campaign's result sink:
            // map campaign slots back to grid points, memoize summaries as
            // they land, and forward progress to the sweep's sink.
            let meta: Arc<Vec<(usize, String, u64)>> = Arc::new(queued);
            let counter = Arc::new(Mutex::new(completed));
            let cache_handle = cache.cloned();
            // Summaries computed in the sink are stashed per campaign slot
            // so the slot-filling pass below doesn't re-scan every trace.
            let stash: Arc<Vec<Mutex<Option<PointSummary>>>> =
                Arc::new((0..n_queued).map(|_| Mutex::new(None)).collect());

            // Window-granular checkpointing and mid-run resume replace the
            // campaign's default point executor. When neither is
            // configured no runner is installed and points execute exactly
            // as before — the feature costs nothing disabled.
            let window_hook = self
                .window_checkpoint
                .as_ref()
                .filter(|(every, _)| *every > 0)
                .map(|(every, hook)| (*every, Arc::clone(hook)));
            let runner: Option<Arc<PointRunner>> =
                if window_hook.is_some() || !self.resume.is_empty() {
                    let by_key: HashMap<u64, (usize, String)> = meta
                        .iter()
                        .map(|(point, label, key)| (*key, (*point, label.clone())))
                        .collect();
                    let resume = self.resume.clone();
                    Some(Arc::new(move |scenario: &Scenario, artifacts: Option<&ArtifactCache>| {
                        let key = scenario.content_key();
                        let seed = resume.get(&key);
                        let Some((every, hook)) = &window_hook else {
                            return match seed {
                                Some(state) => scenario.resume_run_with(state, artifacts),
                                None => scenario.run_with(artifacts),
                            };
                        };
                        let (index, label) = by_key
                            .get(&key)
                            .map_or((usize::MAX, ""), |(point, label)| (*point, label.as_str()));
                        let total_windows = match scenario.budget() {
                            RunBudget::Windows(n) => n,
                            RunBudget::ToHalt { max_windows } => max_windows,
                        };
                        let mut observer = |emu: &crate::ThermalEmulation| {
                            let state = emu.checkpoint()?;
                            let windows = state.windows();
                            let decision = hook(&WindowCheckpoint {
                                index,
                                label,
                                key,
                                windows,
                                total_windows,
                                state: &state,
                            });
                            if decision == CheckpointDecision::Cancel {
                                return Err(TemuError::CancelledMidPoint { windows });
                            }
                            Ok(())
                        };
                        scenario.run_observed(artifacts, seed, Some((*every, &mut observer)))
                    }))
                } else {
                    None
                };

            // Without a checkpoint hook, everything runs as one campaign.
            // With one, execution proceeds in batches of the campaign
            // width and the hook runs between batches on this thread, so
            // cancellation (and any flushing the hook does) lands at a
            // grid-point boundary.
            let width =
                self.threads.unwrap_or_else(|| default_workers("TEMU_CAMPAIGN_THREADS")).max(1);
            let batch_size = if self.checkpoint.is_some() { width } else { n_queued };
            let mut queue = queue;
            while executed < n_queued {
                if let Some(hook) = &self.checkpoint {
                    let done =
                        *counter.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                    let decision = hook(&SweepCheckpoint {
                        completed: done,
                        executed,
                        remaining: n_queued - executed,
                        total,
                    });
                    if decision == CheckpointDecision::Cancel {
                        cancelled = true;
                        break;
                    }
                }
                let offset = executed;
                let take = batch_size.min(n_queued - offset);
                let scenarios: Vec<Scenario> = queue.drain(..take).collect();
                let mut campaign =
                    Campaign::new().scenarios(scenarios).artifacts(Arc::clone(&artifacts));
                if let Some(t) = self.threads {
                    campaign = campaign.threads(t);
                }
                if let Some(runner) = &runner {
                    campaign = campaign.runner(Arc::clone(runner));
                }
                {
                    let meta = Arc::clone(&meta);
                    let stash = Arc::clone(&stash);
                    let counter = Arc::clone(&counter);
                    let cache_handle = cache_handle.clone();
                    let sweep_sink = self.sink.clone();
                    campaign = campaign.on_result(move |p| {
                        let slot = offset + p.index;
                        let (point, label, key) = &meta[slot];
                        let mut done =
                            counter.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                        *done += 1;
                        match &p.result.outcome {
                            Ok(run) => {
                                let summary = PointSummary::from_run(run, p.result.wall);
                                *stash[slot]
                                    .lock()
                                    .unwrap_or_else(std::sync::PoisonError::into_inner) =
                                    Some(summary.clone());
                                if let Some(cache) = &cache_handle {
                                    cache.insert(*key, summary.clone());
                                }
                                if let Some(sink) = &sweep_sink {
                                    sink(&SweepProgress {
                                        index: *point,
                                        completed: *done,
                                        total,
                                        label,
                                        cache_hit: false,
                                        outcome: Ok(&summary),
                                    });
                                }
                            }
                            Err(e) => {
                                if let Some(sink) = &sweep_sink {
                                    sink(&SweepProgress {
                                        index: *point,
                                        completed: *done,
                                        total,
                                        label,
                                        cache_hit: false,
                                        outcome: Err(e),
                                    });
                                }
                            }
                        }
                    });
                }
                let report = campaign.run();
                threads = threads.max(report.threads);
                for ((i, result), (point, label, key)) in
                    report.results.into_iter().enumerate().zip(&meta[offset..offset + take])
                {
                    let slot = offset + i;
                    let outcome = match result.outcome {
                        Ok(run) => Ok(stash[slot]
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .take()
                            .unwrap_or_else(|| PointSummary::from_run(&run, result.wall))),
                        Err(e) => Err(e),
                    };
                    filled.push((
                        *point,
                        SweepPointResult { label: label.clone(), key: Some(*key), cache_hit: false, outcome },
                    ));
                }
                executed += take;
            }
            // Cancelled points were never dispatched: fill their slots
            // with the typed cancellation error (they are not streamed to
            // the progress sink — the terminal report is their record).
            if cancelled {
                for (point, label, key) in &meta[executed..] {
                    filled.push((
                        *point,
                        SweepPointResult {
                            label: label.clone(),
                            key: Some(*key),
                            cache_hit: false,
                            outcome: Err(TemuError::Cancelled),
                        },
                    ));
                }
            }
        }

        // Grid-order the points. Every index is filled exactly once by the
        // passes above; if a slot were ever skipped (a campaign delivering
        // short — which run() prevents by construction), it surfaces as a
        // typed per-point error rather than a server-killing panic.
        filled.sort_unstable_by_key(|(index, _)| *index);
        let mut points: Vec<SweepPointResult> = Vec::with_capacity(total);
        let mut it = filled.into_iter().peekable();
        for index in 0..total {
            match it.peek() {
                Some((i, _)) if *i == index => {
                    if let Some((_, result)) = it.next() {
                        points.push(result);
                    }
                }
                _ => points.push(SweepPointResult {
                    label: format!("point-{index}"),
                    key: None,
                    cache_hit: false,
                    outcome: Err(TemuError::ScenarioPanicked(String::from(
                        "sweep point result was never delivered",
                    ))),
                }),
            }
        }

        SweepReport {
            name: self.name.clone(),
            threads,
            wall: t0.elapsed(),
            executed,
            cache_hits,
            cancelled,
            artifacts: artifacts.stats().delta_since(&artifact_base),
            points,
        }
    }

    fn emit(
        &self,
        label: &str,
        index: usize,
        completed: usize,
        total: usize,
        cache_hit: bool,
        outcome: Result<&PointSummary, &TemuError>,
    ) {
        if let Some(sink) = &self.sink {
            sink(&SweepProgress { index, completed, total, label, cache_hit, outcome });
        }
    }
}

/// One expanded grid point (see [`Sweep::expand`]).
#[derive(Debug)]
pub struct SweepPoint {
    /// The point's position in the grid (first axis slowest-varying).
    pub index: usize,
    /// The `axis=value/…` label.
    pub label: String,
    /// The scenario's content key ([`Scenario::content_key`]); `None`
    /// when the point is malformed.
    pub key: Option<u64>,
    /// The fully-applied scenario, or the typed error that invalidated
    /// the point.
    pub scenario: Result<Scenario, TemuError>,
}

/// One grid point's slot in a [`SweepReport`].
#[derive(Debug)]
pub struct SweepPointResult {
    /// The point's `axis=value/…` label.
    pub label: String,
    /// The scenario's content key, `None` for malformed points.
    pub key: Option<u64>,
    /// Whether the result came from the cache (no execution).
    pub cache_hit: bool,
    /// The point's summary, or the typed error that stopped it.
    pub outcome: Result<PointSummary, TemuError>,
}

impl SweepPointResult {
    /// Whether the point completed.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// Grid-ordered results of a sweep, with JSON and CSV export.
#[derive(Debug)]
#[must_use]
pub struct SweepReport {
    /// The sweep's name.
    pub name: String,
    /// Worker threads the executed points ran on (1 when everything was
    /// cached).
    pub threads: usize,
    /// Host wall-clock time of the whole sweep.
    pub wall: Duration,
    /// Points that actually executed a scenario.
    pub executed: usize,
    /// Points served from the cache.
    pub cache_hits: usize,
    /// Whether a checkpoint hook cancelled the sweep before every point
    /// ran (the never-started points carry [`TemuError::Cancelled`]).
    pub cancelled: bool,
    /// Build-artifact reuse this run contributed (per-layer hit/miss
    /// deltas of the sweep's [`ArtifactCache`]): `mesh_misses` counts
    /// actual meshings, so a same-geometry sweep shows exactly one.
    pub artifacts: ArtifactStats,
    /// One result per grid point, in expansion order.
    pub points: Vec<SweepPointResult>,
}

impl SweepReport {
    /// Whether every point completed.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.points.iter().all(SweepPointResult::is_ok)
    }

    /// Number of failed points (cancelled-before-start points are
    /// accounted separately by [`SweepReport::n_cancelled`]).
    #[must_use]
    pub fn n_failed(&self) -> usize {
        self.points
            .iter()
            .filter(|p| !p.is_ok() && !matches!(p.outcome, Err(TemuError::Cancelled)))
            .count()
    }

    /// Number of points cancelled before they started.
    #[must_use]
    pub fn n_cancelled(&self) -> usize {
        self.points.iter().filter(|p| matches!(p.outcome, Err(TemuError::Cancelled))).count()
    }

    /// Serializes the report as JSON (same conventions as
    /// [`crate::CampaignReport::to_json`]: hand-rolled, non-finite floats
    /// as `null`).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"sweep\": \"{}\",\n", json_escape(&self.name)));
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"wall_s\": {},\n", json_f64(self.wall.as_secs_f64(), 6)));
        out.push_str(&format!("  \"points_total\": {},\n", self.points.len()));
        out.push_str(&format!("  \"executed\": {},\n", self.executed));
        out.push_str(&format!("  \"cache_hits\": {},\n", self.cache_hits));
        out.push_str(&format!("  \"cancelled\": {},\n", self.cancelled));
        let a = &self.artifacts;
        out.push_str(&format!(
            "  \"artifacts\": {{\"floorplan_hits\": {}, \"floorplan_misses\": {}, \"mesh_hits\": {}, \"mesh_misses\": {}, \"operator_hits\": {}, \"operator_misses\": {}, \"program_hits\": {}, \"program_misses\": {}}},\n",
            a.floorplan_hits,
            a.floorplan_misses,
            a.mesh_hits,
            a.mesh_misses,
            a.operator_hits,
            a.operator_misses,
            a.program_hits,
            a.program_misses
        ));
        out.push_str("  \"points\": [\n");
        for (i, p) in self.points.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"label\": \"{}\", ", json_escape(&p.label)));
            match p.key {
                Some(k) => out.push_str(&format!("\"key\": \"{k:016x}\", ")),
                None => out.push_str("\"key\": null, "),
            }
            out.push_str(&format!("\"cache_hit\": {}, ", p.cache_hit));
            out.push_str(&format!("\"ok\": {}", p.is_ok()));
            match &p.outcome {
                Ok(s) => {
                    out.push_str(", ");
                    out.push_str(&s.json_fields());
                }
                Err(e) => out.push_str(&format!(", \"error\": \"{}\"", json_escape(&e.to_string()))),
            }
            out.push_str(if i + 1 < self.points.len() { "},\n" } else { "}\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serializes the per-point summary lines as CSV (field quoting
    /// shared with every other exporter; `time_at_hz` is `hz:seconds`
    /// pairs in one field).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "point,key,cache_hit,ok,windows,virtual_s,fpga_s,wall_s,all_halted,instructions,peak_temp_k,final_temp_k,throttled_fraction,time_at_hz,unconverged_substeps,worst_residual_k,error\n",
        );
        for p in &self.points {
            let key = p.key.map_or_else(String::new, |k| format!("{k:016x}"));
            match &p.outcome {
                Ok(s) => out.push_str(&format!(
                    "{},{},{},true,{},{},{},{},{},{},{},{},{},{},{},{},\n",
                    csv_field(&p.label),
                    key,
                    p.cache_hit,
                    s.windows,
                    csv_f64(s.virtual_s, 6),
                    csv_f64(s.fpga_s, 6),
                    csv_f64(s.wall_s, 6),
                    s.all_halted,
                    s.instructions,
                    csv_opt(s.peak_temp_k),
                    csv_opt(s.final_temp_k),
                    csv_f64(s.throttled_fraction, 4),
                    csv_field(&s.residency_field()),
                    s.unconverged_substeps,
                    csv_f64(s.worst_residual_k, 9),
                )),
                // 12 empty fields (windows..worst_residual_k) keep failed
                // rows aligned with the 17-column header.
                Err(e) => out.push_str(&format!(
                    "{},{},false,false,,,,,,,,,,,,,{}\n",
                    csv_field(&p.label),
                    key,
                    csv_field(&e.to_string())
                )),
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temu_platform::PlatformError;

    #[test]
    fn fnv_is_stable() {
        // Reference vectors for 64-bit FNV-1a — the on-disk cache format
        // depends on these never changing.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn expansion_counts_labels_and_orders_points() {
        let sweep = Sweep::new("t", Scenario::new()).cores(&[1, 2]).windows(&[1, 2, 3]);
        assert_eq!(sweep.n_points(), 6);
        let points = sweep.expand();
        assert_eq!(points.len(), 6);
        // First axis slowest-varying, later axes cycle fastest.
        let labels: Vec<&str> = points.iter().map(|p| p.label.as_str()).collect();
        assert_eq!(
            labels,
            vec![
                "cores=1/windows=1w",
                "cores=1/windows=2w",
                "cores=1/windows=3w",
                "cores=2/windows=1w",
                "cores=2/windows=2w",
                "cores=2/windows=3w",
            ]
        );
        for (i, p) in points.iter().enumerate() {
            assert_eq!(p.index, i);
            let s = p.scenario.as_ref().unwrap();
            assert_eq!(s.label(), format!("t/{}", p.label), "scenario names carry the sweep prefix");
        }
        // All six configurations are distinct, so all six keys are.
        let mut keys: Vec<u64> = points.iter().map(|p| p.key.unwrap()).collect();
        keys.sort_unstable();
        keys.dedup();
        assert_eq!(keys.len(), 6);
    }

    #[test]
    fn content_key_ignores_display_name_only() {
        let a = Scenario::exploration_bus(2);
        let b = Scenario::exploration_bus(2).name("renamed");
        let c = Scenario::exploration_bus(2).sampling_window_s(0.002);
        assert_eq!(a.content_key(), b.content_key(), "names do not affect the key");
        assert_ne!(a.content_key(), c.content_key(), "configuration does");
    }

    #[test]
    fn inverted_band_grid_point_is_a_typed_platform_error() {
        let points = Sweep::new("bad", Scenario::new())
            .dfs_bands(&[(350.0, 340.0), (340.0, 350.0)], 500_000_000, 100_000_000)
            .expand();
        assert_eq!(points.len(), 2);
        assert!(points[0].scenario.is_ok());
        match &points[1].scenario {
            Err(TemuError::Platform(PlatformError::DfsLadder { .. })) => {}
            other => panic!("expected a typed DfsLadder error, got {other:?}"),
        }
        assert!(points[1].key.is_none());
    }

    #[test]
    fn flat_json_round_trips_a_summary() {
        let summary = PointSummary {
            windows: 12,
            virtual_s: 0.012,
            fpga_s: 0.05,
            wall_s: 0.25,
            all_halted: true,
            instructions: 34567,
            peak_temp_k: Some(351.25),
            final_temp_k: None,
            throttled_fraction: 0.25,
            time_at_hz: vec![(500_000_000, 0.01), (100_000_000, 0.002)],
            unconverged_substeps: 0,
            worst_residual_k: 0.0,
        };
        let line = format!("{{\"key\": \"{:016x}\", {}}}", 0xdead_beefu64, summary.json_fields());
        let (key, decoded) = ResultCache::decode_line(&line).expect("line parses");
        assert_eq!(key, 0xdead_beef);
        assert_eq!(decoded.windows, 12);
        assert_eq!(decoded.peak_temp_k, Some(351.25));
        assert_eq!(decoded.final_temp_k, None);
        assert_eq!(decoded.time_at_hz, summary.time_at_hz);
        assert!(ResultCache::decode_line("not json").is_none());
        assert!(ResultCache::decode_line("{\"key\": \"zz\"}").is_none());
    }

    #[test]
    fn cache_handles_share_state() {
        let a = ResultCache::in_memory();
        let b = a.clone();
        a.insert(
            7,
            PointSummary {
                windows: 1,
                virtual_s: 0.0,
                fpga_s: 0.0,
                wall_s: 0.0,
                all_halted: true,
                instructions: 0,
                peak_temp_k: None,
                final_temp_k: None,
                throttled_fraction: 0.0,
                time_at_hz: Vec::new(),
                unconverged_substeps: 0,
                worst_residual_k: 0.0,
            },
        );
        assert_eq!(b.len(), 1);
        assert!(b.get(7).is_some());
        assert!(b.get(8).is_none());
    }
}
