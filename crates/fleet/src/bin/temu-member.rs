//! `temu-member`: the `temu-serve` CLI under the fleet crate's name.
//!
//! Identical behavior to `temu-serve` (same flags, same banner — both
//! call [`temu_serve::cli::serve_main`]). It exists so this crate's
//! integration tests can spawn real member processes via
//! `CARGO_BIN_EXE_temu-member` — cargo only exposes that env var for
//! bins of the crate under test — and so a fleet deployment can name
//! its member role explicitly.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    temu_serve::cli::serve_main(&args);
}
