//! # temu-thermal — RC-network thermal model (paper §5)
//!
//! A C++-library-equivalent in Rust: the silicon die and its copper heat
//! spreader are divided into box-shaped cells of several sizes (finer cells
//! over the floorplan components flagged *hot*, §5.2 / Fig. 3a); every cell
//! carries four lateral thermal resistances, one vertical resistance and one
//! thermal capacitance (Fig. 3b). Silicon conductivity is **non-linear**,
//! `k(T) = 150 · (300/T)^{4/3} W/mK` (Table 2); the copper spreader is
//! linear. Heat enters as equivalent current sources on the bottom-surface
//! cells (power density × cell area); no heat leaves through the bottom or
//! the sides, and the top surface convects into the package through a
//! 20 K/W package-to-air resistance weighted by cell area — all exactly the
//! paper's §5.2 boundary conditions.
//!
//! Each cell interacts only with its neighbours, so one integration step is
//! linear in the number of cells; the explicit integrator picks a
//! stability-bounded internal substep automatically.
//!
//! ```
//! use temu_thermal::{Floorplan, GridConfig, ThermalModel};
//!
//! let mut fp = Floorplan::new("die", 4000.0, 4000.0);
//! let cpu = fp.add_component("cpu", 500.0, 500.0, 1500.0, 1500.0, true);
//! let model_cfg = GridConfig::default();
//! let mut model = ThermalModel::new(&fp, &model_cfg).unwrap();
//! model.set_component_power(cpu, 1.5); // watts
//! model.step(0.010);                   // 10 ms sampling window
//! assert!(model.component_temp(cpu) > 300.0);
//! ```

mod floorplan;
mod grid;
mod props;
mod reference;
mod solver;

pub use floorplan::{Component, ComponentId, Floorplan};
pub use grid::{GridConfig, Integrator, ThermalGrid};
pub use props::{
    silicon_conductivity, ThermalProps, COPPER_CONDUCTIVITY, COPPER_SPECIFIC_HEAT_PER_UM3,
    COPPER_THICKNESS_UM, PACKAGE_TO_AIR_K_PER_W, SILICON_SPECIFIC_HEAT_PER_UM3, SILICON_THICKNESS_UM,
};
pub use reference::analytic_stack_temp;
pub use solver::ThermalModel;
