//! Chaos e2e: the fault-injection harness turned up high against a real
//! in-process server. Workers panic at checkpoints, journal appends tear,
//! and fresh connections drop — yet no request hangs, every job reaches a
//! terminal state, progress accumulates in the store across panics, and a
//! resubmitted sweep eventually completes fully from the cache.
//!
//! Lives in its own test binary so `fault::install` (process-global,
//! first caller wins) cannot leak into the other e2e suites.

use std::path::PathBuf;
use temu_framework::{
    AxisSpec, ImplicitSolve, JsonValue, ScenarioSpec, SweepSpec, WorkloadSpec,
};
use temu_serve::client::submit_with_retry;
use temu_serve::journal::replay;
use temu_serve::{Client, ClientError, FaultPlan, RetryPolicy, ServeConfig, Server};

/// A 4-point sweep on one campaign thread, so a checkpoint (and therefore
/// a `worker_panic` roll) lands between every grid point.
fn chaos_sweep() -> SweepSpec {
    let tiny = |iters: u32| WorkloadSpec::Matrix { n: 4, iters, cores: 1 };
    SweepSpec {
        name: String::from("chaos"),
        base: ScenarioSpec {
            cores: Some(1),
            workload: Some(tiny(1)),
            sampling_window_s: Some(0.0005),
            windows: Some(2),
            strict_convergence: Some(true),
            ..ScenarioSpec::default()
        },
        axes: vec![
            AxisSpec::Workloads(vec![tiny(1), tiny(2)]),
            AxisSpec::Solvers(vec![ImplicitSolve::GaussSeidel, ImplicitSolve::Multigrid]),
        ],
        threads: Some(1),
    }
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("temu_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Retries a client call until it survives the connection-dropping fault.
fn with_retry<T>(mut call: impl FnMut() -> Result<T, ClientError>) -> T {
    for _ in 0..40 {
        match call() {
            Ok(value) => return value,
            Err(e) if e.is_transient() => std::thread::sleep(std::time::Duration::from_millis(5)),
            Err(e) => panic!("non-transient client error under chaos: {e}"),
        }
    }
    panic!("client call did not survive 40 attempts under chaos");
}

#[test]
fn server_under_injected_faults_stays_terminal_and_converges_to_cached() {
    // Every fault dialed high, installed before the server exists. The
    // `install` return tells us whether this process won the global slot
    // (it must — this test binary owns it).
    assert!(
        temu_serve::fault::install(FaultPlan { worker_panic: 0.5, torn_write: 0.5, drop_conn: 0.3 }),
        "this test binary installs the fault plan first"
    );

    let dir = temp_dir();
    let store = dir.join("cache.jsonl");
    let _ = std::fs::remove_file(&store);
    let journal = store.with_file_name("jobs.jsonl");
    let _ = std::fs::remove_file(&journal);

    let handle = Server::spawn(ServeConfig {
        addr: String::from("127.0.0.1:0"),
        store: Some(store.clone()),
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port");
    let addr = handle.addr().to_string();
    let spec = chaos_sweep();
    let policy = RetryPolicy { retries: 8, ..RetryPolicy::default() };

    // Resubmit until one run completes with every point ok. Each failed
    // run still banked at least the points it executed before its panic
    // (the checkpoint hook syncs the store first, then rolls the panic
    // die), so this converges long before the attempt budget — the final
    // successful run is typically served fully from the cache, where no
    // checkpoint fires and `worker_panic` cannot reach it.
    let mut done = None;
    let mut attempts = 0u32;
    while attempts < 60 {
        attempts += 1;
        let outcome = submit_with_retry(&addr, &policy, &spec, true, 0, |_| {})
            .expect("submission survives transient chaos");
        let summary = outcome.done.expect("watched submissions end with a done summary");
        if summary.ok && summary.failed == 0 {
            done = Some(summary);
            break;
        }
    }
    let done = done.expect("a chaos-battered sweep still completes within 60 submissions");
    assert_eq!(done.points, 4);
    assert_eq!(done.executed + done.cache_hits, 4, "the whole grid was served");

    // One more submission is pure cache: immune to worker panics.
    let outcome = submit_with_retry(&addr, &policy, &spec, true, 0, |_| {})
        .expect("cached resubmission survives transient chaos");
    let cached = outcome.done.unwrap();
    assert!(cached.ok);
    assert_eq!((cached.cache_hits, cached.executed, cached.failed), (4, 0, 0));

    // Every job the server ever accepted is terminal, and the server is
    // still answering requests.
    let stats = with_retry(|| Client::connect_with_retry(&addr, &policy)?.stats());
    let counter = |k: &str| stats.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
    assert_eq!(stats.get("ok").and_then(JsonValue::as_bool), Some(true));
    assert_eq!(counter("running"), 0);
    assert_eq!(counter("queue_depth"), 0);
    assert_eq!(
        counter("jobs_submitted"),
        counter("jobs_completed") + counter("jobs_failed") + counter("jobs_cancelled"),
        "no job is left in limbo: {stats}"
    );
    assert!(counter("jobs_completed") >= 2, "both clean runs completed: {stats}");

    with_retry(|| Client::connect_with_retry(&addr, &policy)?.shutdown());
    handle.shutdown();

    // The journal the chaos run left behind — torn appends and all —
    // replays without panicking, and never resurrects a job id that was
    // never submitted.
    let text = std::fs::read_to_string(&journal).expect("journal exists next to the store");
    let replayed = replay(&text);
    let submitted = counter("jobs_submitted");
    for job in &replayed.pending {
        assert!(job.id >= 1 && job.id <= submitted, "phantom pending job {}", job.id);
        // A torn tail may lose the highest ids entirely, but whatever is
        // recoverable must be cleared by the fresh-id horizon.
        assert!(replayed.next_id > job.id, "fresh ids clear every recovered job");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
