//! Textual disassembly of TE32 instructions.
//!
//! The output uses the same mnemonics the assembler accepts, so
//! `assemble(disassemble(i))` reproduces `i` (branch/jump targets are printed
//! as numeric offsets, which the assembler also accepts).

use crate::instr::{AluImmOp, AluOp, Cond, Instr, ShiftOp, Width};

fn alu_name(op: AluOp) -> &'static str {
    match op {
        AluOp::Add => "add",
        AluOp::Sub => "sub",
        AluOp::And => "and",
        AluOp::Or => "or",
        AluOp::Xor => "xor",
        AluOp::Nor => "nor",
        AluOp::Sll => "sll",
        AluOp::Srl => "srl",
        AluOp::Sra => "sra",
        AluOp::Slt => "slt",
        AluOp::Sltu => "sltu",
        AluOp::Mul => "mul",
        AluOp::Mulh => "mulh",
        AluOp::Div => "div",
        AluOp::Rem => "rem",
    }
}

fn alu_imm_name(op: AluImmOp) -> &'static str {
    match op {
        AluImmOp::Add => "addi",
        AluImmOp::And => "andi",
        AluImmOp::Or => "ori",
        AluImmOp::Xor => "xori",
        AluImmOp::Slt => "slti",
        AluImmOp::Sltu => "sltiu",
    }
}

fn shift_name(op: ShiftOp) -> &'static str {
    match op {
        ShiftOp::Sll => "slli",
        ShiftOp::Srl => "srli",
        ShiftOp::Sra => "srai",
    }
}

fn load_name(width: Width, signed: bool) -> &'static str {
    match (width, signed) {
        (Width::Word, _) => "lw",
        (Width::Half, true) => "lh",
        (Width::Half, false) => "lhu",
        (Width::Byte, true) => "lb",
        (Width::Byte, false) => "lbu",
    }
}

fn store_name(width: Width) -> &'static str {
    match width {
        Width::Word => "sw",
        Width::Half => "sh",
        Width::Byte => "sb",
    }
}

fn cond_name(cond: Cond) -> &'static str {
    match cond {
        Cond::Eq => "beq",
        Cond::Ne => "bne",
        Cond::Lt => "blt",
        Cond::Ge => "bge",
        Cond::Ltu => "bltu",
        Cond::Geu => "bgeu",
    }
}

/// Renders one instruction as assembler text.
pub fn disassemble(instr: Instr) -> String {
    match instr {
        Instr::Alu { op, rd, rs1, rs2 } => format!("{} {rd}, {rs1}, {rs2}", alu_name(op)),
        Instr::AluImm { op, rd, rs1, imm } => format!("{} {rd}, {rs1}, {imm}", alu_imm_name(op)),
        Instr::ShiftImm { op, rd, rs1, sh } => format!("{} {rd}, {rs1}, {sh}", shift_name(op)),
        Instr::Lui { rd, imm } => format!("lui {rd}, {:#x}", imm),
        Instr::Load { width, signed, rd, rs1, off } => {
            format!("{} {rd}, {off}({rs1})", load_name(width, signed))
        }
        Instr::Store { width, rs2, rs1, off } => format!("{} {rs2}, {off}({rs1})", store_name(width)),
        Instr::Tas { rd, rs1, off } => format!("tas {rd}, {off}({rs1})"),
        Instr::Branch { cond, rs1, rs2, off } => format!("{} {rs1}, {rs2}, {off}", cond_name(cond)),
        Instr::Jal { off } => format!("jal {off}"),
        Instr::Jalr { rd, rs1, off } => format!("jalr {rd}, {rs1}, {off}"),
        Instr::Halt => "halt".to_string(),
    }
}

/// Disassembles a full image, one line per word; undecodable words are shown
/// as `.word` directives.
pub fn disassemble_image(base: u32, words: &[u32]) -> String {
    let mut out = String::new();
    for (i, &w) in words.iter().enumerate() {
        let addr = base + (i as u32) * 4;
        let text = match Instr::decode(w) {
            Ok(instr) => disassemble(instr),
            Err(_) => format!(".word {w:#010x}"),
        };
        out.push_str(&format!("{addr:#010x}:  {text}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Reg;

    #[test]
    fn renders_representative_instructions() {
        let r = Reg::new;
        assert_eq!(disassemble(Instr::Alu { op: AluOp::Add, rd: r(1), rs1: r(2), rs2: r(3) }), "add r1, r2, r3");
        assert_eq!(
            disassemble(Instr::Load { width: Width::Word, signed: true, rd: r(4), rs1: r(5), off: -8 }),
            "lw r4, -8(r5)"
        );
        assert_eq!(
            disassemble(Instr::Store { width: Width::Byte, rs2: r(6), rs1: r(7), off: 3 }),
            "sb r6, 3(r7)"
        );
        assert_eq!(disassemble(Instr::Branch { cond: Cond::Ne, rs1: r(1), rs2: r(0), off: -2 }), "bne r1, r0, -2");
        assert_eq!(disassemble(Instr::Lui { rd: r(9), imm: 0x1234 }), "lui r9, 0x1234");
        assert_eq!(disassemble(Instr::Halt), "halt");
    }

    #[test]
    fn disassemble_reassemble_is_identity_for_every_instruction() {
        // Exhaustively walk a dense sample of the instruction space: every
        // decodable word must disassemble to text that reassembles to an
        // instruction with identical semantics (same canonical encoding).
        let mut checked = 0u32;
        for funct in 0..16u32 {
            for regs in [0u32, 0x0123 << 12, 0x3FFF << 11] {
                let word = regs | funct;
                if let Ok(instr) = Instr::decode(word) {
                    let text = disassemble(instr);
                    let prog = temu_isa_reasm(&text);
                    assert_eq!(prog, instr.encode(), "round-trip failed for `{text}`");
                    checked += 1;
                }
            }
        }
        for opcode in 1..0x30u32 {
            let word = (opcode << 26) | (3 << 21) | (4 << 16) | 0x0010;
            if let Ok(instr) = Instr::decode(word) {
                let text = disassemble(instr);
                assert_eq!(temu_isa_reasm(&text), instr.encode(), "round-trip failed for `{text}`");
                checked += 1;
            }
        }
        assert!(checked > 30, "sampled {checked} encodings");
    }

    fn temu_isa_reasm(line: &str) -> u32 {
        let p = crate::asm::assemble(line).expect("disassembly is valid assembly");
        assert_eq!(p.words.len(), 1);
        p.words[0]
    }

    #[test]
    fn image_disassembly_marks_data_words() {
        let words = vec![Instr::Halt.encode(), 0xF800_0000];
        let text = disassemble_image(0, &words);
        assert!(text.contains("halt"));
        assert!(text.contains(".word"));
    }
}
