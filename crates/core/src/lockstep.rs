//! Batched lockstep execution of grid points that share a thermal
//! operator.
//!
//! A sweep whose points share floorplan geometry and solver configuration
//! (a DFS-band study, a workload comparison on one die) builds k thermal
//! models over **one** shared grid `Arc` (the sweep's
//! [`ArtifactCache`](crate::ArtifactCache)). This driver advances such a
//! group window-by-window in lockstep: every member runs the platform
//! half of its window ([`ThermalEmulation::window_begin`]), then all k
//! temperature fields advance through one
//! `ThermalModel::try_step_batch` call — the fused many-RHS Gauss–Seidel
//! kernel sweeps all k right-hand sides against the shared matrix in one
//! cache-friendly pass — and finally each member finishes its window
//! (sensor feedback, DFS policy, bookkeeping). The batched kernel is
//! bitwise-identical to stepping each model alone, so lockstep execution
//! changes wall-clock time, never results.
//!
//! Members leave the group as they reach their own budget (halt or window
//! cap); the batch simply narrows. Groups are formed by
//! `Scenario::lockstep_group_key` — equal keys guarantee one shared grid,
//! one solver configuration and one sampling window, which is exactly
//! what `try_step_batch` requires to fuse (it falls back to sequential
//! stepping for configurations it cannot fuse, so grouping is a
//! performance decision, never a correctness one).

use crate::emulation::ThermalEmulation;
use crate::error::TemuError;
use crate::scenario::{RunBudget, Scenario, ScenarioRun};
use std::time::{Duration, Instant};
use temu_thermal::ThermalModel;

/// One grid point's outcome from a lockstep group run.
pub(crate) struct LockstepOutcome {
    /// The caller-supplied slot (the point's index in the sweep queue).
    pub slot: usize,
    /// Wall time from group start to this point's completion.
    pub wall: Duration,
    /// The finished run, or the typed error that stopped the point.
    pub outcome: Result<ScenarioRun, TemuError>,
}

struct Active {
    slot: usize,
    name: String,
    emu: ThermalEmulation,
    budget: RunBudget,
    windows_done: u64,
}

impl Active {
    fn done(&self) -> bool {
        match self.budget {
            RunBudget::Windows(n) => self.windows_done >= n,
            RunBudget::ToHalt { max_windows } => {
                self.emu.machine().all_halted() || self.windows_done >= max_windows
            }
        }
    }

    fn finish(self, t0: Instant) -> LockstepOutcome {
        let report = self.emu.report(t0);
        LockstepOutcome {
            slot: self.slot,
            wall: t0.elapsed(),
            outcome: Ok(ScenarioRun { name: self.name, report, trace: self.emu.into_trace() }),
        }
    }
}

/// Runs one lockstep group of already-built emulations to their budgets.
/// `members` are `(slot, scenario, emulation)` triples whose scenarios
/// share a lockstep group key (same sampling window — asserted in debug
/// builds).
///
/// Error containment mirrors the campaign path per *member* where
/// attribution is possible: a platform fault in one member's window
/// removes only that member. A batched thermal-step failure (strict-mode
/// non-convergence) cannot be attributed mid-batch — every model advanced
/// through the same fused substeps — so it fails every member still in
/// the group with that error.
pub(crate) fn run_group(members: Vec<(usize, Scenario, ThermalEmulation)>) -> Vec<LockstepOutcome> {
    let t0 = Instant::now();
    let mut out = Vec::with_capacity(members.len());
    let window_s = members.first().map_or(0.0, |(_, _, emu)| emu.window_seconds());
    let mut active: Vec<Active> = members
        .into_iter()
        .map(|(slot, scenario, mut emu)| {
            debug_assert!(
                (emu.window_seconds() - window_s).abs() < f64::EPSILON,
                "lockstep group members share one sampling window"
            );
            emu.begin_call();
            Active { slot, name: scenario.label(), emu, budget: scenario.budget(), windows_done: 0 }
        })
        .collect();

    while !active.is_empty() {
        // Platform half of the window, per member; faults remove only the
        // faulting member.
        let mut i = 0;
        while i < active.len() {
            match active[i].emu.window_begin() {
                Ok(()) => i += 1,
                Err(e) => {
                    let a = active.swap_remove(i);
                    out.push(LockstepOutcome { slot: a.slot, wall: t0.elapsed(), outcome: Err(e) });
                }
            }
        }
        if active.is_empty() {
            break;
        }

        // One batched thermal step for every member still in the round.
        let mut models: Vec<&mut ThermalModel> =
            active.iter_mut().map(|a| a.emu.model_mut()).collect();
        if let Err(e) = ThermalModel::try_step_batch(&mut models, window_s) {
            // See the function docs: a batched failure is unattributable.
            for a in active.drain(..) {
                out.push(LockstepOutcome {
                    slot: a.slot,
                    wall: t0.elapsed(),
                    outcome: Err(TemuError::Thermal(e)),
                });
            }
            break;
        }

        // Feedback half, budget accounting, retirement.
        let mut i = 0;
        while i < active.len() {
            if let Err(e) = active[i].emu.window_finish() {
                // Unreachable after a successful window_begin, but the
                // typed protocol error deserves the same per-member
                // containment as a platform fault.
                let a = active.swap_remove(i);
                out.push(LockstepOutcome { slot: a.slot, wall: t0.elapsed(), outcome: Err(e) });
                continue;
            }
            active[i].windows_done += 1;
            if active[i].done() {
                out.push(active.swap_remove(i).finish(t0));
            } else {
                i += 1;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifacts::ArtifactCache;
    use crate::scenario::Workload;
    use temu_workloads::matrix::MatrixConfig;

    fn point(iters: u32, windows: u64) -> Scenario {
        Scenario::new()
            .workload(Workload::Matrix(MatrixConfig { n: 8, iters, cores: 4 }))
            .sampling_window_s(0.001)
            .windows(windows)
    }

    #[test]
    fn lockstep_group_matches_solo_runs_bitwise() {
        let cache = ArtifactCache::new();
        let scenarios = vec![point(10_000, 4), point(40_000, 6), point(25_000, 5)];
        let members: Vec<(usize, Scenario, ThermalEmulation)> = scenarios
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.clone(), s.build_with(Some(&cache)).unwrap()))
            .collect();
        // The shared-geometry points really did share one mesh.
        assert_eq!(cache.stats().mesh_misses, 1);
        assert_eq!(cache.stats().mesh_hits, 2);

        let mut results = run_group(members);
        results.sort_by_key(|r| r.slot);
        assert_eq!(results.len(), 3);
        for (r, s) in results.iter().zip(&scenarios) {
            let batched = r.outcome.as_ref().expect("lockstep point succeeds");
            let solo = s.run().unwrap();
            assert_eq!(batched.report.windows, solo.report.windows);
            assert_eq!(batched.trace.samples.len(), solo.trace.samples.len());
            for (x, y) in batched.trace.samples.iter().zip(solo.trace.samples.iter()) {
                assert_eq!(x.virtual_hz, y.virtual_hz);
                assert_eq!(
                    x.max_temp_k.to_bits(),
                    y.max_temp_k.to_bits(),
                    "lockstep trace is bitwise-identical to the solo run"
                );
            }
        }
    }

    #[test]
    fn members_retire_at_their_own_budgets() {
        let cache = ArtifactCache::new();
        let scenarios = [point(100_000, 2), point(100_000, 7)];
        let members: Vec<(usize, Scenario, ThermalEmulation)> = scenarios
            .iter()
            .enumerate()
            .map(|(i, s)| (i, s.clone(), s.build_with(Some(&cache)).unwrap()))
            .collect();
        let mut results = run_group(members);
        results.sort_by_key(|r| r.slot);
        assert_eq!(results[0].outcome.as_ref().unwrap().report.windows, 2);
        assert_eq!(results[1].outcome.as_ref().unwrap().report.windows, 7);
    }
}
