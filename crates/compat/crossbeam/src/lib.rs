//! Offline stand-in for the `crossbeam` crate: `channel::bounded` over
//! `std::sync::mpsc::sync_channel` (the only surface the workspace uses).

/// Multi-producer, single-consumer bounded channels.
pub mod channel {
    use std::sync::mpsc;

    /// Sending half of a bounded channel.
    #[derive(Clone, Debug)]
    pub struct Sender<T>(mpsc::SyncSender<T>);

    /// Receiving half of a bounded channel.
    #[derive(Debug)]
    pub struct Receiver<T>(mpsc::Receiver<T>);

    /// Send failed: the receiver is gone. Carries the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Receive failed: all senders are gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    impl<T> Sender<T> {
        /// Blocks until the value is queued or the receiver disconnects.
        ///
        /// # Errors
        ///
        /// Returns the value back if the receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|mpsc::SendError(v)| SendError(v))
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a value arrives or every sender disconnects.
        ///
        /// # Errors
        ///
        /// Returns [`RecvError`] when the channel is closed and drained.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv().map_err(|_| RecvError)
        }
    }

    /// A bounded FIFO channel with capacity `cap`.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn ping_pong() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
    }

    #[test]
    fn send_to_dropped_receiver_errors() {
        let (tx, rx) = channel::bounded::<u32>(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(channel::SendError(9)));
    }
}
