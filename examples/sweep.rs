//! Design-space sweeps with caching: expand a cartesian parameter grid
//! over DFS frequency ladders and core counts, run it as one campaign with
//! streaming per-point progress, then re-run it and watch every point come
//! back from the content-keyed result cache without executing a single
//! scenario — the "fast design-space exploration" loop of section 1, made
//! incremental.
//!
//! ```sh
//! cargo run --release --example sweep
//! ```

use temu::platform::{DfsBand, DfsPolicy};
use temu::{ResultCache, Scenario, Sweep, TemuError, Workload};
use temu::workloads::matrix::MatrixConfig;

fn main() -> Result<(), TemuError> {
    // A 3-level ladder (500 → 250 → 100 MHz) next to a 2-level policy and
    // an unmanaged baseline. The thresholds sit just above ambient so the
    // policies engage within this example's short observation window (the
    // paper's 350 K/340 K policy needs ~2.6 s of virtual time to trip —
    // run the `temu-bench` `sweep ladder` bin for the full experiment).
    // The constructors are fallible: an inverted hysteresis band is a
    // typed PlatformError, not a panic.
    let two_level = DfsPolicy::new(300.5, 300.3, 500_000_000, 100_000_000)?;
    let three_level = DfsPolicy::ladder(
        &[500_000_000, 250_000_000, 100_000_000],
        &[DfsBand { hot_k: 300.5, cool_k: 300.3 }, DfsBand { hot_k: 300.8, cool_k: 300.55 }],
    )?;

    let base = Scenario::new()
        .workload(Workload::Matrix(MatrixConfig::thermal(4, 20_000)))
        .windows(40)
        .sampling_window_s(0.002);

    let sweep = || {
        Sweep::new("dfs-ladders", base.clone())
            .cores(&[2, 4])
            .dfs_policies(vec![None, Some(two_level.clone()), Some(three_level.clone())])
            .on_progress(|p| {
                let outcome = match p.outcome {
                    Ok(s) => format!(
                        "peak {:.2} K, {:.0}% throttled{}",
                        s.peak_temp_k.unwrap_or(f64::NAN),
                        s.throttled_fraction * 100.0,
                        if p.cache_hit { "  [cached]" } else { "" }
                    ),
                    Err(e) => format!("failed: {e}"),
                };
                println!("  [{}/{}] {:<40} {outcome}", p.completed, p.total, p.label);
            })
    };

    // One shared cache: the grid runs once…
    let cache = ResultCache::in_memory();
    println!("first run (everything executes):");
    let report = sweep().run_cached(&cache);
    println!(
        "  -> {} executed, {} cache hits, {:.2} s\n",
        report.executed,
        report.cache_hits,
        report.wall.as_secs_f64()
    );

    // …and the identical sweep replays instantly from the cache.
    println!("identical re-run (zero executions):");
    let rerun = sweep().run_cached(&cache);
    println!(
        "  -> {} executed, {} cache hits, {:.3} s\n",
        rerun.executed,
        rerun.cache_hits,
        rerun.wall.as_secs_f64()
    );
    assert_eq!(rerun.executed, 0);

    println!("{}", report.to_csv());
    println!("Each row is one grid point; `time_at_hz` is the per-frequency residency");
    println!("(hz:seconds pairs) a multi-level ladder spreads across its rungs.");
    Ok(())
}
