//! Criterion benchmarks of the RC thermal solver (§5.2: one 10 ms sampling
//! window must run far faster than real time; the paper quotes 2 s of
//! simulation on 660 cells in 1.65 s).
//!
//! Each mesh is measured twice: `reference` is the seed-faithful solver
//! (natural-order serial Gauss–Seidel, per-substep coefficient refresh),
//! `optimized` is the CSR/colored path with lazy refresh, warm-started SOR
//! sweeps and threshold-based parallelism — the ratio is the PR-over-PR
//! perf trajectory the scaling benchmark tracks in `BENCH_thermal.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use temu_power::floorplans::fig4b_arm11;
use temu_thermal::{GridConfig, SweepMode, ThermalModel};

fn model_with_cells(target: &str, sweep: SweepMode) -> ThermalModel {
    let map = fig4b_arm11();
    let cfg = match target {
        "coarse" => GridConfig { default_div: 1, hot_div: 2, filler_pitch_um: 4000.0, ..GridConfig::default() },
        "default" => GridConfig::default(),
        _ => GridConfig { default_div: 3, hot_div: 6, filler_pitch_um: 700.0, ..GridConfig::default() },
    };
    let cfg = GridConfig { sweep, ..cfg };
    let mut m = ThermalModel::new(&map.floorplan, &cfg).expect("meshes");
    for &(p, _, _, _) in &map.cores {
        m.set_component_power(p, 1.2);
    }
    m
}

fn bench_thermal(c: &mut Criterion) {
    let mut group = c.benchmark_group("thermal_window_10ms");
    group.sample_size(20);
    for mesh in ["coarse", "default", "fine"] {
        for (label, sweep) in [("reference", SweepMode::Reference), ("optimized", SweepMode::Auto)] {
            let template = model_with_cells(mesh, sweep);
            let cells = template.grid().n_cells();
            group.bench_with_input(
                BenchmarkId::new("step", format!("{mesh}_{cells}cells_{label}")),
                &cells,
                |b, _| {
                    let mut model = template.clone();
                    // Take the model off the cold start so the measurement
                    // reflects the sustained co-emulation loop.
                    model.step(0.010);
                    b.iter(|| model.step(0.010));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_thermal);
criterion_main!(benches);
