//! A minimal persistent fork-join pool, shared by the solver's parallel
//! sweeps and (as [`temu_thermal::WorkerPool`](crate::WorkerPool)) by batch
//! runners higher in the stack.
//!
//! The colored Gauss–Seidel sweep dispatches one tiny job per color per
//! sweep iteration — thousands of joins per simulated window — so spawning
//! OS threads per join (`std::thread::scope`) is far too expensive. This
//! pool keeps its workers parked on a condvar and broadcasts a borrowed
//! closure to all of them; `run` returns only after every worker finished,
//! which is what makes handing out a non-`'static` closure sound.
//!
//! The solver uses a process-wide singleton shared by every `ThermalModel`
//! (models are `Clone` and must stay cheap to clone); a dispatch mutex
//! serializes concurrent `run` calls from different models. Independent
//! consumers (the framework's scenario campaigns) build their *own*
//! [`Pool`] with [`Pool::new`] instead of sharing the solver's — a job on
//! one pool may itself dispatch sweeps onto the global pool without
//! deadlocking on the dispatch mutex.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Registry handles for the pool's two wait states, resolved once: the
/// dispatch-mutex queue (callers serialized behind another model's job)
/// and the caller-side join wait for helper lanes. Both are per-`run`
/// (thousands per simulated window), so recording is gated on
/// `temu_obs::enabled()` and costs two `Instant` reads when on.
struct PoolObs {
    queue_wait_ns: Arc<temu_obs::Histogram>,
    join_wait_ns: Arc<temu_obs::Histogram>,
}

fn pool_obs() -> &'static PoolObs {
    static OBS: OnceLock<PoolObs> = OnceLock::new();
    OBS.get_or_init(|| {
        let scope = temu_obs::global().scope("thermal.pool");
        PoolObs {
            queue_wait_ns: scope.histogram("queue_wait_ns"),
            join_wait_ns: scope.histogram("join_wait_ns"),
        }
    })
}

/// Type-erased borrowed job: `(worker index, worker count)`. The lifetime
/// of the pointee is erased; `run` guarantees it outlives every use.
struct Job(*const (dyn Fn(usize, usize) + Sync + 'static));

// SAFETY: the pointee is `Sync` and `run` keeps the referent alive (and the
// caller blocked) until every worker has dropped its use of the pointer.
unsafe impl Send for Job {}

struct Shared {
    state: Mutex<State>,
    start: Condvar,
    done: Condvar,
    n_workers: usize,
    /// Set when any worker's job panicked; `run` converts it into a caller
    /// panic instead of silently returning partial results.
    job_panicked: AtomicBool,
}

struct State {
    /// Bumped per dispatched job so parked workers can tell "new job" from
    /// a spurious wake.
    seq: u64,
    job: Option<Job>,
    /// Workers still running the current job.
    remaining: usize,
    shutdown: bool,
}

/// A persistent fork-join worker pool.
///
/// `run` broadcasts a borrowed closure to `n_workers` lanes (index 0 runs on
/// the calling thread, the rest on parked worker threads) and returns when
/// every lane finished. Dropping the pool shuts its workers down.
pub struct Pool {
    shared: Arc<Shared>,
    /// Worker threads plus the calling thread.
    n_workers: usize,
    /// Serializes `run` calls from different callers.
    dispatch: Mutex<()>,
}

impl Pool {
    /// Builds a dedicated pool with `n_workers` lanes (clamped to at least
    /// one — the calling thread always participates). `n_workers - 1` OS
    /// threads are spawned and parked until jobs arrive.
    pub fn new(n_workers: usize) -> Pool {
        let n_workers = n_workers.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State { seq: 0, job: None, remaining: 0, shutdown: false }),
            start: Condvar::new(),
            done: Condvar::new(),
            n_workers,
            job_panicked: AtomicBool::new(false),
        });
        for index in 1..n_workers {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("temu-pool-{index}"))
                .spawn(move || worker_loop(&shared, index))
                .expect("spawn pool worker");
        }
        Pool { shared, n_workers, dispatch: Mutex::new(()) }
    }

    /// Worker lanes a job is split into (worker threads + caller).
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// Runs `f(worker, n_workers)` once for every worker index in
    /// `0..n_workers`, returning after all calls completed. Index 0 runs on
    /// the calling thread.
    ///
    /// # Panics
    ///
    /// Panics if `f` panicked on any lane. A caller-lane panic is resumed
    /// only after every helper finished (the borrowed closure must not be
    /// freed while helpers still hold its pointer); a helper-lane panic is
    /// re-raised here instead of deadlocking the join.
    pub fn run(&self, f: &(dyn Fn(usize, usize) + Sync)) {
        let t_queue = temu_obs::enabled().then(Instant::now);
        let _serialized = self.dispatch.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(t) = t_queue {
            pool_obs().queue_wait_ns.record_duration(t.elapsed());
        }
        let helpers = self.n_workers - 1;
        if helpers > 0 {
            // SAFETY: lifetime erasure only — `run` does not return until
            // every worker finished with the pointer.
            let ptr: *const (dyn Fn(usize, usize) + Sync + 'static) =
                unsafe { std::mem::transmute(f as *const (dyn Fn(usize, usize) + Sync)) };
            let mut st = self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            st.seq += 1;
            st.job = Some(Job(ptr));
            st.remaining = helpers;
            drop(st);
            self.shared.start.notify_all();
        }
        let caller = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(0, self.n_workers)));
        if helpers > 0 {
            let t_join = temu_obs::enabled().then(Instant::now);
            let mut st = self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            while st.remaining > 0 {
                st = self.shared.done.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            st.job = None;
            drop(st);
            if let Some(t) = t_join {
                pool_obs().join_wait_ns.record_duration(t.elapsed());
            }
        }
        if let Err(payload) = caller {
            std::panic::resume_unwind(payload);
        }
        if self.shared.job_panicked.swap(false, Ordering::AcqRel) {
            panic!("thermal pool worker panicked during a parallel job");
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        let mut st = self.shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        st.shutdown = true;
        drop(st);
        self.shared.start.notify_all();
    }
}

fn worker_loop(shared: &Shared, index: usize) {
    let mut last_seq = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            loop {
                if st.shutdown {
                    return;
                }
                if st.seq != last_seq {
                    last_seq = st.seq;
                    break st.job.as_ref().map(|j| j.0);
                }
                st = shared.start.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        if let Some(ptr) = job {
            // SAFETY: `run` blocks until `remaining` hits zero, so the
            // borrowed closure outlives this call.
            let f = unsafe { &*ptr };
            // The decrement must happen even if the job panics — a skipped
            // decrement would deadlock every future join.
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(index, shared.n_workers)))
                .is_err()
            {
                shared.job_panicked.store(true, Ordering::Release);
            }
            let mut st = shared.state.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            st.remaining -= 1;
            if st.remaining == 0 {
                shared.done.notify_one();
            }
        }
    }
}

/// The process-wide pool, created on first use with one worker per
/// available CPU (capped at 16 — sweep jobs are memory-bound and stop
/// scaling well before that). `TEMU_THERMAL_THREADS` overrides the count
/// (clamped to 1..=64): tune-down on shared hosts, force-up for testing
/// the parallel paths on small machines.
pub(crate) fn global() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::new(default_workers("TEMU_THERMAL_THREADS")))
}

/// Worker count from an environment override (clamped to 1..=64), falling
/// back to the available parallelism capped at 16 — sweep jobs are
/// memory-bound and stop scaling well before that.
///
/// This is the one resolution rule for every `TEMU_*_THREADS` variable in
/// the workspace (`TEMU_THERMAL_THREADS` for the solver's sweep pool,
/// `TEMU_CAMPAIGN_THREADS` for the framework's batch runner), so both
/// accept identical syntax and clamp/fall back the same way: a value that
/// fails to parse as an unsigned integer is ignored, not an error.
pub fn default_workers(env_var: &str) -> usize {
    workers_from(std::env::var(env_var).ok().as_deref())
}

/// The pure resolution rule behind [`default_workers`] (separated so tests
/// never have to mutate the process environment, which would race with
/// concurrent `getenv` calls from sibling tests).
fn workers_from(value: Option<&str>) -> usize {
    value
        .and_then(|v| v.parse::<usize>().ok())
        .map(|v| v.clamp(1, 64))
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()).min(16))
}

/// A sense-reversing spin barrier for synchronization points *inside* one
/// pool job (color boundaries and sweep boundaries of the implicit solve).
/// Spinning is appropriate there: the wait is sub-microsecond and every
/// participant is a dedicated pool worker already scheduled on its own
/// core; parking on a condvar would cost more than the whole sweep.
///
/// The barrier has no poisoning: a lane that panics between two `wait`s
/// would leave its peers spinning. Kernels that use it must keep their
/// per-cell bodies panic-free (indexing is bounds-proven by construction
/// and `debug_assert`ed in `UnsafeSlice`); jobs without internal barriers
/// are fully panic-safe via the pool's catch-and-rethrow.
pub(crate) struct SpinBarrier {
    count: std::sync::atomic::AtomicUsize,
    generation: std::sync::atomic::AtomicUsize,
    n: usize,
}

impl SpinBarrier {
    pub fn new(n: usize) -> SpinBarrier {
        SpinBarrier {
            count: std::sync::atomic::AtomicUsize::new(0),
            generation: std::sync::atomic::AtomicUsize::new(0),
            n,
        }
    }

    /// Blocks until all `n` participants have called `wait`.
    ///
    /// Spins briefly, then yields: when workers outnumber cores (forced
    /// parallelism on a small host) a pure spin would burn a full
    /// scheduling quantum waiting for a descheduled peer.
    pub fn wait(&self) {
        use std::sync::atomic::Ordering;
        let gen = self.generation.load(Ordering::Acquire);
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.generation.fetch_add(1, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.generation.load(Ordering::Acquire) == gen {
                spins += 1;
                if spins < 1 << 10 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// A `&mut [T]` that several workers may write through, at indices the
/// caller guarantees are disjoint per worker.
pub(crate) struct UnsafeSlice<'a, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'a mut [T]>,
}

unsafe impl<T: Send + Sync> Sync for UnsafeSlice<'_, T> {}
unsafe impl<T: Send + Sync> Send for UnsafeSlice<'_, T> {}

impl<'a, T> UnsafeSlice<'a, T> {
    pub fn new(slice: &'a mut [T]) -> UnsafeSlice<'a, T> {
        UnsafeSlice { ptr: slice.as_mut_ptr(), len: slice.len(), _marker: std::marker::PhantomData }
    }

    /// Writes `slice[i] = v`.
    ///
    /// # Safety
    ///
    /// No other thread may concurrently read or write index `i`.
    #[inline]
    pub unsafe fn write(&self, i: usize, v: T) {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) = v };
    }

    /// Reads `slice[i]`.
    ///
    /// # Safety
    ///
    /// No other thread may concurrently write index `i`.
    #[inline]
    pub unsafe fn read(&self, i: usize) -> T
    where
        T: Copy,
    {
        debug_assert!(i < self.len);
        unsafe { *self.ptr.add(i) }
    }
}

/// Splits `0..len` into `n_workers` near-equal contiguous chunks and returns
/// worker `w`'s half-open range.
#[inline]
pub(crate) fn chunk(len: usize, w: usize, n_workers: usize) -> std::ops::Range<usize> {
    let per = len.div_ceil(n_workers);
    let start = (w * per).min(len);
    let end = ((w + 1) * per).min(len);
    start..end
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn run_covers_every_worker_once() {
        let pool = global();
        let hits = AtomicUsize::new(0);
        pool.run(&|w, n| {
            assert!(w < n);
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), pool.n_workers());
    }

    #[test]
    fn parallel_sum_matches_serial() {
        let pool = global();
        let data: Vec<u64> = (0..100_000).collect();
        let mut out = vec![0u64; pool.n_workers()];
        let out_slice = UnsafeSlice::new(&mut out);
        pool.run(&|w, n| {
            let r = chunk(data.len(), w, n);
            let local: u64 = data[r].iter().sum();
            // SAFETY: one writer per worker slot.
            unsafe { out_slice.write(w, local) };
        });
        assert_eq!(out.iter().sum::<u64>(), (0..100_000u64).sum());
    }

    #[test]
    fn repeated_dispatch_is_stable() {
        let pool = global();
        for round in 0..500u64 {
            let acc = AtomicUsize::new(0);
            pool.run(&|w, _| {
                acc.fetch_add(w + round as usize, Ordering::Relaxed);
            });
            let n = pool.n_workers();
            assert_eq!(acc.load(Ordering::Relaxed), n * (n - 1) / 2 + n * round as usize);
        }
    }

    #[test]
    fn caller_lane_panic_propagates_and_pool_survives() {
        let pool = global();
        let result = std::panic::catch_unwind(|| {
            pool.run(&|w, _| {
                if w == 0 {
                    panic!("deliberate test panic");
                }
            });
        });
        assert!(result.is_err(), "caller-lane panic must propagate");
        // The pool is still serviceable afterwards.
        let hits = AtomicUsize::new(0);
        pool.run(&|_, _| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), pool.n_workers());
    }

    #[test]
    fn spin_barrier_orders_phases() {
        let pool = global();
        let n = pool.n_workers();
        let barrier = SpinBarrier::new(n);
        let mut phase1 = vec![0usize; n];
        let mut phase2 = vec![0usize; n];
        let p1 = UnsafeSlice::new(&mut phase1);
        let p2 = UnsafeSlice::new(&mut phase2);
        pool.run(&|w, nw| {
            // SAFETY: one slot per worker in each phase.
            unsafe { p1.write(w, w + 1) };
            barrier.wait();
            // After the barrier every phase-1 write is visible.
            let sum: usize = (0..nw).map(|i| unsafe { p1.read(i) }).sum();
            unsafe { p2.write(w, sum) };
        });
        let expect: usize = (1..=n).sum();
        assert!(phase2.iter().all(|&s| s == expect));
    }

    #[test]
    fn dedicated_pool_is_independent_of_the_global_one() {
        // A job running on a dedicated pool may itself dispatch onto the
        // global pool (the campaign-runs-parallel-solvers nesting) without
        // deadlocking on either dispatch mutex.
        let dedicated = Pool::new(2);
        let total = AtomicUsize::new(0);
        dedicated.run(&|_, _| {
            let inner = AtomicUsize::new(0);
            global().run(&|_, _| {
                inner.fetch_add(1, Ordering::SeqCst);
            });
            total.fetch_add(inner.load(Ordering::SeqCst), Ordering::SeqCst);
        });
        assert_eq!(total.load(Ordering::SeqCst), 2 * global().n_workers());
        drop(dedicated); // workers shut down without hanging the test
    }

    #[test]
    fn default_workers_parses_clamps_and_falls_back() {
        let fallback = workers_from(None);
        assert!((1..=16).contains(&fallback), "availability-derived default, capped at 16");
        assert_eq!(workers_from(Some("3")), 3);
        assert_eq!(workers_from(Some("0")), 1, "clamped up");
        assert_eq!(workers_from(Some("1000")), 64, "clamped down");
        assert_eq!(workers_from(Some("not-a-number")), fallback, "garbage is ignored, not fatal");
        assert_eq!(default_workers("TEMU_TEST_WORKERS_SURELY_UNSET"), fallback);
    }

    #[test]
    fn chunks_partition_exactly() {
        for len in [0usize, 1, 7, 100, 1001] {
            for n in 1..9 {
                let mut covered = 0;
                for w in 0..n {
                    covered += chunk(len, w, n).len();
                }
                assert_eq!(covered, len, "len {len} workers {n}");
            }
        }
    }
}
