//! Thermal-solver scaling benchmark (see `temu_bench::thermal_scaling`).
//!
//! Sweeps mesh sizes from the paper's ~660-cell operating point to ~46k
//! cells, measuring substeps/second for both integrators and every sweep
//! mode, and writes `BENCH_thermal.json` so the perf trajectory is tracked
//! across PRs.
//!
//! Flags:
//!   --smoke          two smallest rungs only, short budget; intended as
//!                    the tier-1 bench-smoke gate (fails on panic/NaN)
//!   --budget <s>     wall-clock budget per measurement (default 0.4;
//!                    smoke default 0.05)
//!   --mesh <name>    only measure one ladder rung (solver tuning)
//!   --out <path>     output path (default BENCH_thermal.json)

use temu_bench::thermal_scaling;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut budget = if smoke { 0.05 } else { 0.4 };
    let mut out = String::from("BENCH_thermal.json");
    let mut mesh: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--budget" => {
                budget = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--budget takes a positive number of seconds");
            }
            "--out" => out = it.next().expect("--out takes a path").clone(),
            "--mesh" => mesh = Some(it.next().expect("--mesh takes a rung name").clone()),
            "--smoke" => {}
            other => panic!(
                "unknown flag {other} (supported: --smoke, --budget <s>, --mesh <name>, --out <path>)"
            ),
        }
    }

    let report = thermal_scaling::run_filtered(smoke, budget, mesh.as_deref());

    println!(
        "Thermal solver scaling on the Fig. 4b ARM11 floorplan ({} host core(s){}):\n",
        report.host_cores,
        report
            .threads_override
            .map_or(String::new(), |t| format!(", TEMU_THERMAL_THREADS={t}"))
    );
    println!(
        "{:<16} {:>7} {:>14} {:>10} {:>7} {:>12} {:>7} {:>7} {:>7} {:>9}",
        "mesh", "cells", "integrator", "sweep", "solver", "substeps/s", "sweeps", "cycles", "unconv", "speedup"
    );
    for c in &report.cases {
        let speedup = report
            .speedup(c.mesh, c.integrator, c.sweep)
            .map_or(String::from("-"), |v| format!("{v:.2}x"));
        println!(
            "{:<16} {:>7} {:>14} {:>10} {:>7} {:>12.0} {:>7.1} {:>7.1} {:>7} {:>9}{}",
            c.mesh,
            c.cells,
            c.integrator,
            c.sweep,
            c.solver,
            c.substeps_per_s,
            c.avg_sweeps,
            c.avg_cycles,
            c.unconverged,
            speedup,
            if c.parallel_active { "  [parallel]" } else { "" },
        );
    }
    println!("\nArtifact build times (what one sweep-layer cache hit saves per point):");
    println!("{:<16} {:>7} {:>8} {:>14} {:>19}", "mesh", "tiles", "cells", "mesh_build_ms", "hierarchy_build_ms");
    for b in &report.builds {
        println!(
            "{:<16} {:>7} {:>8} {:>14.3} {:>19.3}",
            b.mesh, b.tiles, b.cells, b.mesh_build_ms, b.hierarchy_build_ms
        );
    }

    std::fs::write(&out, report.to_json()).expect("write report");
    println!("\nWrote {out}");
}
