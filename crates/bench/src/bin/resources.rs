//! Regenerates the FPGA utilization figures quoted through §3–§4.

use temu_fpga::{estimate, CostModel, V2VP30};
use temu_interconnect::NocConfig;
use temu_platform::{IcChoice, PlatformConfig, SnifferMode};

fn main() {
    let costs = CostModel::default();
    println!("Virtex-2 Pro VP30: {} slices, {} BRAM18, {} hard PPC405\n", V2VP30.slices, V2VP30.bram18, V2VP30.ppc405);

    println!("Per-component figures (model vs paper):");
    let pct = |s: u32| 100.0 * f64::from(s) / f64::from(V2VP30.slices);
    println!("  MicroBlaze soft core   : {} slices = {:.1}%   (paper: 574 slices, 4%)", costs.soft_core, pct(costs.soft_core));
    println!("  memory controller      : {} slices = {:.1}%   (paper: 2%)", costs.mem_controller, pct(costs.mem_controller));
    println!("  private memory i/f     : {} slices = {:.1}%   (paper: 1%)", costs.private_mem_if, pct(costs.private_mem_if));
    println!("  custom 32-bit bus      : {} slices = {:.1}%   (paper: 1%)", costs.bus, pct(costs.bus));
    println!("  count-logging sniffer  : {} slices = {:.2}%  (paper: 0.3%)", costs.sniffer_count, pct(costs.sniffer_count));
    println!("  event-logging sniffer  : {} slices = {:.2}%  (paper: 0.2%)", costs.sniffer_event, pct(costs.sniffer_event));

    println!("\n=== 4-processor exploration design (1 hard PPC405 + 3 MicroBlaze), paper: 66% ===");
    let r = estimate(&PlatformConfig::paper_bus(4), &costs, V2VP30, 1);
    print!("{}", r.render());

    println!("\n=== 2-switch NoC design, paper: 80% ===");
    let r = estimate(&PlatformConfig::paper_noc(4), &costs, V2VP30, 1);
    print!("{}", r.render());

    println!("\n=== 6-switch NoC system (4io/3buf switches), paper: 70% ===");
    let mut cfg = PlatformConfig::paper_noc(4);
    cfg.interconnect = IcChoice::Noc(NocConfig::paper_six_switch(4));
    cfg.dcache = None;
    let r = estimate(&cfg, &costs, V2VP30, 2);
    print!("{}", r.render());

    println!("\n=== event-logging variant of the 4-processor design ===");
    let mut cfg = PlatformConfig::paper_bus(4);
    cfg.sniffer_mode = SnifferMode::EventLogging { capacity: 4096 };
    let r = estimate(&cfg, &costs, V2VP30, 1);
    print!("{}", r.render());
}
