//! Flat CSR adjacency for the cell network, plus a conflict-free sweep
//! coloring.
//!
//! The solver's hot loops — Gauss–Seidel sweeps and explicit flow
//! accumulation — walk every cell's incident resistances. A
//! `Vec<Vec<(u32, u32)>>` neighbour list scatters those walks across one
//! heap allocation per cell; the CSR layout here packs the same information
//! into three flat arrays (`offsets`, `nbr`, `edge`) so a sweep is a single
//! linear pass over contiguous memory. Convection is folded in as a per-cell
//! entry alongside, so the per-cell update needs no branch for "has a
//! convection path".
//!
//! The coloring partitions cells so that no two adjacent cells share a
//! color. Sweeping color by color makes the Gauss–Seidel update free of
//! intra-color dependencies — every cell of one color can be updated in
//! parallel while reading only cells of other colors. On bipartite meshes
//! (uniform grids) the greedy coloring degenerates to the classic red-black
//! two-coloring; multi-resolution T-junctions introduce odd cycles and cost
//! one or two extra colors, which changes nothing about the sweep's
//! correctness.

use crate::grid::Edge;

/// Sentinel for "cell has no convection entry".
pub(crate) const NO_CONV: u32 = u32::MAX;

/// CSR-flattened cell adjacency with sweep coloring.
#[derive(Clone, Debug)]
pub(crate) struct CellCsr {
    /// `offsets[i]..offsets[i + 1]` indexes `nbr`/`edge` for cell `i`
    /// (length `n + 1`).
    pub offsets: Vec<u32>,
    /// Neighbour cell of each adjacency entry (length `2 * n_edges`).
    pub nbr: Vec<u32>,
    /// Edge index of each adjacency entry (indexes the solver's per-edge
    /// conductance array).
    pub edge: Vec<u32>,
    /// Convection-entry index per cell ([`NO_CONV`] when absent).
    pub conv: Vec<u32>,
    /// Cell ids grouped by color (a permutation of `0..n`).
    pub order: Vec<u32>,
    /// `order[color_offsets[c]..color_offsets[c + 1]]` are the cells of
    /// color `c`.
    pub color_offsets: Vec<u32>,
}

impl CellCsr {
    /// Builds the CSR layout and coloring for `n` cells.
    ///
    /// Per-cell entry order follows edge order, matching what a
    /// `push`-per-edge neighbour list would produce — sweeps in natural cell
    /// order therefore accumulate in exactly the same sequence as the
    /// nested-`Vec` layout did.
    pub fn build(n: usize, edges: &[Edge], convection: &[(usize, f64, f64)]) -> CellCsr {
        let mut counts = vec![0u32; n + 1];
        for e in edges {
            counts[e.a + 1] += 1;
            counts[e.b + 1] += 1;
        }
        let mut offsets = counts;
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut nbr = vec![0u32; offsets[n] as usize];
        let mut edge = vec![0u32; offsets[n] as usize];
        for (ei, e) in edges.iter().enumerate() {
            let ca = cursor[e.a] as usize;
            nbr[ca] = e.b as u32;
            edge[ca] = ei as u32;
            cursor[e.a] += 1;
            let cb = cursor[e.b] as usize;
            nbr[cb] = e.a as u32;
            edge[cb] = ei as u32;
            cursor[e.b] += 1;
        }

        let mut conv = vec![NO_CONV; n];
        for (ci, &(cell, _, _)) in convection.iter().enumerate() {
            conv[cell] = ci as u32;
        }

        // Greedy coloring in natural cell order: the smallest color absent
        // from the already-colored neighbours. Physical meshes need 2-4
        // colors; 64 is an assertion bound, not a tuning knob.
        let mut color = vec![u8::MAX; n];
        let mut n_colors = 0usize;
        for i in 0..n {
            let mut used = 0u64;
            for k in offsets[i] as usize..offsets[i + 1] as usize {
                let c = color[nbr[k] as usize];
                if c != u8::MAX {
                    used |= 1 << c;
                }
            }
            let c = used.trailing_ones() as usize;
            assert!(c < 64, "mesh adjacency needs more than 64 sweep colors");
            color[i] = c as u8;
            n_colors = n_colors.max(c + 1);
        }

        let mut color_counts = vec![0u32; n_colors + 1];
        for &c in &color {
            color_counts[c as usize + 1] += 1;
        }
        let mut color_offsets = color_counts;
        for c in 0..n_colors {
            color_offsets[c + 1] += color_offsets[c];
        }
        let mut color_cursor: Vec<u32> = color_offsets[..n_colors].to_vec();
        let mut order = vec![0u32; n];
        for (i, &c) in color.iter().enumerate() {
            let c = c as usize;
            order[color_cursor[c] as usize] = i as u32;
            color_cursor[c] += 1;
        }

        CellCsr { offsets, nbr, edge, conv, order, color_offsets }
    }

    /// Number of sweep colors.
    pub fn n_colors(&self) -> usize {
        self.color_offsets.len() - 1
    }

    /// The cells of one color, in ascending cell order.
    pub fn color_cells(&self, c: usize) -> &[u32] {
        &self.order[self.color_offsets[c] as usize..self.color_offsets[c + 1] as usize]
    }

    /// Number of resistive edges incident to `cell` (excluding convection).
    pub fn degree(&self, cell: usize) -> usize {
        (self.offsets[cell + 1] - self.offsets[cell]) as usize
    }

    /// Total adjacency entries (`2 × n_edges`) — the length of the
    /// solver's per-entry conductance arrays.
    pub fn n_entries(&self) -> usize {
        self.nbr.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(a: usize, b: usize) -> Edge {
        Edge { a, b, g_a: 1.0, g_b: 1.0 }
    }

    #[test]
    fn csr_matches_nested_vec_layout() {
        // A 2x2 grid with a vertical stack: same adjacency both ways.
        let edges = [edge(0, 1), edge(2, 3), edge(0, 2), edge(1, 3), edge(0, 4)];
        let conv = [(4usize, 1.0, 1.0)];
        let csr = CellCsr::build(5, &edges, &conv);
        let mut nested = vec![Vec::new(); 5];
        for (ei, e) in edges.iter().enumerate() {
            nested[e.a].push((e.b as u32, ei as u32));
            nested[e.b].push((e.a as u32, ei as u32));
        }
        for (i, expect) in nested.iter().enumerate() {
            let span = csr.offsets[i] as usize..csr.offsets[i + 1] as usize;
            let flat: Vec<(u32, u32)> =
                span.map(|k| (csr.nbr[k], csr.edge[k])).collect();
            assert_eq!(&flat, expect, "cell {i} entry order preserved");
            assert_eq!(csr.degree(i), expect.len());
        }
        assert_eq!(csr.conv[4], 0);
        assert_eq!(csr.conv[0], NO_CONV);
    }

    #[test]
    fn coloring_is_proper_and_covers_all_cells() {
        // Odd cycle (triangle) forces a third color; coloring stays proper.
        let edges = [edge(0, 1), edge(1, 2), edge(0, 2), edge(2, 3)];
        let csr = CellCsr::build(4, &edges, &[]);
        assert!(csr.n_colors() >= 3);
        let mut seen = [false; 4];
        for c in 0..csr.n_colors() {
            for &i in csr.color_cells(c) {
                assert!(!seen[i as usize], "each cell appears once");
                seen[i as usize] = true;
                for k in csr.offsets[i as usize] as usize..csr.offsets[i as usize + 1] as usize {
                    let j = csr.nbr[k];
                    assert!(
                        !csr.color_cells(c).contains(&j),
                        "neighbours {i} and {j} share color {c}"
                    );
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bipartite_grid_gets_two_colors() {
        // 3x3 uniform grid: classic red-black.
        let mut edges = Vec::new();
        for y in 0..3usize {
            for x in 0..3usize {
                let i = y * 3 + x;
                if x + 1 < 3 {
                    edges.push(edge(i, i + 1));
                }
                if y + 1 < 3 {
                    edges.push(edge(i, i + 3));
                }
            }
        }
        let csr = CellCsr::build(9, &edges, &[]);
        assert_eq!(csr.n_colors(), 2);
    }
}
