//! The job-server loop end to end, in one process: spin up `temu-serve`
//! on an ephemeral port, submit a sweep described as wire-format JSON
//! (exactly what `temu-client submit --spec file.json` sends), stream its
//! per-point progress, then resubmit it and watch the server answer the
//! whole job from its shared content-keyed cache without executing a
//! single scenario.
//!
//! ```sh
//! cargo run --release --example serve
//! ```
//!
//! Against a long-lived server the same loop is two shell commands:
//!
//! ```sh
//! temu-serve --store cache.jsonl &
//! temu-client submit --preset explore
//! ```

use temu::serve::{Client, ServeConfig, Server};
use temu::SweepSpec;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The experiment as data: a 4-point grid (two tiny MATRIX workloads ×
    // two implicit solvers) over the default §7 platform, shrunk to
    // fractions of a second per point.
    let spec_json = r#"{
        "sweep": "serve-example",
        "base": {
            "cores": 1,
            "workload": {"kind": "matrix", "n": 4, "iters": 1, "cores": 1},
            "sampling_window_s": 0.0005,
            "windows": 2,
            "strict_convergence": true
        },
        "axes": [
            {"axis": "workloads", "values": [
                {"kind": "matrix", "n": 4, "iters": 1, "cores": 1},
                {"kind": "matrix", "n": 4, "iters": 2, "cores": 1}
            ]},
            {"axis": "solvers", "values": ["gs", "mg"]}
        ]
    }"#;
    let spec = SweepSpec::from_json(spec_json)?;

    let handle =
        Server::spawn(ServeConfig { addr: String::from("127.0.0.1:0"), ..ServeConfig::default() })?;
    println!("temu-serve listening on {}", handle.addr());
    let mut client = Client::connect(&handle.addr().to_string())?;

    println!("\nsubmitting \"{}\" ({} points)…", spec.name, spec.lower()?.n_points());
    let first = client
        .submit(&spec, true, |event| println!("  {event}"))?
        .done
        .expect("watched submissions end with a done summary");
    println!("first run: {} executed, {} cache hits", first.executed, first.cache_hits);

    println!("\nresubmitting the identical spec…");
    let rerun = client.submit(&spec, true, |_| {})?.done.expect("done summary");
    println!("rerun:     {} executed, {} cache hits", rerun.executed, rerun.cache_hits);
    assert_eq!(rerun.executed, 0, "the shared cache answers the whole job");

    let stats = client.stats()?;
    println!("\nserver stats: {stats}");
    handle.shutdown();
    Ok(())
}
