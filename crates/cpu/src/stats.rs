//! Per-core statistics (the processor-level sniffer counters of §4.1).

use temu_state::{StateError, StateReader, StateWriter};

/// Counters a processor-level count-logging sniffer exports: the time the
/// core spent in active/stalled/idle mode plus instruction-mix counts.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles doing useful work (issue, execute, cache-hit access).
    pub active_cycles: u64,
    /// Cycles stalled on the memory hierarchy (misses, contention, memory latency).
    pub stall_cycles: u64,
    /// Cycles halted or frozen (filled in by the platform at window ends).
    pub idle_cycles: u64,
    /// Data loads executed.
    pub loads: u64,
    /// Data stores executed.
    pub stores: u64,
    /// Branch instructions executed.
    pub branches: u64,
    /// Branches that were taken.
    pub taken_branches: u64,
    /// Multiply instructions.
    pub muls: u64,
    /// Divide/remainder instructions.
    pub divs: u64,
}

impl CoreStats {
    /// Total accounted cycles.
    pub fn cycles(&self) -> u64 {
        self.active_cycles + self.stall_cycles + self.idle_cycles
    }

    /// Fraction of accounted cycles spent active (0 when no cycles).
    pub fn active_fraction(&self) -> f64 {
        if self.cycles() == 0 {
            0.0
        } else {
            self.active_cycles as f64 / self.cycles() as f64
        }
    }

    /// Accumulates another stats block.
    pub fn merge(&mut self, o: &CoreStats) {
        self.instructions += o.instructions;
        self.active_cycles += o.active_cycles;
        self.stall_cycles += o.stall_cycles;
        self.idle_cycles += o.idle_cycles;
        self.loads += o.loads;
        self.stores += o.stores;
        self.branches += o.branches;
        self.taken_branches += o.taken_branches;
        self.muls += o.muls;
        self.divs += o.divs;
    }

    /// Serializes the counters into a checkpoint stream.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.u64(self.instructions);
        w.u64(self.active_cycles);
        w.u64(self.stall_cycles);
        w.u64(self.idle_cycles);
        w.u64(self.loads);
        w.u64(self.stores);
        w.u64(self.branches);
        w.u64(self.taken_branches);
        w.u64(self.muls);
        w.u64(self.divs);
    }

    /// Restores the counters from a checkpoint stream.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from a corrupt stream.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.instructions = r.u64()?;
        self.active_cycles = r.u64()?;
        self.stall_cycles = r.u64()?;
        self.idle_cycles = r.u64()?;
        self.loads = r.u64()?;
        self.stores = r.u64()?;
        self.branches = r.u64()?;
        self.taken_branches = r.u64()?;
        self.muls = r.u64()?;
        self.divs = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_and_merge() {
        let mut s = CoreStats { active_cycles: 3, stall_cycles: 1, ..CoreStats::default() };
        assert_eq!(s.cycles(), 4);
        assert!((s.active_fraction() - 0.75).abs() < 1e-12);
        s.merge(&s.clone());
        assert_eq!(s.cycles(), 8);
        assert_eq!(CoreStats::default().active_fraction(), 0.0);
    }
}
