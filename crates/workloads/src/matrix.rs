//! The MATRIX / MATRIX-TM workload.
//!
//! Every core initializes two `n × n` integer matrices in its private
//! memory, multiplies them `iters` times, writes a checksum of the product
//! into its shared-memory slot, and (after a TAS-spinlock barrier) core 0
//! combines all partial checksums — "independent matrix multiplications at
//! each processor private memory and combined in memory at the end" (§7).
//! With `iters` in the tens of thousands this is MATRIX-TM, the Fig. 6
//! thermal stress driver ("a workload of 100K matrices ... to stress the
//! MPSoC processing power and observe thermal effects").

use crate::error::WorkloadError;
use crate::{MMIO_BASE, SHARED_BASE};
use temu_isa::asm::assemble;
use temu_isa::Program;

/// Parameters of a matrix workload instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MatrixConfig {
    /// Matrix dimension (n × n).
    pub n: u32,
    /// Multiplications per core.
    pub iters: u32,
    /// Cores participating (determines the barrier release count).
    pub cores: u32,
}

impl MatrixConfig {
    /// The paper's exploration kernel at a test-friendly size.
    pub fn small(cores: u32) -> MatrixConfig {
        MatrixConfig { n: 8, iters: 1, cores }
    }

    /// A Matrix-TM-style stress configuration (scale `iters` as needed).
    pub fn thermal(cores: u32, iters: u32) -> MatrixConfig {
        MatrixConfig { n: 16, iters, cores }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::ZeroDimension`] if the matrix order, the
    /// iteration count or the core count is zero.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.n == 0 || self.iters == 0 || self.cores == 0 {
            return Err(WorkloadError::ZeroDimension);
        }
        Ok(())
    }
}

/// Shared-memory layout used by the program.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct MatrixLayout {
    /// Per-core checksum slots (`cores` words).
    pub partials_addr: u32,
    /// Barrier spinlock word.
    pub lock_addr: u32,
    /// Barrier arrival counter.
    pub count_addr: u32,
    /// Combined total written by core 0.
    pub total_addr: u32,
}

/// The fixed shared-memory layout.
pub fn layout() -> MatrixLayout {
    MatrixLayout {
        partials_addr: SHARED_BASE,
        lock_addr: SHARED_BASE + 0x200,
        count_addr: SHARED_BASE + 0x204,
        total_addr: SHARED_BASE + 0x208,
    }
}

/// Private-memory addresses of the three matrices (above the program image).
fn bases(n: u32) -> (u32, u32, u32) {
    let words = n * n * 4;
    let a = 0x4000;
    (a, a + words, a + 2 * words)
}

/// Generates the TE32 program for a matrix configuration.
///
/// # Errors
///
/// Returns the validation error for a degenerate configuration, or the
/// assembler diagnosis (which would indicate a generator bug — exercised by
/// tests for every supported configuration).
pub fn program(cfg: &MatrixConfig) -> Result<Program, WorkloadError> {
    cfg.validate()?;
    let (a, b, c) = bases(cfg.n);
    let l = layout();
    let src = format!(
        "
        .equ MMIO,   {mmio:#x}
        .equ ABASE,  {a:#x}
        .equ BBASE,  {b:#x}
        .equ CBASE,  {c:#x}
        .equ PART,   {part:#x}
        .equ LOCK,   {lock:#x}
        .equ COUNT,  {count:#x}
        .equ TOTAL,  {total:#x}

        start:
            li   r1, MMIO
            lw   s7, 0(r1)          ; s7 = core id
            li   s5, {cores}        ; s5 = participating cores
            li   s6, {iters}        ; s6 = iterations

        ; ---- initialize A[i][j] = (3i + j + core) & 255,
        ;      B[i][j] = (i + 5j + 2*core) & 255
            li   t0, 0              ; i
        init_i:
            li   t1, 0              ; j
        init_j:
            li   t2, {n}
            mul  t3, t0, t2
            add  t3, t3, t1
            slli t3, t3, 2          ; element byte offset
            slli t4, t0, 1
            add  t4, t4, t0         ; 3i
            add  t4, t4, t1
            add  t4, t4, s7
            andi t4, t4, 255
            li   t5, ABASE
            add  t5, t5, t3
            sw   t4, 0(t5)
            slli t4, t1, 2
            add  t4, t4, t1         ; 5j
            add  t4, t4, t0
            slli t6, s7, 1
            add  t4, t4, t6
            andi t4, t4, 255
            li   t5, BBASE
            add  t5, t5, t3
            sw   t4, 0(t5)
            addi t1, t1, 1
            li   t2, {n}
            blt  t1, t2, init_j
            addi t0, t0, 1
            li   t2, {n}
            blt  t0, t2, init_i

        ; ---- C = A * B, repeated `iters` times
        outer:
            li   t0, 0              ; i
        mm_i:
            li   t1, 0              ; j
        mm_j:
            li   s0, 0              ; accumulator
            li   t2, 0              ; k
        mm_k:
            li   t3, {n}
            mul  t4, t0, t3
            add  t4, t4, t2
            slli t4, t4, 2
            li   t5, ABASE
            add  t5, t5, t4
            lw   t6, 0(t5)          ; A[i][k]
            mul  t4, t2, t3
            add  t4, t4, t1
            slli t4, t4, 2
            li   t5, BBASE
            add  t5, t5, t4
            lw   t7, 0(t5)          ; B[k][j]
            mul  t6, t6, t7
            add  s0, s0, t6
            addi t2, t2, 1
            li   t3, {n}
            blt  t2, t3, mm_k
            li   t3, {n}
            mul  t4, t0, t3
            add  t4, t4, t1
            slli t4, t4, 2
            li   t5, CBASE
            add  t5, t5, t4
            sw   s0, 0(t5)          ; C[i][j]
            addi t1, t1, 1
            li   t3, {n}
            blt  t1, t3, mm_j
            addi t0, t0, 1
            li   t3, {n}
            blt  t0, t3, mm_i
            addi s6, s6, -1
            bnez s6, outer

        ; ---- checksum C into the core's shared slot
            li   s0, 0
            li   t0, 0
            li   t3, {n2}
        sum_loop:
            slli t4, t0, 2
            li   t5, CBASE
            add  t5, t5, t4
            lw   t6, 0(t5)
            add  s0, s0, t6
            addi t0, t0, 1
            blt  t0, t3, sum_loop
            li   t5, PART
            slli t4, s7, 2
            add  t5, t5, t4
            sw   s0, 0(t5)

        ; ---- barrier (TAS spinlock + arrival counter)
            li   s1, LOCK
        acq:
            tas  t0, 0(s1)
            bnez t0, acq
            li   s2, COUNT
            lw   t1, 0(s2)
            addi t1, t1, 1
            sw   t1, 0(s2)
            sw   r0, 0(s1)          ; release
        wait:
            lw   t1, 0(s2)
            blt  t1, s5, wait

        ; ---- core 0 combines all partial checksums
            bnez s7, done
            li   s0, 0
            li   t0, 0
        comb:
            li   t5, PART
            slli t4, t0, 2
            add  t5, t5, t4
            lw   t6, 0(t5)
            add  s0, s0, t6
            addi t0, t0, 1
            blt  t0, s5, comb
            li   t5, TOTAL
            sw   s0, 0(t5)
        done:
            halt
        ",
        mmio = MMIO_BASE,
        a = a,
        b = b,
        c = c,
        part = l.partials_addr,
        lock = l.lock_addr,
        count = l.count_addr,
        total = l.total_addr,
        cores = cfg.cores,
        iters = cfg.iters,
        n = cfg.n,
        n2 = cfg.n * cfg.n,
    );
    Ok(assemble(&src)?)
}

/// Host-side reference: the checksum core `core` must produce.
pub fn reference_checksum(cfg: &MatrixConfig, core: u32) -> u32 {
    let n = cfg.n as usize;
    let mut a = vec![0u32; n * n];
    let mut b = vec![0u32; n * n];
    for i in 0..n {
        for j in 0..n {
            a[i * n + j] = ((3 * i + j) as u32 + core) & 255;
            b[i * n + j] = ((i + 5 * j) as u32 + 2 * core) & 255;
        }
    }
    let mut c = vec![0u32; n * n];
    for i in 0..n {
        for j in 0..n {
            let mut acc = 0u32;
            for (k, bk) in b.iter().skip(j).step_by(n).enumerate() {
                acc = acc.wrapping_add(a[i * n + k].wrapping_mul(*bk));
            }
            c[i * n + j] = acc;
        }
    }
    c.iter().fold(0u32, |s, &x| s.wrapping_add(x))
}

/// Host-side reference: the combined total core 0 must write.
pub fn reference_total(cfg: &MatrixConfig) -> u32 {
    (0..cfg.cores).fold(0u32, |s, core| s.wrapping_add(reference_checksum(cfg, core)))
}

/// Rough instruction-count estimate for one core (used by benches to size
/// iteration counts against a time budget).
pub fn instructions_estimate(cfg: &MatrixConfig) -> u64 {
    let n = u64::from(cfg.n);
    // Inner loop is ~16 instructions over n³ iterations.
    u64::from(cfg.iters) * n * n * n * 16 + n * n * 30
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn programs_assemble_for_all_sizes() {
        for n in [2u32, 4, 8, 16, 32] {
            for cores in [1u32, 2, 4, 8] {
                let cfg = MatrixConfig { n, iters: 2, cores };
                let p = program(&cfg).expect("assembles");
                assert!(p.words.len() > 50);
            }
        }
    }

    #[test]
    fn reference_checksum_is_core_dependent() {
        let cfg = MatrixConfig::small(4);
        let c0 = reference_checksum(&cfg, 0);
        let c1 = reference_checksum(&cfg, 1);
        assert_ne!(c0, c1, "different cores multiply different matrices");
    }

    #[test]
    fn reference_total_sums_partials() {
        let cfg = MatrixConfig::small(3);
        let expect = (0..3).fold(0u32, |s, c| s.wrapping_add(reference_checksum(&cfg, c)));
        assert_eq!(reference_total(&cfg), expect);
    }

    #[test]
    fn small_known_value() {
        // n = 1: A = [(0)&255 + core] = [core], B = [2*core],
        // C = [2*core²], checksum = 2*core².
        let cfg = MatrixConfig { n: 1, iters: 5, cores: 1 };
        assert_eq!(reference_checksum(&cfg, 0), 0);
        assert_eq!(reference_checksum(&cfg, 3), 18);
    }

    #[test]
    fn estimate_grows_cubically() {
        let small = instructions_estimate(&MatrixConfig { n: 4, iters: 1, cores: 1 });
        let big = instructions_estimate(&MatrixConfig { n: 8, iters: 1, cores: 1 });
        assert!(big > 6 * small);
    }
}
