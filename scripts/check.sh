#!/usr/bin/env bash
# The full local gate: tier-1 build+tests, lint wall, and the bench-smoke
# perf gate. Run before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== lint wall: clippy -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== bench-smoke gate =="
cargo run --release -p temu-bench --bin thermal_scaling -- --smoke

echo "All checks passed."
