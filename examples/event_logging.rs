//! Event-logging sniffers and Ethernet congestion: demonstrates the VPCM's
//! second job (section 4.2) — when exhaustive event logging outruns the
//! statistics link, the virtual platform clock freezes instead of losing
//! data, stretching the modeled FPGA time.
//!
//! ```sh
//! cargo run --release --example event_logging
//! ```

use temu::platform::{PlatformConfig, SnifferMode};
use temu::workloads::matrix::MatrixConfig;
use temu::{Scenario, TemuError, Workload};

fn run(mode: SnifferMode) -> Result<(f64, u64, u64), TemuError> {
    let mut platform = PlatformConfig::paper_thermal(4);
    platform.sniffer_mode = mode;
    let run = Scenario::new()
        .platform(platform)
        .workload(Workload::Matrix(MatrixConfig { n: 16, iters: 100_000, cores: 4 }))
        .windows(20)
        .run()?;
    Ok((run.report.fpga_seconds, run.report.aggregate.events_overflowed, run.report.link.frames))
}

fn main() -> Result<(), TemuError> {
    println!("20 sampling windows of Matrix-TM under different sniffer modes:\n");
    let (fpga_count, _, frames_count) = run(SnifferMode::CountLogging)?;
    println!("count-logging : FPGA time {fpga_count:.4} s, {frames_count} MAC frames, no congestion possible");

    for capacity in [1 << 14, 1 << 10] {
        let (fpga, dropped, frames) = run(SnifferMode::EventLogging { capacity })?;
        println!(
            "event-logging ({capacity:>6}-event buffer): FPGA time {fpga:.4} s, {frames} MAC frames, {dropped} events overflowed",
        );
    }
    println!("\nThe count-logging mode is why the paper can add 'practically an unlimited");
    println!("number' of sniffers without slowing emulation; event logging is reserved for");
    println!("deep debugging and pays with VPCM clock-freeze time.");
    Ok(())
}
