#!/usr/bin/env bash
# The full local gate: tier-1 build+tests, lint wall, and the bench-smoke
# perf gate. Run before every push.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: release build =="
cargo build --release

echo "== tier-1: tests =="
cargo test -q

echo "== lint wall: clippy -D warnings =="
cargo clippy --workspace -- -D warnings

echo "== bench-smoke gate =="
# Also the solver-convergence gate: the smoke rungs include multigrid
# cases, and the bench fails if any multigrid substep is accepted
# unconverged (the tier-1 tests additionally run a strict-convergence
# multigrid campaign in crates/bench/tests/bench_smoke.rs).
# --out keeps the smoke report away from the committed full-run
# BENCH_thermal.json.
cargo run --release -p temu-bench --bin thermal_scaling -- --smoke --out target/bench_smoke.json

echo "== sweep-smoke gate =="
# The design-space sweep gate: an 8-point strict-convergence mini sweep
# (multigrid included) must run clean, and its identical in-process re-run
# must be 100% cache hits with zero scenario executions.
cargo run --release -p temu-bench --bin sweep -- --smoke

echo "All checks passed."
