//! Floorplans: named rectangular components on a die.
//!
//! The floorplan is the interface between the emulated platform and the
//! thermal model (the paper's §6 flow fixes it after the HW architecture is
//! chosen): every MPSoC component that dissipates power — cores, caches,
//! memories, NoC switches — is a rectangle with a position and size in µm.
//! Components flagged `hot` receive finer thermal cells (Fig. 3a).

use std::fmt;

/// Index of a component within its floorplan.
pub type ComponentId = usize;

/// One rectangular floorplan component.
#[derive(Clone, PartialEq, Debug)]
pub struct Component {
    /// Human-readable name (e.g. `"arm11_0"`, `"icache_2"`).
    pub name: String,
    /// Left edge, µm.
    pub x_um: f64,
    /// Bottom edge, µm.
    pub y_um: f64,
    /// Width, µm.
    pub w_um: f64,
    /// Height, µm.
    pub h_um: f64,
    /// Whether this component is a crucial point deserving fine cells.
    pub hot: bool,
}

impl Component {
    /// Area in mm² (power densities in Table 1 are W/mm²).
    pub fn area_mm2(&self) -> f64 {
        self.w_um * self.h_um / 1e6
    }

    fn overlaps(&self, other: &Component) -> bool {
        self.x_um < other.x_um + other.w_um
            && other.x_um < self.x_um + self.w_um
            && self.y_um < other.y_um + other.h_um
            && other.y_um < self.y_um + self.h_um
    }
}

/// A die floorplan: a bounding box plus non-overlapping components.
#[derive(Clone, PartialEq, Debug)]
pub struct Floorplan {
    /// Floorplan name (shows up in reports).
    pub name: String,
    /// Die width, µm.
    pub width_um: f64,
    /// Die height, µm.
    pub height_um: f64,
    components: Vec<Component>,
}

impl Floorplan {
    /// Creates an empty floorplan of the given die size.
    ///
    /// # Panics
    ///
    /// Panics if the die dimensions are not strictly positive finite numbers.
    pub fn new(name: impl Into<String>, width_um: f64, height_um: f64) -> Floorplan {
        assert!(
            width_um > 0.0 && height_um > 0.0 && width_um.is_finite() && height_um.is_finite(),
            "die dimensions must be positive"
        );
        Floorplan { name: name.into(), width_um, height_um, components: Vec::new() }
    }

    /// Adds a component and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the rectangle is degenerate, leaves the die, or overlaps an
    /// existing component — floorplans are authored data and must be correct
    /// at construction time.
    pub fn add_component(
        &mut self,
        name: impl Into<String>,
        x_um: f64,
        y_um: f64,
        w_um: f64,
        h_um: f64,
        hot: bool,
    ) -> ComponentId {
        let c = Component { name: name.into(), x_um, y_um, w_um, h_um, hot };
        assert!(c.w_um > 0.0 && c.h_um > 0.0, "component {} has a degenerate rectangle", c.name);
        assert!(
            c.x_um >= 0.0 && c.y_um >= 0.0 && c.x_um + c.w_um <= self.width_um + 1e-9 && c.y_um + c.h_um <= self.height_um + 1e-9,
            "component {} leaves the die",
            c.name
        );
        for other in &self.components {
            assert!(!c.overlaps(other), "component {} overlaps {}", c.name, other.name);
        }
        self.components.push(c);
        self.components.len() - 1
    }

    /// The components in insertion order.
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Looks a component up by name.
    pub fn find(&self, name: &str) -> Option<ComponentId> {
        self.components.iter().position(|c| c.name == name)
    }

    /// Die area in mm².
    pub fn die_area_mm2(&self) -> f64 {
        self.width_um * self.height_um / 1e6
    }

    /// Renders a coarse ASCII map of the floorplan (Fig. 4-style), `cols`
    /// characters wide. Components are labelled by the first letter of their
    /// name plus their id modulo 10.
    pub fn ascii_map(&self, cols: usize) -> String {
        let rows = ((cols as f64) * self.height_um / self.width_um / 2.0).round().max(1.0) as usize;
        let mut out = String::new();
        for r in (0..rows).rev() {
            for c in 0..cols {
                let x = (c as f64 + 0.5) / cols as f64 * self.width_um;
                let y = (r as f64 + 0.5) / rows as f64 * self.height_um;
                let ch = self
                    .components
                    .iter()
                    .enumerate()
                    .find(|(_, comp)| {
                        x >= comp.x_um && x < comp.x_um + comp.w_um && y >= comp.y_um && y < comp.y_um + comp.h_um
                    })
                    .map(|(i, comp)| {
                        if c % 2 == 0 {
                            comp.name.chars().next().unwrap_or('?')
                        } else {
                            char::from_digit((i % 10) as u32, 10).unwrap()
                        }
                    })
                    .unwrap_or('.');
                out.push(ch);
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Floorplan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {:.1} x {:.1} mm, {} components",
            self.name,
            self.width_um / 1000.0,
            self.height_um / 1000.0,
            self.components.len()
        )?;
        for (i, c) in self.components.iter().enumerate() {
            writeln!(
                f,
                "  [{i:2}] {:<12} at ({:>6.0},{:>6.0}) um, {:>6.0} x {:>6.0} um, {:.3} mm2{}",
                c.name,
                c.x_um,
                c.y_um,
                c.w_um,
                c.h_um,
                c.area_mm2(),
                if c.hot { " (hot)" } else { "" }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_find_components() {
        let mut fp = Floorplan::new("test", 1000.0, 1000.0);
        let a = fp.add_component("cpu", 0.0, 0.0, 500.0, 500.0, true);
        let b = fp.add_component("mem", 500.0, 500.0, 400.0, 400.0, false);
        assert_eq!(fp.find("cpu"), Some(a));
        assert_eq!(fp.find("mem"), Some(b));
        assert_eq!(fp.find("gpu"), None);
        assert_eq!(fp.components().len(), 2);
        assert!((fp.components()[a].area_mm2() - 0.25).abs() < 1e-12);
        assert!((fp.die_area_mm2() - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_components_panic() {
        let mut fp = Floorplan::new("test", 1000.0, 1000.0);
        fp.add_component("a", 0.0, 0.0, 600.0, 600.0, false);
        fp.add_component("b", 500.0, 500.0, 300.0, 300.0, false);
    }

    #[test]
    #[should_panic(expected = "leaves the die")]
    fn out_of_bounds_panics() {
        let mut fp = Floorplan::new("test", 1000.0, 1000.0);
        fp.add_component("a", 800.0, 0.0, 300.0, 100.0, false);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn degenerate_panics() {
        let mut fp = Floorplan::new("test", 1000.0, 1000.0);
        fp.add_component("a", 0.0, 0.0, 0.0, 100.0, false);
    }

    #[test]
    fn touching_components_are_legal() {
        let mut fp = Floorplan::new("test", 1000.0, 1000.0);
        fp.add_component("a", 0.0, 0.0, 500.0, 1000.0, false);
        fp.add_component("b", 500.0, 0.0, 500.0, 1000.0, false);
    }

    #[test]
    fn ascii_map_marks_components() {
        let mut fp = Floorplan::new("test", 1000.0, 1000.0);
        fp.add_component("cpu", 0.0, 0.0, 1000.0, 500.0, false);
        let map = fp.ascii_map(20);
        assert!(map.contains('c'));
        assert!(map.contains('.'));
    }

    #[test]
    fn display_lists_components() {
        let mut fp = Floorplan::new("demo", 2000.0, 1000.0);
        fp.add_component("core0", 0.0, 0.0, 800.0, 800.0, true);
        let s = fp.to_string();
        assert!(s.contains("demo"));
        assert!(s.contains("core0"));
        assert!(s.contains("(hot)"));
    }
}
