//! The emulation job server.
//!
//! ```sh
//! temu-serve [--addr 127.0.0.1:7181] [--store cache.jsonl] \
//!            [--journal jobs.jsonl] [--workers N] [--queue-limit N]
//! ```
//!
//! Binds, prints the resolved address (`--addr 127.0.0.1:0` requests an
//! ephemeral port — scripts parse the printed line), and serves until a
//! client sends `shutdown`. With `--store`, results persist across
//! restarts and resubmitted experiments are answered from the cache
//! without executing a single scenario; a job journal (`jobs.jsonl` next
//! to the store, or `--journal`) additionally re-enqueues jobs that were
//! in flight when a previous server process died.

use std::path::PathBuf;
use std::process::exit;
use temu_serve::{ServeConfig, Server, ADDR_ENV};

const USAGE: &str = "usage: temu-serve [--addr HOST:PORT] [--store CACHE.jsonl] [--journal JOBS.jsonl] [--workers N] [--queue-limit N]";

fn main() {
    let mut config = ServeConfig::default();
    if let Ok(addr) = std::env::var(ADDR_ENV) {
        config.addr = addr;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |what: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("{arg} takes {what}\n{USAGE}");
                exit(2);
            })
        };
        match arg.as_str() {
            "--addr" => config.addr = value("an address"),
            "--store" => config.store = Some(PathBuf::from(value("a path"))),
            "--journal" => config.journal = Some(PathBuf::from(value("a path"))),
            "--workers" => {
                config.workers = value("a count").parse().unwrap_or_else(|_| {
                    eprintln!("--workers takes a positive integer\n{USAGE}");
                    exit(2);
                });
            }
            "--queue-limit" => {
                config.queue_limit = value("a count").parse().unwrap_or_else(|_| {
                    eprintln!("--queue-limit takes a positive integer\n{USAGE}");
                    exit(2);
                });
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return;
            }
            other => {
                eprintln!("unknown argument {other:?}\n{USAGE}");
                exit(2);
            }
        }
    }

    let server = match Server::bind(config.clone()) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("temu-serve: cannot bind {}: {e}", config.addr);
            exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => println!("temu-serve listening on {addr}"),
        Err(e) => {
            eprintln!("temu-serve: no local address: {e}");
            exit(1);
        }
    }
    match &config.store {
        Some(path) => {
            println!("cache store {}: {} entr(ies) preloaded", path.display(), server.cache_len());
        }
        None => println!("cache: in-memory only (pass --store to persist results)"),
    }
    match server.journal_path() {
        Some(path) => println!(
            "job journal {}: {} job(s) recovered and re-enqueued",
            path.display(),
            server.recovered_jobs()
        ),
        None => println!("job journal: off (in-memory server; pass --store or --journal)"),
    }
    println!("{} worker(s), queue limit {}", config.workers.max(1), config.queue_limit.max(1));
    server.run();
    println!("temu-serve: shut down");
}
