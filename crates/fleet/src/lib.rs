//! # temu-fleet — a content-key-sharding router over `temu-serve`
//!
//! Turns N independent `temu-serve` processes into one fleet behind a
//! single address: `temu-router` speaks the exact `temu-serve` wire
//! protocol to *unmodified* clients and routes every submission to a
//! member chosen by **rendezvous-hashing the sweep's content key** —
//! so an identical resubmission, from any client, lands on the member
//! that already holds the cached result and completes without executing
//! a single scenario.
//!
//! ```text
//!                      ┌──────────────┐
//!   temu-client ──────▶│  temu-router │── rendezvous(content_key) ──┐
//!   (unmodified)       │  (stateless  │                             ▼
//!                      │   routes +   │──▶ member A (temu-serve, store)
//!                      │   health)    │──▶ member B (temu-serve, store)
//!                      └──────────────┘──▶ member C (temu-serve, store)
//! ```
//!
//! # Why whole-sweep sharding (not per-point)
//!
//! The sweep [`SweepSpec::content_key`](temu_framework::SweepSpec) folds
//! the content keys of every expanded grid point — name and thread count
//! excluded — so two specs with the same physics shard identically. The
//! router shards the *whole sweep* by that one key rather than splitting
//! points across members because the submission is the protocol's unit
//! of retry and idempotency: the client resubmits a sweep, not points,
//! and the resubmission must reach the one member whose store already
//! has the results. Whole-sweep sharding also keeps `watch` a
//! single-source event stream (one member, one ordered progress stream,
//! reusing the server's deadline-lifted streaming) instead of a merge of
//! partial streams, and keeps the router stateless enough to restart
//! freely. The cost — one sweep never spans members — is the right
//! trade for a cache-first fleet; point-level spreading is already
//! provided *inside* each member by the campaign thread pool.
//!
//! Failover is safe for the same reason sharding works: members memoize
//! results by content key, so replaying a submission on the next member
//! in rendezvous order re-executes only what the dead member never
//! synced. See [`router`] for the exact failover semantics and
//! [`member`] for the hashing.
//!
//! The two bins: `temu-router` (this crate) and `temu-member` — the
//! latter is byte-for-byte the `temu-serve` CLI
//! ([`temu_serve::cli::serve_main`]) under a name this crate's
//! integration tests can locate via `CARGO_BIN_EXE_temu-member`.

pub mod member;
pub mod router;

pub use member::{MemberHealth, MemberTable};
pub use router::{Router, RouterConfig, RouterHandle, DEFAULT_ROUTER_ADDR};
