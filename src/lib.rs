//! # temu — HW/SW thermal emulation framework for MPSoC
//!
//! Facade crate re-exporting the whole `temu` workspace: a Rust reproduction
//! of Atienza et al., *"A Fast HW/SW FPGA-Based Thermal Emulation Framework
//! for Multi-Processor System-on-Chip"* (DAC 2006).
//!
//! ## Quickstart
//!
//! Experiments are described by a fluent [`Scenario`] — platform, workload,
//! thermal model, DFS policy, run budget — and executed either one at a time
//! or in bulk with a [`Campaign`]. All failures are one typed error,
//! [`TemuError`]:
//!
//! ```
//! use temu::{Campaign, Scenario, TemuError};
//!
//! fn main() -> Result<(), TemuError> {
//!     // One experiment: 2 cores on the OPB bus dithering two images.
//!     let run = Scenario::exploration_bus(2).sampling_window_s(0.002).run()?;
//!     assert!(run.report.all_halted);
//!
//!     // A design-space sweep: bus vs NoC, executed concurrently, reported
//!     // in input order with JSON/CSV export.
//!     let report = Campaign::new()
//!         .scenario(Scenario::exploration_bus(2).sampling_window_s(0.002))
//!         .scenario(Scenario::exploration_noc(2).sampling_window_s(0.002))
//!         .run();
//!     assert!(report.all_ok());
//!     println!("{}", report.to_csv());
//!     Ok(())
//! }
//! ```
//!
//! For full design-space grids there is [`Sweep`]: cartesian parameter
//! axes (core counts, DFS frequency ladders, mesh resolutions, workloads,
//! solver choices) expand into one campaign, stream per-point progress,
//! and memoize results by configuration content key ([`ResultCache`]) so
//! repeated or overlapping sweeps skip already-solved points.
//!
//! Experiments are also expressible as *data*: a [`ScenarioSpec`] /
//! [`SweepSpec`] is the JSON wire form of the same builders, and the
//! [`serve`] crate (`temu-serve` / `temu-client` bins) runs submitted
//! specs on a shared job server whose content-keyed [`ResultCache`] spans
//! jobs, connections and restarts.
//!
//! Start with [`framework`] for the closed-loop co-emulation flow, or
//! [`platform`] to build and run an emulated MPSoC directly. See the README
//! for the architecture overview and DESIGN.md for the experiment index.

pub use temu_cpu as cpu;
pub use temu_des as des;
pub use temu_fleet as fleet;
pub use temu_fpga as fpga;
pub use temu_framework as framework;
pub use temu_interconnect as interconnect;
pub use temu_isa as isa;
pub use temu_link as link;
pub use temu_mem as mem;
pub use temu_platform as platform;
pub use temu_power as power;
pub use temu_serve as serve;
pub use temu_thermal as thermal;
pub use temu_workloads as workloads;

pub use temu_framework::{
    Campaign, CampaignProgress, CampaignReport, ImplicitSolve, PointSummary, ResultCache, Scenario,
    ScenarioResult, ScenarioRun, ScenarioSpec, SolverStats, SpecError, Sweep, SweepPoint,
    SweepPointResult, SweepProgress, SweepReport, SweepSpec, TemuError, Workload,
};
