//! # temu — HW/SW thermal emulation framework for MPSoC
//!
//! Facade crate re-exporting the whole `temu` workspace: a Rust reproduction
//! of Atienza et al., *"A Fast HW/SW FPGA-Based Thermal Emulation Framework
//! for Multi-Processor System-on-Chip"* (DAC 2006).
//!
//! Start with [`framework`] for the closed-loop co-emulation flow, or
//! [`platform`] to build and run an emulated MPSoC directly. See the README
//! for the architecture overview and DESIGN.md for the experiment index.

pub use temu_cpu as cpu;
pub use temu_des as des;
pub use temu_fpga as fpga;
pub use temu_framework as framework;
pub use temu_interconnect as interconnect;
pub use temu_isa as isa;
pub use temu_link as link;
pub use temu_mem as mem;
pub use temu_platform as platform;
pub use temu_power as power;
pub use temu_thermal as thermal;
pub use temu_workloads as workloads;
