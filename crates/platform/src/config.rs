//! Platform configuration: the knobs the paper's framework exposes.

use crate::error::PlatformError;
use crate::sniffer::SnifferMode;
use temu_cpu::CpuConfig;
use temu_interconnect::{Arbitration, BusConfig, NocConfig};
use temu_mem::{CacheConfig, CacheKind, MemoryConfig};

/// Interconnect selection (§3.3).
#[derive(Clone, PartialEq, Debug)]
pub enum IcChoice {
    /// A shared bus (OPB, PLB or the custom exploration bus).
    Bus(BusConfig),
    /// A packet-switched NoC.
    Noc(NocConfig),
}

/// Full description of one emulated MPSoC.
#[derive(Clone, PartialEq, Debug)]
pub struct PlatformConfig {
    /// Number of processing cores.
    pub cores: usize,
    /// Core timing configuration.
    pub cpu: CpuConfig,
    /// Instruction cache; `None` removes it (every fetch goes to memory).
    pub icache: Option<CacheConfig>,
    /// Data cache; `None` removes it.
    pub dcache: Option<CacheConfig>,
    /// Per-core private main memory.
    pub private_mem: MemoryConfig,
    /// Shared main memory (behind the interconnect).
    pub shared_mem: MemoryConfig,
    /// Whether the shared range is cached by the L1s.
    pub shared_cacheable: bool,
    /// Bus or NoC between the memory controllers and the shared memory.
    pub interconnect: IcChoice,
    /// Physical FPGA clock (the paper's board runs at 100 MHz).
    pub fpga_hz: u64,
    /// Initial virtual (emulated) clock frequency.
    pub virtual_hz: u64,
    /// Statistics sniffer mode.
    pub sniffer_mode: SnifferMode,
}

impl PlatformConfig {
    /// The §7 exploration platform: 4 KB I/D caches, private memory, 1 MB
    /// shared memory, OPB bus — "various configurations of interconnections
    /// and processors (1 to 8) using a complex L1 hierarchy for each core
    /// with 4 KB D-cache/I-cache, 16 KB of private memory, and a global 1-MB
    /// main shared memory. All processors use OPB and OCP buses."
    ///
    /// The private memory is sized at 64 KB so that it holds the program
    /// image, data and stack (the paper loads code through EDK separately;
    /// our image lives in the same private memory).
    pub fn paper_bus(cores: usize) -> PlatformConfig {
        PlatformConfig {
            cores,
            cpu: CpuConfig::default(),
            icache: Some(CacheConfig::paper_l1_4k()),
            dcache: Some(CacheConfig::paper_l1_4k()),
            private_mem: MemoryConfig::bram(64 * 1024, 2),
            shared_mem: MemoryConfig::bram(1024 * 1024, 6),
            shared_cacheable: false,
            interconnect: IcChoice::Bus(BusConfig::opb(cores)),
            fpga_hz: 100_000_000,
            virtual_hz: 100_000_000,
            sniffer_mode: SnifferMode::CountLogging,
        }
    }

    /// Same platform with the paper's custom bus and a chosen arbitration
    /// policy (the arbitration ablation).
    pub fn paper_custom_bus(cores: usize, arbitration: Arbitration) -> PlatformConfig {
        let mut cfg = PlatformConfig::paper_bus(cores);
        cfg.interconnect = IcChoice::Bus(BusConfig::custom(cores, arbitration));
        cfg
    }

    /// The §7 NoC exploration platform: "2 32-bit switches with 4
    /// inputs/outputs and 3-package buffers".
    pub fn paper_noc(cores: usize) -> PlatformConfig {
        let mut cfg = PlatformConfig::paper_bus(cores);
        cfg.interconnect = IcChoice::Noc(NocConfig::paper_two_switch(cores));
        cfg
    }

    /// The §7 thermal platform: "4 RISC-32 processors including 8 KB
    /// direct-mapped instruction/data caches and a 32 KB cacheable private
    /// memory. One 32 KB shared memory exists in the system and the
    /// interconnection utilized is a NoC of 4 switches", emulated at 500 MHz
    /// virtual on the 100 MHz FPGA.
    pub fn paper_thermal(cores: usize) -> PlatformConfig {
        PlatformConfig {
            cores,
            cpu: CpuConfig::default(),
            icache: Some(CacheConfig::paper_l1_8k()),
            dcache: Some(CacheConfig::paper_l1_8k()),
            private_mem: MemoryConfig::bram(64 * 1024, 2),
            shared_mem: MemoryConfig::bram(32 * 1024, 6),
            shared_cacheable: false,
            interconnect: IcChoice::Noc(NocConfig::paper_four_switch(cores)),
            fpga_hz: 100_000_000,
            virtual_hz: 500_000_000,
            sniffer_mode: SnifferMode::CountLogging,
        }
    }

    /// Validates every sub-configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint (no cores, invalid cache or
    /// interconnect geometry, interconnect port count not matching `cores`,
    /// zero clock frequencies, private memory too small to be useful).
    pub fn validate(&self) -> Result<(), PlatformError> {
        if self.cores == 0 {
            return Err(PlatformError::NoCores);
        }
        if let Some(c) = &self.icache {
            c.validate().map_err(|e| PlatformError::Cache { kind: CacheKind::Instruction, source: e })?;
        }
        if let Some(c) = &self.dcache {
            c.validate().map_err(|e| PlatformError::Cache { kind: CacheKind::Data, source: e })?;
        }
        if self.private_mem.size < 1024 || !self.private_mem.size.is_multiple_of(4) {
            return Err(PlatformError::MemorySize { which: "private", size: self.private_mem.size });
        }
        if !self.shared_mem.size.is_multiple_of(4) {
            return Err(PlatformError::MemorySize { which: "shared", size: self.shared_mem.size });
        }
        match &self.interconnect {
            IcChoice::Bus(b) => {
                b.validate()?;
                if b.initiators != self.cores {
                    return Err(PlatformError::PortMismatch { ports: b.initiators, cores: self.cores });
                }
            }
            IcChoice::Noc(n) => {
                n.validate()?;
                if n.core_switch.len() != self.cores {
                    return Err(PlatformError::PortMismatch { ports: n.core_switch.len(), cores: self.cores });
                }
            }
        }
        if self.fpga_hz == 0 || self.virtual_hz == 0 {
            return Err(PlatformError::ZeroClock);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs_validate() {
        assert!(PlatformConfig::paper_bus(1).validate().is_ok());
        assert!(PlatformConfig::paper_bus(8).validate().is_ok());
        assert!(PlatformConfig::paper_noc(4).validate().is_ok());
        assert!(PlatformConfig::paper_thermal(4).validate().is_ok());
        assert!(PlatformConfig::paper_custom_bus(4, Arbitration::RoundRobin).validate().is_ok());
    }

    #[test]
    fn mismatched_ports_rejected() {
        let mut cfg = PlatformConfig::paper_bus(4);
        cfg.cores = 2;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn zero_cores_rejected() {
        let mut cfg = PlatformConfig::paper_bus(1);
        cfg.cores = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn invalid_cache_rejected() {
        let mut cfg = PlatformConfig::paper_bus(1);
        if let Some(c) = &mut cfg.icache {
            c.line_bytes = 3;
        }
        let e = cfg.validate().unwrap_err();
        assert!(matches!(e, PlatformError::Cache { kind: CacheKind::Instruction, .. }), "{e:?}");
        assert!(e.to_string().contains("icache"));
    }

    #[test]
    fn thermal_platform_is_500mhz_virtual() {
        let cfg = PlatformConfig::paper_thermal(4);
        assert_eq!(cfg.virtual_hz, 500_000_000);
        assert_eq!(cfg.fpga_hz, 100_000_000);
    }
}
