//! Ablation for the §4.1/§7 claim: "practically an unlimited number of
//! event-counting sniffers (i.e. floorplan cells) can be added to MPSoC
//! designs without deteriorating the emulation speed", while event-logging
//! sniffers saturate the Ethernet and force VPCM clock freezes.

use temu_framework::{EmulationConfig, ThermalEmulation};
use temu_platform::{Machine, PlatformConfig, SnifferMode};
use temu_power::floorplans::fig4b_arm11;
use temu_workloads::matrix::{self, MatrixConfig};

fn run(mode: SnifferMode, windows: u64) -> (f64, f64, u64) {
    let mut platform = PlatformConfig::paper_thermal(4);
    platform.sniffer_mode = mode;
    let mut machine = Machine::new(platform).expect("valid platform");
    let cfg = MatrixConfig { n: 16, iters: 100_000, cores: 4 };
    machine.load_program_all(&matrix::program(&cfg).expect("assembles")).expect("fits");
    let mut emu = ThermalEmulation::new(machine, fig4b_arm11(), EmulationConfig::default()).expect("builds");
    let report = emu.run_windows(windows).expect("runs");
    let mips = report.aggregate.total_instructions() as f64 / report.wall.as_secs_f64().max(1e-9) / 1e6;
    (mips, report.fpga_seconds, report.aggregate.events_overflowed)
}

fn main() {
    let windows = 30;
    println!("Sniffer-mode ablation on Matrix-TM, {windows} sampling windows of 10 ms\n");
    println!(
        "{:<44} {:>10} {:>14} {:>16}",
        "configuration", "emu MIPS", "FPGA time (s)", "events dropped"
    );

    // Count-logging: the counter sniffers are free regardless of how many
    // floorplan cells they feed (they are the per-component statistics the
    // engine maintains anyway).
    let (mips_count, fpga_count, _) = run(SnifferMode::CountLogging, windows);
    println!("{:<44} {:>10.1} {:>14.3} {:>16}", "count-logging (any number of sniffers)", mips_count, fpga_count, 0);

    for capacity in [1 << 16, 1 << 12, 1 << 8] {
        let (mips, fpga, dropped) = run(SnifferMode::EventLogging { capacity }, windows);
        println!(
            "{:<44} {:>10.1} {:>14.3} {:>16}",
            format!("event-logging, {capacity}-event BRAM buffer"),
            mips,
            fpga,
            dropped
        );
    }

    println!(
        "\nExpected shape (paper): count-logging throughput is flat; exhaustive event\n\
         logging overwhelms the 100 Mb/s link/BRAM buffer, and the VPCM freezes the\n\
         virtual clock (larger modeled FPGA time) rather than losing statistics."
    );
}
