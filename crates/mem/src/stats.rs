//! Access statistics collected by the memory hierarchy.
//!
//! These are the raw counters the paper's count-logging HW sniffers extract
//! ("the number and type of accesses to each memory in the system", §4.1).

use temu_state::{StateError, StateReader, StateWriter};

/// Kind of access as seen by a cache or memory device.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum AccessKind {
    /// Instruction fetch (I-cache side).
    Fetch,
    /// Data read.
    Read,
    /// Data write.
    Write,
}

/// Hit/miss/traffic counters for one cache.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct CacheStats {
    /// Accesses that hit.
    pub hits: u64,
    /// Accesses that missed (caused a line fill).
    pub misses: u64,
    /// Read (or fetch) accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Dirty victim lines written back to memory.
    pub writebacks: u64,
    /// Word writes forwarded straight to memory (write-through traffic and
    /// non-allocating write misses).
    pub write_throughs: u64,
}

impl CacheStats {
    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in `[0, 1]`; zero when no accesses happened.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Accumulates another stats block (used when sampling windows reset).
    pub fn merge(&mut self, other: &CacheStats) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.reads += other.reads;
        self.writes += other.writes;
        self.writebacks += other.writebacks;
        self.write_throughs += other.write_throughs;
    }

    /// Serializes the counters into a checkpoint stream.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.u64(self.hits);
        w.u64(self.misses);
        w.u64(self.reads);
        w.u64(self.writes);
        w.u64(self.writebacks);
        w.u64(self.write_throughs);
    }

    /// Restores the counters from a checkpoint stream.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from a corrupt stream.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.hits = r.u64()?;
        self.misses = r.u64()?;
        self.reads = r.u64()?;
        self.writes = r.u64()?;
        self.writebacks = r.u64()?;
        self.write_throughs = r.u64()?;
        Ok(())
    }
}

/// Access counters for one memory device.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct MemStats {
    /// Read transactions served.
    pub reads: u64,
    /// Write transactions served.
    pub writes: u64,
    /// Words transferred in both directions.
    pub words: u64,
    /// Cycles the device kept the VPCM virtual clock frozen (physical device
    /// slower than the emulated latency target).
    pub freeze_cycles: u64,
}

impl MemStats {
    /// Total transactions.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Accumulates another stats block.
    pub fn merge(&mut self, other: &MemStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.words += other.words;
        self.freeze_cycles += other.freeze_cycles;
    }

    /// Serializes the counters into a checkpoint stream.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.u64(self.reads);
        w.u64(self.writes);
        w.u64(self.words);
        w.u64(self.freeze_cycles);
    }

    /// Restores the counters from a checkpoint stream.
    ///
    /// # Errors
    ///
    /// Propagates decode errors from a corrupt stream.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.reads = r.u64()?;
        self.writes = r.u64()?;
        self.words = r.u64()?;
        self.freeze_cycles = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_handles_zero() {
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
        let s = CacheStats { hits: 3, misses: 1, ..CacheStats::default() };
        assert!((s.miss_rate() - 0.25).abs() < 1e-12);
        assert_eq!(s.accesses(), 4);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = CacheStats { hits: 1, misses: 2, reads: 3, writes: 4, writebacks: 5, write_throughs: 6 };
        a.merge(&a.clone());
        assert_eq!(a, CacheStats { hits: 2, misses: 4, reads: 6, writes: 8, writebacks: 10, write_throughs: 12 });

        let mut m = MemStats { reads: 1, writes: 2, words: 3, freeze_cycles: 4 };
        m.merge(&m.clone());
        assert_eq!(m.accesses(), 6);
        assert_eq!(m.words, 6);
        assert_eq!(m.freeze_cycles, 8);
    }
}
