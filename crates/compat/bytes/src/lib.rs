//! Offline stand-in for the `bytes` crate: the subset the workspace uses.
//!
//! `Bytes` is a cheaply cloneable, sliceable, immutable byte buffer backed by
//! an `Arc<[u8]>`; `BytesMut` is a growable builder that `freeze`s into one.
//! The `Buf`/`BufMut` traits carry the big-endian cursor accessors the link
//! codec relies on.

use std::ops::{Deref, RangeBounds};
use std::sync::Arc;

/// Immutable, reference-counted byte buffer.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    off: usize,
    len: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes { data: Arc::from(&[][..]), off: 0, len: 0 }
    }

    /// Wraps a static slice (copies it; the shim has no zero-copy statics).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes { data: Arc::from(s), off: 0, len: s.len() }
    }

    /// Bytes remaining.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no bytes remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// A sub-slice sharing the same backing storage.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let start = match range.start_bound() {
            std::ops::Bound::Included(&s) => s,
            std::ops::Bound::Excluded(&s) => s + 1,
            std::ops::Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            std::ops::Bound::Included(&e) => e + 1,
            std::ops::Bound::Excluded(&e) => e,
            std::ops::Bound::Unbounded => self.len,
        };
        assert!(start <= end && end <= self.len, "slice {start}..{end} out of bounds of {}", self.len);
        Bytes { data: Arc::clone(&self.data), off: self.off + start, len: end - start }
    }

    /// Copies the remaining bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self[..].to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.off..self.off + self.len]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let len = v.len();
        Bytes { data: Arc::from(v.into_boxed_slice()), off: 0, len }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes { data: Arc::from(s), off: 0, len: s.len() }
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}

impl Eq for Bytes {}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            write!(f, "\\x{b:02x}")?;
        }
        write!(f, "\"")
    }
}

/// Growable byte builder.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut { buf: Vec::with_capacity(cap) }
    }

    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut { buf: Vec::new() }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl AsRef<[u8]> for BytesMut {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

/// Read cursor over a byte buffer (big-endian accessors, like the real
/// `bytes::Buf`).
pub trait Buf {
    /// Bytes remaining.
    fn remaining(&self) -> usize;
    /// The remaining bytes.
    fn chunk(&self) -> &[u8];
    /// Advances the cursor.
    ///
    /// # Panics
    ///
    /// Panics on overrun.
    fn advance(&mut self, n: usize);

    /// Reads one byte.
    ///
    /// # Panics
    ///
    /// Panics on underrun (as does every accessor below).
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let v = u16::from_be_bytes(self.chunk()[..2].try_into().expect("2 bytes"));
        self.advance(2);
        v
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let v = u32::from_be_bytes(self.chunk()[..4].try_into().expect("4 bytes"));
        self.advance(4);
        v
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let v = u64::from_be_bytes(self.chunk()[..8].try_into().expect("8 bytes"));
        self.advance(8);
        v
    }

    /// Fills `dst` from the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len, "advance {n} past {} remaining", self.len);
        self.off += n;
        self.len -= n;
    }
}

/// Write cursor (big-endian appenders, like the real `bytes::BufMut`).
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_slice() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(0xAB);
        b.put_u16(0x1234);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(0x0102_0304_0506_0708);
        let mut raw = b.freeze();
        assert_eq!(raw.len(), 15);
        let tail = raw.slice(3..);
        assert_eq!(raw.get_u8(), 0xAB);
        assert_eq!(raw.get_u16(), 0x1234);
        assert_eq!(raw.get_u32(), 0xDEAD_BEEF);
        assert_eq!(raw.get_u64(), 0x0102_0304_0506_0708);
        assert!(raw.is_empty());
        assert_eq!(tail.len(), 12);
        assert_eq!(tail[0..4], [0xDE, 0xAD, 0xBE, 0xEF]);
    }

    #[test]
    fn copy_to_slice_advances() {
        let mut raw = Bytes::from(vec![1, 2, 3, 4, 5]);
        let mut dst = [0u8; 3];
        raw.copy_to_slice(&mut dst);
        assert_eq!(dst, [1, 2, 3]);
        assert_eq!(raw.len(), 2);
    }
}
