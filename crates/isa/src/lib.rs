//! # temu-isa — the TE32 instruction set
//!
//! TE32 is the 32-bit RISC instruction set executed by the processing cores of
//! the emulated MPSoC (the paper ports a PowerPC 405 hard core and a MicroBlaze
//! RISC-32 soft core; TE32 is a MicroBlaze-class stand-in: 32 general-purpose
//! registers, single-width 32-bit instructions, integer multiply/divide,
//! word/half/byte memory accesses and a test-and-set primitive for spinlocks).
//!
//! The crate provides:
//!
//! * the [`Instr`] instruction enum with a bijective binary codec
//!   ([`Instr::encode`] / [`Instr::decode`]),
//! * a two-pass [`asm::assemble`] assembler (labels, directives, pseudo-ops),
//! * a [`disasm`] disassembler, and
//! * the [`Program`] image type loaded by the platform.
//!
//! ```
//! use temu_isa::asm::assemble;
//!
//! # fn main() -> Result<(), temu_isa::asm::AsmError> {
//! let program = assemble(
//!     "       li   r1, 41
//!             addi r1, r1, 1
//!             halt",
//! )?;
//! assert_eq!(program.words.len(), 3);
//! # Ok(())
//! # }
//! ```

pub mod asm;
mod codec;
pub mod disasm;
mod instr;
mod program;

pub use codec::DecodeError;
pub use instr::{AluImmOp, AluOp, Cond, Instr, Reg, ShiftOp, Width};
pub use program::Program;

/// Width of one instruction in bytes. TE32 instructions are fixed width.
pub const INSTR_BYTES: u32 = 4;
