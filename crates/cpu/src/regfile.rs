use temu_isa::Reg;

/// The 32-entry register file; `r0` reads as zero and ignores writes.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RegFile {
    regs: [u32; 32],
}

impl RegFile {
    /// All registers zeroed.
    pub fn new() -> RegFile {
        RegFile { regs: [0; 32] }
    }

    /// Reads a register.
    pub fn read(&self, r: Reg) -> u32 {
        self.regs[r.index() as usize]
    }

    /// Writes a register; writes to `r0` are discarded.
    pub fn write(&mut self, r: Reg, value: u32) {
        if r != Reg::ZERO {
            self.regs[r.index() as usize] = value;
        }
    }
}

impl Default for RegFile {
    fn default() -> RegFile {
        RegFile::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r0_is_hardwired_zero() {
        let mut rf = RegFile::new();
        rf.write(Reg::ZERO, 42);
        assert_eq!(rf.read(Reg::ZERO), 0);
    }

    #[test]
    fn other_registers_hold_values() {
        let mut rf = RegFile::new();
        for i in 1..32 {
            rf.write(Reg::new(i), u32::from(i) * 10);
        }
        for i in 1..32 {
            assert_eq!(rf.read(Reg::new(i)), u32::from(i) * 10);
        }
    }
}
