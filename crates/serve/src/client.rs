//! The client half of the protocol: connect, submit, stream progress,
//! fetch results — the library under the `temu-client` bin and the
//! end-to-end tests.
//!
//! Transient failures — a refused connect while the server restarts, a
//! dropped connection, an elapsed socket deadline — are retryable:
//! [`Client::connect_with_retry`] backs off exponentially with jitter
//! ([`RetryPolicy`]), and resubmitting after a drop is safe because
//! results are memoized by `content_key` (a re-run sweep is served from
//! the cache, not re-executed).

use crate::protocol::{read_frame, ProtocolError, Request, MAX_FRAME_LEN};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::error::Error;
use std::fmt;
use std::io::{BufReader, Write};
use std::net::{Shutdown, TcpStream};
use std::time::Duration;
use temu_framework::{JsonValue, SweepSpec};

/// A client-side failure.
#[derive(Debug)]
#[non_exhaustive]
pub enum ClientError {
    /// The connection failed or dropped.
    Io(std::io::Error),
    /// A socket deadline elapsed while waiting on the server.
    Timeout,
    /// The server closed the connection mid-exchange.
    Closed,
    /// The server sent a frame the client could not interpret.
    Protocol(String),
    /// The server answered `{"ok": false, ...}`; the payload is its
    /// error message.
    Server(String),
    /// Every connect attempt failed ([`Client::connect_with_retry`]).
    Unreachable {
        /// The address that never answered.
        addr: String,
        /// Connect attempts made.
        attempts: u32,
        /// The last attempt's error.
        last: Box<ClientError>,
    },
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection: {e}"),
            ClientError::Timeout => write!(f, "timed out waiting for the server"),
            ClientError::Closed => write!(f, "server closed the connection"),
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
            ClientError::Unreachable { addr, attempts, last } => {
                write!(f, "server unreachable at {addr} after {attempts} attempt(s): {last}")
            }
        }
    }
}

impl Error for ClientError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClientError::Io(e) => Some(e),
            ClientError::Unreachable { last, .. } => Some(last),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> ClientError {
        match e.kind() {
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => ClientError::Timeout,
            std::io::ErrorKind::UnexpectedEof => ClientError::Closed,
            _ => ClientError::Io(e),
        }
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> ClientError {
        match e {
            ProtocolError::Timeout => ClientError::Timeout,
            ProtocolError::Closed => ClientError::Closed,
            ProtocolError::Io(io) => ClientError::Io(io),
            other => ClientError::Protocol(other.to_string()),
        }
    }
}

impl ClientError {
    /// Whether retrying on a fresh connection could succeed: connection
    /// trouble is transient; a server refusal or malformed frame is not.
    #[must_use]
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            ClientError::Io(_) | ClientError::Timeout | ClientError::Closed
        )
    }
}

/// Exponential backoff with full jitter for transient failures.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retries after the first attempt (0 disables retrying).
    pub retries: u32,
    /// Backoff before retry *n* is uniform in `(0, base * 2^n]`.
    pub base: Duration,
    /// Ceiling on any single backoff sleep.
    pub cap: Duration,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy { retries: 4, base: Duration::from_millis(50), cap: Duration::from_secs(2) }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    #[must_use]
    pub fn none() -> RetryPolicy {
        RetryPolicy { retries: 0, ..RetryPolicy::default() }
    }

    /// The sleep before retry `attempt` (1-based): full jitter over the
    /// exponentially grown, capped window. Randomized so a fleet of
    /// clients re-finding a restarted server doesn't stampede it.
    fn backoff(&self, attempt: u32, rng: &mut StdRng) -> Duration {
        let ceiling = self
            .base
            .saturating_mul(2u32.saturating_pow(attempt.min(16)))
            .min(self.cap)
            .max(Duration::from_millis(1));
        let nanos = u64::try_from(ceiling.as_nanos()).unwrap_or(u64::MAX);
        Duration::from_nanos(rng.gen_range(1..=nanos))
    }
}

fn jitter_rng() -> StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.subsec_nanos())
        .unwrap_or(0);
    StdRng::seed_from_u64(u64::from(nanos) ^ (u64::from(std::process::id()) << 32))
}

/// The terminal summary of a watched job (the protocol's `done` event).
#[derive(Clone, PartialEq, Debug)]
pub struct DoneSummary {
    /// Whether the job finished with every point succeeding.
    pub ok: bool,
    /// Grid points in the job.
    pub points: u64,
    /// Points that executed a scenario.
    pub executed: u64,
    /// Points served from the shared cache.
    pub cache_hits: u64,
    /// Points that failed.
    pub failed: u64,
    /// Server-side wall seconds.
    pub wall_s: f64,
    /// The job-level error, when it failed before running.
    pub error: Option<String>,
    /// Whether the job was cancelled while queued.
    pub cancelled: bool,
}

impl DoneSummary {
    fn from_event(v: &JsonValue) -> Result<DoneSummary, ClientError> {
        let int = |key: &str| v.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        Ok(DoneSummary {
            ok: v
                .get("ok")
                .and_then(JsonValue::as_bool)
                .ok_or_else(|| ClientError::Protocol(format!("done event without ok: {v}")))?,
            points: int("points"),
            executed: int("executed"),
            cache_hits: int("cache_hits"),
            failed: int("failed"),
            wall_s: v.get("wall_s").and_then(JsonValue::as_f64).unwrap_or(0.0),
            error: v.get("error").and_then(JsonValue::as_str).map(String::from),
            cancelled: v.get("cancelled").and_then(JsonValue::as_bool).unwrap_or(false),
        })
    }
}

/// The acknowledgement plus (when watching) terminal summary of one
/// submission.
#[derive(Clone, PartialEq, Debug)]
pub struct Submission {
    /// The server's job id.
    pub job: u64,
    /// Grid points the job expands to.
    pub total: u64,
    /// The terminal summary (`None` for fire-and-forget submissions).
    pub done: Option<DoneSummary>,
}

/// One protocol connection.
///
/// Request/response exchanges run under the socket deadline set at
/// connect time; event *streams* (`submit --watch`, `watch`) lift the
/// read deadline while waiting, because a slow grid point legitimately
/// produces long silences (a killed server still surfaces immediately as
/// [`ClientError::Closed`] — TCP delivers the reset). Dropping the client
/// shuts the socket down cleanly ([`Client::close`]).
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// The deadline on each request/response exchange.
const IO_TIMEOUT: Duration = Duration::from_secs(30);

impl Client {
    /// Connects to a server (single attempt; see
    /// [`Client::connect_with_retry`]).
    ///
    /// # Errors
    ///
    /// Any socket error.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(IO_TIMEOUT))?;
        stream.set_write_timeout(Some(IO_TIMEOUT))?;
        let writer = stream.try_clone()?;
        Ok(Client { reader: BufReader::new(stream), writer })
    }

    /// Connects, retrying transient failures with exponential backoff and
    /// jitter — the restart-tolerant entry point.
    ///
    /// # Errors
    ///
    /// [`ClientError::Unreachable`] once every attempt failed.
    pub fn connect_with_retry(addr: &str, policy: &RetryPolicy) -> Result<Client, ClientError> {
        let mut rng = jitter_rng();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            match Client::connect(addr) {
                Ok(client) => return Ok(client),
                Err(e) if e.is_transient() && attempts <= policy.retries => {
                    std::thread::sleep(policy.backoff(attempts, &mut rng));
                }
                Err(e) => {
                    return Err(ClientError::Unreachable {
                        addr: addr.to_string(),
                        attempts,
                        last: Box::new(e),
                    })
                }
            }
        }
    }

    /// Shuts the connection down cleanly (also done on drop).
    pub fn close(self) {
        // Drop runs the shutdown.
    }

    /// Writes one request frame (the fleet router relays frames between
    /// its client side and member connections through these primitives).
    ///
    /// # Errors
    ///
    /// Socket write failures.
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        writeln!(self.writer, "{}", request.to_line())?;
        self.writer.flush()?;
        Ok(())
    }

    /// Reads one frame; `Err(Closed)` on EOF, typed errors for deadline,
    /// oversized, or non-JSON frames.
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] on EOF; deadline, oversized-frame, and
    /// parse failures.
    pub fn recv(&mut self) -> Result<JsonValue, ClientError> {
        match read_frame(&mut self.reader, MAX_FRAME_LEN)? {
            None => Err(ClientError::Closed),
            Some(line) => JsonValue::parse(line.trim()).map_err(ClientError::Protocol),
        }
    }

    /// Lifts or restores the read deadline around event streaming.
    ///
    /// # Errors
    ///
    /// Socket option failures.
    pub fn set_read_deadline(&self, deadline: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(deadline)?;
        Ok(())
    }

    /// Reads one response frame, mapping `{"ok": false}` to
    /// [`ClientError::Server`].
    fn recv_ok(&mut self) -> Result<JsonValue, ClientError> {
        let v = self.recv()?;
        match v.get("ok").and_then(JsonValue::as_bool) {
            Some(true) => Ok(v),
            Some(false) => Err(ClientError::Server(
                v.get("error").and_then(JsonValue::as_str).unwrap_or("unspecified error").to_string(),
            )),
            None => Err(ClientError::Protocol(format!("response without ok field: {v}"))),
        }
    }

    fn request(&mut self, request: &Request) -> Result<JsonValue, ClientError> {
        self.send(request)?;
        self.recv_ok()
    }

    /// Submits a sweep. With `watch`, streams events to `on_event` until
    /// the job's `done` event, which is summarized in the returned
    /// [`Submission`].
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for a refused spec or full queue; protocol
    /// and I/O failures.
    pub fn submit(
        &mut self,
        spec: &SweepSpec,
        watch: bool,
        on_event: impl FnMut(&JsonValue),
    ) -> Result<Submission, ClientError> {
        self.submit_with(spec, watch, 0, on_event)
    }

    /// [`Client::submit`] with an explicit scheduling priority (higher
    /// runs first; FIFO within a level; 0 is the default).
    ///
    /// # Errors
    ///
    /// As [`Client::submit`].
    pub fn submit_with(
        &mut self,
        spec: &SweepSpec,
        watch: bool,
        priority: i64,
        mut on_event: impl FnMut(&JsonValue),
    ) -> Result<Submission, ClientError> {
        let ack = self.request(&Request::Submit { spec: Box::new(spec.clone()), watch, priority })?;
        let job = ack
            .get("job")
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ClientError::Protocol(format!("submit ack without job id: {ack}")))?;
        let total = ack.get("total").and_then(JsonValue::as_u64).unwrap_or(0);
        if !watch {
            return Ok(Submission { job, total, done: None });
        }
        let done = self.stream_until_done(&mut on_event)?;
        Ok(Submission { job, total, done: Some(done) })
    }

    /// Forwards events until `done`, with the read deadline lifted: the
    /// gap between events is one grid point's execution, which has no
    /// a-priori bound.
    fn stream_until_done(
        &mut self,
        on_event: &mut impl FnMut(&JsonValue),
    ) -> Result<DoneSummary, ClientError> {
        self.set_read_deadline(None)?;
        let outcome = loop {
            let event = match self.recv() {
                Ok(event) => event,
                Err(e) => break Err(e),
            };
            on_event(&event);
            if event.get("event").and_then(JsonValue::as_str) == Some("done") {
                break DoneSummary::from_event(&event);
            }
        };
        self.set_read_deadline(Some(IO_TIMEOUT))?;
        outcome
    }

    /// Fetches a job's state and progress counters.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for an unknown job.
    pub fn status(&mut self, job: u64) -> Result<JsonValue, ClientError> {
        self.request(&Request::Status { job })
    }

    /// Fetches a finished job's result frame; the `"report"` field holds
    /// the full `SweepReport` JSON.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the job is unknown or unfinished.
    pub fn result(&mut self, job: u64) -> Result<JsonValue, ClientError> {
        self.request(&Request::Result { job })
    }

    /// Cancels a queued job.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] when the job is unknown or already
    /// running/finished.
    pub fn cancel(&mut self, job: u64) -> Result<JsonValue, ClientError> {
        self.request(&Request::Cancel { job })
    }

    /// Attaches to a job's event stream until it finishes, returning its
    /// terminal summary.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] for an unknown job.
    pub fn watch(&mut self, job: u64, mut on_event: impl FnMut(&JsonValue)) -> Result<DoneSummary, ClientError> {
        self.request(&Request::Watch { job })?;
        self.stream_until_done(&mut on_event)
    }

    /// Fetches the server counters.
    ///
    /// # Errors
    ///
    /// Protocol and I/O failures.
    pub fn stats(&mut self) -> Result<JsonValue, ClientError> {
        self.request(&Request::Stats)
    }

    /// Fetches a full metrics snapshot (counters, gauges, histogram
    /// quantiles) — the versioned `metrics` frame. Old servers answer
    /// `unknown cmd` as a [`ClientError::Server`]; callers wanting a
    /// silent fallback branch on that variant.
    ///
    /// # Errors
    ///
    /// [`ClientError::Server`] from a pre-metrics server; protocol and
    /// I/O failures.
    pub fn metrics(&mut self) -> Result<JsonValue, ClientError> {
        self.request(&Request::Metrics)
    }

    /// Streams the completed-point event feed: replays retained events
    /// with sequence numbers strictly greater than `after` (optionally
    /// restricted to one `job`), and under `follow` keeps the stream open
    /// for new events. Every event (each carrying a `"seq"` field) goes
    /// to `on_event`; returns the final cursor from the stream's `end`
    /// event — pass it back as `after` to resume without duplicates
    /// after a reconnect.
    ///
    /// # Errors
    ///
    /// Protocol and I/O failures (including a pre-`results` server's
    /// refusal, surfaced as [`ClientError::Server`]).
    pub fn results(
        &mut self,
        after: u64,
        follow: bool,
        job: Option<u64>,
        mut on_event: impl FnMut(&JsonValue),
    ) -> Result<u64, ClientError> {
        self.request(&Request::Results { after, follow, job })?;
        let mut cursor = after;
        // Follow-mode gaps are unbounded (the next event arrives when the
        // next grid point completes), so lift the read deadline like the
        // other event streams do.
        self.set_read_deadline(None)?;
        let outcome = loop {
            let event = match self.recv() {
                Ok(event) => event,
                Err(e) => break Err(e),
            };
            if event.get("event").and_then(JsonValue::as_str) == Some("end") {
                break Ok(event.get("cursor").and_then(JsonValue::as_u64).unwrap_or(cursor));
            }
            if let Some(seq) = event.get("seq").and_then(JsonValue::as_u64) {
                cursor = seq;
            }
            on_event(&event);
        };
        self.set_read_deadline(Some(IO_TIMEOUT))?;
        outcome
    }

    /// Asks the server to stop.
    ///
    /// # Errors
    ///
    /// Protocol and I/O failures.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        self.request(&Request::Shutdown).map(|_| ())
    }
}

impl Drop for Client {
    fn drop(&mut self) {
        // Half-open connections are what the server's deadlines exist to
        // kill; a well-behaved client hangs up explicitly instead.
        let _ = self.writer.shutdown(Shutdown::Both);
    }
}

/// Submits with end-to-end retry: transient failures (dropped connection,
/// deadline, refused connect) reconnect and resubmit. Safe because the
/// server memoizes results by `content_key` — a resubmitted sweep's
/// completed points are cache hits, not re-executions (the retried job
/// does get a fresh job id).
///
/// # Errors
///
/// The last attempt's error once `policy.retries` is exhausted, or the
/// first non-transient error.
pub fn submit_with_retry(
    addr: &str,
    policy: &RetryPolicy,
    spec: &SweepSpec,
    watch: bool,
    priority: i64,
    mut on_event: impl FnMut(&JsonValue),
) -> Result<Submission, ClientError> {
    request_with_retry(addr, policy, |client| client.submit_with(spec, watch, priority, &mut on_event))
}

/// Runs one request against a fresh connection with end-to-end retry:
/// transient failures (dropped connection, deadline, refused connect)
/// reconnect and reissue the call. Only suitable for idempotent requests
/// — every protocol request except `submit` qualifies, and `submit` is
/// made idempotent by the content-keyed cache (see [`submit_with_retry`]).
///
/// # Errors
///
/// The last attempt's error once `policy.retries` is exhausted, or the
/// first non-transient error.
pub fn request_with_retry<T>(
    addr: &str,
    policy: &RetryPolicy,
    mut call: impl FnMut(&mut Client) -> Result<T, ClientError>,
) -> Result<T, ClientError> {
    let mut rng = jitter_rng();
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        // Connect attempts budget their own retries inside the same
        // policy; a mid-stream drop falls through to the outer loop.
        let result = Client::connect_with_retry(addr, policy).and_then(|mut client| call(&mut client));
        match result {
            Ok(value) => return Ok(value),
            Err(e @ ClientError::Unreachable { .. }) => return Err(e),
            Err(e) if e.is_transient() && attempts <= policy.retries => {
                std::thread::sleep(policy.backoff(attempts, &mut rng));
            }
            Err(e) => return Err(e),
        }
    }
}
