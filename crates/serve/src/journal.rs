//! The job journal: a write-ahead log that makes `temu-serve` restarts
//! lossless.
//!
//! Every job transition is one appended JSON line in `jobs.jsonl` (by
//! default next to the result store):
//!
//! ```text
//! {"op": "submit", "job": 3, "name": "smoke", "spec": {...}}
//! {"op": "start", "job": 3}
//! {"op": "done", "job": 3}          // or "failed" / "cancelled"
//! ```
//!
//! On startup the server replays the journal and re-enqueues every job
//! that was submitted but never reached a terminal record — the jobs that
//! were queued or running when the previous process died. Combined with
//! the incremental [`ResultCache`](temu_framework::ResultCache) store
//! (flushed at every sweep checkpoint), a job killed at point *k*
//! restarts as *k* cache hits plus the remaining points.
//!
//! Replay uses the same recovery discipline as the result store: the file
//! is append-only, each record is one `write` call, and a torn record (a
//! writer that died mid-append, or an injected `torn_write` fault) is
//! skipped by resyncing at the next `{"op"` marker — complete records
//! glued after the tear on the same line are still recovered.

use std::collections::{HashMap, HashSet};
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};
use temu_framework::{json_escape, JsonValue, SweepSpec};

/// A job the journal proves was in flight when the process died.
#[derive(Clone, PartialEq, Debug)]
pub struct RecoveredJob {
    /// The job id from the previous incarnation (preserved, so clients
    /// polling a pre-crash id keep working across the restart).
    pub id: u64,
    /// The sweep's display name.
    pub name: String,
    /// The full spec, ready to re-enqueue.
    pub spec: SweepSpec,
    /// Whether a `start` record proves the job had reached a worker
    /// (false: it was still queued).
    pub was_running: bool,
    /// The submission's scheduling priority (0 when the record predates
    /// priorities) — replay preserves it so a restart re-enqueues the
    /// queue in the same order a live server would have run it.
    pub priority: i64,
}

/// The outcome of replaying a journal file.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct JournalReplay {
    /// Non-terminal jobs in submit order — what the server re-enqueues.
    pub pending: Vec<RecoveredJob>,
    /// One past the highest job id seen (the restart's first fresh id),
    /// or 1 for an empty journal.
    pub next_id: u64,
    /// Torn or undecodable byte runs skipped during replay.
    pub skipped: usize,
}

/// The append handle. Cloning is not needed: the server holds it in an
/// `Arc` and each record is one atomic `O_APPEND` write.
pub struct Journal {
    file: Mutex<File>,
    path: PathBuf,
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal").field("path", &self.path).finish()
    }
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` and replays its
    /// existing records.
    ///
    /// # Errors
    ///
    /// Any I/O error opening or reading the file.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<(Journal, JournalReplay)> {
        let path = path.as_ref().to_path_buf();
        let replayed = if path.exists() {
            replay(&std::fs::read_to_string(&path)?)
        } else {
            JournalReplay { next_id: 1, ..JournalReplay::default() }
        };
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok((Journal { file: Mutex::new(file), path }, replayed))
    }

    /// The journal file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Records a submission (the write-ahead half: this lands before the
    /// job is queued, so a crash after the append still recovers it).
    /// The default priority 0 is omitted, keeping records byte-identical
    /// to pre-priority journals.
    pub fn record_submit(&self, id: u64, name: &str, priority: i64, spec: &SweepSpec) {
        let priority =
            if priority == 0 { String::new() } else { format!("\"priority\": {priority}, ") };
        self.append(&format!(
            "{{\"op\": \"submit\", \"job\": {id}, \"name\": \"{}\", {priority}\"spec\": {}}}",
            json_escape(name),
            spec.to_json(),
        ));
    }

    /// Records that a worker claimed the job.
    pub fn record_start(&self, id: u64) {
        self.append(&format!("{{\"op\": \"start\", \"job\": {id}}}"));
    }

    /// Records a terminal transition (`done` / `failed` / `cancelled`).
    pub fn record_terminal(&self, id: u64, state: &str) {
        self.append(&format!("{{\"op\": \"{}\", \"job\": {id}}}", json_escape(state)));
    }

    /// Appends one record as a single `write` call (plus fdatasync —
    /// journal traffic is per job, not per point, so durability is cheap
    /// here). The `torn_write` fault truncates the record mid-line and
    /// drops the newline, reproducing exactly the tear a dying writer
    /// leaves behind.
    fn append(&self, record: &str) {
        let payload = match crate::fault::torn_write(record) {
            Some(torn) => torn,
            None => format!("{record}\n"),
        };
        temu_obs::time!("serve.journal_append_ns", {
            let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
            let _ = file.write_all(payload.as_bytes());
            let _ = file.sync_data();
        });
    }
}

/// Replays journal text into the set of jobs to re-enqueue. Total: every
/// decodable record is applied, every undecodable byte run is skipped
/// (counted in [`JournalReplay::skipped`]), duplicates are idempotent,
/// and a terminal record for an unknown job is ignored.
#[must_use]
pub fn replay(text: &str) -> JournalReplay {
    let mut order: Vec<u64> = Vec::new();
    let mut specs: HashMap<u64, (String, SweepSpec, i64)> = HashMap::new();
    let mut started: HashSet<u64> = HashSet::new();
    let mut terminal: HashSet<u64> = HashSet::new();
    let mut next_id: u64 = 1;
    let mut skipped = 0usize;
    for line in text.lines() {
        let mut rest = line.trim_start();
        while !rest.is_empty() {
            match decode_prefix(rest) {
                Some((record, consumed)) => {
                    if let Some(id) = record.id {
                        next_id = next_id.max(id.saturating_add(1));
                    }
                    apply(&record, &mut order, &mut specs, &mut started, &mut terminal);
                    rest = rest[consumed..].trim_start();
                }
                None => {
                    skipped += 1;
                    // Resync past one whole character (foreign lines may
                    // start mid-UTF-8) at the next record marker.
                    let skip = rest.chars().next().map_or(1, char::len_utf8);
                    match rest[skip..].find("{\"op\"") {
                        Some(off) => rest = &rest[skip + off..],
                        None => break,
                    }
                }
            }
        }
    }
    let pending = order
        .into_iter()
        .filter(|id| !terminal.contains(id))
        .filter_map(|id| {
            let (name, spec, priority) = specs.get(&id)?.clone();
            Some(RecoveredJob { id, name, spec, was_running: started.contains(&id), priority })
        })
        .collect();
    JournalReplay { pending, next_id, skipped }
}

struct Record {
    op: String,
    id: Option<u64>,
    name: Option<String>,
    spec: Option<SweepSpec>,
    priority: i64,
}

fn apply(
    record: &Record,
    order: &mut Vec<u64>,
    specs: &mut HashMap<u64, (String, SweepSpec, i64)>,
    started: &mut HashSet<u64>,
    terminal: &mut HashSet<u64>,
) {
    let Some(id) = record.id else { return };
    match record.op.as_str() {
        "submit" => {
            if let Some(spec) = &record.spec {
                // First submit wins: a duplicated line cannot re-order or
                // overwrite the job.
                if let std::collections::hash_map::Entry::Vacant(slot) = specs.entry(id) {
                    let name = record.name.clone().unwrap_or_else(|| spec.name.clone());
                    slot.insert((name, spec.clone(), record.priority));
                    order.push(id);
                }
            }
        }
        "start" => {
            started.insert(id);
        }
        "done" | "failed" | "cancelled" => {
            terminal.insert(id);
        }
        // Unknown ops from a newer writer are skipped, not fatal.
        _ => {}
    }
}

/// Decodes one record at the head of `rest`, returning it and the bytes
/// consumed. Journal records nest objects (the submit record embeds a
/// spec), so the record's end is found by brace matching with JSON string
/// awareness — the store's "first `}`" shortcut does not apply here.
fn decode_prefix(rest: &str) -> Option<(Record, usize)> {
    let end = object_end(rest)?;
    let v = JsonValue::parse(&rest[..end]).ok()?;
    let op = v.get("op")?.as_str()?.to_string();
    let spec = match v.get("spec") {
        Some(sv) => Some(SweepSpec::from_value(sv).ok()?),
        None => None,
    };
    let record = Record {
        op,
        id: v.get("job").and_then(JsonValue::as_u64),
        name: v.get("name").and_then(JsonValue::as_str).map(String::from),
        spec,
        priority: v.get("priority").and_then(JsonValue::as_i64).unwrap_or(0),
    };
    Some((record, end))
}

/// Byte length of the complete JSON object at the head of `text` (which
/// must start with `{`), honoring strings and escapes; `None` when the
/// object never closes (a torn record).
fn object_end(text: &str) -> Option<usize> {
    let bytes = text.as_bytes();
    if bytes.first() != Some(&b'{') {
        return None;
    }
    let mut depth = 0usize;
    let mut in_string = false;
    let mut escaped = false;
    for (i, &b) in bytes.iter().enumerate() {
        if in_string {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_string = false;
            }
            continue;
        }
        match b {
            b'"' => in_string = true,
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i + 1);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit_line(id: u64) -> String {
        let spec = SweepSpec::named("smoke").unwrap();
        format!(
            "{{\"op\": \"submit\", \"job\": {id}, \"name\": \"smoke\", \"spec\": {}}}",
            spec.to_json()
        )
    }

    #[test]
    fn replay_recovers_non_terminal_jobs_in_submit_order() {
        let text = format!(
            "{}\n{}\n{{\"op\": \"start\", \"job\": 1}}\n{}\n{{\"op\": \"done\", \"job\": 2}}\n",
            submit_line(1),
            submit_line(2),
            submit_line(3),
        );
        let r = replay(&text);
        assert_eq!(r.pending.iter().map(|j| j.id).collect::<Vec<_>>(), vec![1, 3]);
        assert!(r.pending[0].was_running);
        assert!(!r.pending[1].was_running);
        assert_eq!(r.next_id, 4);
        assert_eq!(r.skipped, 0);
    }

    #[test]
    fn replay_resyncs_past_a_torn_record() {
        // A writer died mid-submit; the next writer's complete record was
        // glued onto the same line by O_APPEND.
        let torn = &submit_line(1)[..40];
        let text = format!("{torn}{}\n{{\"op\": \"done\", \"job\": 2}}\n", submit_line(2));
        let r = replay(&text);
        assert_eq!(r.pending.len(), 0, "job 1's record was torn, job 2 finished");
        assert_eq!(r.next_id, 3);
        assert!(r.skipped > 0);
    }

    #[test]
    fn replay_is_idempotent_over_duplicates_and_orphan_terminals() {
        let text = format!(
            "{}\n{}\n{{\"op\": \"cancelled\", \"job\": 9}}\n{{\"op\": \"weird\", \"job\": 1}}\n",
            submit_line(1),
            submit_line(1),
        );
        let r = replay(&text);
        assert_eq!(r.pending.len(), 1);
        assert_eq!(r.pending[0].id, 1);
        assert_eq!(r.next_id, 10, "orphan terminal still advances the id horizon");
    }

    #[test]
    fn open_round_trips_through_the_file() {
        let dir = std::env::temp_dir().join(format!("temu-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("jobs.jsonl");
        let _ = std::fs::remove_file(&path);
        let spec = SweepSpec::named("smoke").unwrap();
        {
            let (journal, r) = Journal::open(&path).unwrap();
            assert_eq!(r, JournalReplay { next_id: 1, ..JournalReplay::default() });
            journal.record_submit(1, "smoke", 0, &spec);
            journal.record_start(1);
            journal.record_submit(2, "smoke", 7, &spec);
        }
        let (_journal, r) = Journal::open(&path).unwrap();
        assert_eq!(r.pending.len(), 2);
        assert_eq!(r.next_id, 3);
        assert!(r.pending[0].was_running && !r.pending[1].was_running);
        assert_eq!(
            (r.pending[0].priority, r.pending[1].priority),
            (0, 7),
            "replay preserves submission priorities"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn priority_survives_replay_and_defaults_for_old_records() {
        let spec = SweepSpec::named("smoke").unwrap();
        let text = format!(
            "{}\n{{\"op\": \"submit\", \"job\": 2, \"name\": \"hot\", \"priority\": 5, \"spec\": {}}}\n",
            submit_line(1),
            spec.to_json(),
        );
        let r = replay(&text);
        assert_eq!(r.pending.len(), 2);
        assert_eq!(r.pending[0].priority, 0, "pre-priority records default to the batch tier");
        assert_eq!(r.pending[1].priority, 5);
    }
}
