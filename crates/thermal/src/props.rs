//! Material properties — the paper's Table 2, verbatim.

/// Silicon thermal conductivity at reference temperature (300 K), W/mK.
pub const SILICON_K300: f64 = 150.0;

/// Silicon volumetric specific heat, J/(µm³·K) (Table 2: `1.628e-12`).
pub const SILICON_SPECIFIC_HEAT_PER_UM3: f64 = 1.628e-12;

/// Silicon die thickness in µm (Table 2: 350 µm).
pub const SILICON_THICKNESS_UM: f64 = 350.0;

/// Copper thermal conductivity, W/mK (Table 2: 400 W/mK, linear).
pub const COPPER_CONDUCTIVITY: f64 = 400.0;

/// Copper volumetric specific heat, J/(µm³·K) (Table 2: `3.55e-12`).
pub const COPPER_SPECIFIC_HEAT_PER_UM3: f64 = 3.55e-12;

/// Copper heat-spreader thickness in µm (Table 2: 1000 µm).
pub const COPPER_THICKNESS_UM: f64 = 1000.0;

/// Package-to-air thermal resistance, K/W (Table 2: "20 K/W in low power" —
/// deliberately above vendor datasheets to cover uncertain final working
/// conditions, §5.2).
pub const PACKAGE_TO_AIR_K_PER_W: f64 = 20.0;

/// Non-linear silicon conductivity (Table 2):
/// `k(T) = 150 · (300/T)^{4/3}` W/mK.
///
/// Clamped below 50 K to avoid the singularity at 0 (never reached by a
/// physically meaningful simulation).
pub fn silicon_conductivity(temp_k: f64) -> f64 {
    let t = temp_k.max(50.0);
    SILICON_K300 * (300.0 / t).powf(4.0 / 3.0)
}

/// Bundle of the Table 2 constants (convenient for reports/printing).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ThermalProps {
    /// Silicon conductivity at 300 K, W/mK.
    pub silicon_k300: f64,
    /// Silicon specific heat, J/(µm³·K).
    pub silicon_c: f64,
    /// Silicon thickness, µm.
    pub silicon_thickness_um: f64,
    /// Copper conductivity, W/mK.
    pub copper_k: f64,
    /// Copper specific heat, J/(µm³·K).
    pub copper_c: f64,
    /// Copper thickness, µm.
    pub copper_thickness_um: f64,
    /// Package-to-air resistance, K/W.
    pub package_to_air: f64,
}

impl Default for ThermalProps {
    fn default() -> ThermalProps {
        ThermalProps {
            silicon_k300: SILICON_K300,
            silicon_c: SILICON_SPECIFIC_HEAT_PER_UM3,
            silicon_thickness_um: SILICON_THICKNESS_UM,
            copper_k: COPPER_CONDUCTIVITY,
            copper_c: COPPER_SPECIFIC_HEAT_PER_UM3,
            copper_thickness_um: COPPER_THICKNESS_UM,
            package_to_air: PACKAGE_TO_AIR_K_PER_W,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_match_paper() {
        let p = ThermalProps::default();
        assert_eq!(p.silicon_k300, 150.0);
        assert_eq!(p.silicon_c, 1.628e-12);
        assert_eq!(p.silicon_thickness_um, 350.0);
        assert_eq!(p.copper_k, 400.0);
        assert_eq!(p.copper_c, 3.55e-12);
        assert_eq!(p.copper_thickness_um, 1000.0);
        assert_eq!(p.package_to_air, 20.0);
    }

    #[test]
    fn silicon_conductivity_is_150_at_300k() {
        assert!((silicon_conductivity(300.0) - 150.0).abs() < 1e-12);
    }

    #[test]
    fn silicon_conductivity_drops_with_temperature() {
        let k350 = silicon_conductivity(350.0);
        let k400 = silicon_conductivity(400.0);
        assert!(k350 < 150.0);
        assert!(k400 < k350);
        // Spot value: 150 * (300/400)^(4/3) ≈ 102.2 W/mK.
        assert!((k400 - 150.0 * (0.75f64).powf(4.0 / 3.0)).abs() < 1e-9);
    }

    #[test]
    fn silicon_conductivity_clamps_near_zero() {
        assert!(silicon_conductivity(1.0).is_finite());
        assert_eq!(silicon_conductivity(10.0), silicon_conductivity(50.0));
    }
}
