//! The window-checkpoint store: mid-point run state that survives a
//! `SIGKILL`.
//!
//! The job journal ([`crate::journal`]) makes *jobs* recoverable and the
//! result store makes *finished points* recoverable — but a killed server
//! still lost every window the in-flight point had executed. With
//! `--window-checkpoint N`, each running point's sweep installs an
//! [`on_window_checkpoint`](temu_framework::Sweep::on_window_checkpoint)
//! hook that appends the boundary's serialized
//! [`EmulationState`](temu_framework::EmulationState) here, one JSON line
//! in the journal's sibling checkpoint file (`jobs.jsonl` →
//! `jobs.checkpoints.jsonl` — per journal, because fleet members sharing
//! one store directory run distinct journals with colliding job ids):
//!
//! ```text
//! {"temu_checkpoints": 1}
//! {"ck": "window", "job": 3, "key": "00c2a5…", "windows": 10, "state": "<hex>"}
//! ```
//!
//! On restart the server replays the file (last record per `(job, key)`
//! wins), seeds each recovered job's sweep via
//! [`resume_point`](temu_framework::Sweep::resume_point), and compacts
//! the file down to the records that still matter — checkpoints of jobs
//! that finished are dead weight and are dropped. The state bytes are the
//! framework's versioned, fail-closed stream: a record that no longer
//! decodes (or a torn tail) is skipped, and the point simply re-runs from
//! scratch — resume is an optimization, never a correctness dependency.
//!
//! Append discipline matches the journal: each record is one `write`
//! call, torn tails are resynced at the next `{"ck"` marker, and records
//! are flat JSON objects (the hex state string contains no braces), so a
//! record ends at its first `}`.

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::{Mutex, PoisonError};
use temu_framework::JsonValue;

/// The store format version written in the header line. A file with a
/// newer header replays as empty (fail-closed: its records are not ours
/// to interpret) and is rewritten at the next compaction.
pub const CHECKPOINTS_VERSION: u64 = 1;

const HEADER_PREFIX: &str = "{\"temu_checkpoints\"";
const RECORD_MARKER: &str = "{\"ck\"";

/// The append handle for a journal's window-checkpoint file.
pub struct CheckpointStore {
    file: Mutex<File>,
    path: PathBuf,
}

impl std::fmt::Debug for CheckpointStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CheckpointStore").field("path", &self.path).finish()
    }
}

/// What replaying a checkpoint file recovered.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct CheckpointReplay {
    /// Per job: the last recorded state bytes (and window count) of each
    /// in-flight point, keyed by the point's scenario content key.
    pub states: HashMap<u64, HashMap<u64, (u64, Vec<u8>)>>,
    /// Torn or undecodable byte runs skipped during replay.
    pub skipped: usize,
}

impl CheckpointReplay {
    /// Total checkpointed points across all jobs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.values().map(HashMap::len).sum()
    }

    /// Whether nothing was recovered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }
}

impl CheckpointStore {
    /// Opens (creating if absent) the store at `path` and replays its
    /// records.
    ///
    /// # Errors
    ///
    /// Any I/O error opening or reading the file.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<(CheckpointStore, CheckpointReplay)> {
        let path = path.as_ref().to_path_buf();
        let (replayed, fresh) = if path.exists() {
            (replay(&std::fs::read_to_string(&path)?), false)
        } else {
            (CheckpointReplay::default(), true)
        };
        let mut file = OpenOptions::new().create(true).append(true).open(&path)?;
        if fresh {
            let _ = file.write_all(format!("{{\"temu_checkpoints\": {CHECKPOINTS_VERSION}}}\n").as_bytes());
        }
        Ok((CheckpointStore { file: Mutex::new(file), path }, replayed))
    }

    /// The store file's path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one window checkpoint as a single `write` (plus fdatasync
    /// — this runs every N windows, not every window, so durability stays
    /// off the emulation's critical path). The state bytes are
    /// [`EmulationState::to_bytes`](temu_framework::EmulationState::to_bytes),
    /// hex-encoded to keep the record a flat single-line JSON object.
    ///
    /// Each phase (hex encode, `write`, fdatasync) is timed into the
    /// process-wide metrics registry — checkpoint durability is the one
    /// per-point fsync on the serving path, and the per-phase split is
    /// what tells a slow-checkpoint report apart (CPU-bound encode vs a
    /// slow disk).
    pub fn record(&self, job: u64, key: u64, windows: u64, state: &[u8]) {
        let obs = checkpoint_obs();
        obs.count.inc();
        if temu_obs::enabled() {
            obs.bytes.record(state.len() as u64);
        }
        let record = temu_obs::time!(
            "serve.checkpoint_hex_ns",
            format!(
                "{{\"ck\": \"window\", \"job\": {job}, \"key\": \"{key:016x}\", \"windows\": {windows}, \"state\": \"{}\"}}\n",
                hex_encode(state)
            )
        );
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        temu_obs::time!("serve.checkpoint_write_ns", {
            let _ = file.write_all(record.as_bytes());
        });
        temu_obs::time!("serve.checkpoint_fsync_ns", {
            let _ = file.sync_data();
        });
    }

    /// Rewrites the store (tmp + rename) keeping only `replayed` records
    /// of jobs for which `keep` returns true — called at startup with the
    /// recovered-pending set, so checkpoints of finished jobs never
    /// accumulate.
    ///
    /// # Errors
    ///
    /// Any I/O error writing or renaming the replacement file.
    pub fn compact(
        &self,
        replayed: &CheckpointReplay,
        keep: impl Fn(u64) -> bool,
    ) -> std::io::Result<()> {
        let tmp = self.path.with_extension("jsonl.tmp");
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        {
            let mut out = File::create(&tmp)?;
            out.write_all(format!("{{\"temu_checkpoints\": {CHECKPOINTS_VERSION}}}\n").as_bytes())?;
            for (&job, points) in &replayed.states {
                if !keep(job) {
                    continue;
                }
                for (&key, (windows, state)) in points {
                    out.write_all(
                        format!(
                            "{{\"ck\": \"window\", \"job\": {job}, \"key\": \"{key:016x}\", \"windows\": {windows}, \"state\": \"{}\"}}\n",
                            hex_encode(state)
                        )
                        .as_bytes(),
                    )?;
                }
            }
            out.sync_data()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        *file = OpenOptions::new().append(true).open(&self.path)?;
        Ok(())
    }
}

/// The store's registry handles: a count of checkpoints recorded plus a
/// state-size histogram (the phase timers live in `record` via
/// [`temu_obs::time!`]). Interned once; all `CheckpointStore`s in the
/// process share them, which is what the shutdown overhead summary reads.
struct CheckpointObs {
    count: std::sync::Arc<temu_obs::Counter>,
    bytes: std::sync::Arc<temu_obs::Histogram>,
}

fn checkpoint_obs() -> &'static CheckpointObs {
    static OBS: std::sync::OnceLock<CheckpointObs> = std::sync::OnceLock::new();
    OBS.get_or_init(|| {
        let scope = temu_obs::global().scope("serve");
        CheckpointObs {
            count: scope.counter("checkpoints_recorded"),
            bytes: scope.histogram("checkpoint_bytes"),
        }
    })
}

/// Replays checkpoint-store text: last record per `(job, key)` wins,
/// undecodable runs are skipped and counted, and a newer-versioned header
/// empties the replay (fail-closed).
#[must_use]
pub fn replay(text: &str) -> CheckpointReplay {
    let mut out = CheckpointReplay::default();
    for line in text.lines() {
        let mut rest = line.trim_start();
        if rest.starts_with(HEADER_PREFIX) {
            let supported = JsonValue::parse(rest.split_inclusive('}').next().unwrap_or(rest))
                .ok()
                .and_then(|v| v.get("temu_checkpoints").and_then(JsonValue::as_u64))
                .is_some_and(|v| v <= CHECKPOINTS_VERSION);
            if supported {
                continue;
            }
            return CheckpointReplay { skipped: 1, ..CheckpointReplay::default() };
        }
        while !rest.is_empty() {
            match decode_prefix(rest) {
                Some((job, key, windows, state, consumed)) => {
                    out.states.entry(job).or_default().insert(key, (windows, state));
                    rest = rest[consumed..].trim_start();
                }
                None => {
                    out.skipped += 1;
                    let skip = rest.chars().next().map_or(1, char::len_utf8);
                    match rest[skip..].find(RECORD_MARKER) {
                        Some(off) => rest = &rest[skip + off..],
                        None => break,
                    }
                }
            }
        }
    }
    out
}

/// Decodes one record at the head of `rest`. Records are flat objects
/// whose only string values are hex/identifier-safe, so the record ends
/// at the first `}`.
fn decode_prefix(rest: &str) -> Option<(u64, u64, u64, Vec<u8>, usize)> {
    let end = rest.find('}')? + 1;
    let v = JsonValue::parse(&rest[..end]).ok()?;
    if v.get("ck")?.as_str()? != "window" {
        return None;
    }
    let job = v.get("job")?.as_u64()?;
    let key = u64::from_str_radix(v.get("key")?.as_str()?, 16).ok()?;
    let windows = v.get("windows")?.as_u64()?;
    let state = hex_decode(v.get("state")?.as_str()?)?;
    Some((job, key, windows, state, end))
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push_str(&format!("{b:02x}"));
    }
    out
}

fn hex_decode(text: &str) -> Option<Vec<u8>> {
    if !text.len().is_multiple_of(2) {
        return None;
    }
    text.as_bytes()
        .chunks_exact(2)
        .map(|pair| u8::from_str_radix(std::str::from_utf8(pair).ok()?, 16).ok())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("temu-ckpt-{}-{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("checkpoints.jsonl")
    }

    #[test]
    fn record_replay_round_trips_and_last_record_wins() {
        let path = temp_path("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let (store, replayed) = CheckpointStore::open(&path).unwrap();
            assert!(replayed.is_empty());
            store.record(1, 0xabc, 5, &[1, 2, 3]);
            store.record(1, 0xabc, 10, &[4, 5]);
            store.record(1, 0xdef, 2, &[9]);
            store.record(2, 0xabc, 7, &[7, 7]);
        }
        let (_store, r) = CheckpointStore::open(&path).unwrap();
        assert_eq!(r.skipped, 0);
        assert_eq!(r.len(), 3, "one live record per (job, key)");
        assert_eq!(r.states[&1][&0xabc], (10, vec![4, 5]), "the later checkpoint wins");
        assert_eq!(r.states[&1][&0xdef], (2, vec![9]));
        assert_eq!(r.states[&2][&0xabc], (7, vec![7, 7]));
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }

    #[test]
    fn torn_tail_is_skipped_and_glued_records_are_recovered() {
        // A writer died mid-append; O_APPEND glued the next complete
        // record onto the same physical line.
        let whole = "{\"ck\": \"window\", \"job\": 2, \"key\": \"000000000000000a\", \"windows\": 3, \"state\": \"ff\"}";
        let text = format!("{{\"temu_checkpoints\": 1}}\n{}{whole}\n", &whole[..30]);
        let r = replay(&text);
        assert!(r.skipped > 0);
        assert_eq!(r.states[&2][&0xa], (3, vec![0xff]));
    }

    #[test]
    fn newer_header_version_replays_as_empty() {
        let text = "{\"temu_checkpoints\": 99}\n{\"ck\": \"window\", \"job\": 1, \"key\": \"01\", \"windows\": 1, \"state\": \"00\"}\n";
        let r = replay(text);
        assert!(r.is_empty(), "a newer format's records are not ours to interpret");
        assert_eq!(r.skipped, 1);
    }

    #[test]
    fn compact_drops_finished_jobs_and_keeps_the_file_appendable() {
        let path = temp_path("compact");
        let _ = std::fs::remove_file(&path);
        let (store, _r) = CheckpointStore::open(&path).unwrap();
        store.record(1, 0x1, 5, &[1]);
        store.record(2, 0x2, 6, &[2]);
        let replayed = replay(&std::fs::read_to_string(&path).unwrap());
        store.compact(&replayed, |job| job == 2).unwrap();
        store.record(3, 0x3, 7, &[3]);
        let r = replay(&std::fs::read_to_string(&path).unwrap());
        assert!(!r.states.contains_key(&1), "finished job 1's checkpoint was dropped");
        assert_eq!(r.states[&2][&0x2], (6, vec![2]));
        assert_eq!(r.states[&3][&0x3], (7, vec![3]), "post-compaction appends land in the file");
        std::fs::remove_dir_all(path.parent().unwrap()).unwrap();
    }
}
