//! Mesher scaling contract: a ≥ 10k-tile floorplan must mesh in well under
//! a second (the seed's all-pairs lateral-adjacency scan was O(n_tiles²)
//! and took seconds at this size even in release mode; the interval-sweep
//! build is O(n log n + E)). This runs in debug mode under `cargo test`,
//! which makes the bound a comfortably honest one.

use std::time::Instant;
use temu_thermal::{Floorplan, GridConfig, ThermalGrid};

#[test]
fn ten_thousand_tile_floorplan_meshes_in_under_a_second() {
    // One hot 104×104 component plus surrounding filler: > 10k tiles.
    let mut fp = Floorplan::new("big", 12000.0, 12000.0);
    fp.add_component("hot", 1000.0, 1000.0, 10000.0, 10000.0, true);
    let cfg = GridConfig { hot_div: 104, filler_pitch_um: 1000.0, ..GridConfig::default() };
    let t0 = Instant::now();
    let grid = ThermalGrid::build(&fp, &cfg).unwrap();
    let elapsed = t0.elapsed();
    assert!(grid.n_tiles() >= 10_000, "{} tiles", grid.n_tiles());
    assert!(
        elapsed.as_secs_f64() < 1.0,
        "meshing {} tiles took {:.3} s",
        grid.n_tiles(),
        elapsed.as_secs_f64()
    );
    // The mesh is structurally sound: every cell is connected and the edge
    // count stays linear in cells.
    assert!(grid.n_edges() <= 4 * grid.n_cells());
    assert!((0..grid.n_cells()).all(|c| grid.degree(c) >= 2));
}

#[test]
fn sweep_mesher_matches_known_adjacency_counts() {
    // A T-junction arrangement whose adjacency the all-pairs scan resolved:
    // fine 3×3 component beside one coarse filler tile (cf. the grid
    // module's t_junction test) — counts must be identical under the
    // interval-sweep build.
    let mut fp = Floorplan::new("tj", 2000.0, 1000.0);
    fp.add_component("fine", 0.0, 0.0, 1000.0, 1000.0, true);
    let cfg = GridConfig {
        hot_div: 3,
        si_layers: 1,
        cu_layers: 1,
        filler_pitch_um: 2000.0,
        ..GridConfig::default()
    };
    let grid = ThermalGrid::build(&fp, &cfg).unwrap();
    // 9 fine tiles + 1 filler tile, 2 layers.
    assert_eq!(grid.n_tiles(), 10);
    // Per layer: 12 edges inside the 3x3 block + 3 fine-filler T-junction
    // couplings; plus 10 vertical edges between the two layers.
    assert_eq!(grid.n_edges(), 2 * (12 + 3) + 10);
}
