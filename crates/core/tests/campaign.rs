//! Campaign-runner and typed-error-path integration tests: the acceptance
//! surface of the Scenario/Campaign API redesign.

use temu_framework::{Campaign, Scenario, TemuError, Workload};
use temu_isa::asm::assemble;
use temu_mem::MemError;
use temu_platform::{Machine, PlatformConfig, PlatformError};
use temu_power::PowerError;
use temu_thermal::{GridConfig, ThermalError};
use temu_workloads::dithering::DitherConfig;
use temu_workloads::matrix::MatrixConfig;

/// Four distinct exploration points: bus vs NoC × two workloads.
fn four_scenarios() -> Vec<Scenario> {
    let dither = |noc: bool| {
        let base = if noc { Scenario::exploration_noc(2) } else { Scenario::exploration_bus(2) };
        base.sampling_window_s(0.002)
    };
    let matrix = |noc: bool| dither(noc).workload(Workload::Matrix(MatrixConfig::small(2)));
    vec![dither(false), dither(true), matrix(false), matrix(true)]
}

#[test]
fn campaign_runs_concurrently_in_input_order_with_json_export() {
    let scenarios = four_scenarios();
    let names: Vec<String> = scenarios.iter().map(Scenario::label).collect();
    assert_eq!(names.len(), 4, "four distinct scenarios");
    assert_eq!(names.iter().collect::<std::collections::HashSet<_>>().len(), 4);

    // Two worker threads even on a single-CPU host: the concurrent path is
    // exercised, and results must still come back in input order.
    let report = Campaign::new().scenarios(scenarios).threads(2).run();
    assert_eq!(report.results.len(), 4);
    assert!(report.all_ok(), "{}", report.to_json());
    for (result, name) in report.results.iter().zip(&names) {
        assert_eq!(&result.name, name, "input-ordered results");
        let run = result.outcome.as_ref().unwrap();
        assert!(run.report.all_halted, "{name} halted");
        assert!(run.trace.peak_temp().unwrap() > 300.0, "{name} heated");
    }

    let json = report.to_json();
    for name in &names {
        assert!(json.contains(name.as_str()), "JSON carries {name}");
    }
    assert!(json.contains("\"ok\": true"));
    assert!(json.contains("\"peak_temp_k\""));
    assert!(!json.contains("\"error\""));

    let csv = report.to_csv();
    assert_eq!(csv.lines().count(), 5, "header + 4 rows");
    assert!(csv.starts_with("scenario,ok,"));
}

#[test]
fn streaming_sink_sees_every_result_exactly_once_under_two_threads() {
    use std::sync::{Arc, Mutex};
    type SinkLog = Arc<Mutex<Vec<(usize, usize, String, bool)>>>;
    let seen: SinkLog = Arc::new(Mutex::new(Vec::new()));
    let sink_log = Arc::clone(&seen);
    let report = Campaign::new()
        .scenarios(four_scenarios())
        .threads(2)
        .on_result(move |p| {
            assert_eq!(p.total, 4);
            sink_log.lock().unwrap().push((p.completed, p.index, p.result.name.clone(), p.result.is_ok()));
        })
        .run();
    assert!(report.all_ok());
    let log = seen.lock().unwrap();
    assert_eq!(log.len(), 4, "one sink call per scenario");
    // `completed` counts invocations in call order: 1, 2, 3, 4 — even with
    // two workers racing results in.
    assert_eq!(log.iter().map(|e| e.0).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    // Every input index is delivered exactly once, and the streamed names
    // match the final (input-ordered) report slots.
    let mut indices: Vec<usize> = log.iter().map(|e| e.1).collect();
    indices.sort_unstable();
    assert_eq!(indices, vec![0, 1, 2, 3]);
    for (_, index, name, ok) in log.iter() {
        assert_eq!(&report.results[*index].name, name);
        assert!(*ok);
    }
}

#[test]
fn failing_scenario_does_not_abort_siblings() {
    let bad_grid = GridConfig { si_layers: 0, ..GridConfig::default() };
    let report = Campaign::new()
        .scenario(Scenario::exploration_bus(1).sampling_window_s(0.002))
        .scenario(Scenario::new().grid(bad_grid).name("broken-grid"))
        .scenario(Scenario::exploration_noc(1).sampling_window_s(0.002))
        .threads(2)
        .run();
    assert_eq!(report.results.len(), 3);
    assert_eq!(report.n_failed(), 1);
    assert!(report.results[0].is_ok(), "sibling before the failure completed");
    assert!(report.results[2].is_ok(), "sibling after the failure completed");
    let err = report.results[1].outcome.as_ref().unwrap_err();
    assert!(
        matches!(err, TemuError::Thermal(ThermalError::NoSiliconLayers)),
        "typed error carried through the report: {err:?}"
    );
    let json = report.to_json();
    assert!(json.contains("\"ok\": false"));
    assert!(json.contains("\"error\""));
    assert!(json.contains("silicon layer"));
}

#[test]
fn floorplan_core_mismatch_is_typed() {
    // The Fig. 4 floorplan family holds four core tiles; an 8-core platform
    // without an explicit floorplan must fail with the power-layer error.
    let e = Scenario::exploration_bus(8).build().unwrap_err();
    assert!(
        matches!(e, TemuError::Power(PowerError::CoreTileMismatch { core_tiles: 4, cores: 8 })),
        "{e:?}"
    );
}

#[test]
fn program_too_large_for_memory_map_is_typed() {
    // A 1 KB private memory cannot hold a ~1.5 KB image.
    let mut platform = PlatformConfig::paper_bus(1);
    platform.private_mem.size = 1024;
    let mut machine = Machine::new(platform).unwrap();
    let big = format!("start:\n{}halt\n", "  li r1, 1\n".repeat(400));
    let program = assemble(&big).unwrap();
    let e = machine.load_program(0, &program).unwrap_err();
    assert!(
        matches!(
            &e,
            PlatformError::ProgramLoad { core: 0, source: MemError::OutOfRange { .. } }
        ),
        "{e:?}"
    );
    // And through the workspace-wide hierarchy:
    let top: TemuError = e.into();
    assert!(matches!(top, TemuError::Platform(PlatformError::ProgramLoad { .. })));
}

#[test]
fn workload_data_overflowing_shared_memory_is_typed() {
    // The §7 thermal platform has 32 KB of shared memory; two 128×128
    // images (32 KB at a 4 KB offset) do not fit.
    let e = Scenario::new()
        .workload(Workload::Dithering { cfg: DitherConfig::paper(), seed: 1 })
        .build()
        .unwrap_err();
    assert!(matches!(e, TemuError::SharedData(MemError::OutOfRange { .. })), "{e:?}");
}

#[test]
fn invalid_grid_config_is_typed() {
    let bad = GridConfig { package_to_air: -2.0, ..GridConfig::default() };
    let e = Scenario::new().grid(bad).build().unwrap_err();
    assert!(
        matches!(e, TemuError::Thermal(ThermalError::NonPositivePackageResistance { .. })),
        "{e:?}"
    );
}

#[test]
fn run_budget_windows_is_exact() {
    let run = Scenario::new()
        .workload(Workload::Matrix(MatrixConfig::thermal(4, 100_000)))
        .sampling_window_s(0.001)
        .windows(5)
        .run()
        .unwrap();
    assert_eq!(run.report.windows, 5);
    assert_eq!(run.trace.len(), 5);
}

#[test]
fn empty_campaign_reports_empty() {
    let report = Campaign::new().run();
    assert!(report.results.is_empty());
    assert!(report.all_ok());
    assert_eq!(report.n_failed(), 0);
    assert!(report.to_json().contains("\"scenarios\": [\n  ]"));
}

#[test]
fn export_guards_non_finite_floats() {
    // A report whose run carries NaN/inf durations must still export valid
    // JSON (`null`, never a bare `NaN`) and empty CSV fields.
    use std::time::Duration;
    use temu_framework::{CampaignReport, EmulationReport, ScenarioResult, ScenarioRun, ThermalTrace};

    let report = EmulationReport {
        windows: 3,
        virtual_seconds: f64::NAN,
        virtual_cycles: 42,
        fpga_seconds: f64::INFINITY,
        wall: Duration::from_millis(1),
        all_halted: true,
        aggregate: temu_platform::WindowStats::default(),
        link: temu_link::LinkStats::default(),
        solver: temu_thermal::SolverStats::default(),
    };
    let run = ScenarioRun { name: "nan-run".into(), report, trace: ThermalTrace::default() };
    let campaign = CampaignReport {
        results: vec![ScenarioResult {
            name: "nan-run".into(),
            wall: Duration::from_millis(1),
            outcome: Ok(run),
        }],
        wall: Duration::from_millis(2),
        threads: 1,
    };
    let json = campaign.to_json();
    assert!(json.contains("\"virtual_s\": null"), "{json}");
    assert!(json.contains("\"fpga_s\": null"), "{json}");
    assert!(!json.contains("NaN") && !json.contains("inf"), "{json}");
    let csv = campaign.to_csv();
    assert!(!csv.contains("NaN") && !csv.contains("inf"), "{csv}");
    assert_eq!(csv.lines().count(), 2);
}

#[test]
fn export_carries_solver_convergence_stats() {
    let report = Campaign::new()
        .scenario(Scenario::exploration_bus(1).sampling_window_s(0.002))
        .run();
    assert!(report.all_ok(), "{}", report.to_json());
    let json = report.to_json();
    assert!(json.contains("\"unconverged_substeps\": 0"), "{json}");
    assert!(json.contains("\"worst_residual_k\": 0.000000000"), "{json}");
    let csv = report.to_csv();
    assert!(csv.lines().next().unwrap().contains("unconverged_substeps,worst_residual_k"), "{csv}");
    let run = report.results[0].outcome.as_ref().unwrap();
    assert_eq!(run.report.solver.unconverged_substeps, 0);
    assert!(run.report.solver.total_sweeps > 0, "implicit sweeps were counted");
}

#[test]
fn strict_multigrid_scenario_runs_clean() {
    // A paper-scale scenario forced onto the multigrid solver with strict
    // convergence: must complete (every substep converges) and report a
    // clean SolverStats through the campaign export.
    use temu_framework::ImplicitSolve;
    let report = Campaign::new()
        .scenario(
            Scenario::exploration_bus(1)
                .sampling_window_s(0.002)
                .implicit_solve(ImplicitSolve::Multigrid)
                .strict_convergence(true)
                .name("strict-mg"),
        )
        .run();
    assert!(report.all_ok(), "{}", report.to_json());
    let run = report.results[0].outcome.as_ref().unwrap();
    assert_eq!(run.report.solver.unconverged_substeps, 0);
    assert!(run.report.solver.total_cycles > 0, "the multigrid path was exercised");
}
