//! Shared-bus timing model (§3.3).
//!
//! The paper includes the Xilinx On-chip Peripheral Bus (OPB) and Processor
//! Local Bus (PLB), plus a custom configurable 32-bit data/address bus with
//! selectable bandwidth and arbitration policy. All are single-transaction
//! buses: once granted, the bus is held for the address phase, the memory
//! service time and the data burst.
//!
//! Timing of one transaction (DESIGN.md §4):
//!
//! ```text
//! start    = max(issue + arb_latency, busy_until, tdma-slot constraint)
//! occupancy = addr_phase(1) + mem_latency + words * cycles_per_word
//! complete = start + occupancy
//! ```

use crate::req::{Grant, IcStats, Request};
use crate::{addr_transitions, data_transitions, IcError, Interconnect};
use temu_state::{StateError, StateReader, StateWriter};

/// Arbitration policy of the custom bus.
///
/// Policies differ only when several initiators contend: the emulation engine
/// presents colliding requests in arbitration order obtained from
/// [`Bus::tie_break`], and the cycle-level baseline applies the same rule
/// among request lines asserted in the same cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Arbitration {
    /// Lowest initiator index wins.
    FixedPriority,
    /// Rotating priority starting after the last granted initiator.
    RoundRobin,
    /// Time-division slots of `slot_cycles` per initiator; a transaction may
    /// only *start* inside the owner's slot.
    Tdma {
        /// Length of each initiator's slot in cycles.
        slot_cycles: u32,
    },
}

/// Bus flavour (affects the defaults and the FPGA resource/power models).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BusKind {
    /// Xilinx On-chip Peripheral Bus: general-purpose, 1-cycle/word.
    Opb,
    /// Xilinx Processor Local Bus: fast memories/processors.
    Plb,
    /// The paper's own parameterizable 32-bit bus.
    Custom,
}

/// Bus configuration.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BusConfig {
    /// Flavour label.
    pub kind: BusKind,
    /// Arbitration policy.
    pub arbitration: Arbitration,
    /// Cycles from request to grant when the bus is idle.
    pub arb_latency: u32,
    /// Data cycles per 32-bit word (bandwidth knob; 1 = full width).
    pub cycles_per_word: u32,
    /// Number of initiator ports.
    pub initiators: usize,
}

impl BusConfig {
    /// OPB with `n` initiators, fixed priority, 1 word/cycle.
    pub fn opb(n: usize) -> BusConfig {
        BusConfig { kind: BusKind::Opb, arbitration: Arbitration::FixedPriority, arb_latency: 1, cycles_per_word: 1, initiators: n }
    }

    /// PLB with `n` initiators (faster arbitration pipeline).
    pub fn plb(n: usize) -> BusConfig {
        BusConfig { kind: BusKind::Plb, arbitration: Arbitration::FixedPriority, arb_latency: 1, cycles_per_word: 1, initiators: n }
    }

    /// The paper's custom exploration bus with a chosen arbitration policy.
    pub fn custom(n: usize, arbitration: Arbitration) -> BusConfig {
        BusConfig { kind: BusKind::Custom, arbitration, arb_latency: 1, cycles_per_word: 1, initiators: n }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint: there must be at least one
    /// initiator, `cycles_per_word` must be nonzero, and a TDMA slot must be
    /// at least one cycle.
    pub fn validate(&self) -> Result<(), IcError> {
        if self.initiators == 0 {
            return Err(IcError::NoInitiators);
        }
        if self.cycles_per_word == 0 {
            return Err(IcError::ZeroCyclesPerWord);
        }
        if let Arbitration::Tdma { slot_cycles } = self.arbitration {
            if slot_cycles == 0 {
                return Err(IcError::ZeroTdmaSlot);
            }
        }
        Ok(())
    }
}

/// A shared bus instance.
#[derive(Clone, Debug)]
pub struct Bus {
    cfg: BusConfig,
    busy_until: u64,
    last_granted: usize,
    last_addr: u32,
    stats: IcStats,
}

impl Bus {
    /// Builds a bus from a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.validate()` fails.
    pub fn new(cfg: BusConfig) -> Bus {
        if let Err(e) = cfg.validate() {
            panic!("invalid bus configuration: {e}");
        }
        Bus { cfg, busy_until: 0, last_granted: usize::MAX, last_addr: 0, stats: IcStats::default() }
    }

    /// The configuration the bus was built with.
    pub fn config(&self) -> &BusConfig {
        &self.cfg
    }

    /// Cycle until which the bus is currently reserved.
    pub fn busy_until(&self) -> u64 {
        self.busy_until
    }

    /// Arbitration order key for initiator `who`: among requests presented in
    /// the same cycle, lower keys win. Used by the emulation engines to order
    /// colliding requests exactly like the cycle-level arbiter FSM does.
    pub fn tie_break(&self, who: usize) -> usize {
        match self.cfg.arbitration {
            Arbitration::FixedPriority => who,
            Arbitration::RoundRobin => {
                let n = self.cfg.initiators;
                let first = if self.last_granted == usize::MAX { 0 } else { (self.last_granted + 1) % n };
                (who + n - first) % n
            }
            // TDMA needs no tie-break: slots are disjoint by construction.
            Arbitration::Tdma { .. } => who,
        }
    }

    /// Unloaded service time of a transaction of `words` (plus any combined
    /// write-back payload) with `mem_latency`.
    pub fn unloaded(&self, words: u32, mem_latency: u32) -> u64 {
        u64::from(1 + mem_latency + words * self.cfg.cycles_per_word)
    }

    fn tdma_start(&self, earliest: u64, who: usize, slot_cycles: u32) -> u64 {
        let n = self.cfg.initiators as u64;
        let slot = u64::from(slot_cycles);
        let frame = n * slot;
        let my_start_in_frame = who as u64 * slot;
        // First cycle >= earliest that falls inside one of `who`'s slots.
        let frame_base = (earliest / frame) * frame;
        let mut candidate = frame_base + my_start_in_frame;
        loop {
            let slot_end = candidate + slot;
            if slot_end > earliest {
                return candidate.max(earliest);
            }
            candidate += frame;
        }
    }

    /// Serializes the arbitration and occupancy state.
    pub fn save_state(&self, w: &mut StateWriter) {
        w.u64(self.busy_until);
        w.usize(if self.last_granted == usize::MAX { self.cfg.initiators } else { self.last_granted });
        w.u32(self.last_addr);
        self.stats.save_state(w);
    }

    /// Restores state saved by [`Bus::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`StateError::BadValue`] on an out-of-range granted index.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        self.busy_until = r.u64()?;
        let granted = r.usize()?;
        // `initiators` encodes the never-granted sentinel (usize::MAX).
        if granted > self.cfg.initiators {
            return Err(StateError::BadValue { what: "last granted initiator", value: granted as u64 });
        }
        self.last_granted = if granted == self.cfg.initiators { usize::MAX } else { granted };
        self.last_addr = r.u32()?;
        self.stats.load_state(r)?;
        Ok(())
    }
}

impl Interconnect for Bus {
    fn transact(&mut self, req: &Request, mem_latency: u32) -> Grant {
        debug_assert!(req.initiator < self.cfg.initiators, "initiator {} out of range", req.initiator);
        let earliest = req.issue_cycle + u64::from(self.cfg.arb_latency);
        let free = earliest.max(self.busy_until);
        let start = match self.cfg.arbitration {
            Arbitration::FixedPriority | Arbitration::RoundRobin => free,
            Arbitration::Tdma { slot_cycles } => self.tdma_start(free, req.initiator, slot_cycles),
        };
        let occupancy = self.unloaded(req.words + req.wb_words, mem_latency);
        let complete = start + occupancy;
        self.busy_until = complete;
        self.last_granted = req.initiator;

        self.stats.transactions += 1;
        self.stats.words += u64::from(req.words + req.wb_words);
        self.stats.transitions += addr_transitions(self.last_addr, req.addr) + data_transitions(req.words);
        self.stats.contention_cycles += start - earliest;
        self.stats.busy_cycles += occupancy;
        self.last_addr = req.addr;

        Grant { start, complete }
    }

    fn stats(&self) -> &IcStats {
        &self.stats
    }

    fn take_stats(&mut self) -> IcStats {
        std::mem::take(&mut self.stats)
    }

    fn initiators(&self) -> usize {
        self.cfg.initiators
    }

    fn describe(&self) -> String {
        format!("{:?} bus, {} initiators, {:?}", self.cfg.kind, self.cfg.initiators, self.cfg.arbitration)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(initiator: usize, issue: u64) -> Request {
        Request { initiator, target: 0, is_write: false, words: 4, wb_words: 0, addr: 0x1000_0000, issue_cycle: issue }
    }

    #[test]
    fn combined_eviction_fill_extends_occupancy() {
        let mut bus = Bus::new(BusConfig::opb(1));
        let g = bus.transact(&Request { wb_words: 4, ..req(0, 0) }, 5);
        // occupancy = 1 + 5 + (4 + 4) = 14.
        assert_eq!(g.complete - g.start, 14);
        assert_eq!(bus.stats().words, 8);
    }

    #[test]
    fn unloaded_transaction_timing() {
        let mut bus = Bus::new(BusConfig::opb(2));
        // start = issue(10) + arb(1); occupancy = 1 + lat(5) + 4 words = 10.
        let g = bus.transact(&req(0, 10), 5);
        assert_eq!(g, Grant { start: 11, complete: 21 });
        assert_eq!(bus.stats().contention_cycles, 0);
        assert_eq!(bus.stats().busy_cycles, 10);
    }

    #[test]
    fn back_to_back_serializes() {
        let mut bus = Bus::new(BusConfig::opb(2));
        let g0 = bus.transact(&req(0, 10), 5);
        let g1 = bus.transact(&req(1, 10), 5);
        assert_eq!(g1.start, g0.complete, "second initiator waits for the bus");
        assert_eq!(bus.stats().contention_cycles, g1.start - 11);
    }

    #[test]
    fn idle_bus_does_not_delay() {
        let mut bus = Bus::new(BusConfig::opb(2));
        bus.transact(&req(0, 0), 2);
        let g = bus.transact(&req(1, 1000), 2);
        assert_eq!(g.start, 1001);
    }

    #[test]
    fn round_robin_tie_break_rotates() {
        let mut bus = Bus::new(BusConfig::custom(4, Arbitration::RoundRobin));
        assert_eq!(bus.tie_break(0), 0, "before any grant, id order");
        bus.transact(&req(1, 0), 2);
        // After granting 1, priority order is 2,3,0,1.
        assert_eq!(bus.tie_break(2), 0);
        assert_eq!(bus.tie_break(3), 1);
        assert_eq!(bus.tie_break(0), 2);
        assert_eq!(bus.tie_break(1), 3);
    }

    #[test]
    fn fixed_priority_tie_break_is_identity() {
        let bus = Bus::new(BusConfig::opb(4));
        for i in 0..4 {
            assert_eq!(bus.tie_break(i), i);
        }
    }

    #[test]
    fn tdma_waits_for_slot() {
        // 2 initiators, 10-cycle slots: frame = 20; core 1 owns [10,20), [30,40)...
        let mut bus = Bus::new(BusConfig::custom(2, Arbitration::Tdma { slot_cycles: 10 }));
        let g = bus.transact(&req(1, 0), 2);
        assert_eq!(g.start, 10, "waits for its slot");
        let mut bus2 = Bus::new(BusConfig::custom(2, Arbitration::Tdma { slot_cycles: 10 }));
        let g2 = bus2.transact(&req(0, 3), 2);
        assert_eq!(g2.start, 4, "already inside its slot: only arb latency");
    }

    #[test]
    fn tdma_slot_in_later_frame() {
        let mut bus = Bus::new(BusConfig::custom(2, Arbitration::Tdma { slot_cycles: 10 }));
        let g = bus.transact(&req(0, 15), 2);
        assert_eq!(g.start, 20, "core 0's next slot starts at 20");
    }

    #[test]
    fn bandwidth_knob_scales_burst() {
        let mut cfg = BusConfig::custom(1, Arbitration::FixedPriority);
        cfg.cycles_per_word = 2;
        let mut bus = Bus::new(cfg);
        let g = bus.transact(&req(0, 0), 0);
        // addr phase + zero memory latency + 4 words at 2 cycles each
        assert_eq!(g.complete - g.start, 1 + 8);
    }

    #[test]
    fn transitions_accumulate() {
        let mut bus = Bus::new(BusConfig::opb(1));
        bus.transact(&Request { addr: 0, ..req(0, 0) }, 0);
        let before = bus.stats().transitions;
        bus.transact(&Request { addr: 0xF, issue_cycle: 100, ..req(0, 0) }, 0);
        assert_eq!(bus.stats().transitions - before, 4 + 64, "4 addr toggles + 4 words * 16");
    }

    #[test]
    fn take_stats_resets() {
        let mut bus = Bus::new(BusConfig::opb(1));
        bus.transact(&req(0, 0), 1);
        assert_eq!(bus.take_stats().transactions, 1);
        assert_eq!(bus.stats().transactions, 0);
    }

    #[test]
    fn validation() {
        assert!(BusConfig::opb(0).validate().is_err());
        let mut c = BusConfig::opb(1);
        c.cycles_per_word = 0;
        assert!(c.validate().is_err());
        assert!(BusConfig::custom(2, Arbitration::Tdma { slot_cycles: 0 }).validate().is_err());
        assert!(BusConfig::plb(4).validate().is_ok());
    }

    #[test]
    #[should_panic(expected = "invalid bus configuration")]
    fn new_panics_on_invalid() {
        let _ = Bus::new(BusConfig::opb(0));
    }
}
