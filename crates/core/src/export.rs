//! Shared CSV/JSON serialization helpers for the report exporters
//! ([`crate::CampaignReport`], [`crate::ThermalTrace`],
//! [`crate::SweepReport`]).
//!
//! The framework hand-rolls its exports (no external dependencies), so the
//! escaping rules live in exactly one place: CSV fields are quoted whenever
//! they contain a separator, quote, or line break (`\r` included — a bare
//! carriage return splits a record under RFC 4180 just like `\n`), and every
//! floating-point JSON value is emitted as a number only when finite
//! (`NaN`/`inf` are not valid JSON).

/// Quotes a CSV field when it contains separators, quotes, or line breaks.
pub(crate) fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') || s.contains('\r') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// A float as a CSV field, empty when not finite.
pub(crate) fn csv_f64(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        String::new()
    }
}

/// An optional float as a CSV field, empty when absent or not finite.
pub(crate) fn csv_opt(v: Option<f64>) -> String {
    v.filter(|x| x.is_finite()).map_or_else(String::new, |x| format!("{x:.3}"))
}

/// Escapes a string for inclusion inside a JSON string literal.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A float as a JSON number with `decimals` places, or `null` when it is
/// not finite (bare `NaN`/`inf` are not valid JSON).
pub(crate) fn json_f64(v: f64, decimals: usize) -> String {
    if v.is_finite() {
        format!("{v:.decimals$}")
    } else {
        String::from("null")
    }
}

/// `prefix` followed by the float as a JSON number, or by `null` when the
/// value is absent or not finite.
pub(crate) fn json_num_or_null(prefix: &str, v: Option<f64>) -> String {
    match v.filter(|x| x.is_finite()) {
        Some(x) => format!("{prefix}{x:.3}"),
        None => format!("{prefix}null"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_field_quotes_all_breaking_characters() {
        assert_eq!(csv_field("plain"), "plain");
        assert_eq!(csv_field("a,b"), "\"a,b\"");
        assert_eq!(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_field("line\nbreak"), "\"line\nbreak\"");
        assert_eq!(csv_field("carriage\rreturn"), "\"carriage\rreturn\"", "\\r must be quoted too");
    }

    #[test]
    fn float_helpers_guard_non_finite_values() {
        assert_eq!(json_f64(1.5, 2), "1.50");
        assert_eq!(json_f64(f64::NAN, 2), "null");
        assert_eq!(csv_f64(f64::INFINITY, 2), "");
        assert_eq!(csv_opt(Some(f64::NAN)), "");
        assert_eq!(json_num_or_null("x: ", None), "x: null");
    }
}
