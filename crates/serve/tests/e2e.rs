//! End-to-end protocol tests: a real client/server pair over localhost.
//!
//! The acceptance loop for the serve subsystem: submit a [`SweepSpec`],
//! receive the streamed progress events in order, fetch a report equal
//! (per content key) to running the same sweep in-process, and observe a
//! resubmission served entirely from the shared [`ResultCache`] — plus
//! store persistence across a server restart and typed refusals.

use temu_framework::{
    AxisSpec, ImplicitSolve, JsonValue, ResultCache, ScenarioSpec, SweepSpec, WorkloadSpec,
};
use temu_serve::{Client, ClientError, ServeConfig, Server};

/// A 4-point near-instant sweep (two tiny workloads × two solvers).
fn tiny_sweep(name: &str) -> SweepSpec {
    let tiny = |iters: u32| WorkloadSpec::Matrix { n: 4, iters, cores: 1 };
    SweepSpec {
        name: String::from(name),
        base: ScenarioSpec {
            cores: Some(1),
            workload: Some(tiny(1)),
            sampling_window_s: Some(0.0005),
            windows: Some(2),
            strict_convergence: Some(true),
            ..ScenarioSpec::default()
        },
        axes: vec![
            AxisSpec::Workloads(vec![tiny(1), tiny(2)]),
            AxisSpec::Solvers(vec![ImplicitSolve::GaussSeidel, ImplicitSolve::Multigrid]),
        ],
        threads: None,
    }
}

fn spawn_server(store: Option<std::path::PathBuf>) -> temu_serve::ServerHandle {
    Server::spawn(ServeConfig { addr: String::from("127.0.0.1:0"), store, ..ServeConfig::default() })
        .expect("bind an ephemeral port")
}

fn connect(handle: &temu_serve::ServerHandle) -> Client {
    Client::connect(&handle.addr().to_string()).expect("connect")
}

#[test]
fn end_to_end_submit_stream_result_and_cached_resubmit() {
    let spec = tiny_sweep("e2e");

    // Ground truth: the same sweep run in-process against its own cache.
    let reference = spec.lower().unwrap().run_cached(&ResultCache::in_memory());
    assert!(reference.all_ok());
    assert_eq!(reference.points.len(), 4);

    let handle = spawn_server(None);
    let mut client = connect(&handle);

    // Submit and stream: every point event arrives in completion order.
    let mut events: Vec<JsonValue> = Vec::new();
    let outcome = client.submit(&spec, true, |e| events.push(e.clone())).unwrap();
    let done = outcome.done.expect("watched submissions end with a done summary");
    assert_eq!(outcome.total, 4);
    assert!(done.ok, "all points converge: {done:?}");
    assert_eq!((done.points, done.executed, done.cache_hits, done.failed), (4, 4, 0, 0));

    let points: Vec<&JsonValue> =
        events.iter().filter(|e| e.get("event").and_then(JsonValue::as_str) == Some("point")).collect();
    assert_eq!(points.len(), 4);
    for (i, point) in points.iter().enumerate() {
        assert_eq!(
            point.get("completed").and_then(JsonValue::as_u64),
            Some(i as u64 + 1),
            "events stream in completion order"
        );
        assert_eq!(point.get("cache_hit").and_then(JsonValue::as_bool), Some(false));
        assert_eq!(point.get("ok").and_then(JsonValue::as_bool), Some(true));
    }
    assert_eq!(
        events.last().and_then(|e| e.get("event")).and_then(JsonValue::as_str),
        Some("done"),
        "the done event is last"
    );

    // The fetched report matches the in-process run per content key (and
    // per label and outcome — the emulation is deterministic).
    let frame = client.result(outcome.job).unwrap();
    let report = frame.get("report").expect("result carries the report");
    let fetched = report.get("points").and_then(JsonValue::as_arr).expect("report points");
    assert_eq!(fetched.len(), reference.points.len());
    for (fetched_point, reference_point) in fetched.iter().zip(&reference.points) {
        let expect_key = format!("{:016x}", reference_point.key.unwrap());
        assert_eq!(fetched_point.get("key").and_then(JsonValue::as_str), Some(expect_key.as_str()));
        assert_eq!(
            fetched_point.get("label").and_then(JsonValue::as_str),
            Some(reference_point.label.as_str())
        );
        let reference_summary = reference_point.outcome.as_ref().unwrap();
        assert_eq!(
            fetched_point.get("windows").and_then(JsonValue::as_u64),
            Some(reference_summary.windows)
        );
        assert_eq!(
            fetched_point.get("unconverged_substeps").and_then(JsonValue::as_u64),
            Some(0),
            "strict convergence held"
        );
    }

    // Resubmission: served entirely from the shared cache, zero scenarios
    // executed.
    let mut rerun_events: Vec<JsonValue> = Vec::new();
    let rerun = client.submit(&spec, true, |e| rerun_events.push(e.clone())).unwrap();
    let rerun_done = rerun.done.unwrap();
    assert_eq!(
        (rerun_done.executed, rerun_done.cache_hits, rerun_done.failed),
        (0, 4, 0),
        "identical resubmission is 100% cache hits"
    );
    assert!(rerun_events
        .iter()
        .filter(|e| e.get("event").and_then(JsonValue::as_str) == Some("point"))
        .all(|e| e.get("cache_hit").and_then(JsonValue::as_bool) == Some(true)));

    // Server counters reflect both jobs and the hit rate.
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("jobs_completed").and_then(JsonValue::as_u64), Some(2));
    assert_eq!(stats.get("points_executed").and_then(JsonValue::as_u64), Some(4));
    assert_eq!(stats.get("point_cache_hits").and_then(JsonValue::as_u64), Some(4));
    assert_eq!(stats.get("cache_entries").and_then(JsonValue::as_u64), Some(4));
    assert!(stats.get("cache_hit_rate").and_then(JsonValue::as_f64).unwrap() > 0.49);

    // The process-wide artifact cache absorbed the builds: only the first
    // job built anything (the resubmission was all result-cache hits), its
    // four points looked up exactly one shared mesh each, and at most the
    // racing campaign workers built it redundantly — never all four.
    let mesh_hits = stats.get("artifact_mesh_hits").and_then(JsonValue::as_u64).unwrap();
    let mesh_misses = stats.get("artifact_mesh_misses").and_then(JsonValue::as_u64).unwrap();
    assert_eq!(mesh_hits + mesh_misses, 4, "one mesh lookup per executed point");
    assert!(mesh_misses >= 1);
    let fp_hits = stats.get("artifact_floorplan_hits").and_then(JsonValue::as_u64).unwrap();
    let fp_misses = stats.get("artifact_floorplan_misses").and_then(JsonValue::as_u64).unwrap();
    assert_eq!(fp_hits + fp_misses, 4);

    // The `metrics` snapshot agrees with `stats` on every job and point
    // counter (`stats` is a thin view over the same registry), and the
    // merged process-wide half carries the solver instrumentation.
    let metrics = client.metrics().unwrap();
    assert_eq!(metrics.get("temu_metrics").and_then(JsonValue::as_u64), Some(1));
    let counters = metrics.get("counters").expect("counters map");
    let metric = |k: &str| counters.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
    for (snapshot_key, stats_key) in [
        ("serve.jobs_submitted", "jobs_submitted"),
        ("serve.jobs_completed", "jobs_completed"),
        ("serve.jobs_failed", "jobs_failed"),
        ("serve.points_executed", "points_executed"),
        ("serve.point_cache_hits", "point_cache_hits"),
    ] {
        assert_eq!(
            Some(metric(snapshot_key)),
            stats.get(stats_key).and_then(JsonValue::as_u64),
            "{snapshot_key} agrees with stats.{stats_key}"
        );
    }
    let histograms = metrics.get("histograms").expect("histograms map");
    let run_count = histograms
        .get("serve.run_ns")
        .and_then(|h| h.get("count"))
        .and_then(JsonValue::as_u64)
        .unwrap_or(0);
    assert_eq!(run_count, 2, "one run-duration sample per completed job");
    assert!(
        histograms
            .get("thermal.substep_ns")
            .and_then(|h| h.get("count"))
            .and_then(JsonValue::as_u64)
            .unwrap_or(0)
            > 0,
        "the merged snapshot carries the process-wide solver timers"
    );

    // A finished job can be statused but not cancelled.
    let status = client.status(outcome.job).unwrap();
    assert_eq!(status.get("state").and_then(JsonValue::as_str), Some("done"));
    assert!(matches!(client.cancel(outcome.job), Err(ClientError::Server(_))));
    // Watching a finished job replays its terminal summary immediately.
    let replay = client.watch(rerun.job, |_| {}).unwrap();
    assert_eq!(replay.cache_hits, 4);

    handle.shutdown();
}

#[test]
fn disk_store_serves_resubmissions_across_server_restarts() {
    let dir = std::env::temp_dir().join(format!("temu_serve_e2e_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let store = dir.join("cache.jsonl");
    let _ = std::fs::remove_file(&store);
    let spec = tiny_sweep("restart");

    let first = spawn_server(Some(store.clone()));
    let done = connect(&first).submit(&spec, true, |_| {}).unwrap().done.unwrap();
    assert_eq!((done.executed, done.cache_hits), (4, 0));
    first.shutdown();

    // A fresh server process-equivalent: same store, empty memory.
    let second = spawn_server(Some(store.clone()));
    let done = connect(&second).submit(&spec, true, |_| {}).unwrap().done.unwrap();
    assert_eq!(
        (done.executed, done.cache_hits),
        (0, 4),
        "the reloaded store answers the whole resubmission"
    );
    second.shutdown();
    let _ = std::fs::remove_file(&store);
    let _ = std::fs::remove_dir(&dir);
}

#[test]
fn fleet_members_sharing_a_store_dir_get_distinct_checkpoint_files() {
    // Fleet members share one cache store but run distinct journals; the
    // window-checkpoint file must follow the *journal* (job ids are
    // journal-local), or two members would mix id spaces in one file and
    // race each other's startup compaction (tmp+rename over a path the
    // sibling just replaced).
    let dir = std::env::temp_dir().join(format!("temu_serve_ckpath_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let member = |tag: &str| {
        Server::bind(ServeConfig {
            addr: String::from("127.0.0.1:0"),
            store: Some(dir.join("cache.jsonl")),
            journal: Some(dir.join(format!("jobs-{tag}.jsonl"))),
            member: Some(String::from(tag)),
            window_checkpoint: 1,
            ..ServeConfig::default()
        })
        .expect("bind a member sharing the store directory")
    };
    let a = member("a");
    let b = member("b");
    let path_a = a.checkpoints_path().expect("member a checkpoints").to_path_buf();
    let path_b = b.checkpoints_path().expect("member b checkpoints").to_path_buf();
    assert_eq!(path_a, dir.join("jobs-a.checkpoints.jsonl"));
    assert_eq!(path_b, dir.join("jobs-b.checkpoints.jsonl"));
    assert_ne!(path_a, path_b, "shared checkpoint file would collide job ids");
    drop(a);
    drop(b);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn terminal_job_history_is_bounded() {
    let handle = Server::spawn(ServeConfig {
        addr: String::from("127.0.0.1:0"),
        history_limit: 1,
        ..ServeConfig::default()
    })
    .unwrap();
    let mut client = connect(&handle);
    let first = client.submit(&tiny_sweep("old"), true, |_| {}).unwrap();
    let second = client.submit(&tiny_sweep("new"), true, |_| {}).unwrap();
    // With a one-entry history the older finished job is evicted; its
    // results still live in the shared cache.
    assert!(matches!(client.status(first.job), Err(ClientError::Server(_))), "old job evicted");
    assert_eq!(
        client.status(second.job).unwrap().get("state").and_then(JsonValue::as_str),
        Some("done")
    );
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("cache_entries").and_then(JsonValue::as_u64), Some(4));
    handle.shutdown();
}

#[test]
fn shutdown_never_leaves_a_watcher_hanging() {
    let handle = Server::spawn(ServeConfig {
        addr: String::from("127.0.0.1:0"),
        ..ServeConfig::default()
    })
    .unwrap();
    // Occupy the single worker, then queue a watched job behind it.
    let mut occupant = connect(&handle);
    let mut big = tiny_sweep("occupant");
    big.axes.push(temu_framework::AxisSpec::Windows((1..=4).collect()));
    occupant.submit(&big, false, |_| {}).unwrap();
    let mut watcher = connect(&handle);
    let watched = std::thread::spawn(move || watcher.submit(&tiny_sweep("stranded"), true, |_| {}));
    std::thread::sleep(std::time::Duration::from_millis(30));
    // Shutdown must deliver a terminal event to the stranded watcher (or
    // let the job finish normally if the worker got to it) — either way
    // this join returns instead of hanging forever.
    handle.shutdown();
    let outcome = watched.join().expect("watcher thread finishes").expect("submission completes");
    let done = outcome.done.expect("done event delivered");
    assert!(
        done.cancelled || done.ok,
        "the stranded job either reports shutdown-cancellation or ran to completion: {done:?}"
    );
}

#[test]
fn cancel_during_run_stops_between_grid_points() {
    let handle = spawn_server(None);

    // Six slower points, one campaign thread: the sweep checkpoints
    // before every point, so a cancel acknowledged mid-run allows at most
    // the in-flight point to finish.
    let tiny = |iters: u32| temu_framework::WorkloadSpec::Matrix { n: 4, iters, cores: 1 };
    let spec = SweepSpec {
        name: String::from("cancel-mid-run"),
        base: ScenarioSpec {
            cores: Some(1),
            workload: Some(tiny(1)),
            sampling_window_s: Some(0.0005),
            windows: Some(40),
            strict_convergence: Some(true),
            ..ScenarioSpec::default()
        },
        axes: vec![
            AxisSpec::Workloads(vec![tiny(1), tiny(2), tiny(3)]),
            AxisSpec::Solvers(vec![ImplicitSolve::GaussSeidel, ImplicitSolve::Multigrid]),
        ],
        threads: Some(1),
    };

    let mut client = connect(&handle);
    let mut canceller = connect(&handle);
    let mut acked = false;
    let mut points_after_ack = 0u64;
    let mut completed_at_ack = 0u64;
    let outcome = client
        .submit(&spec, true, |event| {
            if event.get("event").and_then(JsonValue::as_str) != Some("point") {
                return;
            }
            if acked {
                points_after_ack += 1;
                return;
            }
            // First point landed: cancel the running job from a second
            // connection and count what still executes after the ack.
            let job = event.get("job").and_then(JsonValue::as_u64).expect("point carries job id");
            let frame = canceller.cancel(job).expect("cancel a running job");
            assert_eq!(
                frame.get("cancelling").and_then(JsonValue::as_bool),
                Some(true),
                "a running job acknowledges with cancelling: {frame}"
            );
            acked = true;
            completed_at_ack = event.get("completed").and_then(JsonValue::as_u64).unwrap_or(0);
        })
        .unwrap();

    let done = outcome.done.expect("watched submission ends with done");
    assert!(acked, "the job produced at least one point before finishing");
    assert!(done.cancelled, "the job reports cancellation: {done:?}");
    assert!(
        points_after_ack <= 1,
        "at most the in-flight point finishes after the ack, saw {points_after_ack}"
    );
    let finished = done.executed + done.cache_hits;
    assert!(finished < done.points, "some grid points never started: {done:?}");
    assert_eq!(done.failed, 0, "cancelled points are not failures");

    let status = client.status(outcome.job).unwrap();
    assert_eq!(status.get("state").and_then(JsonValue::as_str), Some("cancelled"));

    // The completed points stayed cached: resubmitting finishes the grid
    // with exactly those points served from the cache.
    let rerun = client.submit(&spec, true, |_| {}).unwrap().done.unwrap();
    assert!(rerun.ok, "{rerun:?}");
    assert_eq!(rerun.cache_hits, finished, "completed points survived the cancellation");
    assert_eq!(rerun.executed, rerun.points - finished);

    handle.shutdown();
}

#[test]
fn results_feed_streams_every_point_exactly_once_across_a_reconnect() {
    let handle = spawn_server(None);

    // Six slower points on one campaign thread (the cancel test's grid):
    // the job is still mid-sweep when the first connection polls the
    // feed, so the second connection genuinely resumes a live stream.
    let tiny = |iters: u32| WorkloadSpec::Matrix { n: 4, iters, cores: 1 };
    let spec = SweepSpec {
        name: String::from("feed"),
        base: ScenarioSpec {
            cores: Some(1),
            workload: Some(tiny(1)),
            sampling_window_s: Some(0.0005),
            windows: Some(40),
            strict_convergence: Some(true),
            ..ScenarioSpec::default()
        },
        axes: vec![
            AxisSpec::Workloads(vec![tiny(1), tiny(2), tiny(3)]),
            AxisSpec::Solvers(vec![ImplicitSolve::GaussSeidel, ImplicitSolve::Multigrid]),
        ],
        threads: Some(1),
    };

    let mut submitter = connect(&handle);
    let job = submitter.submit(&spec, false, |_| {}).unwrap().job;

    // First connection: replay the retained feed (no follow) until at
    // least one event is visible, then drop the connection — the resume
    // below continues from the cursor the dropped stream returned.
    let mut events: Vec<JsonValue> = Vec::new();
    let mut cursor = 0u64;
    while events.is_empty() {
        cursor = connect(&handle)
            .results(cursor, false, Some(job), |e| events.push(e.clone()))
            .unwrap();
        if events.is_empty() {
            std::thread::sleep(std::time::Duration::from_millis(5));
        }
    }

    // Fresh connection resuming at the cursor, following to the job's
    // terminal event: the union of both streams is the feed exactly once.
    let end_cursor = connect(&handle)
        .results(cursor, true, Some(job), |e| events.push(e.clone()))
        .unwrap();

    // Sequence numbers are strictly increasing across the reconnect — no
    // duplicates, no reordering — and the end event hands back the last
    // delivered seq.
    let seqs: Vec<u64> = events
        .iter()
        .map(|e| e.get("seq").and_then(JsonValue::as_u64).expect("every feed event is stamped"))
        .collect();
    assert!(seqs.windows(2).all(|w| w[0] < w[1]), "strictly increasing seqs: {seqs:?}");
    assert_eq!(seqs.last().copied(), Some(end_cursor));

    // Every completed point streamed exactly once, in completion order,
    // capped by the job's terminal summary.
    let points: Vec<&JsonValue> = events
        .iter()
        .filter(|e| e.get("event").and_then(JsonValue::as_str) == Some("point"))
        .collect();
    assert_eq!(points.len(), 6, "all six grid points streamed");
    for (i, point) in points.iter().enumerate() {
        assert_eq!(point.get("completed").and_then(JsonValue::as_u64), Some(i as u64 + 1));
        assert_eq!(point.get("job").and_then(JsonValue::as_u64), Some(job));
    }
    let last = events.last().unwrap();
    assert_eq!(last.get("event").and_then(JsonValue::as_str), Some("done"));
    assert_eq!(last.get("ok").and_then(JsonValue::as_bool), Some(true), "{last}");

    // Following again from the end cursor terminates immediately with
    // nothing to say (the terminal event is behind the cursor), and a
    // from-scratch replay reproduces the identical history.
    let mut rest: Vec<JsonValue> = Vec::new();
    let again = connect(&handle)
        .results(end_cursor, true, Some(job), |e| rest.push(e.clone()))
        .unwrap();
    assert!(rest.is_empty(), "no events past the end cursor: {rest:?}");
    assert_eq!(again, end_cursor);
    let mut replayed: Vec<u64> = Vec::new();
    connect(&handle)
        .results(0, false, Some(job), |e| {
            replayed.push(e.get("seq").and_then(JsonValue::as_u64).unwrap());
        })
        .unwrap();
    assert_eq!(replayed, seqs, "a from-scratch replay matches the live stream");

    handle.shutdown();
}

#[test]
fn refusals_are_typed_and_do_not_kill_the_connection() {
    let handle = spawn_server(None);
    let mut client = connect(&handle);

    // A spec that parses but cannot lower is refused at submit time.
    let bad = SweepSpec::new("bad", ScenarioSpec::preset("no-such-preset"));
    match client.submit(&bad, true, |_| {}) {
        Err(ClientError::Server(message)) => assert!(message.contains("no-such-preset"), "{message}"),
        other => panic!("expected a server refusal, got {other:?}"),
    }

    // The same connection keeps working afterwards.
    assert!(matches!(client.status(999), Err(ClientError::Server(_))));
    assert!(matches!(client.result(999), Err(ClientError::Server(_))));
    let stats = client.stats().unwrap();
    assert_eq!(stats.get("jobs_submitted").and_then(JsonValue::as_u64), Some(0));

    // Cancelling races against the single worker: a still-queued job
    // reports "cancelled", one caught running acknowledges "cancelling"
    // (it stops at its next checkpoint), and one already finished is a
    // typed refusal.
    let mut submitter = connect(&handle);
    let queued = submitter.submit(&tiny_sweep("cancelme"), false, |_| {}).unwrap();
    match client.cancel(queued.job) {
        Ok(frame) => {
            if frame.get("cancelled").and_then(JsonValue::as_bool) == Some(true) {
                let status = client.status(queued.job).unwrap();
                assert_eq!(status.get("state").and_then(JsonValue::as_str), Some("cancelled"));
            } else {
                assert_eq!(frame.get("cancelling").and_then(JsonValue::as_bool), Some(true));
            }
        }
        Err(ClientError::Server(message)) => {
            assert!(message.contains("finished jobs cannot be cancelled"), "{message}");
        }
        Err(other) => panic!("unexpected cancel failure: {other}"),
    }

    handle.shutdown();
}
