//! The cycle-driven machine.

use crate::signals::SignalBoard;
use std::time::{Duration, Instant};
use temu_cpu::{Cpu, CpuError};
use temu_isa::Program;
use temu_mem::MemArray;
use temu_platform::{PlatformConfig, PlatformError, Uncore};

/// Result of a cycle-driven simulation run.
#[derive(Clone, Debug)]
pub struct DesSummary {
    /// Simulated cycles (the slowest core's local time — directly comparable
    /// to `temu_platform::RunSummary::cycles`).
    pub cycles: u64,
    /// Instructions retired across all cores.
    pub instructions: u64,
    /// Whether every core halted.
    pub all_halted: bool,
    /// Host wall-clock time of the simulation.
    pub wall: Duration,
    /// Bit transitions observed on the signal board.
    pub signal_transitions: u64,
    /// Update phases executed (≥ one per simulated cycle).
    pub commits: u64,
}

impl DesSummary {
    /// Effective simulation speed in simulated cycles per host second (the
    /// paper quotes MPARM at ~120 kHz on a 3 GHz Pentium 4).
    pub fn effective_hz(&self) -> f64 {
        self.cycles as f64 / self.wall.as_secs_f64().max(1e-12)
    }
}

/// The signal-level, cycle-driven simulator of a `temu` platform.
///
/// Functionally and cycle-count-wise identical to
/// [`temu_platform::Machine`] (same cores, same memory system, same timing
/// semantics — asserted by cross-validation tests); the difference is the
/// execution discipline: a global clock loop that evaluates **every
/// component every cycle** and samples its ports onto the [`SignalBoard`]
/// with a two-pass settle/commit, like an HDL or SystemC kernel.
pub struct DesMachine {
    cfg: PlatformConfig,
    cores: Vec<Cpu>,
    uncore: Uncore,
    board: SignalBoard,
    /// Per-core port indices: pc, status, local-time, retired instructions.
    sig_core: Vec<[usize; 4]>,
    /// Per-core memory-side ports: icache accesses, dcache accesses,
    /// private-memory reads+writes.
    sig_mem: Vec<[usize; 3]>,
    /// Platform ports: interconnect transactions, interconnect busy cycles,
    /// shared-memory accesses.
    sig_platform: [usize; 3],
    now: u64,
}

impl DesMachine {
    /// Builds the simulator for a platform configuration.
    ///
    /// # Errors
    ///
    /// Returns the [`PlatformError`] validation error, exactly as
    /// [`temu_platform::Machine::new`] does.
    pub fn new(cfg: PlatformConfig) -> Result<DesMachine, PlatformError> {
        cfg.validate()?;
        let cores: Vec<Cpu> = (0..cfg.cores).map(|i| Cpu::new(i, cfg.cpu)).collect();
        let uncore = Uncore::new(&cfg);
        let mut board = SignalBoard::new();
        let mut sig_core = Vec::new();
        let mut sig_mem = Vec::new();
        for i in 0..cfg.cores {
            sig_core.push([
                board.register(format!("core{i}.pc")),
                board.register(format!("core{i}.status")),
                board.register(format!("core{i}.time")),
                board.register(format!("core{i}.instret")),
            ]);
            sig_mem.push([
                board.register(format!("icache{i}.accesses")),
                board.register(format!("dcache{i}.accesses")),
                board.register(format!("pmem{i}.accesses")),
            ]);
        }
        let sig_platform = [
            board.register("ic.transactions"),
            board.register("ic.busy"),
            board.register("smem.accesses"),
        ];
        Ok(DesMachine { cfg, cores, uncore, board, sig_core, sig_mem, sig_platform, now: 0 })
    }

    /// The configuration the simulator was built from.
    pub fn config(&self) -> &PlatformConfig {
        &self.cfg
    }

    /// Loads a program image into one core (same loader semantics as the
    /// fast engine: entry PC, stack at the top of private memory).
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::ProgramLoad`] if the image does not fit in
    /// private memory.
    pub fn load_program(&mut self, core: usize, program: &Program) -> Result<(), PlatformError> {
        self.uncore
            .load_private(core, program.base, &program.to_bytes())
            .map_err(|e| PlatformError::ProgramLoad { core, source: e })?;
        self.cores[core].reset(program.entry);
        let sp = self.cfg.private_mem.size - 16;
        self.cores[core].regs_mut().write(temu_isa::Reg::SP, sp);
        Ok(())
    }

    /// Loads the same image on every core.
    ///
    /// # Errors
    ///
    /// Returns [`PlatformError::ProgramLoad`] if the image does not fit in
    /// private memory.
    pub fn load_program_all(&mut self, program: &Program) -> Result<(), PlatformError> {
        for core in 0..self.cores.len() {
            self.load_program(core, program)?;
        }
        Ok(())
    }

    /// Mutable functional view of the shared memory (input data loading).
    pub fn shared_mut(&mut self) -> &mut MemArray {
        self.uncore.shared_mut()
    }

    /// Functional view of the shared memory.
    pub fn shared(&self) -> &MemArray {
        self.uncore.shared()
    }

    /// Core `i`.
    pub fn core(&self, i: usize) -> &Cpu {
        &self.cores[i]
    }

    /// Whether every core has halted.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(Cpu::is_halted)
    }

    /// Simulated time: the slowest core's local cycle.
    pub fn cycles(&self) -> u64 {
        self.cores.iter().map(Cpu::time).max().unwrap_or(0)
    }

    /// The signal board (transition statistics).
    pub fn board(&self) -> &SignalBoard {
        &self.board
    }

    /// Simulates one clock cycle: execute the cores scheduled at this cycle
    /// (arbitration-tie order), then evaluate and sample every component,
    /// settling the signal board in up to two delta passes.
    ///
    /// # Errors
    ///
    /// Propagates the first core fault.
    pub fn tick(&mut self) -> Result<(), CpuError> {
        // Execute phase: all cores whose local time is this cycle, in the
        // interconnect's arbitration-tie order (identical to the fast
        // engine's scheduler, hence identical cycle counts).
        loop {
            let mut best: Option<usize> = None;
            let mut best_key = usize::MAX;
            for (i, c) in self.cores.iter().enumerate() {
                if !c.is_halted() && c.time() == self.now {
                    let key = self.uncore.tie_key(i);
                    if key < best_key {
                        best_key = key;
                        best = Some(i);
                    }
                }
            }
            let Some(i) = best else { break };
            self.cores[i].step(&mut self.uncore)?;
        }

        // Evaluate/update phases (delta cycles): sample every port, commit,
        // settle once more if anything moved.
        self.sample_all();
        if self.board.unsettled() {
            self.board.commit();
            self.sample_all();
        }
        self.board.commit();
        self.now += 1;
        Ok(())
    }

    fn sample_all(&mut self) {
        for (i, core) in self.cores.iter().enumerate() {
            let [pc, status, time, instret] = self.sig_core[i];
            self.board.drive(pc, core.pc());
            self.board
                .drive(status, u32::from(core.is_halted()) | (u32::from(core.mid_instruction()) << 1));
            self.board.drive(time, core.time() as u32);
            self.board.drive(instret, core.stats().instructions as u32);

            let [ic, dc, pm] = self.sig_mem[i];
            let (icache, dcache) = self.uncore.cache_stats(i);
            self.board.drive(ic, icache.map(|s| s.accesses() as u32).unwrap_or(0));
            self.board.drive(dc, dcache.map(|s| s.accesses() as u32).unwrap_or(0));
            self.board.drive(pm, self.uncore.private_stats(i).accesses() as u32);
        }
        let ic_stats = self.uncore.interconnect_stats();
        let (t, b) = (ic_stats.transactions as u32, ic_stats.busy_cycles as u32);
        let s = self.uncore.shared_stats().accesses() as u32;
        let [ic_t, ic_b, sm] = self.sig_platform;
        self.board.drive(ic_t, t);
        self.board.drive(ic_b, b);
        self.board.drive(sm, s);
    }

    /// Runs until every core halts or `max_cycles` simulated cycles elapse.
    ///
    /// # Errors
    ///
    /// Propagates the first core fault.
    pub fn run_to_halt(&mut self, max_cycles: u64) -> Result<DesSummary, CpuError> {
        let t0 = Instant::now();
        while !self.all_halted() && self.now < max_cycles {
            self.tick()?;
        }
        // Drain the remaining scheduled work so `cycles` matches the fast
        // engine's "slowest core" metric even when halting early.
        Ok(DesSummary {
            cycles: self.cycles(),
            instructions: self.cores.iter().map(|c| c.stats().instructions).sum(),
            all_halted: self.all_halted(),
            wall: t0.elapsed(),
            signal_transitions: self.board.transitions(),
            commits: self.board.commits(),
        })
    }

    /// Runs for a bounded number of cycles and extrapolates nothing —
    /// convenience for time-boxed baseline measurements (the paper could run
    /// MPARM for only 0.18 emulated seconds in two days).
    ///
    /// # Errors
    ///
    /// Propagates the first core fault.
    pub fn run_slice(&mut self, cycles: u64) -> Result<DesSummary, CpuError> {
        let end = self.now + cycles;
        let t0 = Instant::now();
        while !self.all_halted() && self.now < end {
            self.tick()?;
        }
        Ok(DesSummary {
            cycles: self.cycles(),
            instructions: self.cores.iter().map(|c| c.stats().instructions).sum(),
            all_halted: self.all_halted(),
            wall: t0.elapsed(),
            signal_transitions: self.board.transitions(),
            commits: self.board.commits(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temu_platform::Machine;
    use temu_workloads::dithering::{self, DitherConfig};
    use temu_workloads::image::GreyImage;
    use temu_workloads::matrix::{self, MatrixConfig};

    /// Runs the same workload on both engines and asserts identical cycle
    /// counts and instruction counts.
    fn cross_validate_matrix(platform: PlatformConfig, cfg: &MatrixConfig) {
        let program = matrix::program(cfg).unwrap();
        let mut fast = Machine::new(platform.clone()).unwrap();
        fast.load_program_all(&program).unwrap();
        let f = fast.run_to_halt(200_000_000).unwrap();
        assert!(f.all_halted);

        let mut des = DesMachine::new(platform).unwrap();
        des.load_program_all(&program).unwrap();
        let d = des.run_to_halt(200_000_000).unwrap();
        assert!(d.all_halted);

        assert_eq!(d.cycles, f.cycles, "cycle counts must match exactly");
        assert_eq!(d.instructions, f.instructions);
    }

    #[test]
    fn cross_validation_single_core_bus() {
        cross_validate_matrix(PlatformConfig::paper_bus(1), &MatrixConfig { n: 6, iters: 2, cores: 1 });
    }

    #[test]
    fn cross_validation_four_cores_bus() {
        cross_validate_matrix(PlatformConfig::paper_bus(4), &MatrixConfig { n: 6, iters: 1, cores: 4 });
    }

    #[test]
    fn cross_validation_eight_cores_bus() {
        cross_validate_matrix(PlatformConfig::paper_bus(8), &MatrixConfig { n: 4, iters: 1, cores: 8 });
    }

    #[test]
    fn cross_validation_four_cores_noc() {
        cross_validate_matrix(PlatformConfig::paper_noc(4), &MatrixConfig { n: 6, iters: 1, cores: 4 });
    }

    #[test]
    fn cross_validation_thermal_platform() {
        cross_validate_matrix(PlatformConfig::paper_thermal(4), &MatrixConfig { n: 6, iters: 1, cores: 4 });
    }

    #[test]
    fn cross_validation_shared_cacheable_bus() {
        // Write-back misses over the bus (combined eviction+fill bursts).
        let mut platform = PlatformConfig::paper_bus(2);
        platform.shared_cacheable = true;
        cross_validate_matrix(platform, &MatrixConfig { n: 5, iters: 1, cores: 2 });
    }

    #[test]
    fn cross_validation_dithering_noc() {
        let dcfg = DitherConfig::small(4);
        let program = dithering::program(&dcfg).unwrap();
        let img = GreyImage::synthetic(32, 32, 5);
        let off = dcfg.image_addr(0) - temu_workloads::SHARED_BASE;

        let mut fast = Machine::new(PlatformConfig::paper_noc(4)).unwrap();
        fast.load_program_all(&program).unwrap();
        fast.shared_mut().load(off, &img.pixels).unwrap();
        let f = fast.run_to_halt(200_000_000).unwrap();

        let mut des = DesMachine::new(PlatformConfig::paper_noc(4)).unwrap();
        des.load_program_all(&program).unwrap();
        des.shared_mut().load(off, &img.pixels).unwrap();
        let d = des.run_to_halt(200_000_000).unwrap();

        assert_eq!(d.cycles, f.cycles);
        assert_eq!(des.shared().slice(off, 32 * 32), fast.shared().slice(off, 32 * 32), "same dithered image");
    }

    #[test]
    fn per_cycle_signal_work_happens() {
        let mut des = DesMachine::new(PlatformConfig::paper_bus(2)).unwrap();
        let program = matrix::program(&MatrixConfig { n: 4, iters: 1, cores: 2 }).unwrap();
        des.load_program_all(&program).unwrap();
        let s = des.run_to_halt(10_000_000).unwrap();
        assert!(s.commits >= s.cycles, "at least one update phase per cycle");
        assert!(s.signal_transitions > s.instructions, "ports toggled");
        assert!(s.effective_hz() > 0.0);
    }

    #[test]
    fn determinism() {
        let program = matrix::program(&MatrixConfig { n: 4, iters: 1, cores: 4 }).unwrap();
        let mut a = DesMachine::new(PlatformConfig::paper_bus(4)).unwrap();
        let mut b = DesMachine::new(PlatformConfig::paper_bus(4)).unwrap();
        a.load_program_all(&program).unwrap();
        b.load_program_all(&program).unwrap();
        let sa = a.run_to_halt(50_000_000).unwrap();
        let sb = b.run_to_halt(50_000_000).unwrap();
        assert_eq!(sa.cycles, sb.cycles);
        assert_eq!(sa.signal_transitions, sb.signal_transitions);
    }

    #[test]
    fn run_slice_is_resumable() {
        let program = matrix::program(&MatrixConfig { n: 6, iters: 3, cores: 1 }).unwrap();
        let mut des = DesMachine::new(PlatformConfig::paper_bus(1)).unwrap();
        des.load_program_all(&program).unwrap();
        let s1 = des.run_slice(5_000).unwrap();
        assert!(!s1.all_halted);
        let s2 = des.run_to_halt(200_000_000).unwrap();
        assert!(s2.all_halted);
        assert!(s2.cycles > s1.cycles);

        // The sliced run must end at the same total as an unsliced one.
        let mut whole = DesMachine::new(PlatformConfig::paper_bus(1)).unwrap();
        whole.load_program_all(&program).unwrap();
        let sw = whole.run_to_halt(200_000_000).unwrap();
        assert_eq!(s2.cycles, sw.cycles);
    }
}
