//! # temu-power — power models, floorplans and activity-to-power conversion
//!
//! Three pieces, mirroring §5.1 and Fig. 4 of the paper:
//!
//! * [`PowerDb`] — the industrial 0.13 µm power values of **Table 1**,
//!   verbatim (max power at the reference clock and max power density per
//!   component class). Leakage is ignored, as the paper does for this
//!   technology node.
//! * [`floorplans`] — the two evaluation floorplans of **Fig. 4**
//!   (4×ARM7 at 100 MHz and 4×ARM11 at 500 MHz), with component areas
//!   derived from the Table 1 power densities, plus the NoC switch/shared
//!   memory placement used by the Matrix-TM experiment.
//! * [`PowerModel`] — converts one sampling window's sniffer statistics
//!   (core active/stall/idle fractions, cache and memory access counts,
//!   interconnect words) into watts per floorplan component, linearly scaled
//!   with the DFS-controlled virtual clock frequency.

mod db;
mod error;
pub mod floorplans;
mod model;

pub use db::{CoreKind, PowerDb, PowerEntry};
pub use error::PowerError;
pub use floorplans::FloorplanMap;
pub use model::PowerModel;
