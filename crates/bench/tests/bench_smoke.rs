//! The tier-1 bench-smoke gate: the two smallest scaling rungs must run
//! without panic or NaN, and the committed `BENCH_thermal.json` format must
//! serialize. (The release-mode equivalent is
//! `cargo run --release -p temu-bench --bin thermal_scaling -- --smoke`.)

use temu_bench::thermal_scaling;
use temu_framework::{Campaign, Scenario};

#[test]
fn thermal_scaling_smoke() {
    // Tiny budget: this runs in debug mode under `cargo test`.
    let report = thermal_scaling::run(true, 0.02);
    assert!(report.smoke);
    // 2 rungs × 2 integrators × 3 sweep modes.
    assert_eq!(report.cases.len(), 12);
    for c in &report.cases {
        assert!(c.substeps > 0, "{}/{}/{} did no work", c.mesh, c.integrator, c.sweep);
        assert!(c.substeps_per_s.is_finite() && c.substeps_per_s > 0.0);
        assert!(c.max_temp_k.is_finite() && c.max_temp_k >= 300.0, "{}: bad max temp", c.mesh);
    }
    assert_eq!(report.builds.len(), 2);
    let json = report.to_json();
    assert!(json.contains("\"cases\""));
    assert!(json.contains("\"speedup_vs_reference\""));
}

/// A two-scenario mini campaign must run end to end (debug mode, tiny
/// workloads) and export a well-formed report — the batch-runner smoke gate.
#[test]
fn mini_campaign_smoke() {
    let report = Campaign::new()
        .scenario(Scenario::exploration_bus(1).sampling_window_s(0.002))
        .scenario(Scenario::exploration_noc(1).sampling_window_s(0.002))
        .threads(2)
        .run();
    assert_eq!(report.results.len(), 2);
    assert!(report.all_ok(), "{}", report.to_json());
    let json = report.to_json();
    assert!(json.contains("1core-bus-dither-64x64x2"));
    assert!(json.contains("1core-noc-dither-64x64x2"));
    assert!(json.contains("\"ok\": true"));
    assert_eq!(report.to_csv().lines().count(), 3, "header + 2 rows");
}
