//! HW sniffers (§4.1).
//!
//! Two kinds, as in the paper:
//!
//! * **count-logging** sniffers accumulate counters (the component statistics
//!   already maintained by the cores, caches, memories and interconnect —
//!   collected per sampling window by the engine). They are free: adding more
//!   monitored components does not slow the emulation down, which is the
//!   paper's key scalability argument against SW simulators.
//! * **event-logging** sniffers append one record per platform event to a
//!   bounded BRAM buffer that the Ethernet dispatcher drains. When the buffer
//!   saturates faster than the link can drain it, the VPCM freezes the
//!   virtual clock (congestion backpressure).

use std::collections::VecDeque;
use temu_state::{StateError, StateReader, StateWriter};

/// Statistics-extraction mode of the platform.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SnifferMode {
    /// Counter-only extraction (the designers' default, per the paper).
    CountLogging,
    /// Exhaustive event records into a buffer of `capacity` events
    /// (the paper's BRAM buffer).
    EventLogging {
        /// Buffer capacity in events.
        capacity: usize,
    },
}

/// Kind of logged event.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[repr(u8)]
pub enum EventKind {
    /// Data read retired.
    Read = 0,
    /// Data write retired.
    Write = 1,
    /// Instruction-cache miss.
    MissI = 2,
    /// Data-cache miss.
    MissD = 3,
    /// Interconnect transaction.
    IcTxn = 4,
}

/// One event record. Serialized as 16 bytes on the statistics link.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Event {
    /// Virtual cycle of the event.
    pub time: u64,
    /// Issuing core.
    pub core: u8,
    /// Event kind.
    pub kind: EventKind,
    /// Byte address involved.
    pub addr: u32,
}

/// Bytes one event occupies in the statistics-packet payload.
pub const EVENT_BYTES: usize = 16;

/// The bounded event buffer (the paper's BRAM buffer).
#[derive(Clone, Debug)]
pub struct EventBuffer {
    events: VecDeque<Event>,
    capacity: usize,
    /// Events that arrived while the buffer was full. The framework converts
    /// these into VPCM congestion freezes (the hardware would have stopped
    /// the virtual clock instead of dropping them).
    overflowed: u64,
    /// Total events ever offered.
    total: u64,
}

impl EventBuffer {
    /// Creates a buffer holding `capacity` events.
    pub fn new(capacity: usize) -> EventBuffer {
        EventBuffer { events: VecDeque::with_capacity(capacity.min(1 << 16)), capacity, overflowed: 0, total: 0 }
    }

    /// Offers an event; full buffers count an overflow instead of storing.
    pub fn push(&mut self, e: Event) {
        self.total += 1;
        if self.events.len() >= self.capacity {
            self.overflowed += 1;
        } else {
            self.events.push_back(e);
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events that found the buffer full since the last [`EventBuffer::take_overflowed`].
    pub fn overflowed(&self) -> u64 {
        self.overflowed
    }

    /// Total events offered.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Resets and returns the overflow counter.
    pub fn take_overflowed(&mut self) -> u64 {
        std::mem::take(&mut self.overflowed)
    }

    /// Drains up to `max` events (the Ethernet dispatcher's packetizer).
    pub fn drain(&mut self, max: usize) -> Vec<Event> {
        let n = max.min(self.events.len());
        self.events.drain(..n).collect()
    }

    /// Serializes the buffered events and overflow accounting (capacity is
    /// configuration, recomputed on rebuild).
    pub fn save_state(&self, w: &mut StateWriter) {
        w.usize(self.events.len());
        for e in &self.events {
            w.u64(e.time);
            w.u8(e.core);
            w.u8(e.kind as u8);
            w.u32(e.addr);
        }
        w.u64(self.overflowed);
        w.u64(self.total);
    }

    /// Restores state saved by [`EventBuffer::save_state`].
    ///
    /// # Errors
    ///
    /// Returns [`StateError::BadLength`] if more events were recorded than
    /// this buffer's capacity, or [`StateError::BadValue`] on an unknown
    /// event kind.
    pub fn load_state(&mut self, r: &mut StateReader<'_>) -> Result<(), StateError> {
        let n = r.usize()?;
        if n > self.capacity {
            return Err(StateError::BadLength { found: n as u64, max: self.capacity as u64 });
        }
        self.events.clear();
        for _ in 0..n {
            let time = r.u64()?;
            let core = r.u8()?;
            let kind = match r.u8()? {
                0 => EventKind::Read,
                1 => EventKind::Write,
                2 => EventKind::MissI,
                3 => EventKind::MissD,
                4 => EventKind::IcTxn,
                k => return Err(StateError::BadValue { what: "event kind", value: u64::from(k) }),
            };
            let addr = r.u32()?;
            self.events.push_back(Event { time, core, kind, addr });
        }
        self.overflowed = r.u64()?;
        self.total = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64) -> Event {
        Event { time, core: 0, kind: EventKind::Read, addr: 0x10 }
    }

    #[test]
    fn push_and_drain_fifo() {
        let mut b = EventBuffer::new(4);
        for t in 0..3 {
            b.push(ev(t));
        }
        assert_eq!(b.len(), 3);
        let d = b.drain(2);
        assert_eq!(d.len(), 2);
        assert_eq!(d[0].time, 0);
        assert_eq!(d[1].time, 1);
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }

    #[test]
    fn overflow_counts_instead_of_storing() {
        let mut b = EventBuffer::new(2);
        for t in 0..5 {
            b.push(ev(t));
        }
        assert_eq!(b.len(), 2);
        assert_eq!(b.overflowed(), 3);
        assert_eq!(b.total(), 5);
        assert_eq!(b.take_overflowed(), 3);
        assert_eq!(b.overflowed(), 0);
    }

    #[test]
    fn drain_more_than_available() {
        let mut b = EventBuffer::new(8);
        b.push(ev(1));
        assert_eq!(b.drain(100).len(), 1);
        assert!(b.is_empty());
    }
}
