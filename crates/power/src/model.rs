//! Activity → power conversion (§5.1).
//!
//! "The switching activities of the wires and the components in the die for
//! this thermal analysis are obtained from our FPGA-based MPSoC emulation."
//! Every sampling window, the sniffer statistics are turned into watts per
//! floorplan component:
//!
//! * **processors** — maximum power scaled by the activity mix
//!   (`active + α_stall·stalled + α_idle·idle`) and linearly by the virtual
//!   clock frequency (the DFS knob);
//! * **caches / memories** — energy per access (Table 1 max power at the
//!   reference clock = one access per cycle) times the window's access
//!   count, averaged over the window;
//! * **NoC switches** — energy per transferred word times the interconnect
//!   word count, split evenly across switches.
//!
//! Leakage is ignored (explicitly, as in §5.1 for 130 nm low-power designs).

use crate::db::PowerDb;
use crate::floorplans::FloorplanMap;
use temu_platform::WindowStats;

/// Converts sniffer statistics into per-component power.
#[derive(Clone, Copy, Debug)]
pub struct PowerModel {
    /// Power database (Table 1).
    pub db: PowerDb,
    /// Fraction of max core power burned per stalled cycle (clock still
    /// toggling, datapath mostly quiet).
    pub stall_factor: f64,
    /// Fraction of max core power burned per idle/frozen cycle.
    pub idle_factor: f64,
}

impl Default for PowerModel {
    fn default() -> PowerModel {
        PowerModel { db: PowerDb::table1(), stall_factor: 0.4, idle_factor: 0.08 }
    }
}

impl PowerModel {
    /// Computes the power of every floorplan component for one sampling
    /// window, in floorplan-component order (suitable for
    /// `ThermalModel::set_powers`).
    ///
    /// `virtual_hz` is the emulated clock during the window (the DFS
    /// actuator's current setting).
    ///
    /// # Panics
    ///
    /// Panics if the window statistics carry more cores than the floorplan
    /// has core tiles. A machine with *fewer* cores than the floorplan is
    /// fine — the unused tiles dissipate nothing.
    pub fn window_powers(&self, map: &FloorplanMap, stats: &WindowStats, virtual_hz: u64) -> Vec<f64> {
        assert!(
            stats.cores.len() <= map.cores.len(),
            "window has {} cores but floorplan only hosts {}",
            stats.cores.len(),
            map.cores.len()
        );
        let mut powers = vec![0.0; map.n_components()];
        let window_cycles = stats.cycles().max(1) as f64;
        let window_seconds = window_cycles / virtual_hz as f64;
        let f = virtual_hz as f64;

        let core_entry = self.db.core(map.core_kind);
        let cache_i = &self.db.icache_8k;
        let cache_d = &self.db.dcache_8k;
        let mem = &self.db.mem_32k;

        for (i, &(p, ic, dc, pm)) in map.cores.iter().enumerate() {
            let Some(cs) = stats.cores.get(i) else { break };
            let total = (cs.active_cycles + cs.stall_cycles + cs.idle_cycles).max(1) as f64;
            let mix = (cs.active_cycles as f64
                + self.stall_factor * cs.stall_cycles as f64
                + self.idle_factor * cs.idle_cycles as f64)
                / total;
            powers[p] = core_entry.max_power_at(f) * mix;

            let ic_accesses = stats.icaches.get(i).map(|c| c.accesses()).unwrap_or(0);
            powers[ic] = cache_i.energy_per_cycle() * ic_accesses as f64 / window_seconds;
            let dc_accesses = stats.dcaches.get(i).map(|c| c.accesses()).unwrap_or(0);
            powers[dc] = cache_d.energy_per_cycle() * dc_accesses as f64 / window_seconds;
            let pm_accesses = stats.private_mems.get(i).map(|m| m.accesses()).unwrap_or(0);
            powers[pm] = mem.energy_per_cycle() * pm_accesses as f64 / window_seconds;
        }

        powers[map.shared] = mem.energy_per_cycle() * stats.shared_mem.accesses() as f64 / window_seconds;

        if !map.switches.is_empty() {
            let per_switch = self.db.noc_switch.energy_per_cycle() * stats.interconnect.words as f64
                / window_seconds
                / map.switches.len() as f64;
            for &s in &map.switches {
                powers[s] = per_switch;
            }
        }
        powers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::floorplans::fig4b_arm11;
    use temu_cpu::CoreStats;
    use temu_interconnect::IcStats;
    use temu_mem::{CacheStats, MemStats};

    fn window(active: u64, idle: u64, accesses: u64) -> WindowStats {
        let cycles = active + idle;
        WindowStats {
            start_cycle: 0,
            end_cycle: cycles,
            cores: vec![
                CoreStats { active_cycles: active, idle_cycles: idle, ..CoreStats::default() };
                4
            ],
            icaches: vec![CacheStats { hits: accesses, ..CacheStats::default() }; 4],
            dcaches: vec![CacheStats { hits: accesses / 2, ..CacheStats::default() }; 4],
            private_mems: vec![MemStats { reads: accesses / 8, ..MemStats::default() }; 4],
            shared_mem: MemStats { reads: accesses / 4, ..MemStats::default() },
            interconnect: IcStats { words: accesses / 4, ..IcStats::default() },
            ..WindowStats::default()
        }
    }

    #[test]
    fn fully_active_core_draws_max_power() {
        let map = fig4b_arm11();
        let model = PowerModel::default();
        let w = window(1_000_000, 0, 0);
        let p = model.window_powers(&map, &w, 500_000_000);
        for &(core, _, _, _) in &map.cores {
            assert!((p[core] - 1.5).abs() < 1e-9, "ARM11 at 500 MHz fully active = 1.5 W");
        }
    }

    #[test]
    fn idle_core_draws_idle_fraction() {
        let map = fig4b_arm11();
        let model = PowerModel::default();
        let w = window(0, 1_000_000, 0);
        let p = model.window_powers(&map, &w, 500_000_000);
        let core = map.cores[0].0;
        assert!((p[core] - 1.5 * model.idle_factor).abs() < 1e-9);
    }

    #[test]
    fn dfs_throttling_scales_core_power_linearly() {
        let map = fig4b_arm11();
        let model = PowerModel::default();
        let w = window(1_000_000, 0, 0);
        let p500 = model.window_powers(&map, &w, 500_000_000);
        let p100 = model.window_powers(&map, &w, 100_000_000);
        let core = map.cores[0].0;
        assert!((p500[core] / p100[core] - 5.0).abs() < 1e-9);
    }

    #[test]
    fn cache_power_follows_access_rate() {
        let map = fig4b_arm11();
        let model = PowerModel::default();
        // One I-cache access per cycle at the reference clock = Table 1 max.
        let cycles = 1_000_000u64;
        let mut w = window(cycles, 0, 0);
        for c in &mut w.icaches {
            c.hits = cycles;
        }
        let p = model.window_powers(&map, &w, 100_000_000);
        let ic = map.cores[0].1;
        assert!((p[ic] - 0.011).abs() < 1e-9, "ICache at one access/cycle = 11 mW");
        // Half the access rate, half the power.
        for c in &mut w.icaches {
            c.hits = cycles / 2;
        }
        let p2 = model.window_powers(&map, &w, 100_000_000);
        assert!((p2[ic] - 0.0055).abs() < 1e-9);
    }

    #[test]
    fn switch_power_splits_interconnect_words() {
        let map = fig4b_arm11();
        let model = PowerModel::default();
        let mut w = window(1_000_000, 0, 0);
        w.interconnect.words = 4_000_000;
        let p = model.window_powers(&map, &w, 100_000_000);
        let total_sw: f64 = map.switches.iter().map(|&s| p[s]).sum();
        // 4M words over 10 ms with 0.5 nJ/word = 0.2 W across switches.
        assert!((total_sw - 0.2).abs() < 1e-9, "switch total {total_sw}");
        let each = p[map.switches[0]];
        for &s in &map.switches {
            assert!((p[s] - each).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_window_is_all_zero_power_except_idle() {
        let map = fig4b_arm11();
        let model = PowerModel::default();
        let w = window(0, 0, 0);
        let p = model.window_powers(&map, &w, 100_000_000);
        assert!(p.iter().all(|&x| x >= 0.0));
        assert!(p[map.shared] == 0.0);
    }

    #[test]
    fn powers_vector_matches_floorplan_order() {
        let map = fig4b_arm11();
        let model = PowerModel::default();
        let p = model.window_powers(&map, &window(100, 0, 800), 100_000_000);
        assert_eq!(p.len(), map.n_components());
    }

    #[test]
    fn fewer_cores_than_tiles_is_allowed() {
        // A 2-core machine on the 4-core floorplan: tiles 2 and 3 stay cold.
        let map = fig4b_arm11();
        let model = PowerModel::default();
        let mut w = window(100, 0, 0);
        w.cores.truncate(2);
        w.icaches.truncate(2);
        w.dcaches.truncate(2);
        w.private_mems.truncate(2);
        let p = model.window_powers(&map, &w, 500_000_000);
        assert!(p[map.cores[0].0] > 0.0);
        assert_eq!(p[map.cores[3].0], 0.0);
    }

    #[test]
    #[should_panic(expected = "only hosts")]
    fn too_many_cores_panics() {
        let map = fig4b_arm11();
        let model = PowerModel::default();
        let mut w = window(100, 0, 0);
        w.cores.push(CoreStats::default());
        let _ = model.window_powers(&map, &w, 100_000_000);
    }
}
