//! Regenerates **Table 1**: "Power for most important components of an MPSoC
//! design (130 nm bulk CMOS technology)".

use temu_power::PowerDb;

fn main() {
    let db = PowerDb::table1();
    println!("Table 1: power for the most important MPSoC components (130nm bulk CMOS)");
    println!("{:<18} {:>22} {:>20} {:>12}", "component", "Max power @ ref clock", "Max density W/mm2", "area mm2");
    let paper: [(&str, &str, f64); 5] = [
        ("RISC 32-ARM7", "5.5mW @ 100MHz", 0.03),
        ("RISC 32-ARM11", "1.5W (max)", 0.5),
        ("DCache 8kB/2way", "43mW @ 100MHz", 0.012),
        ("ICache 8kB/DM", "11mW @ 100MHz", 0.03),
        ("Memory 32kB", "15mW @ 100MHz", 0.02),
    ];
    for (entry, (p_name, p_power, p_density)) in db.entries().iter().take(5).zip(paper) {
        assert_eq!(entry.name, p_name, "database row order matches the paper");
        assert!((entry.density_w_mm2 - p_density).abs() < 1e-12, "density matches the paper");
        println!(
            "{:<18} {:>22} {:>20} {:>12.3}",
            entry.name,
            format!("{:.4} W @ {} MHz", entry.max_power_w, entry.ref_hz / 1e6),
            entry.density_w_mm2,
            entry.area_mm2(),
        );
        println!("{:<18} {:>22} {:>20}", "  (paper)", p_power, p_density);
    }
    let sw = db.entries()[5];
    println!(
        "{:<18} {:>22} {:>20} {:>12.3}   [documented estimate; not in Table 1]",
        sw.name,
        format!("{:.4} W @ {} MHz", sw.max_power_w, sw.ref_hz / 1e6),
        sw.density_w_mm2,
        sw.area_mm2(),
    );
    println!("\nAll five Table 1 rows are embedded verbatim; leakage is ignored (paper section 5.1).");
}
