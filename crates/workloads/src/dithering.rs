//! The DITHERING workload: Floyd–Steinberg error diffusion.
//!
//! "A dithering filtering using the Floyd algorithm in two 128x128 grey
//! images, divided in 4 segments and stored in shared memories. This
//! application is highly parallel and imposes almost the same workload in
//! each processor." (§7)
//!
//! Each image is divided into `cores` horizontal bands; every core dithers
//! its band of every image independently (errors diffuse within a band, not
//! across band boundaries — what makes the workload embarrassingly
//! parallel). The classic 7/16, 3/16, 5/16, 1/16 weights are applied with
//! arithmetic-shift rounding (`(w·e) >> 4`), identically in the TE32 program
//! and the host reference, so the emulated output must match the reference
//! byte for byte.

use crate::error::WorkloadError;
use crate::image::GreyImage;
use crate::{MMIO_BASE, SHARED_BASE};
use temu_isa::asm::assemble;
use temu_isa::Program;

/// Parameters of a dithering workload instance.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DitherConfig {
    /// Image width in pixels.
    pub width: u32,
    /// Image height in pixels (must divide evenly by `cores`).
    pub height: u32,
    /// Number of images processed back to back.
    pub images: u32,
    /// Cores sharing the work.
    pub cores: u32,
}

impl DitherConfig {
    /// The paper's configuration: two 128×128 images on four cores.
    pub fn paper() -> DitherConfig {
        DitherConfig { width: 128, height: 128, images: 2, cores: 4 }
    }

    /// A reduced configuration for fast tests.
    pub fn small(cores: u32) -> DitherConfig {
        DitherConfig { width: 32, height: 32, images: 1, cores }
    }

    /// Shared-memory address of image `i`.
    pub fn image_addr(&self, i: u32) -> u32 {
        SHARED_BASE + 0x1000 + i * self.width * self.height
    }

    /// Rows each core dithers per image.
    pub fn rows_per_core(&self) -> u32 {
        self.height / self.cores
    }

    /// Validates the geometry.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if the height does not divide by the core
    /// count or a dimension is zero.
    pub fn validate(&self) -> Result<(), WorkloadError> {
        if self.width == 0 || self.height == 0 || self.images == 0 || self.cores == 0 {
            return Err(WorkloadError::ZeroDimension);
        }
        if !self.height.is_multiple_of(self.cores) {
            return Err(WorkloadError::IndivisibleHeight { height: self.height, cores: self.cores });
        }
        Ok(())
    }
}

/// Private-memory addresses of the two error rows (`width + 2` words each,
/// shifted by one so the x−1/x+1 taps never need bounds checks).
const ERR_CUR: u32 = 0x8000;
fn err_next_addr(width: u32) -> u32 {
    ERR_CUR + (width + 2) * 4
}

/// Generates the TE32 dithering program.
///
/// # Errors
///
/// Returns the validation or assembler diagnosis.
pub fn program(cfg: &DitherConfig) -> Result<Program, WorkloadError> {
    cfg.validate()?;
    let src = format!(
        "
        .equ MMIO, {mmio:#x}
        .equ IMG0, {img0:#x}
        .equ ERRC, {errc:#x}
        .equ ERRN, {errn:#x}

        start:
            li   r1, MMIO
            lw   s7, 0(r1)          ; core id
            li   s6, {images}       ; images left
            li   s5, IMG0           ; current image base
        img_loop:
            li   t0, {rows}
            mul  s0, s7, t0         ; y  = core * rows
            add  s1, s0, t0         ; y1 = y + rows
            ; clear both error rows
            li   t0, 0
            li   t1, {errwords2}
        clr:
            slli t2, t0, 2
            li   t3, ERRC
            add  t3, t3, t2
            sw   r0, 0(t3)
            addi t0, t0, 1
            blt  t0, t1, clr
        row_loop:
            li   t0, {w}
            mul  t1, s0, t0
            add  t1, t1, s5         ; &img[y][0]
            li   s2, 0              ; x
        pix_loop:
            add  t2, t1, s2
            lbu  t3, 0(t2)          ; pixel
            li   t4, ERRC
            addi t5, s2, 1
            slli t5, t5, 2
            add  t4, t4, t5
            lw   t6, 0(t4)
            add  t3, t3, t6         ; old = pixel + err
            li   t6, 128
            blt  t3, t6, below
            li   t7, 255
            j    store
        below:
            li   t7, 0
        store:
            sb   t7, 0(t2)
            sub  t3, t3, t7         ; e = old - new
            ; errc[x+2] += (7e) >> 4
            slli t6, t3, 3
            sub  t6, t6, t3
            srai t6, t6, 4
            li   t4, ERRC
            addi t5, s2, 2
            slli t5, t5, 2
            add  t4, t4, t5
            lw   t7, 0(t4)
            add  t7, t7, t6
            sw   t7, 0(t4)
            ; errn[x] += (3e) >> 4
            slli t6, t3, 1
            add  t6, t6, t3
            srai t6, t6, 4
            li   t4, ERRN
            slli t5, s2, 2
            add  t4, t4, t5
            lw   t7, 0(t4)
            add  t7, t7, t6
            sw   t7, 0(t4)
            ; errn[x+1] += (5e) >> 4
            slli t6, t3, 2
            add  t6, t6, t3
            srai t6, t6, 4
            li   t4, ERRN
            addi t5, s2, 1
            slli t5, t5, 2
            add  t4, t4, t5
            lw   t7, 0(t4)
            add  t7, t7, t6
            sw   t7, 0(t4)
            ; errn[x+2] += e >> 4
            srai t6, t3, 4
            li   t4, ERRN
            addi t5, s2, 2
            slli t5, t5, 2
            add  t4, t4, t5
            lw   t7, 0(t4)
            add  t7, t7, t6
            sw   t7, 0(t4)
            addi s2, s2, 1
            li   t6, {w}
            blt  s2, t6, pix_loop
            ; err_cur <- err_next; err_next <- 0
            li   t0, 0
            li   t1, {errwords}
        cp:
            slli t2, t0, 2
            li   t3, ERRN
            add  t3, t3, t2
            lw   t4, 0(t3)
            sw   r0, 0(t3)
            li   t5, ERRC
            add  t5, t5, t2
            sw   t4, 0(t5)
            addi t0, t0, 1
            blt  t0, t1, cp
            addi s0, s0, 1
            blt  s0, s1, row_loop
            ; advance to the next image
            li   t0, {img_bytes}
            add  s5, s5, t0
            addi s6, s6, -1
            bnez s6, img_loop
            halt
        ",
        mmio = MMIO_BASE,
        img0 = cfg.image_addr(0),
        errc = ERR_CUR,
        errn = err_next_addr(cfg.width),
        images = cfg.images,
        rows = cfg.rows_per_core(),
        w = cfg.width,
        errwords = cfg.width + 2,
        errwords2 = 2 * (cfg.width + 2),
        img_bytes = cfg.width * cfg.height,
    );
    Ok(assemble(&src)?)
}

/// Host reference: dithers `img` in place with the same band-local
/// Floyd–Steinberg the TE32 program applies.
pub fn reference_dither(img: &mut GreyImage, cores: u32) {
    let w = img.width;
    let h = img.height;
    let rows = h / cores as usize;
    for band in 0..cores as usize {
        let (y0, y1) = (band * rows, (band + 1) * rows);
        let mut err_cur = vec![0i32; w + 2];
        let mut err_next = vec![0i32; w + 2];
        for y in y0..y1 {
            for x in 0..w {
                let old = i32::from(img.pixels[y * w + x]) + err_cur[x + 1];
                let new = if old < 128 { 0 } else { 255 };
                img.pixels[y * w + x] = new as u8;
                let e = old - new;
                err_cur[x + 2] += (7 * e) >> 4;
                err_next[x] += (3 * e) >> 4;
                err_next[x + 1] += (5 * e) >> 4;
                err_next[x + 2] += e >> 4;
            }
            std::mem::swap(&mut err_cur, &mut err_next);
            err_next.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_validates() {
        let c = DitherConfig::paper();
        assert!(c.validate().is_ok());
        assert_eq!(c.rows_per_core(), 32);
        assert_eq!(c.image_addr(1) - c.image_addr(0), 128 * 128);
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = DitherConfig::paper();
        c.cores = 3;
        assert!(c.validate().is_err(), "128 rows do not split across 3 cores");
        c = DitherConfig::paper();
        c.width = 0;
        assert!(c.validate().is_err());
        assert!(program(&c).is_err());
    }

    #[test]
    fn programs_assemble() {
        for cores in [1u32, 2, 4, 8] {
            let mut c = DitherConfig::paper();
            c.cores = cores;
            assert!(program(&c).is_ok());
        }
    }

    #[test]
    fn reference_output_is_binary_and_mean_preserving() {
        let mut img = GreyImage::synthetic(64, 64, 3);
        let mean_before = img.mean();
        reference_dither(&mut img, 4);
        assert_eq!(img.binary_fraction(), 1.0);
        assert!((img.mean() - mean_before).abs() < 8.0, "error diffusion preserves brightness");
    }

    #[test]
    fn reference_band_independence() {
        // Dithering with 2 cores must equal dithering the two halves
        // separately (the bands are independent by construction).
        let img0 = GreyImage::synthetic(32, 32, 9);
        let mut whole = img0.clone();
        reference_dither(&mut whole, 2);
        let mut top = GreyImage { width: 32, height: 16, pixels: img0.pixels[..32 * 16].to_vec() };
        let mut bot = GreyImage { width: 32, height: 16, pixels: img0.pixels[32 * 16..].to_vec() };
        reference_dither(&mut top, 1);
        reference_dither(&mut bot, 1);
        assert_eq!(&whole.pixels[..32 * 16], &top.pixels[..]);
        assert_eq!(&whole.pixels[32 * 16..], &bot.pixels[..]);
    }

    #[test]
    fn all_black_and_all_white_are_fixed_points() {
        let mut black = GreyImage { width: 16, height: 16, pixels: vec![0; 256] };
        reference_dither(&mut black, 1);
        assert!(black.pixels.iter().all(|&p| p == 0));
        let mut white = GreyImage { width: 16, height: 16, pixels: vec![255; 256] };
        reference_dither(&mut white, 1);
        assert!(white.pixels.iter().all(|&p| p == 255));
    }

    #[test]
    fn mid_grey_dithers_to_half_density() {
        let mut grey = GreyImage { width: 32, height: 32, pixels: vec![128; 1024] };
        reference_dither(&mut grey, 1);
        let white = grey.pixels.iter().filter(|&&p| p == 255).count();
        let frac = white as f64 / 1024.0;
        assert!((frac - 0.5).abs() < 0.08, "white density {frac}");
    }
}
