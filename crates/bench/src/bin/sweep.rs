//! Named design-space sweeps over the `temu::Sweep` engine, with JSON/CSV
//! export and an optional persistent result cache.
//!
//! ```sh
//! cargo run --release -p temu-bench --bin sweep -- --list
//! cargo run --release -p temu-bench --bin sweep -- ladder --out ladder.json
//! cargo run --release -p temu-bench --bin sweep -- grid100 --cache target/sweep_cache.jsonl
//! cargo run --release -p temu-bench --bin sweep -- --smoke
//! ```
//!
//! Every run streams per-point progress; with `--cache <store.jsonl>` a
//! re-run (same process or not) skips every already-solved point. `--smoke`
//! runs the check.sh gate: a strict-convergence mini sweep (8 points,
//! multigrid included) followed by an in-process re-run that must be 100%
//! cache hits — any failed point, unconverged substep, or missed cache hit
//! exits non-zero.

use temu_framework::{ResultCache, Scenario, Sweep, SweepReport, Workload};
use temu_platform::{DfsBand, DfsPolicy, PlatformConfig};
use temu_thermal::{GridConfig, ImplicitSolve};
use temu_workloads::dithering::DitherConfig;
use temu_workloads::matrix::MatrixConfig;

const NAMES: &[(&str, &str)] = &[
    ("ladder", "DFS frequency ladders (none/2/3/4-level) × run budgets on the Fig. 6 stress workload (heavy: Fig. 6-scale runs, minutes/point on one core)"),
    ("mesh", "mesh resolution × implicit solver, strict convergence (6 points)"),
    ("explore", "interconnect × workload × core count (the §7 exploration, 12 points)"),
    ("grid100", "100-point grid of tiny scenarios (cache/incremental-rerun demo)"),
];

fn tiny(iters: u32) -> Workload {
    Workload::Matrix(MatrixConfig { n: 4, iters, cores: 1 })
}

fn tiny_base() -> Scenario {
    Scenario::new().cores(1).workload(tiny(1)).sampling_window_s(0.0005).windows(2)
}

/// Builds one of the named sweeps.
fn build(name: &str) -> Option<Sweep> {
    match name {
        "ladder" => {
            let three = DfsPolicy::ladder(
                &[500_000_000, 250_000_000, 100_000_000],
                &[DfsBand { hot_k: 345.0, cool_k: 335.0 }, DfsBand { hot_k: 355.0, cool_k: 345.0 }],
            )
            .expect("valid 3-level ladder");
            let four = DfsPolicy::ladder(
                &[500_000_000, 333_000_000, 250_000_000, 100_000_000],
                &[
                    DfsBand { hot_k: 342.0, cool_k: 334.0 },
                    DfsBand { hot_k: 350.0, cool_k: 341.0 },
                    DfsBand { hot_k: 358.0, cool_k: 349.0 },
                ],
            )
            .expect("valid 4-level ladder");
            Some(
                Sweep::new("ladder", Scenario::paper_fig6_unmanaged())
                    .dfs_policies(vec![None, Some(DfsPolicy::paper()), Some(three), Some(four)])
                    .windows(&[150, 300]),
            )
        }
        "mesh" => {
            let fine = GridConfig { default_div: 3, hot_div: 5, filler_pitch_um: 600.0, ..GridConfig::default() };
            let xfine = GridConfig { default_div: 4, hot_div: 7, filler_pitch_um: 400.0, ..GridConfig::default() };
            Some(
                Sweep::new(
                    "mesh",
                    Scenario::exploration_bus(2).sampling_window_s(0.002).strict_convergence(true),
                )
                .meshes(vec![
                    (String::from("paper"), GridConfig::default()),
                    (String::from("fine"), fine),
                    (String::from("xfine"), xfine),
                ])
                .implicit_solves(&[ImplicitSolve::GaussSeidel, ImplicitSolve::Multigrid]),
            )
        }
        "explore" => Some(
            Sweep::new("explore", Scenario::new().sampling_window_s(0.002))
                .axis(
                    "ic",
                    vec!["bus", "noc"],
                    ToString::to_string,
                    |s, ic| {
                        Ok(match *ic {
                            "bus" => s.platform(PlatformConfig::paper_bus(4)),
                            _ => s.platform(PlatformConfig::paper_noc(4)),
                        })
                    },
                )
                .workloads(vec![
                    Workload::Matrix(MatrixConfig::small(4)),
                    Workload::Dithering {
                        cfg: DitherConfig { width: 64, height: 64, images: 2, cores: 4 },
                        seed: 7,
                    },
                ])
                .cores(&[1, 2, 4]),
        ),
        "grid100" => Some(
            Sweep::new("grid100", tiny_base())
                .workloads((1..=5).map(tiny).collect())
                .dfs_bands(
                    &[(340.0, 330.0), (345.0, 335.0), (350.0, 340.0), (355.0, 345.0), (360.0, 350.0)],
                    500_000_000,
                    100_000_000,
                )
                .implicit_solves(&[ImplicitSolve::GaussSeidel, ImplicitSolve::Multigrid])
                .windows(&[1, 2]),
        ),
        _ => None,
    }
}

fn with_progress(sweep: Sweep) -> Sweep {
    sweep.on_progress(|p| {
        let status = match p.outcome {
            Ok(s) => format!(
                "peak {} windows {}{}",
                s.peak_temp_k.map_or_else(|| String::from("-"), |t| format!("{t:.2}K")),
                s.windows,
                if p.cache_hit { "  [cached]" } else { "" }
            ),
            Err(e) => format!("FAILED: {e}"),
        };
        println!("  [{:>3}/{}] {:<60} {status}", p.completed, p.total, p.label);
    })
}

fn summarize(report: &SweepReport) {
    println!(
        "\n{}: {} point(s), {} executed, {} cache hit(s), {} failed, {:.2} s wall on {} thread(s)",
        report.name,
        report.points.len(),
        report.executed,
        report.cache_hits,
        report.n_failed(),
        report.wall.as_secs_f64(),
        report.threads
    );
}

/// The check.sh gate: a strict-convergence mini sweep (multigrid included)
/// plus an in-process cached re-run that must skip every execution.
fn smoke() -> i32 {
    let cache = ResultCache::in_memory();
    let base = tiny_base().strict_convergence(true);
    let build = || {
        Sweep::new("smoke", base.clone())
            .workloads((1..=4).map(tiny).collect())
            .implicit_solves(&[ImplicitSolve::GaussSeidel, ImplicitSolve::Multigrid])
    };
    println!("sweep smoke: 8-point strict-convergence grid");
    let first = with_progress(build()).run_cached(&cache);
    summarize(&first);
    if !first.all_ok() || first.points.len() < 6 {
        eprintln!("sweep smoke FAILED: {} failed point(s)\n{}", first.n_failed(), first.to_json());
        return 1;
    }
    for p in &first.points {
        let s = p.outcome.as_ref().expect("all_ok checked");
        if s.unconverged_substeps != 0 {
            eprintln!("sweep smoke FAILED: {} accepted unconverged substeps", p.label);
            return 1;
        }
    }
    println!("\nsweep smoke: identical re-run must be 100% cache hits");
    let rerun = with_progress(build()).run_cached(&cache);
    summarize(&rerun);
    if rerun.executed != 0 || rerun.cache_hits != rerun.points.len() {
        eprintln!(
            "sweep smoke FAILED: re-run executed {} scenario(s), {} cache hit(s)",
            rerun.executed, rerun.cache_hits
        );
        return 1;
    }
    println!("\nsweep smoke OK");
    0
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    if args.iter().any(|a| a == "--list") || args.is_empty() {
        println!("named sweeps (run with: sweep <name> [--out x.json] [--csv x.csv] [--cache store.jsonl] [--threads N]):");
        for (name, what) in NAMES {
            println!("  {name:<10} {what}");
        }
        return;
    }

    let mut name: Option<String> = None;
    let mut out: Option<String> = None;
    let mut csv: Option<String> = None;
    let mut cache_path: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--out" => out = Some(it.next().expect("--out takes a path").clone()),
            "--csv" => csv = Some(it.next().expect("--csv takes a path").clone()),
            "--cache" => cache_path = Some(it.next().expect("--cache takes a path").clone()),
            "--threads" => {
                threads = Some(
                    it.next().and_then(|v| v.parse().ok()).expect("--threads takes a positive integer"),
                );
            }
            flag if flag.starts_with("--") => {
                panic!("unknown flag {flag} (supported: --out, --csv, --cache, --threads, --smoke, --list)")
            }
            positional => name = Some(String::from(positional)),
        }
    }

    let name = name.expect("pass a sweep name (or --list)");
    let mut sweep = build(&name)
        .unwrap_or_else(|| panic!("unknown sweep {name:?} — run with --list to see the named sweeps"));
    if let Some(t) = threads {
        sweep = sweep.threads(t);
    }
    sweep = with_progress(sweep);

    println!("sweep {name}: {} point(s)", sweep.n_points());
    let report = match &cache_path {
        Some(path) => {
            let cache = ResultCache::with_store(path).expect("open cache store");
            println!("cache store {path}: {} entr(ies) preloaded", cache.len());
            sweep.run_cached(&cache)
        }
        None => sweep.run(),
    };
    summarize(&report);

    if let Some(path) = out {
        std::fs::write(&path, report.to_json()).expect("write JSON report");
        println!("wrote {path}");
    }
    if let Some(path) = csv {
        std::fs::write(&path, report.to_csv()).expect("write CSV report");
        println!("wrote {path}");
    }
    if !report.all_ok() {
        std::process::exit(1);
    }
}
