//! # temu-framework — the HW/SW thermal co-emulation flow
//!
//! The paper's contribution (§6, Fig. 5): run the emulated MPSoC for one
//! statistics sampling window (10 ms of virtual time by default), convert the
//! extracted sniffer statistics into per-floorplan-component power, ship them
//! over the Ethernet statistics link to the SW thermal model, advance the RC
//! network by the same window, feed the resulting temperatures back into the
//! platform's sensor registers, and let the run-time thermal-management
//! policy (the §7 dual-threshold DFS) retune the virtual clock — then repeat,
//! autonomously, until the workload halts.
//!
//! ## Describing experiments: [`Scenario`]
//!
//! A [`Scenario`] is the fluent front door: it composes platform, workload,
//! power model, thermal grid, DFS policy, floorplan, run budget and an
//! optional FPGA-fit gate, with presets for the paper's experiments:
//!
//! ```
//! use temu_framework::{Scenario, TemuError};
//!
//! fn main() -> Result<(), TemuError> {
//!     let run = Scenario::exploration_bus(2) // 2 cores, OPB bus, DITHERING
//!         .sampling_window_s(0.002)
//!         .run()?;
//!     assert!(run.report.all_halted);
//!     println!("peak {:?} K over {} windows", run.trace.peak_temp(), run.report.windows);
//!     Ok(())
//! }
//! ```
//!
//! ## Sweeping the design space: [`Campaign`]
//!
//! A [`Campaign`] executes many scenarios concurrently across host threads
//! (`TEMU_CAMPAIGN_THREADS` overrides the width) and returns an
//! input-ordered [`CampaignReport`] with JSON/CSV export — the batching
//! layer for design-space exploration, where each scenario is one
//! "synthesis-free" evaluation point:
//!
//! ```no_run
//! use temu_framework::{Campaign, Scenario};
//!
//! let report = Campaign::new()
//!     .scenarios((1..=4).map(Scenario::exploration_bus))
//!     .scenario(Scenario::exploration_noc(4))
//!     .run();
//! println!("{}", report.to_json());
//! ```
//!
//! Failures stay local: a scenario that returns a [`TemuError`] (or
//! panics) is carried in its slot of the report while its siblings run to
//! completion. [`Campaign::on_result`] streams each result as it finishes,
//! so long batches report incrementally instead of only at the join.
//!
//! ## Sweeping parameter grids: [`Sweep`]
//!
//! A [`Sweep`] expands cartesian axes — core counts, DFS frequency
//! ladders ([`temu_platform::DfsPolicy::ladder`]) or threshold bands,
//! mesh resolutions, workloads, implicit-solver choices, run budgets, or
//! custom knobs — into one campaign and reports per grid point
//! ([`SweepReport`]). A [`ResultCache`] memoizes each point under its
//! configuration content key ([`Scenario::content_key`], optionally
//! persisted to an on-disk JSON-lines store), so re-running an identical
//! or overlapping sweep skips every already-solved point:
//!
//! ```no_run
//! use temu_framework::{ResultCache, Scenario, Sweep};
//!
//! let cache = ResultCache::in_memory();
//! let report = Sweep::new("bands", Scenario::paper_fig6_unmanaged())
//!     .cores(&[2, 4])
//!     .dfs_bands(&[(350.0, 340.0), (345.0, 335.0)], 500_000_000, 100_000_000)
//!     .run_cached(&cache);
//! println!("{}", report.to_csv());
//! ```
//!
//! ## Execution transports
//!
//! * [`ThermalEmulation`] — in-process sequential loop (deterministic,
//!   benchmark-friendly); built directly or via [`Scenario::build`];
//! * [`threaded::run_threaded`] — the thermal tool runs on its own host
//!   thread connected by channels, mirroring the paper's concurrent
//!   FPGA-plus-host-PC execution. Both produce identical traces (the
//!   feedback is pipelined by one window in either case, exactly like the
//!   physical system).
//!
//! ## Errors
//!
//! Every layer reports a typed error (`PlatformError`, `ThermalError`,
//! `WorkloadError`, `PowerError`, …); [`TemuError`] folds them into one
//! workspace-wide hierarchy so whole experiments run behind a single `?`.

mod artifacts;
mod campaign;
mod emulation;
mod error;
mod export;
mod lockstep;
mod scenario;
mod spec;
mod sweep;
pub mod threaded;
mod trace;

pub use artifacts::{ArtifactCache, ArtifactStats};
pub use campaign::{Campaign, CampaignProgress, CampaignReport, ResultSink, ScenarioResult};
pub use emulation::{EmulationConfig, EmulationReport, EmulationState, ThermalEmulation};
pub use error::TemuError;
pub use emulation::EmulationTotals;
pub use export::{json_escape, JsonValue};
pub use scenario::{LayeredKeys, RunBudget, Scenario, ScenarioRun, Workload};
pub use spec::{
    AxisSpec, DfsSpec, MeshSpec, PlatformSpec, ScenarioSpec, SpecError, SweepSpec, WorkloadSpec,
    NAMED_SWEEPS,
};
pub use sweep::{
    fnv1a64, fnv1a64_fold, CheckpointDecision, CheckpointHook, PointSummary, ResultCache, Sweep,
    SweepCheckpoint, SweepPoint, SweepPointResult, SweepProgress, SweepReport, SweepSink,
    WindowCheckpoint, WindowCheckpointHook,
};
pub use temu_thermal::{ImplicitSolve, SolverStats};
pub use trace::{ThermalTrace, TraceSample};
