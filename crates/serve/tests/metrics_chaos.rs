//! Chaos e2e for the metrics surface: with worker panics and dropped
//! connections dialed high (but journal appends intact), the `metrics`
//! snapshot's job counters must agree exactly with both the `stats` view
//! and the journal's own record counts — the registry, the legacy stats
//! fields, and the write-ahead log are three views of one truth.
//!
//! Lives in its own test binary because `fault::install` is
//! process-global (first caller wins) and this plan differs from the
//! main chaos suite's: `torn_write` stays at zero so every terminal
//! transition a worker counted also landed intact in the journal.

use std::path::PathBuf;
use temu_framework::{
    AxisSpec, ImplicitSolve, JsonValue, ScenarioSpec, SweepSpec, WorkloadSpec,
};
use temu_serve::client::submit_with_retry;
use temu_serve::{Client, ClientError, FaultPlan, RetryPolicy, ServeConfig, Server};

/// A 4-point sweep on one campaign thread, so a checkpoint (and a
/// `worker_panic` roll) lands between every grid point.
fn chaos_sweep() -> SweepSpec {
    let tiny = |iters: u32| WorkloadSpec::Matrix { n: 4, iters, cores: 1 };
    SweepSpec {
        name: String::from("metrics-chaos"),
        base: ScenarioSpec {
            cores: Some(1),
            workload: Some(tiny(1)),
            sampling_window_s: Some(0.0005),
            windows: Some(2),
            strict_convergence: Some(true),
            ..ScenarioSpec::default()
        },
        axes: vec![
            AxisSpec::Workloads(vec![tiny(1), tiny(2)]),
            AxisSpec::Solvers(vec![ImplicitSolve::GaussSeidel, ImplicitSolve::Multigrid]),
        ],
        threads: Some(1),
    }
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("temu_metrics_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Retries a client call until it survives the connection-dropping fault.
fn with_retry<T>(mut call: impl FnMut() -> Result<T, ClientError>) -> T {
    for _ in 0..40 {
        match call() {
            Ok(value) => return value,
            Err(e) if e.is_transient() => std::thread::sleep(std::time::Duration::from_millis(5)),
            Err(e) => panic!("non-transient client error under chaos: {e}"),
        }
    }
    panic!("client call did not survive 40 attempts under chaos");
}

#[test]
fn metrics_job_counters_match_stats_and_the_journal_after_a_chaos_run() {
    assert!(
        temu_serve::fault::install(FaultPlan {
            worker_panic: 0.5,
            torn_write: 0.0,
            drop_conn: 0.3,
        }),
        "this test binary installs the fault plan first"
    );

    let dir = temp_dir();
    let store = dir.join("cache.jsonl");
    let _ = std::fs::remove_file(&store);
    let journal = store.with_file_name("jobs.jsonl");
    let _ = std::fs::remove_file(&journal);

    let handle = Server::spawn(ServeConfig {
        addr: String::from("127.0.0.1:0"),
        store: Some(store.clone()),
        ..ServeConfig::default()
    })
    .expect("bind an ephemeral port");
    let addr = handle.addr().to_string();
    let spec = chaos_sweep();
    let policy = RetryPolicy { retries: 8, ..RetryPolicy::default() };

    // Resubmit until one run completes fully, then once more from the
    // cache — every submission is watched to its done summary, so every
    // job the server ever accepted is terminal before the counters are
    // read (a panicked job reports `failed`, not limbo).
    let mut completed = false;
    let mut attempts = 0u32;
    while attempts < 60 && !completed {
        attempts += 1;
        let outcome = submit_with_retry(&addr, &policy, &spec, true, 0, |_| {})
            .expect("submission survives transient chaos");
        let summary = outcome.done.expect("watched submissions end with a done summary");
        completed = summary.ok && summary.failed == 0;
    }
    assert!(completed, "a chaos-battered sweep still completes within 60 submissions");
    let cached = submit_with_retry(&addr, &policy, &spec, true, 0, |_| {})
        .expect("cached resubmission survives transient chaos")
        .done
        .unwrap();
    assert_eq!((cached.cache_hits, cached.executed, cached.failed), (4, 0, 0));

    // Three views of the job ledger, fetched while the server is up.
    let stats = with_retry(|| Client::connect_with_retry(&addr, &policy)?.stats());
    let metrics = with_retry(|| Client::connect_with_retry(&addr, &policy)?.metrics());
    assert_eq!(metrics.get("temu_metrics").and_then(JsonValue::as_u64), Some(1));
    let counters = metrics.get("counters").expect("counters map");
    let counter = |k: &str| counters.get(k).and_then(JsonValue::as_u64).unwrap_or(0);
    let stat = |k: &str| stats.get(k).and_then(JsonValue::as_u64).unwrap_or(0);

    // View 1 vs view 2: the registry and the stats frame agree key for
    // key (`stats` is a thin view over the same counters).
    for (snapshot_key, stats_key) in [
        ("serve.jobs_submitted", "jobs_submitted"),
        ("serve.jobs_completed", "jobs_completed"),
        ("serve.jobs_failed", "jobs_failed"),
        ("serve.jobs_cancelled", "jobs_cancelled"),
        ("serve.points_executed", "points_executed"),
        ("serve.point_cache_hits", "point_cache_hits"),
    ] {
        assert_eq!(
            counter(snapshot_key),
            stat(stats_key),
            "{snapshot_key} agrees with stats.{stats_key}: {metrics}"
        );
    }
    let terminal = counter("serve.jobs_completed")
        + counter("serve.jobs_failed")
        + counter("serve.jobs_cancelled");
    assert_eq!(counter("serve.jobs_submitted"), terminal, "no job is left in limbo");
    assert!(counter("serve.jobs_completed") >= 2, "both clean runs completed: {metrics}");

    with_retry(|| Client::connect_with_retry(&addr, &policy)?.shutdown());
    handle.shutdown();

    // View 3: with torn writes disabled, the journal holds exactly one
    // submit record per counted submission and one terminal record per
    // counted completion/failure/cancellation.
    let text = std::fs::read_to_string(&journal).expect("journal exists next to the store");
    let records = |op: &str| -> u64 {
        let prefix = format!("{{\"op\": \"{op}\",");
        text.lines().filter(|line| line.starts_with(&prefix)).count() as u64
    };
    assert_eq!(records("submit"), counter("serve.jobs_submitted"), "journal submit records");
    assert_eq!(
        records("done") + records("failed") + records("cancelled"),
        terminal,
        "journal terminal records match the metrics job counters"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
