//! The statistics protocol payloads ("MAC packets in our own format", §4).
//!
//! Two packet types flow over the link every sampling window:
//!
//! * [`StatsPacket`] (FPGA → host): the power of every floorplan cell for
//!   the window just finished, plus the window's position on the virtual
//!   time axis;
//! * [`TempPacket`] (host → FPGA): the freshly computed component
//!   temperatures, which the platform writes into its sensor registers.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::error::Error;
use std::fmt;

const STATS_MAGIC: u8 = 0x53; // 'S'
const TEMP_MAGIC: u8 = 0x54; // 'T'

/// Payload decode failure.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PacketError {
    /// Payload empty or truncated.
    Truncated,
    /// First byte is not a known packet type.
    BadMagic(u8),
    /// Element count disagrees with the payload length.
    BadCount {
        /// Count field value.
        count: u32,
        /// Bytes remaining for elements.
        available: usize,
    },
}

impl fmt::Display for PacketError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PacketError::Truncated => write!(f, "packet payload truncated"),
            PacketError::BadMagic(m) => write!(f, "unknown packet type {m:#04x}"),
            PacketError::BadCount { count, available } => {
                write!(f, "count {count} does not fit in {available} payload bytes")
            }
        }
    }
}

impl Error for PacketError {}

/// Per-window statistics shipped to the thermal tool: the power of each
/// floorplan component, in milliwatts.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct StatsPacket {
    /// Monotonic sequence number.
    pub seq: u32,
    /// First virtual cycle of the window.
    pub window_start: u64,
    /// Window length in virtual cycles.
    pub window_cycles: u64,
    /// Virtual clock during the window, Hz (lets the host turn cycles into
    /// seconds).
    pub virtual_hz: u64,
    /// Power per floorplan component, milliwatts.
    pub power_mw: Vec<u32>,
}

impl StatsPacket {
    /// Serializes the packet payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(1 + 4 + 8 + 8 + 8 + 4 + 4 * self.power_mw.len());
        buf.put_u8(STATS_MAGIC);
        buf.put_u32(self.seq);
        buf.put_u64(self.window_start);
        buf.put_u64(self.window_cycles);
        buf.put_u64(self.virtual_hz);
        buf.put_u32(self.power_mw.len() as u32);
        for &p in &self.power_mw {
            buf.put_u32(p);
        }
        buf.freeze()
    }

    /// Parses a payload produced by [`StatsPacket::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`PacketError`] on truncation, a foreign magic byte, or an
    /// element count that does not match the length.
    pub fn decode(mut raw: Bytes) -> Result<StatsPacket, PacketError> {
        if raw.len() < 33 {
            return Err(PacketError::Truncated);
        }
        let magic = raw.get_u8();
        if magic != STATS_MAGIC {
            return Err(PacketError::BadMagic(magic));
        }
        let seq = raw.get_u32();
        let window_start = raw.get_u64();
        let window_cycles = raw.get_u64();
        let virtual_hz = raw.get_u64();
        let count = raw.get_u32();
        if raw.len() != count as usize * 4 {
            return Err(PacketError::BadCount { count, available: raw.len() });
        }
        let power_mw = (0..count).map(|_| raw.get_u32()).collect();
        Ok(StatsPacket { seq, window_start, window_cycles, virtual_hz, power_mw })
    }
}

/// Temperature feedback to the platform's sensor registers, centi-kelvin.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TempPacket {
    /// Sequence number of the statistics window these temperatures answer.
    pub seq: u32,
    /// Temperature per floorplan component, centi-kelvin.
    pub temps_centi_k: Vec<u32>,
}

impl TempPacket {
    /// Serializes the packet payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(1 + 4 + 4 + 4 * self.temps_centi_k.len());
        buf.put_u8(TEMP_MAGIC);
        buf.put_u32(self.seq);
        buf.put_u32(self.temps_centi_k.len() as u32);
        for &t in &self.temps_centi_k {
            buf.put_u32(t);
        }
        buf.freeze()
    }

    /// Parses a payload produced by [`TempPacket::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`PacketError`] on truncation, a foreign magic byte, or an
    /// element count that does not match the length.
    pub fn decode(mut raw: Bytes) -> Result<TempPacket, PacketError> {
        if raw.len() < 9 {
            return Err(PacketError::Truncated);
        }
        let magic = raw.get_u8();
        if magic != TEMP_MAGIC {
            return Err(PacketError::BadMagic(magic));
        }
        let seq = raw.get_u32();
        let count = raw.get_u32();
        if raw.len() != count as usize * 4 {
            return Err(PacketError::BadCount { count, available: raw.len() });
        }
        let temps_centi_k = (0..count).map(|_| raw.get_u32()).collect();
        Ok(TempPacket { seq, temps_centi_k })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn stats_round_trip() {
        let p = StatsPacket {
            seq: 7,
            window_start: 5_000_000,
            window_cycles: 5_000_000,
            virtual_hz: 500_000_000,
            power_mw: vec![1500, 11, 43, 15, 0],
        };
        assert_eq!(StatsPacket::decode(p.encode()).unwrap(), p);
    }

    #[test]
    fn temp_round_trip() {
        let p = TempPacket { seq: 7, temps_centi_k: vec![30_000, 35_123] };
        assert_eq!(TempPacket::decode(p.encode()).unwrap(), p);
    }

    #[test]
    fn wrong_magic_rejected_both_ways() {
        let s = StatsPacket { seq: 0, window_start: 0, window_cycles: 0, virtual_hz: 1, power_mw: vec![] };
        assert!(matches!(TempPacket::decode(s.encode()), Err(PacketError::BadMagic(_))));
        let t = TempPacket { seq: 0, temps_centi_k: vec![1, 2, 3, 4, 5, 6, 7] };
        assert!(matches!(StatsPacket::decode(t.encode()), Err(PacketError::BadMagic(_))));
    }

    #[test]
    fn truncated_rejected() {
        assert_eq!(StatsPacket::decode(Bytes::from_static(b"S")), Err(PacketError::Truncated));
        assert_eq!(TempPacket::decode(Bytes::new()), Err(PacketError::Truncated));
    }

    #[test]
    fn bad_count_rejected() {
        let p = TempPacket { seq: 1, temps_centi_k: vec![1, 2] };
        let mut raw = p.encode().to_vec();
        raw[8] = 9; // count byte lies
        assert!(matches!(TempPacket::decode(Bytes::from(raw)), Err(PacketError::BadCount { .. })));
    }

    proptest! {
        #[test]
        fn stats_round_trip_any(seq in any::<u32>(), ws in any::<u64>(), wc in any::<u64>(),
                                hz in 1u64..u64::MAX, p in prop::collection::vec(any::<u32>(), 0..64)) {
            let pkt = StatsPacket { seq, window_start: ws, window_cycles: wc, virtual_hz: hz, power_mw: p };
            prop_assert_eq!(StatsPacket::decode(pkt.encode()).unwrap(), pkt);
        }

        #[test]
        fn decode_never_panics(raw in prop::collection::vec(any::<u8>(), 0..128)) {
            let b = Bytes::from(raw);
            let _ = StatsPacket::decode(b.clone());
            let _ = TempPacket::decode(b);
        }
    }
}
