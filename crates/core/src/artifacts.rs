//! The layered build-artifact cache behind [`Scenario::build_with`]
//! (build/run phase split).
//!
//! Building a scenario factors into staged artifacts — resolve the
//! floorplan, mesh it into a [`ThermalGrid`], aggregate the multigrid
//! hierarchy topology, generate the TE32 [`Program`] — and most sweep
//! axes (DFS bands, run budgets, solver knobs) change *none* of them. An
//! [`ArtifactCache`] memoizes each stage behind an `Arc` under its own
//! sub-key ([`Scenario::artifact_keys`](crate::Scenario)), so a DFS-only
//! sweep meshes the die exactly once and every sibling point shares the
//! same grid (which is also what makes the sweep's batched lockstep
//! solving possible — fused many-RHS stepping requires models to share
//! one grid `Arc`).
//!
//! The cache is layered exactly like the keys: a `mesh` entry is reusable
//! across workloads and budgets because its key covers only the platform,
//! floorplan and mesh-geometry knobs ([`GridConfig::mesh_fingerprint`]);
//! the `operator` (multigrid hierarchy) layer folds in the
//! operator-relevant knobs on top; the `program` layer keys on the
//! workload alone. Per-layer hit/miss counters ([`ArtifactStats`]) make
//! reuse observable — the sweep smoke gate asserts on them.

use crate::error::TemuError;
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use temu_isa::Program;
use temu_power::FloorplanMap;
use temu_thermal::{GridConfig, MgTopology, ThermalGrid};

/// One memoized artifact layer: key → `Arc<T>` plus hit/miss counters.
/// The counters are mirrored into the process-wide metrics registry as
/// `core.artifact.<layer>.{hits,misses}` so snapshots and the NDJSON
/// metrics log see artifact reuse without polling [`ArtifactStats`].
struct Layer<T> {
    map: Mutex<HashMap<u64, Arc<T>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    obs_hits: Arc<temu_obs::Counter>,
    obs_misses: Arc<temu_obs::Counter>,
}

impl<T> Layer<T> {
    fn named(layer: &str) -> Layer<T> {
        let scope = temu_obs::global().scope("core.artifact");
        Layer {
            map: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            obs_hits: scope.counter(&format!("{layer}.hits")),
            obs_misses: scope.counter(&format!("{layer}.misses")),
        }
    }
    /// Returns the cached artifact or builds (and memoizes) it. The build
    /// runs outside the layer lock so concurrent campaign workers building
    /// *different* meshes never serialize; two racing builders of the same
    /// key both build, and the first insert wins (the loser's copy is
    /// dropped — correct, merely redundant).
    fn get_or_build(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<T, TemuError>,
    ) -> Result<Arc<T>, TemuError> {
        if let Some(hit) =
            self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner).get(&key).cloned()
        {
            self.hits.fetch_add(1, Ordering::Relaxed);
            self.obs_hits.inc();
            return Ok(hit);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.obs_misses.inc();
        let built = Arc::new(build()?);
        let mut map = self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        Ok(map.entry(key).or_insert(built).clone())
    }

    fn len(&self) -> usize {
        self.map.lock().unwrap_or_else(std::sync::PoisonError::into_inner).len()
    }

    fn counts(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }
}

/// A process-wide (or per-sweep) memo of scenario build artifacts, one
/// layer per build stage (see the module docs). Cheap to share behind an
/// `Arc`; all methods take `&self` and are thread-safe.
pub struct ArtifactCache {
    floorplans: Layer<FloorplanMap>,
    meshes: Layer<ThermalGrid>,
    operators: Layer<MgTopology>,
    programs: Layer<Program>,
}

impl Default for ArtifactCache {
    fn default() -> ArtifactCache {
        ArtifactCache {
            floorplans: Layer::named("floorplan"),
            meshes: Layer::named("mesh"),
            operators: Layer::named("operator"),
            programs: Layer::named("program"),
        }
    }
}

impl fmt::Debug for ArtifactCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArtifactCache")
            .field("floorplans", &self.floorplans.len())
            .field("meshes", &self.meshes.len())
            .field("operators", &self.operators.len())
            .field("programs", &self.programs.len())
            .finish()
    }
}

impl ArtifactCache {
    /// An empty cache.
    #[must_use]
    pub fn new() -> ArtifactCache {
        ArtifactCache::default()
    }

    /// The resolved floorplan map for a floorplan sub-key.
    pub(crate) fn floorplan(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<FloorplanMap, TemuError>,
    ) -> Result<Arc<FloorplanMap>, TemuError> {
        self.floorplans.get_or_build(key, build)
    }

    /// The meshed thermal grid for a mesh sub-key.
    pub(crate) fn mesh(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<ThermalGrid, TemuError>,
    ) -> Result<Arc<ThermalGrid>, TemuError> {
        self.meshes.get_or_build(key, build)
    }

    /// The multigrid hierarchy topology for an operator sub-key. Built
    /// from the shared grid at ambient-uniform conductances
    /// ([`MgTopology::for_grid`]), which is exactly what the solver's lazy
    /// first-substep build would produce.
    pub(crate) fn operator(
        &self,
        key: u64,
        grid: &ThermalGrid,
        cfg: &GridConfig,
    ) -> Result<Arc<MgTopology>, TemuError> {
        self.operators.get_or_build(key, || Ok(MgTopology::for_grid(grid, cfg)))
    }

    /// The generated TE32 program for a program sub-key.
    pub(crate) fn program(
        &self,
        key: u64,
        build: impl FnOnce() -> Result<Program, TemuError>,
    ) -> Result<Arc<Program>, TemuError> {
        self.programs.get_or_build(key, build)
    }

    /// A snapshot of the per-layer hit/miss counters.
    #[must_use]
    pub fn stats(&self) -> ArtifactStats {
        let (floorplan_hits, floorplan_misses) = self.floorplans.counts();
        let (mesh_hits, mesh_misses) = self.meshes.counts();
        let (operator_hits, operator_misses) = self.operators.counts();
        let (program_hits, program_misses) = self.programs.counts();
        ArtifactStats {
            floorplan_hits,
            floorplan_misses,
            mesh_hits,
            mesh_misses,
            operator_hits,
            operator_misses,
            program_hits,
            program_misses,
        }
    }
}

/// Per-layer hit/miss counters of an [`ArtifactCache`] (a point-in-time
/// snapshot). A *miss* is a build; `mesh_misses == 1` across an 8-point
/// same-geometry sweep is the "meshed exactly once" property the smoke
/// gate asserts.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
#[non_exhaustive]
pub struct ArtifactStats {
    /// Floorplan-layer lookups served from the cache.
    pub floorplan_hits: u64,
    /// Floorplan-layer builds.
    pub floorplan_misses: u64,
    /// Mesh-layer (thermal grid) lookups served from the cache.
    pub mesh_hits: u64,
    /// Mesh-layer builds.
    pub mesh_misses: u64,
    /// Operator-layer (multigrid hierarchy) lookups served from the cache.
    pub operator_hits: u64,
    /// Operator-layer builds.
    pub operator_misses: u64,
    /// Program-layer lookups served from the cache.
    pub program_hits: u64,
    /// Program-layer builds.
    pub program_misses: u64,
}

impl ArtifactStats {
    /// Total lookups served from the cache across all layers.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.floorplan_hits + self.mesh_hits + self.operator_hits + self.program_hits
    }

    /// Total builds across all layers.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.floorplan_misses + self.mesh_misses + self.operator_misses + self.program_misses
    }

    /// The delta of counters accumulated since `base` (for reporting one
    /// sweep's reuse out of a long-lived shared cache).
    #[must_use]
    pub fn delta_since(&self, base: &ArtifactStats) -> ArtifactStats {
        ArtifactStats {
            floorplan_hits: self.floorplan_hits - base.floorplan_hits,
            floorplan_misses: self.floorplan_misses - base.floorplan_misses,
            mesh_hits: self.mesh_hits - base.mesh_hits,
            mesh_misses: self.mesh_misses - base.mesh_misses,
            operator_hits: self.operator_hits - base.operator_hits,
            operator_misses: self.operator_misses - base.operator_misses,
            program_hits: self.program_hits - base.program_hits,
            program_misses: self.program_misses - base.program_misses,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use temu_thermal::Floorplan;

    fn tiny_grid() -> ThermalGrid {
        let mut fp = Floorplan::new("die", 2000.0, 2000.0);
        fp.add_component("cpu", 200.0, 200.0, 800.0, 800.0, true);
        ThermalGrid::build(&fp, &GridConfig::default()).unwrap()
    }

    #[test]
    fn layers_memoize_and_count_independently() {
        let cache = ArtifactCache::new();
        let a = cache.mesh(7, || Ok(tiny_grid())).unwrap();
        let b = cache.mesh(7, || panic!("second lookup must not rebuild")).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "one key, one artifact instance");
        let c = cache.mesh(8, || Ok(tiny_grid())).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        let stats = cache.stats();
        assert_eq!((stats.mesh_hits, stats.mesh_misses), (1, 2));
        assert_eq!(stats.floorplan_misses, 0, "layers count independently");
        assert_eq!(stats.hits(), 1);
        assert_eq!(stats.misses(), 2);
    }

    #[test]
    fn build_errors_are_not_cached() {
        let cache = ArtifactCache::new();
        let err = cache.program(1, || Err(TemuError::Cancelled));
        assert!(err.is_err());
        // The failed build left nothing behind; the next lookup builds.
        let ok = cache.program(1, || Ok(Program::default()));
        assert!(ok.is_ok());
        assert_eq!(cache.stats().program_misses, 2);
    }

    #[test]
    fn stats_delta_isolates_one_window_of_use() {
        let cache = ArtifactCache::new();
        let _ = cache.mesh(1, || Ok(tiny_grid()));
        let base = cache.stats();
        let _ = cache.mesh(1, || Ok(tiny_grid()));
        let _ = cache.mesh(1, || Ok(tiny_grid()));
        let d = cache.stats().delta_since(&base);
        assert_eq!((d.mesh_hits, d.mesh_misses), (2, 0));
    }
}
