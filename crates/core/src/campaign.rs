//! Batch execution of scenarios across host threads.
//!
//! A [`Campaign`] takes any number of [`Scenario`]s and runs them
//! concurrently on a dedicated worker pool (the panic-safe fork-join pool
//! the thermal solver uses, instantiated separately so a scenario's own
//! parallel sweeps never contend with campaign dispatch). Results come back
//! as a [`CampaignReport`] in **input order**, regardless of which worker
//! finished first — one failed or panicked scenario is carried as its typed
//! [`TemuError`] without aborting its siblings.
//!
//! Thread count resolution: an explicit [`Campaign::threads`] call wins;
//! otherwise [`temu_thermal::default_workers`] resolves
//! `TEMU_CAMPAIGN_THREADS` with exactly the same syntax, clamping (1..=64)
//! and fallback (available parallelism capped at 16) as the solver's
//! `TEMU_THERMAL_THREADS`; the count is always capped by the number of
//! scenarios.
//!
//! # Export format
//!
//! [`CampaignReport::to_json`]/[`CampaignReport::to_csv`] carry, per
//! scenario, the run summary plus the thermal solver's convergence
//! accounting ([`temu_thermal::SolverStats`]): `unconverged_substeps`
//! (implicit substeps accepted without reaching tolerance — non-zero means
//! the temperatures came from a solver that silently stopped converging)
//! and `worst_residual_k` (how far from converged the worst such substep
//! still was). Every floating-point field is emitted as a JSON number only
//! when finite and as `null` otherwise, so the export is always valid
//! JSON.

use crate::artifacts::ArtifactCache;
use crate::error::TemuError;
use crate::export::{csv_f64, csv_field, csv_opt, json_escape, json_f64, json_num_or_null};
use crate::scenario::{Scenario, ScenarioRun};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};
use temu_thermal::{default_workers, WorkerPool};

/// A streaming result sink: called once per finished scenario, in
/// completion order (see [`Campaign::on_result`]).
pub type ResultSink = dyn Fn(&CampaignProgress<'_>) + Send + Sync;

/// A custom point executor installed by [`Campaign::runner`]: replaces the
/// default [`Scenario::run_with`] call so the sweep layer can route a
/// point through checkpoint resume or within-point window observation
/// without the campaign knowing either exists.
pub(crate) type PointRunner =
    dyn Fn(&Scenario, Option<&ArtifactCache>) -> Result<ScenarioRun, TemuError> + Send + Sync;

/// One finished scenario, delivered to a [`Campaign::on_result`] sink while
/// the rest of the batch is still running.
#[derive(Debug)]
pub struct CampaignProgress<'a> {
    /// Input index of the scenario that just finished (its slot in the
    /// final [`CampaignReport::results`]).
    pub index: usize,
    /// Scenarios finished so far, this one included (monotonically
    /// increasing across sink invocations: 1, 2, …, `total`).
    pub completed: usize,
    /// Scenarios in the whole batch.
    pub total: usize,
    /// The finished scenario's result.
    pub result: &'a ScenarioResult,
}

/// The outcome of one scenario inside a campaign.
#[derive(Debug)]
pub struct ScenarioResult {
    /// The scenario's name ([`Scenario::label`]).
    pub name: String,
    /// Host wall-clock time this scenario took.
    pub wall: Duration,
    /// The run, or the typed error that stopped it.
    pub outcome: Result<ScenarioRun, TemuError>,
}

impl ScenarioResult {
    /// Whether the scenario completed.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }
}

/// A batch of scenarios executed concurrently (see the module docs).
#[derive(Clone, Default)]
pub struct Campaign {
    scenarios: Vec<Scenario>,
    threads: Option<usize>,
    sink: Option<Arc<ResultSink>>,
    artifacts: Option<Arc<ArtifactCache>>,
    runner: Option<Arc<PointRunner>>,
}

impl fmt::Debug for Campaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Campaign")
            .field("scenarios", &self.scenarios)
            .field("threads", &self.threads)
            .field("sink", &self.sink.as_ref().map(|_| "Fn(&CampaignProgress)"))
            .finish()
    }
}

impl Campaign {
    /// An empty campaign.
    pub fn new() -> Campaign {
        Campaign::default()
    }

    /// Appends one scenario.
    pub fn scenario(mut self, scenario: Scenario) -> Campaign {
        self.scenarios.push(scenario);
        self
    }

    /// Appends every scenario of an iterator (sweep construction).
    pub fn scenarios(mut self, iter: impl IntoIterator<Item = Scenario>) -> Campaign {
        self.scenarios.extend(iter);
        self
    }

    /// Sets the worker-thread count explicitly. When unset, the
    /// `TEMU_CAMPAIGN_THREADS` environment variable and then the host's
    /// available parallelism decide.
    pub fn threads(mut self, threads: usize) -> Campaign {
        self.threads = Some(threads);
        self
    }

    /// Builds every scenario through a shared layered [`ArtifactCache`]
    /// ([`Scenario::build_with`]): scenarios that agree on floorplan
    /// geometry, mesh or workload share those build artifacts instead of
    /// rebuilding them per scenario. Results are unchanged — only build
    /// cost is.
    pub fn artifacts(mut self, artifacts: Arc<ArtifactCache>) -> Campaign {
        self.artifacts = Some(artifacts);
        self
    }

    /// Replaces the default per-scenario executor
    /// ([`Scenario::run_with`]) — the sweep layer's hook for checkpoint
    /// resume and within-point window observation. Panic containment and
    /// result ordering are unchanged.
    pub(crate) fn runner(mut self, runner: Arc<PointRunner>) -> Campaign {
        self.runner = Some(runner);
        self
    }

    /// Installs a streaming result sink: `sink` is called once per
    /// scenario as it finishes — in **completion order**, from whichever
    /// worker thread ran it — so long batches can report progress (or
    /// persist results) incrementally instead of only at the final join.
    ///
    /// Invocations are serialized (never concurrent), and
    /// [`CampaignProgress::completed`] counts them 1..=total; the final
    /// [`CampaignReport`] is unchanged and stays input-ordered.
    pub fn on_result(mut self, sink: impl Fn(&CampaignProgress<'_>) + Send + Sync + 'static) -> Campaign {
        self.sink = Some(Arc::new(sink));
        self
    }

    /// Number of scenarios queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.scenarios.len()
    }

    /// Whether the campaign is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.scenarios.is_empty()
    }

    /// Runs every scenario and collects the report (input-ordered).
    pub fn run(&self) -> CampaignReport {
        let t0 = Instant::now();
        let n_jobs = self.scenarios.len();
        let threads = self.resolve_threads(n_jobs);
        let next = AtomicUsize::new(0);
        let completed = Mutex::new(0usize);
        let slots: Vec<Mutex<Option<ScenarioResult>>> = (0..n_jobs).map(|_| Mutex::new(None)).collect();
        let worker = |_lane: usize, _lanes: usize| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n_jobs {
                break;
            }
            let result = run_one(&self.scenarios[i], self.artifacts.as_deref(), self.runner.as_deref());
            if let Some(sink) = &self.sink {
                // The lock is held across the sink call: invocations are
                // serialized and `completed` increases monotonically even
                // when results race in from several workers.
                let mut done = completed.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                *done += 1;
                sink(&CampaignProgress { index: i, completed: *done, total: n_jobs, result: &result });
            }
            *slots[i].lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(result);
        };
        if threads <= 1 {
            worker(0, 1);
        } else {
            WorkerPool::new(threads).run(&worker);
        }
        let results = slots
            .into_iter()
            .enumerate()
            .map(|(i, m)| {
                // A slot can only be empty if its worker aborted between
                // claiming the scenario and storing the result (e.g. a
                // panicking result sink). Surface that as the scenario's
                // typed error instead of panicking the whole report.
                m.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner).unwrap_or_else(|| {
                    ScenarioResult {
                        name: self.scenarios[i].label(),
                        wall: Duration::ZERO,
                        outcome: Err(TemuError::ScenarioPanicked(String::from(
                            "scenario result was never delivered",
                        ))),
                    }
                })
            })
            .collect();
        CampaignReport { results, wall: t0.elapsed(), threads }
    }

    fn resolve_threads(&self, n_jobs: usize) -> usize {
        // An explicit `threads()` call wins; otherwise the shared
        // environment-variable helper decides, so tests that pin a width
        // stay meaningful on hosts that export the variable and both
        // `TEMU_*_THREADS` knobs behave identically.
        let configured = self.threads.unwrap_or_else(|| default_workers("TEMU_CAMPAIGN_THREADS"));
        configured.min(n_jobs).max(1)
    }
}

/// Runs one scenario, converting a panic into a typed error so sibling
/// scenarios keep running.
fn run_one(
    scenario: &Scenario,
    artifacts: Option<&ArtifactCache>,
    runner: Option<&PointRunner>,
) -> ScenarioResult {
    let name = scenario.label();
    let t0 = Instant::now();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| match runner {
        Some(run) => run(scenario, artifacts),
        None => scenario.run_with(artifacts),
    }))
    .unwrap_or_else(|payload| Err(TemuError::ScenarioPanicked(panic_message(&payload))));
    ScenarioResult { name, wall: t0.elapsed(), outcome }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Input-ordered results of a campaign, with JSON and CSV export.
#[derive(Debug)]
#[must_use]
pub struct CampaignReport {
    /// One result per scenario, in the order they were added.
    pub results: Vec<ScenarioResult>,
    /// Host wall-clock time of the whole batch.
    pub wall: Duration,
    /// Worker threads the batch ran on.
    pub threads: usize,
}

impl CampaignReport {
    /// Whether every scenario completed.
    #[must_use]
    pub fn all_ok(&self) -> bool {
        self.results.iter().all(ScenarioResult::is_ok)
    }

    /// Number of failed scenarios.
    #[must_use]
    pub fn n_failed(&self) -> usize {
        self.results.iter().filter(|r| !r.is_ok()).count()
    }

    /// Serializes the report as JSON (no external dependencies; failures
    /// carry their error string). Non-finite floats serialize as `null` —
    /// bare `NaN`/`inf` would make the whole document unparseable.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"threads\": {},\n", self.threads));
        out.push_str(&format!("  \"wall_s\": {},\n", json_f64(self.wall.as_secs_f64(), 6)));
        out.push_str("  \"scenarios\": [\n");
        for (i, r) in self.results.iter().enumerate() {
            out.push_str("    {");
            out.push_str(&format!("\"name\": \"{}\", ", json_escape(&r.name)));
            out.push_str(&format!("\"ok\": {}, ", r.is_ok()));
            out.push_str(&format!("\"wall_s\": {}", json_f64(r.wall.as_secs_f64(), 6)));
            match &r.outcome {
                Ok(run) => {
                    let rep = &run.report;
                    out.push_str(&format!(", \"windows\": {}", rep.windows));
                    out.push_str(&format!(", \"virtual_s\": {}", json_f64(rep.virtual_seconds, 6)));
                    out.push_str(&format!(", \"virtual_cycles\": {}", rep.virtual_cycles));
                    out.push_str(&format!(", \"fpga_s\": {}", json_f64(rep.fpga_seconds, 6)));
                    out.push_str(&format!(", \"all_halted\": {}", rep.all_halted));
                    out.push_str(&format!(", \"instructions\": {}", rep.aggregate.total_instructions()));
                    out.push_str(&json_num_or_null(", \"peak_temp_k\": ", run.trace.peak_temp()));
                    out.push_str(&json_num_or_null(", \"final_temp_k\": ", run.trace.final_temp()));
                    out.push_str(&format!(
                        ", \"throttled_fraction\": {}",
                        json_f64(run.trace.throttled_fraction(), 4)
                    ));
                    out.push_str(&format!(
                        ", \"unconverged_substeps\": {}",
                        rep.solver.unconverged_substeps
                    ));
                    out.push_str(&format!(
                        ", \"worst_residual_k\": {}",
                        json_f64(rep.solver.worst_residual_k, 9)
                    ));
                }
                Err(e) => out.push_str(&format!(", \"error\": \"{}\"", json_escape(&e.to_string()))),
            }
            out.push_str(if i + 1 < self.results.len() { "},\n" } else { "}\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Serializes the per-scenario summary lines as CSV (non-finite floats
    /// become empty fields, like the other absent values).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "scenario,ok,wall_s,windows,virtual_s,fpga_s,peak_temp_k,final_temp_k,throttled_fraction,unconverged_substeps,worst_residual_k,error\n",
        );
        for r in &self.results {
            match &r.outcome {
                Ok(run) => {
                    let rep = &run.report;
                    out.push_str(&format!(
                        "{},true,{},{},{},{},{},{},{},{},{},\n",
                        csv_field(&r.name),
                        csv_f64(r.wall.as_secs_f64(), 6),
                        rep.windows,
                        csv_f64(rep.virtual_seconds, 6),
                        csv_f64(rep.fpga_seconds, 6),
                        csv_opt(run.trace.peak_temp()),
                        csv_opt(run.trace.final_temp()),
                        csv_f64(run.trace.throttled_fraction(), 4),
                        rep.solver.unconverged_substeps,
                        csv_f64(rep.solver.worst_residual_k, 9),
                    ));
                }
                Err(e) => {
                    out.push_str(&format!(
                        "{},false,{},,,,,,,,,{}\n",
                        csv_field(&r.name),
                        csv_f64(r.wall.as_secs_f64(), 6),
                        csv_field(&e.to_string())
                    ));
                }
            }
        }
        out
    }
}

