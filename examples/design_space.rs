//! Design-space exploration: the use case the emulation framework exists for
//! (section 1) — sweep core counts, cache sizes and interconnects on the
//! same workload, at emulation speed, and check each candidate fits the
//! FPGA.
//!
//! The whole sweep is **one campaign**: twelve scenarios built by three
//! nested iterators, executed concurrently across host threads, reported in
//! input order.
//!
//! ```sh
//! cargo run --release --example design_space
//! ```

use temu::fpga::{estimate, CostModel, V2VP30};
use temu::mem::CacheConfig;
use temu::{Campaign, Scenario, TemuError};

fn main() -> Result<(), TemuError> {
    let cache_points = [("4KB", CacheConfig::paper_l1_4k()), ("8KB", CacheConfig::paper_l1_8k())];
    let mut scenarios = Vec::new();
    for cores in [1usize, 2, 4] {
        for (cache_label, cache) in cache_points {
            for noc in [false, true] {
                let base = if noc { Scenario::exploration_noc(cores) } else { Scenario::exploration_bus(cores) };
                scenarios.push(
                    base.caches(cache)
                        .name(format!("{cores} core(s), {cache_label} L1, {}", if noc { "NoC" } else { "OPB" })),
                );
            }
        }
    }

    let report = Campaign::new().scenarios(scenarios.iter().cloned()).run();

    println!(
        "{:<34} {:>10} {:>10} {:>9} {:>10} {:>8}",
        "configuration", "cycles", "D$ miss%", "bus wait", "fpga ms", "fits?"
    );
    for (scenario, result) in scenarios.iter().zip(&report.results) {
        let run = match &result.outcome {
            Ok(run) => run,
            Err(e) => {
                println!("{:<34} failed: {e}", result.name);
                continue;
            }
        };
        let s = &run.report.aggregate;
        let dmiss: f64 = {
            let (m, a): (u64, u64) =
                (s.dcaches.iter().map(|c| c.misses).sum(), s.dcaches.iter().map(|c| c.accesses()).sum());
            if a == 0 { 0.0 } else { 100.0 * m as f64 / a as f64 }
        };
        // Time-to-completion of the slowest core (total virtual cycles are
        // padded to the sampling-window boundary with post-halt idle).
        let busy = s.cores.iter().map(|c| c.active_cycles + c.stall_cycles).max().unwrap_or(0);
        let fit = estimate(scenario.platform_config(), &CostModel::default(), V2VP30, 1);
        // Per-row wall clocks are contaminated by concurrently-running
        // sibling scenarios, so the speed column reports the deterministic
        // modeled FPGA time (the Table 3 "HW Emulator" quantity) instead.
        println!(
            "{:<34} {:>10} {:>9.2}% {:>9} {:>10.1} {:>8}",
            result.name,
            busy,
            dmiss,
            s.interconnect.contention_cycles,
            run.report.fpga_seconds * 1e3,
            if fit.fits() { "yes" } else { "NO" },
        );
    }

    println!(
        "\n{} scenarios on {} worker thread(s) in {:.2} s wall; full data: campaign JSON/CSV export.",
        report.results.len(),
        report.threads,
        report.wall.as_secs_f64()
    );
    println!("Every row is one cycle-accurate 'synthesis-free' exploration point; the paper's");
    println!("flow needs 10-12 hours of EDK synthesis per HW change (section 6), the emulator none.");
    Ok(())
}
