//! Quickstart: build a 4-core MPSoC, run the Matrix kernel, read the sniffer
//! statistics — the minimal end-to-end tour of the emulation platform.
//!
//! Every fallible step surfaces a typed error through `?`; nothing here can
//! panic on a bad configuration.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use temu::platform::{Machine, PlatformConfig};
use temu::workloads::matrix::{self, MatrixConfig};
use temu::TemuError;

fn main() -> Result<(), TemuError> {
    // The paper's exploration platform: 4 cores, 4 KB I/D caches, private
    // memories, 1 MB shared memory behind an OPB bus (section 7).
    let platform = PlatformConfig::paper_bus(4);
    let mut machine = Machine::new(platform)?;

    // The MATRIX kernel: every core multiplies its own matrices in private
    // memory and the checksums are combined in shared memory.
    let workload = MatrixConfig { n: 16, iters: 4, cores: 4 };
    let program = matrix::program(&workload)?;
    machine.load_program_all(&program)?;

    let summary = machine.run_to_halt(u64::MAX)?;
    assert!(summary.all_halted);

    println!("== run ==");
    println!("cycles            : {}", summary.cycles);
    println!("instructions      : {}", summary.instructions);
    println!("modeled FPGA time : {:.3} ms at 100 MHz", summary.fpga_seconds * 1e3);
    println!("host wall time    : {:.3} ms ({:.1} Mcycle/s)", summary.wall.as_secs_f64() * 1e3, summary.emulated_hz() / 1e6);

    println!("\n== processor sniffers ==");
    for (i, c) in summary.stats.cores.iter().enumerate() {
        println!(
            "core {i}: {:>9} instr, active {:>5.1}%, stalled {:>5.1}%, idle {:>5.1}%",
            c.instructions,
            100.0 * c.active_cycles as f64 / c.cycles() as f64,
            100.0 * c.stall_cycles as f64 / c.cycles() as f64,
            100.0 * c.idle_cycles as f64 / c.cycles() as f64,
        );
    }

    println!("\n== memory sniffers ==");
    for (i, (ic, dc)) in summary.stats.icaches.iter().zip(&summary.stats.dcaches).enumerate() {
        println!(
            "core {i}: I$ {:>8} accesses ({:.2}% miss)   D$ {:>8} accesses ({:.2}% miss)",
            ic.accesses(),
            100.0 * ic.miss_rate(),
            dc.accesses(),
            100.0 * dc.miss_rate(),
        );
    }
    println!(
        "shared memory: {} accesses; interconnect: {} transactions, {} contention cycles",
        summary.stats.shared_mem.accesses(),
        summary.stats.interconnect.transactions,
        summary.stats.interconnect.contention_cycles
    );

    // The emulated result must equal the host-side reference.
    let expected = matrix::reference_total(&workload);
    let off = matrix::layout().total_addr - temu::workloads::SHARED_BASE;
    let got = machine.shared().read(off, temu::isa::Width::Word)?;
    assert_eq!(got, expected);
    println!("\ncombined checksum {got:#010x} matches the host reference — emulation is exact.");
    Ok(())
}
