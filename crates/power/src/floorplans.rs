//! The evaluation floorplans of Fig. 4.
//!
//! Both floorplans place four core tiles (processor + I-cache + D-cache +
//! private memory) in the die corners, with the shared memory and the four
//! NoC switches of the Matrix-TM platform in a central column. Component
//! areas are the ones implied by Table 1 (`max power / power density`); the
//! paper obtained NoC component dimensions "after building a layout", which
//! we reproduce with the documented estimate in the power database.

use crate::db::{CoreKind, PowerDb};
use crate::error::PowerError;
use temu_thermal::{ComponentId, Floorplan};

/// A floorplan plus the mapping from platform statistics sources to
/// floorplan components (which core heats which rectangle).
#[derive(Clone, Debug)]
pub struct FloorplanMap {
    /// The geometric floorplan.
    pub floorplan: Floorplan,
    /// Which processor class the cores are.
    pub core_kind: CoreKind,
    /// Per core: (processor, icache, dcache, private memory) component ids.
    pub cores: Vec<(ComponentId, ComponentId, ComponentId, ComponentId)>,
    /// Shared-memory component.
    pub shared: ComponentId,
    /// NoC switch components (empty for bus platforms).
    pub switches: Vec<ComponentId>,
}

impl FloorplanMap {
    /// Total number of floorplan components.
    pub fn n_components(&self) -> usize {
        self.floorplan.components().len()
    }

    /// Checks that the floorplan provides a processor tile for each of
    /// `cores` cores.
    ///
    /// # Errors
    ///
    /// Returns [`PowerError::CoreTileMismatch`] when it does not.
    pub fn check_cores(&self, cores: usize) -> Result<(), PowerError> {
        if self.cores.len() < cores {
            return Err(PowerError::CoreTileMismatch { core_tiles: self.cores.len(), cores });
        }
        Ok(())
    }

    /// Component ids of the processors only (the DFS policy watches these).
    pub fn processor_ids(&self) -> Vec<ComponentId> {
        self.cores.iter().map(|&(p, _, _, _)| p).collect()
    }
}

fn side_um(area_mm2: f64) -> f64 {
    (area_mm2 * 1e6).sqrt()
}

/// Builds a 4-core floorplan of the Fig. 4 family for the given core class.
///
/// `n_switches` is 4 for the Matrix-TM NoC platform (Fig. 4b usage) and may
/// be 0 for bus-based platforms.
///
/// # Panics
///
/// Panics if `cores` is 0 or greater than 4 (the paper's floorplans are
/// four-core; larger dies would need their own layout).
pub fn quad_core(kind: CoreKind, cores: usize, n_switches: usize) -> FloorplanMap {
    assert!((1..=4).contains(&cores), "the Fig. 4 floorplans hold 1-4 cores");
    let db = PowerDb::table1();
    let core_e = db.core(kind);
    let core_side = side_um(core_e.area_mm2());
    let dc_side = side_um(db.dcache_8k.area_mm2());
    let ic_side = side_um(db.icache_8k.area_mm2());
    let pm_side = side_um(db.mem_32k.area_mm2());
    let sw_side = side_um(db.noc_switch.area_mm2());

    // Quadrant: processor bottom-left, D-cache to its right, I-cache and
    // private memory above. Sized to the largest component set (ARM11).
    let quad = (core_side + dc_side).max(dc_side + pm_side) + 200.0;
    let strip = (pm_side.max(sw_side) + 300.0).max(1200.0);
    let die_w = 2.0 * quad + strip;
    let die_h = 2.0 * quad;

    let mut fp = Floorplan::new(
        match kind {
            CoreKind::Arm7 => "fig4a-4xARM7",
            CoreKind::Arm11 => "fig4b-4xARM11",
        },
        die_w,
        die_h,
    );

    let origins = [(0.0, 0.0), (quad + strip, 0.0), (0.0, quad), (quad + strip, quad)];
    let mut core_ids = Vec::new();
    for (i, &(ox, oy)) in origins.iter().take(cores).enumerate() {
        let p = fp.add_component(format!("{}_{}", core_name(kind), i), ox, oy, core_side, core_side, true);
        let d = fp.add_component(format!("dcache_{i}"), ox + core_side + 100.0, oy, dc_side, dc_side, false);
        let ic_y = oy + core_side.max(dc_side) + 100.0;
        let ic = fp.add_component(format!("icache_{i}"), ox, ic_y, ic_side, ic_side, false);
        let pm = fp.add_component(format!("pmem_{i}"), ox + ic_side + 100.0, ic_y, pm_side, pm_side, false);
        core_ids.push((p, d, ic, pm));
    }
    // Fix tuple order to (processor, icache, dcache, pmem).
    let cores_fixed: Vec<_> = core_ids.iter().map(|&(p, d, ic, pm)| (p, ic, d, pm)).collect();

    let cx = quad + 150.0;
    let shared = fp.add_component("smem", cx, die_h - pm_side - 200.0, pm_side, pm_side, false);
    let mut switches = Vec::new();
    for s in 0..n_switches {
        let y = 200.0 + s as f64 * (sw_side + 300.0);
        switches.push(fp.add_component(format!("sw_{s}"), cx, y, sw_side, sw_side, false));
    }

    FloorplanMap { floorplan: fp, core_kind: kind, cores: cores_fixed, shared, switches }
}

fn core_name(kind: CoreKind) -> &'static str {
    match kind {
        CoreKind::Arm7 => "arm7",
        CoreKind::Arm11 => "arm11",
    }
}

/// Fig. 4(a): four ARM7 cores at 100 MHz.
pub fn fig4a_arm7() -> FloorplanMap {
    quad_core(CoreKind::Arm7, 4, 4)
}

/// Fig. 4(b): four ARM11 cores at 500 MHz (the Matrix-TM floorplan; with
/// the default meshing it yields the paper's "28 thermal cells" scale on
/// the bottom layer).
pub fn fig4b_arm11() -> FloorplanMap {
    quad_core(CoreKind::Arm11, 4, 4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use temu_thermal::{GridConfig, ThermalGrid};

    #[test]
    fn both_floorplans_build() {
        let a = fig4a_arm7();
        let b = fig4b_arm11();
        assert_eq!(a.cores.len(), 4);
        assert_eq!(b.cores.len(), 4);
        assert_eq!(a.switches.len(), 4);
        assert_eq!(b.n_components(), 4 * 4 + 1 + 4);
    }

    #[test]
    fn component_areas_match_table1() {
        let m = fig4b_arm11();
        let db = PowerDb::table1();
        let (p, ic, dc, pm) = m.cores[0];
        let comps = m.floorplan.components();
        assert!((comps[p].area_mm2() - db.arm11.area_mm2()).abs() < 1e-6);
        assert!((comps[ic].area_mm2() - db.icache_8k.area_mm2()).abs() < 1e-6);
        assert!((comps[dc].area_mm2() - db.dcache_8k.area_mm2()).abs() < 1e-6);
        assert!((comps[pm].area_mm2() - db.mem_32k.area_mm2()).abs() < 1e-6);
    }

    #[test]
    fn names_are_queryable() {
        let m = fig4b_arm11();
        assert!(m.floorplan.find("arm11_0").is_some());
        assert!(m.floorplan.find("sw_3").is_some());
        assert!(m.floorplan.find("smem").is_some());
        assert!(m.floorplan.find("arm7_0").is_none());
    }

    #[test]
    fn processors_are_hot_components() {
        let m = fig4b_arm11();
        for &(p, _, _, _) in &m.cores {
            assert!(m.floorplan.components()[p].hot);
        }
        assert_eq!(m.processor_ids().len(), 4);
    }

    #[test]
    fn floorplans_mesh_cleanly() {
        for m in [fig4a_arm7(), fig4b_arm11()] {
            let g = ThermalGrid::build(&m.floorplan, &GridConfig::default()).unwrap();
            assert!(g.n_cells() > 0, "{} meshes", m.floorplan.name);
        }
    }

    #[test]
    fn matrix_tm_mesh_is_paper_scale() {
        // The paper reports 28 thermal cells for the Matrix-TM floorplan;
        // with one cell per normal component and finer cells over cores the
        // bottom-layer count lands in the same few-dozen regime.
        let m = fig4b_arm11();
        let cfg = GridConfig { default_div: 1, hot_div: 2, filler_pitch_um: 4000.0, ..GridConfig::default() };
        let g = ThermalGrid::build(&m.floorplan, &cfg).unwrap();
        let bottom = g.n_tiles();
        assert!((25..=120).contains(&bottom), "bottom-layer cells: {bottom}");
    }

    #[test]
    fn partial_core_counts() {
        let m = quad_core(CoreKind::Arm7, 2, 0);
        assert_eq!(m.cores.len(), 2);
        assert!(m.switches.is_empty());
    }

    #[test]
    #[should_panic(expected = "1-4 cores")]
    fn too_many_cores_panics() {
        let _ = quad_core(CoreKind::Arm11, 5, 4);
    }
}
